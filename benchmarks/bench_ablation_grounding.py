"""Ablations for the design choices called out in DESIGN.md §6.

1. **Relevant vs full grounding** (Thm 3.1's input): full grounding is
   the paper's definition; relevant grounding preserves the provenance
   polynomial while dropping the identically-zero rules.  Measures the
   rule-count gap that makes the constructions practical.
2. **Magic-set specialization** (Thm 5.8's device): for a left-linear
   chain program with a bound source, unary IDBs shrink the grounding
   from Θ(n·m) to O(m) -- measured head-to-head on the same inputs.
"""

from conftest import run_sweep

from repro.datalog import full_grounding, magic_specialize, relevant_grounding, transitive_closure
from repro.workloads import random_digraph

TC = transitive_closure()
SWEEP = (6, 8, 10, 12)
REPRESENTATIVE = 10


def groundings(n: int):
    # Sparse graph without a guaranteed backbone: plenty of underivable
    # T(u, v) pairs, so full and relevant grounding genuinely separate.
    db = random_digraph(n, max(n, 4), seed=n, ensure_st_path=False)
    db.add("E", 0, 1)  # keep the magic source non-trivial
    full = full_grounding(TC, db)
    relevant = relevant_grounding(TC, db)
    magic = relevant_grounding(magic_specialize(TC, 0), db)
    return full, relevant, magic


def test_ablation_grounding_strategies(benchmark):
    rows = []
    for n in SWEEP:
        full, relevant, magic = groundings(n)
        assert len(magic.rules) <= len(relevant.rules) <= len(full.rules)
        rows.append(
            dict(
                n=n,
                m=max(n, 4) + 1,
                size=len(relevant.rules),
                depth=len(magic.rules),
                extra=f"full={len(full.rules)} relevant={len(relevant.rules)} magic={len(magic.rules)}",
            )
        )
    run_sweep(
        "Ablation / grounding: full vs relevant vs magic (size=relevant, depth=magic)",
        claimed_size="n^2",
        claimed_depth="n",  # magic grounding is O(m) = O(n) here
        rows=rows,
    )
    # The asymptotic separation: magic stays linear while relevant is
    # quadratic-ish and full is cubic-ish in n on these inputs.
    first_full, first_rel, first_magic = (len(g.rules) for g in groundings(SWEEP[0]))
    last_full, last_rel, last_magic = (len(g.rules) for g in groundings(SWEEP[-1]))
    scale = SWEEP[-1] / SWEEP[0]
    assert last_magic / max(first_magic, 1) <= 2.5 * scale
    assert last_full / max(first_full, 1) >= last_magic / max(first_magic, 1)
    benchmark(groundings, REPRESENTATIVE)
