"""Ablations for the design choices called out in DESIGN.md §6.

1. **Relevant vs full grounding** (Thm 3.1's input): full grounding is
   the paper's definition; relevant grounding preserves the provenance
   polynomial while dropping the identically-zero rules.  Measures the
   rule-count gap that makes the constructions practical.
2. **Magic-set specialization** (Thm 5.8's device): for a left-linear
   chain program with a bound source, unary IDBs shrink the grounding
   from Θ(n·m) to O(m) -- measured head-to-head on the same inputs.
3. **Indexed vs naive join engine** (DESIGN.md §5): the same relevant
   grounding computed by both engines, compared on the instrumented
   join-probe counter (``GROUNDING_STATS``).  The indexed engine must
   probe at least 2× fewer rows at every sweep size.
"""

from conftest import run_sweep

from repro.datalog import (
    count_join_probes,
    full_grounding,
    magic_grounding,
    magic_specialize,
    relevant_grounding,
    transitive_closure,
)
from repro.workloads import random_digraph

TC = transitive_closure()
SWEEP = (6, 8, 10, 12)
REPRESENTATIVE = 10


def ablation_db(n: int):
    # Sparse graph without a guaranteed backbone: plenty of underivable
    # T(u, v) pairs, so full and relevant grounding genuinely separate.
    db = random_digraph(n, max(n, 4), seed=n, ensure_st_path=False)
    db.add("E", 0, 1)  # keep the magic source non-trivial
    return db


def groundings(n: int):
    db = ablation_db(n)
    full = full_grounding(TC, db)
    relevant = relevant_grounding(TC, db)
    magic = magic_grounding(TC, 0, db)
    return full, relevant, magic


def test_ablation_grounding_strategies(benchmark):
    rows = []
    for n in SWEEP:
        full, relevant, magic = groundings(n)
        assert len(magic.rules) <= len(relevant.rules) <= len(full.rules)
        rows.append(
            dict(
                n=n,
                m=max(n, 4) + 1,
                size=len(relevant.rules),
                depth=len(magic.rules),
                extra=f"full={len(full.rules)} relevant={len(relevant.rules)} magic={len(magic.rules)}",
            )
        )
    run_sweep(
        "Ablation / grounding: full vs relevant vs magic (size=relevant, depth=magic)",
        claimed_size="n^2",
        claimed_depth="n",  # magic grounding is O(m) = O(n) here
        rows=rows,
    )
    # The asymptotic separation: magic stays linear while relevant is
    # quadratic-ish and full is cubic-ish in n on these inputs.
    first_full, first_rel, first_magic = (len(g.rules) for g in groundings(SWEEP[0]))
    last_full, last_rel, last_magic = (len(g.rules) for g in groundings(SWEEP[-1]))
    scale = SWEEP[-1] / SWEEP[0]
    assert last_magic / max(first_magic, 1) <= 2.5 * scale
    assert last_full / max(first_full, 1) >= last_magic / max(first_magic, 1)
    benchmark(groundings, REPRESENTATIVE)


def test_ablation_join_engines(benchmark):
    """Indexed vs naive engine on identical relevant groundings.

    The ISSUE 2 acceptance bar: ≥ 2× fewer join probes at every sweep
    size, same ground rules either way (the deep equivalence is pinned
    by ``tests/datalog/test_grounding_engines.py``).
    """
    rows = []
    for n in SWEEP:
        db = ablation_db(n)
        naive_probes, naive_ground = count_join_probes(
            lambda: relevant_grounding(TC, db, engine="naive")
        )
        indexed_probes, indexed_ground = count_join_probes(
            lambda: relevant_grounding(TC, db, engine="indexed")
        )
        assert len(naive_ground.rules) == len(indexed_ground.rules)
        rows.append(
            dict(
                n=n,
                m=max(n, 4) + 1,
                size=naive_probes,
                depth=indexed_probes,
                extra=f"probe ratio={naive_probes / max(indexed_probes, 1):.1f}x",
            )
        )
    run_sweep(
        "Ablation / join engine: naive vs indexed probes (size=naive, depth=indexed)",
        claimed_size="n^2",
        claimed_depth="n^2",
        rows=rows,
    )
    for row in rows:
        assert row["size"] >= 2 * row["depth"], row

    # Magic-set chain program: the bound source makes every IDB join a
    # selective lookup, the indexed engine's best case.
    db = ablation_db(REPRESENTATIVE)
    magic = magic_specialize(TC, 0)
    naive_probes, _ = count_join_probes(
        lambda: relevant_grounding(magic, db, engine="naive")
    )
    indexed_probes, _ = count_join_probes(
        lambda: relevant_grounding(magic, db, engine="indexed")
    )
    assert naive_probes >= 2 * indexed_probes, (naive_probes, indexed_probes)

    benchmark(relevant_grounding, TC, db, engine="indexed")
