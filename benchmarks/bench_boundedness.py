"""Definition 4.1 / Proposition 5.5: boundedness probes.

Bounded vs unbounded chain programs separated two ways: the exact
CFG-finiteness decision and the empirical fixpoint-iteration profile
(flat vs growing) on word-path inputs.
"""

from conftest import run_sweep

from repro.boundedness import chain_program_boundedness, empirical_iteration_probe
from repro.datalog import Database, transitive_closure
from repro.grammars import rpq_program
from repro.workloads import path_graph

SIZES = (4, 8, 16, 32)


def finite_family(n: int) -> Database:
    edges = [(i, "a", i + 1) for i in range(n)] + [(i, "b", i + 1) for i in range(n)]
    return Database.from_labeled_edges(edges)


def probe_both():
    tc_report = empirical_iteration_probe(transitive_closure(), path_graph, SIZES)
    finite_program, _ = rpq_program("ab|ba")
    finite_report = empirical_iteration_probe(finite_program, finite_family, SIZES)
    return tc_report, finite_report


def test_boundedness_probes(benchmark):
    tc_decision = chain_program_boundedness(transitive_closure())
    finite_program, _ = rpq_program("ab|ba")
    finite_decision = chain_program_boundedness(finite_program)
    assert tc_decision.bounded is False
    assert finite_decision.bounded is True

    tc_report, finite_report = probe_both()
    rows = [
        dict(n=n, m=n, size=it, depth=0, extra="TC (unbounded)")
        for n, it in tc_report.evidence
    ]
    run_sweep(
        "Def 4.1 probe / TC: fixpoint iterations grow with input size",
        claimed_size="n",
        claimed_depth=None,
        rows=rows,
    )
    rows = [
        dict(n=n, m=2 * n, size=it, depth=0, extra="finite RPQ (bounded)")
        for n, it in finite_report.evidence
    ]
    report = run_sweep(
        "Def 4.1 probe / finite RPQ ab|ba: iterations flat",
        claimed_size="1",
        claimed_depth=None,
        rows=rows,
    )
    assert tc_report.bounded is False
    assert report.size_ok(), "bounded program's iteration count is not constant"
    benchmark(probe_both)
