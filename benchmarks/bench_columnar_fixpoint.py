"""Head-to-head: the id-space columnar fixpoint vs the tuple pipeline.

The ``strategy="columnar"`` engine (DESIGN.md §9) runs grounding *and*
fixpoint in id space -- slot-compiled joins into
``ColumnarGroundProgram`` parallel arrays, then the dense-array delta
loop -- where the PR-4 pipeline grounds in id space but decodes every
ground rule into ``Fact`` tuples and iterates the fixpoint over
``Fact``-keyed dicts.  The ISSUE 5 acceptance bar: **≥ 2× wall-clock**
end to end over that ``engine="columnar"`` + tuple-space semi-naive
pipeline, at representative scale, on both acceptance workloads:

* **Boolean Bellman–Ford**: TC reachability on random digraphs with
  ``m = 3n``;
* **Dyck-1**: bracket-language reachability on concatenated bracket
  paths (three rules, a two-IDB-body concatenation rule -- the
  non-linear case).

Every sweep point first cross-checks the two pipelines for exact
equality -- identical ``rule_keys()`` ground-rule sets, identical
fixpoint values, iterations and rule-evaluation counts -- so the bench
doubles as an equivalence test at sizes the unit suites don't reach.
Results append to ``BENCH_columnar_fixpoint.json`` via
``tools/bench_record.py``; CI runs the bench in smoke mode on every PR
and gates the trajectory with ``tools/bench_check.py`` (the recorded
``probe_ratio`` -- old probes over new probes on the seeded workload --
is the deterministic gate score; the wall-clock speedup rides along).

Smoke mode (``BENCH_SMOKE=1``, set by CI) shrinks the sweeps but keeps
the representative (largest) point and every assert.
"""

import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_record import append_record  # noqa: E402

from repro.datalog import (  # noqa: E402
    Database,
    FixpointEngine,
    columnar_grounding,
    count_join_probes,
    dyck1,
    relevant_grounding,
    seminaive_evaluation,
    transitive_closure,
)
from repro.semirings import BOOLEAN  # noqa: E402
from repro.workloads import dyck_concatenated_path, random_digraph  # noqa: E402

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
ROUNDS = 2 if SMOKE else 4  # best-of repetitions per timing

TC = transitive_closure()
DYCK = dyck1()

# Representative scale is where the acceptance bar is asserted: the
# fixed per-query overhead (interning, lowering, kernel compile) has
# amortized and both pipelines are join/fixpoint dominated.  Smoke
# keeps the largest point of each sweep for exactly that reason.
BF_SWEEP = (24, 96) if SMOKE else (24, 48, 96)
BF_REPRESENTATIVE = 96
DYCK_SWEEP = (16, 48) if SMOKE else (16, 32, 48)
DYCK_REPRESENTATIVE = 48

TRAJECTORY = REPO_ROOT / "BENCH_columnar_fixpoint.json"

COLUMNAR_ENGINE = FixpointEngine("columnar", "columnar")


def best_of(fn, rounds=ROUNDS):
    """Best wall-clock over *rounds* runs of *fn*; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def tuple_pipeline(program, database):
    """The PR-4 baseline: columnar-grounding into Fact tuples, then the
    tuple-space semi-naive fixpoint."""
    return seminaive_evaluation(program, database, BOOLEAN, grounding_engine="columnar")


def columnar_pipeline(program, database):
    """The id-space pipeline under test."""
    return COLUMNAR_ENGINE.evaluate(program, database, BOOLEAN)


def crosscheck(program, database):
    """Exact equality of the two pipelines on one workload instance."""
    ground = relevant_grounding(program, database, engine="columnar")
    cground = columnar_grounding(program, database)
    assert cground.rule_keys() == ground.rule_keys()
    old = tuple_pipeline(program, database)
    new = columnar_pipeline(program, database)
    assert old.converged and new.converged
    assert old.values == new.values
    assert old.iterations == new.iterations
    assert old.rule_evaluations == new.rule_evaluations


def head_to_head(program, database):
    """Probe counts and end-to-end wall clock for both pipelines."""
    crosscheck(program, database)
    old_probes, _ = count_join_probes(
        lambda: relevant_grounding(program, database, engine="columnar")
    )
    new_probes, _ = count_join_probes(lambda: columnar_grounding(program, database))
    old_seconds, _ = best_of(lambda: tuple_pipeline(program, database))
    new_seconds, _ = best_of(lambda: columnar_pipeline(program, database))
    return dict(
        probes_tuple=old_probes,
        probes_columnar=new_probes,
        probe_ratio=old_probes / max(new_probes, 1),
        seconds_tuple=old_seconds,
        seconds_columnar=new_seconds,
        speedup=old_seconds / max(new_seconds, 1e-9),
    )


def print_table(title, rows):
    print(f"\n== {title} ==")
    print(
        f"{'n':>6} {'tuple probes':>13} {'columnar':>9} {'tuple ms':>9} "
        f"{'columnar ms':>12} {'speedup':>8}"
    )
    for row in rows:
        print(
            f"{row['n']:>6} {row['probes_tuple']:>13} {row['probes_columnar']:>9} "
            f"{1e3 * row['seconds_tuple']:>9.1f} {1e3 * row['seconds_columnar']:>12.1f} "
            f"{row['speedup']:>7.2f}x"
        )


def sweep(workloads, program):
    rows = []
    for n, database in workloads:
        database.columnar_store()  # both pipelines share the warm snapshot
        row = head_to_head(program, database)
        row["n"] = n
        rows.append(row)
    return rows


def assert_and_record(bench, rows, representative_n):
    representative = next(row for row in rows if row["n"] == representative_n)
    # The acceptance bar: ≥ 2× end-to-end at representative scale.
    assert representative["speedup"] >= 2.0, representative
    # The slot-compiled join must never probe more candidate rows than
    # the dict-based columnar engine it replaces on the hot path.
    for row in rows:
        assert row["probes_columnar"] <= row["probes_tuple"], row
    record = append_record(
        TRAJECTORY,
        bench,
        {
            "smoke": SMOKE,
            "probe_ratio": representative["probe_ratio"],
            "speedup": representative["speedup"],
            "tuple_ms": 1e3 * representative["seconds_tuple"],
            "columnar_ms": 1e3 * representative["seconds_columnar"],
            "rows": rows,
        },
    )
    print(
        f"recorded {record['bench']}: speedup {record['speedup']:.2f}x "
        f"(probe ratio {record['probe_ratio']:.2f})"
    )


def test_columnar_fixpoint_bellman_ford(benchmark):
    workloads = [(n, random_digraph(n, 3 * n, seed=n)) for n in BF_SWEEP]
    rows = sweep(workloads, TC)
    print_table("id-space vs tuple fixpoint (Boolean Bellman–Ford)", rows)
    assert_and_record("columnar_fixpoint/bellman_ford", rows, BF_REPRESENTATIVE)

    database = random_digraph(
        BF_REPRESENTATIVE, 3 * BF_REPRESENTATIVE, seed=BF_REPRESENTATIVE
    )
    database.columnar_store()
    benchmark(columnar_pipeline, TC, database)


def test_columnar_fixpoint_dyck(benchmark):
    workloads = [
        (2 * pairs + 1, Database.from_labeled_edges(dyck_concatenated_path(pairs)))
        for pairs in DYCK_SWEEP
    ]
    rows = sweep(workloads, DYCK)
    print_table("id-space vs tuple fixpoint (Dyck-1)", rows)
    assert_and_record(
        "columnar_fixpoint/dyck", rows, 2 * DYCK_REPRESENTATIVE + 1
    )

    database = Database.from_labeled_edges(dyck_concatenated_path(DYCK_REPRESENTATIVE))
    database.columnar_store()
    benchmark(columnar_pipeline, DYCK, database)
