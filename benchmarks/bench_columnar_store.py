"""Head-to-head: the interned columnar store vs the tuple-based engines.

The ``engine="columnar"`` grounding backend (DESIGN.md §8) must ground
the identical program while probing far fewer candidate rows than the
naive reference engine and finishing faster on the wall clock than
both tuple-based engines.  Measured on the two Table-1 workloads the
repo benchmarks end to end:

* **Bellman–Ford**: TC over the tropical semiring on random digraphs
  with ``m = 3n`` -- the ISSUE's acceptance workload: the columnar
  engine must probe **≥ 2× fewer** rows than naive at every sweep
  size (``GROUNDING_STATS`` is the shared counter) and win the
  grounding wall clock.
* **CFG**: Dyck-1 reachability on concatenated bracket paths -- the
  non-linear case (two IDB atoms per recursive rule).

Every sweep point first cross-checks the engines for equality --
identical ground-rule sets and identical tropical/Boolean fixpoint
values -- so the bench doubles as an equivalence test at sizes the
unit suites don't reach.  Results are appended to
``BENCH_columnar_store.json`` via ``tools/bench_record.py``; CI runs
the bench in smoke mode on every PR and gates the trajectory with
``tools/bench_check.py``.

Smoke mode (``BENCH_SMOKE=1``, set by CI) shrinks the sweeps but
keeps every assert.
"""

import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_record import append_record  # noqa: E402

from repro.datalog import (  # noqa: E402
    Database,
    count_join_probes,
    dyck1,
    naive_evaluation,
    relevant_grounding,
    transitive_closure,
)
from repro.semirings import BOOLEAN, TROPICAL  # noqa: E402
from repro.workloads import dyck_concatenated_path, random_digraph, random_weights  # noqa: E402

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
ROUNDS = 2 if SMOKE else 4  # best-of repetitions per timing

TC = transitive_closure()
DYCK = dyck1()

BF_SWEEP = (8, 16, 24) if SMOKE else (8, 16, 24, 32, 48)
BF_REPRESENTATIVE = BF_SWEEP[-1]
# Smoke keeps the largest CFG point: the wall-clock assert needs the
# scale where the join dominates fixed overhead (~3 ms naive at
# pairs=8, vs ~0.2 ms at pairs=2 where only overhead is timed).
CFG_SWEEP = (2, 3, 8) if SMOKE else (2, 3, 4, 5, 8)

TRAJECTORY = REPO_ROOT / "BENCH_columnar_store.json"

ENGINES = ("naive", "indexed", "columnar")


def best_of(fn, rounds=ROUNDS):
    """Best wall-clock over *rounds* runs of *fn*; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def engine_head_to_head(program, database, semiring, weights=None):
    """Probe counts, grounding wall clock and cross-checked groundings
    for every engine on one workload instance."""
    probes = {}
    seconds = {}
    grounds = {}
    for engine in ENGINES:
        probe_count, _ = count_join_probes(
            lambda engine=engine: relevant_grounding(program, database, engine=engine)
        )
        probes[engine] = probe_count
        seconds[engine], grounds[engine] = best_of(
            lambda engine=engine: relevant_grounding(program, database, engine=engine)
        )
    reference = grounds["naive"].rule_keys()
    for engine in ENGINES:
        assert grounds[engine].rule_keys() == reference, engine

    # Fixpoint values must be engine-independent on the shared workload.
    baseline = naive_evaluation(
        program, database, semiring, weights=weights, ground=grounds["naive"]
    )
    columnar = naive_evaluation(
        program, database, semiring, weights=weights, ground=grounds["columnar"]
    )
    assert baseline.converged and columnar.converged
    for fact, value in baseline.values.items():
        assert semiring.eq(value, columnar.values[fact]), fact
    return probes, seconds


def print_table(title, rows):
    print(f"\n== {title} ==")
    print(
        f"{'n':>6} {'naive probes':>13} {'columnar':>9} {'ratio':>6} "
        f"{'naive ms':>9} {'indexed ms':>11} {'columnar ms':>12} {'speedup':>8}"
    )
    for row in rows:
        print(
            f"{row['n']:>6} {row['probes_naive']:>13} {row['probes_columnar']:>9} "
            f"{row['probe_ratio']:>6.2f} {1e3 * row['seconds_naive']:>9.1f} "
            f"{1e3 * row['seconds_indexed']:>11.1f} {1e3 * row['seconds_columnar']:>12.1f} "
            f"{row['wall_speedup']:>7.2f}x"
        )


def sweep_rows(workloads, program, semiring, weighted):
    rows = []
    for n, database in workloads:
        weights = random_weights(database, seed=n) if weighted else None
        probes, seconds = engine_head_to_head(program, database, semiring, weights)
        rows.append(
            dict(
                n=n,
                probes_naive=probes["naive"],
                probes_indexed=probes["indexed"],
                probes_columnar=probes["columnar"],
                probe_ratio=probes["naive"] / max(probes["columnar"], 1),
                seconds_naive=seconds["naive"],
                seconds_indexed=seconds["indexed"],
                seconds_columnar=seconds["columnar"],
                wall_speedup=seconds["naive"] / max(seconds["columnar"], 1e-9),
            )
        )
    return rows


def assert_and_record(bench, rows, representative_n):
    for row in rows:
        assert row["probe_ratio"] >= 2.0, row  # the ISSUE's acceptance bar
    # Wall clock: the columnar engine must beat the naive engine
    # outright at the representative (largest) scale, where the join
    # dominates the fixed interning/lowering overhead (the margin is
    # ~4x on Bellman-Ford, ~1.9x on CFG).  The assert is guarded by a
    # minimum naive duration so it genuinely times the join, never
    # scheduler noise on a sub-millisecond run.
    representative = next(row for row in rows if row["n"] == representative_n)
    if representative["seconds_naive"] >= 2e-3:
        assert representative["seconds_columnar"] < representative["seconds_naive"], representative
    else:  # pragma: no cover - sweep sizes are chosen to avoid this
        print(f"wall-clock assert skipped: naive took {representative['seconds_naive']:.4f}s")
    record = append_record(
        TRAJECTORY,
        bench,
        {
            "smoke": SMOKE,
            "speedup": representative["wall_speedup"],
            "probe_ratio": representative["probe_ratio"],
            "indexed_ms": 1e3 * representative["seconds_indexed"],
            "columnar_ms": 1e3 * representative["seconds_columnar"],
            "rows": rows,
        },
    )
    print(f"recorded {record['bench']}: speedup {record['speedup']:.2f}x")


def test_columnar_store_bellman_ford(benchmark):
    workloads = [(n, random_digraph(n, 3 * n, seed=n)) for n in BF_SWEEP]
    rows = sweep_rows(workloads, TC, TROPICAL, weighted=True)
    print_table("columnar vs tuple engines (Bellman–Ford, tropical TC)", rows)
    assert_and_record("columnar_store/bellman_ford", rows, BF_REPRESENTATIVE)

    database = random_digraph(BF_REPRESENTATIVE, 3 * BF_REPRESENTATIVE, seed=BF_REPRESENTATIVE)
    benchmark(relevant_grounding, TC, database, engine="columnar")


def test_columnar_store_cfg(benchmark):
    workloads = [
        (2 * pairs + 1, Database.from_labeled_edges(dyck_concatenated_path(pairs)))
        for pairs in CFG_SWEEP
    ]
    rows = sweep_rows(workloads, DYCK, BOOLEAN, weighted=False)
    print_table("columnar vs tuple engines (Dyck-1 CFG, Boolean)", rows)
    assert_and_record("columnar_store/cfg_dyck", rows, 2 * CFG_SWEEP[-1] + 1)

    database = Database.from_labeled_edges(dyck_concatenated_path(CFG_SWEEP[-1]))
    benchmark(relevant_grounding, DYCK, database, engine="columnar")
