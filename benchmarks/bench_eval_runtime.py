"""Head-to-head: the compiled evaluation runtime vs the seed interpreter.

The paper's serving story ("build the circuit once, answer many
valuation queries") lives or dies on evaluation throughput, so this
bench measures the three runtime paths of DESIGN.md §7 against the
seed interpreter (kept verbatim as ``reference_evaluate_all`` /
``reference_evaluate_boolean``) on the two Table-1 workloads the
ISSUE names:

* **compiled single-assignment TROPICAL** -- fused-kernel evaluation
  must be **≥ 3×** the interpreter on the Bellman–Ford circuit;
* **64-wide bitset-parallel Boolean batches** -- packing 64
  assignments into one ``|``/``&`` pass must give **≥ 10×**
  throughput over 64 interpreter passes;
* **incremental dirty-cone re-evaluation** -- a one-weight delta must
  touch a strict subset of the circuit (correctness asserted exactly;
  the cone/size ratio is reported).

Every timed path is first cross-checked for *exact equality* against
the seed interpreter, so the bench doubles as an equivalence test at
benchmark scale.  Results are appended to ``BENCH_eval_runtime.json``
(via ``tools/bench_record.py``) so future PRs can track the perf
trajectory; CI uploads the file as an artifact.

Smoke mode (``BENCH_SMOKE=1``, set by CI) shrinks the repetition
counts but keeps every assert.
"""

import os
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_record import append_record  # noqa: E402

from repro.analysis import PerfReport  # noqa: E402
from repro.circuits import (  # noqa: E402
    IncrementalEvaluator,
    compile_circuit,
    reference_evaluate_all,
    reference_evaluate_boolean,
)
from repro.constructions import bellman_ford_circuit, generic_circuit  # noqa: E402
from repro.datalog import Database, Fact, dyck1  # noqa: E402
from repro.semirings import TROPICAL  # noqa: E402
from repro.workloads import dyck_concatenated_path, random_digraph, random_weights  # noqa: E402

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
ROUNDS = 3 if SMOKE else 5  # timing repetitions; best-of guards against scheduler noise
SINGLE_REPS = 30 if SMOKE else 100
BOOL_ROUNDS = 2 if SMOKE else 8
WORD = 64

TRAJECTORY = REPO_ROOT / "BENCH_eval_runtime.json"

BF_N = 24
CFG_PAIRS = 16 if SMOKE else 24  # size ~1.3k / ~4.4k gates


def bellman_ford_workload():
    db = random_digraph(BF_N, 3 * BF_N, seed=0)
    weights = random_weights(db, seed=0)
    circuit = bellman_ford_circuit(db, 0, BF_N - 1)
    return db, weights, circuit


def cfg_workload():
    db = Database.from_labeled_edges(dyck_concatenated_path(CFG_PAIRS))
    circuit = generic_circuit(dyck1(), db, Fact("S", (0, 2 * CFG_PAIRS)))
    weights = {fact: 1.0 for fact in db.facts()}
    return db, weights, circuit


def best_of(fn, rounds=ROUNDS):
    """Best wall-clock total over *rounds* runs of *fn*."""
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def random_true_sets(circuit, count, seed=0, density=0.5):
    rng = random.Random(seed)
    variables = circuit.variables()
    return [
        [var for var in variables if rng.random() < density] for _ in range(count)
    ]


def test_eval_runtime_tropical_single(benchmark):
    """Compiled single-assignment TROPICAL ≥ 3× the seed interpreter."""
    report = PerfReport("compiled vs interpreter (single TROPICAL assignment)")
    recorded = {}
    for name, (db, weights, circuit) in (
        ("bellman-ford", bellman_ford_workload()),
        ("cfg-dyck", cfg_workload()),
    ):
        compiled = compile_circuit(circuit)
        out = circuit.outputs[0]
        # Exact-equality cross-check against the seed loop (full value
        # array AND the output query), then warm the kernels so the
        # one-time compile is amortized (the whole point of the
        # runtime).
        reference_values = reference_evaluate_all(circuit, TROPICAL, weights)
        assert compiled.evaluate_all(TROPICAL, weights) == reference_values
        assert compiled.evaluate(TROPICAL, weights) == reference_values[out]
        interp = best_of(
            lambda: [reference_evaluate_all(circuit, TROPICAL, weights)[out] for _ in range(SINGLE_REPS)]
        )
        fast = best_of(
            lambda: [compiled.evaluate(TROPICAL, weights) for _ in range(SINGLE_REPS)]
        )
        report.add(f"interpreter/{name}", interp, SINGLE_REPS, extra=f"size={circuit.size}")
        report.add(f"compiled/{name}", fast, SINGLE_REPS, extra=f"size={circuit.size}")
        recorded[name] = {
            "size": circuit.size,
            "interpreter_us": 1e6 * interp / SINGLE_REPS,
            "compiled_us": 1e6 * fast / SINGLE_REPS,
            "speedup": interp / fast,
        }
    report.print()
    bf = recorded["bellman-ford"]
    assert bf["speedup"] >= 3.0, (
        f"compiled TROPICAL evaluation is only {bf['speedup']:.2f}x the seed "
        f"interpreter on Bellman-Ford (need >= 3x)"
    )
    assert recorded["cfg-dyck"]["speedup"] >= 2.0, recorded["cfg-dyck"]
    append_record(
        TRAJECTORY,
        "eval_runtime/tropical_single",
        {"smoke": SMOKE, "workloads": recorded, "rows": report.as_records()},
    )
    _db, weights, circuit = bellman_ford_workload()
    compiled = compile_circuit(circuit)
    benchmark(compiled.evaluate, TROPICAL, weights)


def test_eval_runtime_boolean_batch(benchmark):
    """64-wide bitset batches ≥ 10× one-at-a-time interpreter passes."""
    _db, _weights, circuit = bellman_ford_workload()
    compiled = compile_circuit(circuit)
    batches = random_true_sets(circuit, WORD, seed=1)
    expected = [reference_evaluate_boolean(circuit, trues) for trues in batches]
    got = compiled.evaluate_boolean_batch(batches, word_size=WORD)
    assert got == expected  # exact equality, all 64 lanes

    interp = best_of(
        lambda: [
            [reference_evaluate_boolean(circuit, trues) for trues in batches]
            for _ in range(BOOL_ROUNDS)
        ]
    )
    batched = best_of(
        lambda: [
            compiled.evaluate_boolean_batch(batches, word_size=WORD)
            for _ in range(BOOL_ROUNDS)
        ]
    )
    evaluations = WORD * BOOL_ROUNDS
    report = PerfReport("bitset-parallel Boolean batches (64 lanes/pass)")
    report.add("interpreter/bellman-ford", interp, evaluations, extra=f"size={circuit.size}")
    report.add("bitset-batch/bellman-ford", batched, evaluations, extra=f"{WORD} lanes")
    report.print()
    speedup = interp / batched
    assert speedup >= 10.0, (
        f"bitset-parallel Boolean batching is only {speedup:.2f}x the seed "
        f"interpreter on Bellman-Ford (need >= 10x)"
    )
    append_record(
        TRAJECTORY,
        "eval_runtime/boolean_batch",
        {
            "smoke": SMOKE,
            "size": circuit.size,
            "word_size": WORD,
            "speedup": speedup,
            "rows": report.as_records(),
        },
    )
    benchmark(compiled.evaluate_boolean_batch, batches)


def test_eval_runtime_incremental(benchmark):
    """Dirty-cone updates agree exactly with full re-evaluation."""
    db, weights, circuit = bellman_ford_workload()
    compiled = compile_circuit(circuit)
    evaluator = IncrementalEvaluator(compiled, TROPICAL, weights)
    rng = random.Random(2)
    facts = sorted(db.facts(), key=repr)
    current = dict(weights)
    cones = []
    deltas = 40 if SMOKE else 200
    for _ in range(deltas):
        fact = rng.choice(facts)
        current[fact] = float(rng.randrange(1, 10))
        incremental = evaluator.update({fact: current[fact]})
        cones.append(evaluator.last_cone_size)
        full = compiled.evaluate_all(TROPICAL, current)
        assert incremental == [full[out] for out in compiled.outputs]
    assert evaluator.values == compiled.evaluate_all(TROPICAL, current)
    mean_cone = sum(cones) / len(cones)
    assert max(cones) <= circuit.size
    assert mean_cone < circuit.size, "dirty cone should not cover the whole circuit"
    print(
        f"\n== incremental: mean dirty cone {mean_cone:.0f} of {circuit.size} nodes "
        f"({100 * mean_cone / circuit.size:.1f}%), max {max(cones)} =="
    )
    append_record(
        TRAJECTORY,
        "eval_runtime/incremental",
        {
            "smoke": SMOKE,
            "size": circuit.size,
            "deltas": deltas,
            "mean_cone": mean_cone,
            "max_cone": max(cones),
        },
    )
    fact = facts[0]
    benchmark(evaluator.update, {fact: 3.0})
