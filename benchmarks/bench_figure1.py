"""Figure 1: the worked TC example, regenerated end to end.

Rebuilds the paper's 7-edge EDB, enumerates the proof trees of
``T(s, t)`` (there are exactly three), prints the provenance
polynomial of Section 2.4 and times the full pipeline.
"""

from repro.circuits import canonical_polynomial
from repro.constructions import generic_circuit
from repro.datalog import (
    Database,
    Fact,
    count_tight_proof_trees,
    provenance_by_proof_trees,
    relevant_grounding,
    transitive_closure,
)

EDGES = [
    ("s", "u1"), ("s", "u2"),
    ("u1", "v1"), ("u1", "v2"), ("u2", "v2"),
    ("v1", "t"), ("v2", "t"),
]


def pipeline():
    db = Database.from_edges(EDGES)
    tc = transitive_closure()
    fact = Fact("T", ("s", "t"))
    ground = relevant_grounding(tc, db)
    trees = count_tight_proof_trees(ground, fact)
    poly = provenance_by_proof_trees(tc, db, fact, ground=ground)
    circuit_poly = canonical_polynomial(generic_circuit(tc, db, fact, ground=ground))
    return trees, poly, circuit_poly


def test_figure1(benchmark):
    trees, poly, circuit_poly = pipeline()
    print("\n== Figure 1: EDB E, proof trees and provenance of T(s,t) ==")
    print(f"tight proof trees : {trees}   (paper: 3, one drawn in Fig. 1c)")
    print(f"provenance p(T(s,t)) = {poly}")
    assert trees == 3
    assert len(poly) == 3
    assert poly == circuit_poly
    expected_monomials = {
        frozenset({Fact("E", ("s", "u1")), Fact("E", ("u1", "v1")), Fact("E", ("v1", "t"))}),
        frozenset({Fact("E", ("s", "u1")), Fact("E", ("u1", "v2")), Fact("E", ("v2", "t"))}),
        frozenset({Fact("E", ("s", "u2")), Fact("E", ("u2", "v2")), Fact("E", ("v2", "t"))}),
    }
    assert {m.support for m in poly.monomials} == expected_monomials
    benchmark(pipeline)
