"""Theorem 3.2 + Proposition 3.3: the formula ⟷ circuit-depth bridge.

Measures, on growing balanced-friendly circuits: (a) the expansion's
depth preservation (Prop 3.3) and (b) the balanced formula's
O(log size) depth (Thm 3.2), with equivalence verified by canonical
polynomials on the smaller sizes.
"""


from conftest import run_sweep

from repro.circuits import (
    balance_formula,
    canonical_polynomial,
    circuit_to_formula,
    formula_depth_bound,
)
from repro.constructions import finite_rpq_circuit
from repro.grammars import parse_regex


DFA = parse_regex("abc").to_dfa()
SWEEP = (16, 32, 64, 128)
REPRESENTATIVE = 64


def witness_rich_graph(num_edges: int):
    k = max(num_edges // 3, 2)
    edges = []
    for i in range(k):
        edges.append(("s", "a", ("u", i)))
        edges.append((("u", i), "b", ("v", i)))
        edges.append((("v", i), "c", "t"))
    return edges


def build_formula(num_edges: int):
    circuit = finite_rpq_circuit(witness_rich_graph(num_edges), DFA, "s", "t")
    formula = circuit_to_formula(circuit)
    return circuit, formula, balance_formula(formula)


def test_formula_transfer(benchmark):
    rows = []
    for m in SWEEP:
        circuit, formula, balanced = build_formula(m)
        assert formula.depth == circuit.depth  # Prop 3.3: depth preserved
        assert balanced.depth <= formula_depth_bound(formula.size)  # Thm 3.2
        if m <= 32:
            assert canonical_polynomial(balanced) == canonical_polynomial(circuit)
        rows.append(
            dict(
                n=m,
                m=m,
                size=formula.size,
                depth=balanced.depth,
                extra=f"circuit depth={circuit.depth} bound={formula_depth_bound(formula.size)}",
            )
        )
    report = run_sweep(
        "Thm 3.2 + Prop 3.3: balanced formula depth O(log size)",
        claimed_size=None,
        claimed_depth="log n",
        rows=rows,
        scale="m",
    )
    assert report.depth_ok()
    benchmark(lambda: build_formula(REPRESENTATIVE)[2])
