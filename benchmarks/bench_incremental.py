"""Differential maintenance vs recompute-from-scratch on a fact stream.

The :class:`~repro.datalog.incremental.MaintainedFixpoint` (DESIGN.md
§11) keeps the columnar ground program and its fixpoint values live
across single-fact inserts, retracts and reweights: an insert pays a
delta-join regrounding plus a monotone ascent over the touched cone, a
retract pays DRed-style overdelete/rederive plus a restricted
recompute of the dirty cone.  The baseline is what every prior PR did
on a database mutation -- throw the grounding and fixpoint away and
recompute from scratch with the fastest batch pipeline
(``engine="columnar"``, ``strategy="columnar"``).

Workload: the sliding-window streaming graph of
:func:`repro.workloads.sliding_window_stream` -- a pinned backbone
path ``0 → ... → n-1`` plus a FIFO window of 2n random edges with
integer tropical weights, churned by inserts/expiries/reweights.  The
query is shortest-path TC, read as ``T(0, n-1)`` after every event.

The ISSUE 7 acceptance bar: **≥ 5× wall-clock** over per-event
recompute at representative scale.  Every sweep point doubles as a
stream-vs-recompute equivalence test: the per-event output values must
match exactly (integer weights make tropical arithmetic exact), and at
end of stream the maintained ground-rule set and full value map must
equal a from-scratch grounding and solve of the final database.

Results append to ``BENCH_incremental.json`` via
``tools/bench_record.py``; ``tools/bench_check.py`` gates the recorded
``speedup`` trajectory.  Smoke mode (``BENCH_SMOKE=1``, set by CI)
keeps the representative scale and every assert but shortens the
stream.
"""

import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_record import append_record  # noqa: E402

from repro.datalog import (  # noqa: E402
    Fact,
    FixpointEngine,
    MaintainedFixpoint,
    columnar_grounding,
    transitive_closure,
)
from repro.semirings import TROPICAL  # noqa: E402
from repro.workloads import apply_event, sliding_window_stream  # noqa: E402

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

TC = transitive_closure()
ENGINE = FixpointEngine("columnar", "columnar")

# Representative scale: recompute cost grows with the whole problem
# (every event pays a full ground + fixpoint over ~3n live edges)
# while maintenance pays only the touched cone, so the gap widens with
# n -- the bar is asserted where both costs are join/fixpoint
# dominated.  Smoke keeps the representative n and shortens the stream.
SWEEP = (96,) if SMOKE else (48, 96)
REPRESENTATIVE = 96
NUM_EVENTS = 60 if SMOKE else 200
SEED = 7

TRAJECTORY = REPO_ROOT / "BENCH_incremental.json"


def stream_workload(n):
    database, events = sliding_window_stream(n, window=2 * n, num_events=NUM_EVENTS, seed=SEED)
    return database, events, Fact("T", (0, n - 1))


def run_maintained(database, events, output):
    """Maintained pass: apply each event, read the output value O(1)."""
    db = database.copy()
    fixpoint = MaintainedFixpoint(TC, db, semirings=(TROPICAL,))
    values = []
    for event in events:
        apply_event(db, event)
        values.append(fixpoint.value(output, TROPICAL))
    return fixpoint, db, values


def run_recompute(database, events, output):
    """Baseline pass: apply each event, recompute the fixpoint from scratch."""
    db = database.copy()
    values = []
    for event in events:
        apply_event(db, event)
        values.append(ENGINE.evaluate(TC, db, TROPICAL).value(output))
    return db, values


def head_to_head(n):
    database, events, output = stream_workload(n)
    start = time.perf_counter()
    fixpoint, maintained_db, maintained = run_maintained(database, events, output)
    maintained_seconds = time.perf_counter() - start
    start = time.perf_counter()
    recompute_db, recomputed = run_recompute(database, events, output)
    recompute_seconds = time.perf_counter() - start

    # Stream-vs-recompute equivalence: every event's output value, then
    # the full end-of-stream state (ground-rule set and value map).
    assert maintained == recomputed, n
    final = ENGINE.evaluate(TC, recompute_db, TROPICAL)
    assert fixpoint.values(TROPICAL) == final.values, n
    assert fixpoint.rule_keys() == columnar_grounding(TC, recompute_db).rule_keys(), n

    return dict(
        n=n,
        events=len(events),
        seconds_maintained=maintained_seconds,
        seconds_recompute=recompute_seconds,
        event_ms_maintained=1e3 * maintained_seconds / len(events),
        event_ms_recompute=1e3 * recompute_seconds / len(events),
        speedup=recompute_seconds / max(maintained_seconds, 1e-9),
    )


def print_table(rows):
    print("\n== differential maintenance vs per-event recompute (tropical TC) ==")
    print(
        f"{'n':>6} {'events':>7} {'maint ms/ev':>12} {'recomp ms/ev':>13} {'speedup':>8}"
    )
    for row in rows:
        print(
            f"{row['n']:>6} {row['events']:>7} {row['event_ms_maintained']:>12.2f} "
            f"{row['event_ms_recompute']:>13.2f} {row['speedup']:>7.2f}x"
        )


def test_incremental_streaming_tc(benchmark):
    rows = [head_to_head(n) for n in SWEEP]
    print_table(rows)
    representative = next(row for row in rows if row["n"] == REPRESENTATIVE)
    # The acceptance bar: ≥ 5× over per-event recompute at scale.
    assert representative["speedup"] >= 5.0, representative
    record = append_record(
        TRAJECTORY,
        "incremental/streaming_tc",
        {
            "smoke": SMOKE,
            "speedup": representative["speedup"],
            "maintained_ms": 1e3 * representative["seconds_maintained"],
            "recompute_ms": 1e3 * representative["seconds_recompute"],
            "events": representative["events"],
            "rows": rows,
        },
    )
    print(f"recorded {record['bench']}: speedup {record['speedup']:.2f}x")

    database, events, output = stream_workload(REPRESENTATIVE)
    short = events[: min(20, len(events))]
    benchmark(run_maintained, database, short, output)
