"""Head-to-head: semi-naive vs naive fixpoint evaluation.

The semi-naive engine (``repro.datalog.seminaive``) must compute the
identical fixpoint while re-evaluating only rules whose body changed.
This bench measures the *rule evaluation* count -- the cost metric the
two strategies differ on -- for both workloads the paper's Table 1
exercises end-to-end:

* Bellman–Ford: TC over the tropical semiring on random digraphs with
  ``m = 3n`` (shortest-path provenance), the ISSUE's acceptance
  workload: semi-naive must do **≥ 2× fewer** rule evaluations.
* CFG: Dyck-1 reachability on concatenated bracket paths (Boolean).

The shared grounding each head-to-head runs on is itself measured:
``_ground_probe_ratio`` computes the same relevant grounding with the
naive and the indexed join engine (DESIGN.md §5) and reports the
join-probe ratio on the instrumented ``GROUNDING_STATS`` counter --
the indexed engine must probe **≥ 2× fewer** rows at every sweep size.

Both tests also re-assert value equality at every scale, so the bench
doubles as an equivalence test at sizes the unit tests don't reach.
"""

from repro.datalog import (
    Database,
    count_join_probes,
    dyck1,
    naive_evaluation,
    relevant_grounding,
    transitive_closure,
)
from repro.semirings import BOOLEAN, TROPICAL
from repro.workloads import dyck_concatenated_path, random_digraph, random_weights

TC = transitive_closure()
DYCK = dyck1()

BF_SWEEP = (8, 16, 24, 32, 48)
BF_REPRESENTATIVE = 32
CFG_SWEEP = (2, 3, 4, 5)


def _head_to_head(program, database, semiring, weights=None, ground=None):
    """Run both strategies on one shared grounding; return the results."""
    if ground is None:
        ground = relevant_grounding(program, database)
    naive = naive_evaluation(
        program, database, semiring, weights=weights, ground=ground, strategy="naive"
    )
    semi = naive_evaluation(
        program, database, semiring, weights=weights, ground=ground, strategy="seminaive"
    )
    assert naive.converged and semi.converged
    assert naive.iterations == semi.iterations
    for fact, value in naive.values.items():
        assert semiring.eq(value, semi.values[fact]), fact
    return naive, semi


def _ground_probe_ratio(program, database):
    """(naive probes, indexed probes, indexed grounding) for the same
    relevant grounding; the grounding is returned for reuse so each
    sweep point grounds once per engine, not three times."""
    naive_probes, _ = count_join_probes(
        lambda: relevant_grounding(program, database, engine="naive")
    )
    indexed_probes, ground = count_join_probes(
        lambda: relevant_grounding(program, database, engine="indexed")
    )
    return naive_probes, indexed_probes, ground


def _print_table(title, rows):
    print(f"\n== {title} ==")
    print(
        f"{'n':>6} {'iters':>6} {'naive evals':>12} {'semi evals':>11} {'ratio':>6}"
        f" {'probe ratio':>12}"
    )
    for row in rows:
        print(
            f"{row['n']:>6} {row['iters']:>6} {row['naive']:>12} "
            f"{row['semi']:>11} {row['ratio']:>6.2f} {row['probe_ratio']:>11.2f}x"
        )


def test_seminaive_vs_naive_bellman_ford(benchmark):
    rows = []
    for n in BF_SWEEP:
        database = random_digraph(n, 3 * n, seed=n)
        weights = random_weights(database, seed=n)
        ground_naive, ground_indexed, ground = _ground_probe_ratio(TC, database)
        naive, semi = _head_to_head(TC, database, TROPICAL, weights, ground=ground)
        rows.append(
            dict(
                n=n,
                iters=naive.iterations,
                naive=naive.rule_evaluations,
                semi=semi.rule_evaluations,
                ratio=naive.rule_evaluations / max(semi.rule_evaluations, 1),
                probe_ratio=ground_naive / max(ground_indexed, 1),
            )
        )
    _print_table("semi-naive vs naive (Bellman–Ford, tropical TC)", rows)
    for row in rows:
        assert row["ratio"] > 1.0, row
        assert row["probe_ratio"] >= 2.0, row
    representative = next(row for row in rows if row["n"] == BF_REPRESENTATIVE)
    assert representative["ratio"] >= 2.0, representative

    database = random_digraph(BF_REPRESENTATIVE, 3 * BF_REPRESENTATIVE, seed=BF_REPRESENTATIVE)
    weights = random_weights(database, seed=BF_REPRESENTATIVE)
    ground = relevant_grounding(TC, database)
    benchmark(
        naive_evaluation,
        TC,
        database,
        TROPICAL,
        weights=weights,
        ground=ground,
        strategy="seminaive",
    )


def test_seminaive_vs_naive_cfg(benchmark):
    rows = []
    for pairs in CFG_SWEEP:
        database = Database.from_labeled_edges(dyck_concatenated_path(pairs))
        ground_naive, ground_indexed, ground = _ground_probe_ratio(DYCK, database)
        naive, semi = _head_to_head(DYCK, database, BOOLEAN, ground=ground)
        rows.append(
            dict(
                n=2 * pairs + 1,
                iters=naive.iterations,
                naive=naive.rule_evaluations,
                semi=semi.rule_evaluations,
                ratio=naive.rule_evaluations / max(semi.rule_evaluations, 1),
                probe_ratio=ground_naive / max(ground_indexed, 1),
            )
        )
    _print_table("semi-naive vs naive (Dyck-1 CFG, Boolean)", rows)
    for row in rows:
        assert row["ratio"] > 1.0, row
        assert row["probe_ratio"] >= 2.0, row

    database = Database.from_labeled_edges(dyck_concatenated_path(CFG_SWEEP[-1]))
    ground = relevant_grounding(DYCK, database)
    benchmark(
        naive_evaluation, DYCK, database, BOOLEAN, ground=ground, strategy="seminaive"
    )
