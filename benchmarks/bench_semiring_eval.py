"""Cross-semiring evaluation + the array-backed representation ablation.

(a) Correctness at benchmark scale: the Bellman–Ford circuit evaluated
under Tropical/Viterbi/Boolean valuations equals naive Datalog
evaluation (the "over any absorptive semiring" claims, measured).

(b) Ablation (DESIGN.md §6): linear-time array evaluation vs a naive
recursive object-graph walk over the same DAG -- the design choice
that makes circuit-size benchmarks feasible in Python.  The compiled
runtime (DESIGN.md §7) rides along as the third rung of the ladder:
recursion ≪ array interpreter ≤ compiled kernel, all three computing
the identical value (the dedicated head-to-head with speedup asserts
is ``bench_eval_runtime.py``).
"""

import sys
import time


from repro.circuits import compile_circuit, evaluate, reference_evaluate_all
from repro.constructions import bellman_ford_circuit
from repro.datalog import Fact, naive_evaluation, transitive_closure
from repro.semirings import BOOLEAN, TROPICAL, VITERBI
from repro.workloads import random_digraph, random_weights

TC = transitive_closure()
N = 24


def setup():
    db = random_digraph(N, 3 * N, seed=0)
    weights = random_weights(db, seed=0)
    circuit = bellman_ford_circuit(db, 0, N - 1)
    return db, weights, circuit


def naive_recursive_evaluate(circuit, semiring, assignment):
    """Ablation baseline: memo-free recursion over the DAG (exponential
    in shared structure; capped by recursion/step budget)."""
    sys.setrecursionlimit(100_000)
    steps = [0]
    budget = 3_000_000

    def walk(node):
        steps[0] += 1
        if steps[0] > budget:
            raise TimeoutError("naive evaluation exceeded its step budget")
        op = circuit.ops[node]
        if op == 0:
            return assignment[circuit.labels[node]]
        if op == 1:
            return semiring.zero
        if op == 2:
            return semiring.one
        left = walk(circuit.lhs[node])
        right = walk(circuit.rhs[node])
        return semiring.add(left, right) if op == 3 else semiring.mul(left, right)

    return walk(circuit.outputs[0]), steps[0]


def test_semiring_eval_correctness(benchmark):
    db, weights, circuit = setup()
    fact = Fact("T", (0, N - 1))
    for semiring, valuation in [
        (TROPICAL, weights),
        (VITERBI, {f: 0.9 for f in db.facts()}),
        (BOOLEAN, {f: True for f in db.facts()}),
    ]:
        # Both engine strategies must agree with the circuit (and hence
        # with each other) -- the benchmark-scale face of the
        # naive/semi-naive equivalence tests.
        for strategy in ("naive", "seminaive"):
            expected = naive_evaluation(
                TC, db, semiring, weights=valuation, strategy=strategy
            ).value(fact)
            got = evaluate(circuit, semiring, valuation)
            assert semiring.eq(got, expected), (semiring.name, strategy)
    benchmark(evaluate, circuit, TROPICAL, weights)


def test_semiring_eval_ablation_array_vs_recursion(benchmark):
    db, weights, circuit = setup()
    array_value = reference_evaluate_all(circuit, TROPICAL, weights)[circuit.outputs[0]]
    # The compiled runtime must reproduce the interpreter exactly; time
    # both one-assignment paths for the §6/§7 ladder report.
    compiled = compile_circuit(circuit)
    assert compiled.evaluate(TROPICAL, weights) == array_value
    reps = 50
    start = time.perf_counter()
    for _ in range(reps):
        reference_evaluate_all(circuit, TROPICAL, weights)
    interp_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(reps):
        compiled.evaluate(TROPICAL, weights)
    compiled_s = time.perf_counter() - start
    print(
        f"\n== ladder: interpreter {1e6 * interp_s / reps:.0f}µs/eval vs compiled "
        f"{1e6 * compiled_s / reps:.0f}µs/eval ({interp_s / compiled_s:.1f}x) =="
    )
    try:
        recursive_value, steps = naive_recursive_evaluate(circuit, TROPICAL, weights)
        assert TROPICAL.eq(array_value, recursive_value)
        blow_up = steps / circuit.size
        print(
            f"\n== ablation: array pass touches {circuit.size} nodes; naive "
            f"recursion touches {steps} ({blow_up:.1f}× blow-up from sharing) =="
        )
        assert steps >= circuit.size
    except (TimeoutError, RecursionError):
        print("\n== ablation: naive recursion exceeded its budget (shared "
              "structure is exponential); array evaluation is mandatory ==")
    benchmark(evaluate, circuit, TROPICAL, weights)
