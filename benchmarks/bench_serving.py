"""Load test for the CircuitServer serving layer (DESIGN.md §10).

An in-process :class:`repro.serving.CircuitServer` is saturated by a
fleet of persistent-connection clients firing Boolean point queries at
one registered transitive-closure circuit.  The bench records the
serving headlines into ``BENCH_serving.json``:

* ``requests_per_sec`` -- end-to-end throughput through the full
  stack (HTTP framing, routing, lane coalescing, bitset kernel), the
  trajectory's gated score;
* ``p50_ms`` / ``p99_ms`` -- per-request latency quantiles, including
  the micro-batching wait;
* ``lane_fill`` -- the fraction of 64-wide bitset lane slots actually
  carrying queries; the acceptance bar requires > 0.5 at saturation
  (the whole point of coalescing), and ``tools/bench_check.py`` gates
  it alongside throughput.

Every server answer is cross-checked against direct in-process
``evaluate_boolean_batch``/``evaluate`` calls on the same compiled
circuit, so the bench doubles as an end-to-end equivalence test under
concurrency.  Smoke mode (``BENCH_SMOKE=1``, set by CI) shrinks the
fleet and the per-worker query count but keeps saturation (more
workers than lane width) and every assert.

A second, smaller pass (``test_serving_resilience_under_faults``)
re-runs the load with a seeded :class:`repro.testing.FaultInjector`
armed and a deliberately tight admission limit, recording shed-rate
and p99-under-fault into the same trajectory as a telemetry-only
record (``serving/boolean_tc_faulted``): it carries none of the gated
score keys, so ``tools/bench_check.py`` skips it while the clean-run
``serving/boolean_tc`` scores stay gated.
"""

import asyncio
import os
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_record import append_record  # noqa: E402

from repro.api import Session  # noqa: E402
from repro.datalog import transitive_closure  # noqa: E402
from repro.semirings import TROPICAL  # noqa: E402
from repro.serving import (  # noqa: E402
    CircuitClient,
    CircuitServer,
    ResilienceConfig,
    RetryPolicy,
    ServerError,
)
from repro.testing import (  # noqa: E402
    FLUSH_RAISE,
    PARTIAL_WRITE,
    SOCKET_RESET,
    FaultInjector,
)
from repro.workloads import random_digraph  # noqa: E402

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

#: Fleet sizing: saturation means decisively more concurrent workers
#: than the 64-slot lane, so full-lane flushes dominate timer flushes.
WORKERS = 80 if SMOKE else 96
QUERIES_PER_WORKER = 15 if SMOKE else 40

GRAPH_N = 48
GRAPH_SEED = 7

#: The faulted pass runs a smaller fleet -- it measures resilience
#: telemetry (shed-rate, tail latency under faults), not throughput.
FAULT_WORKERS = 16 if SMOKE else 24
FAULT_QUERIES_PER_WORKER = 6 if SMOKE else 12
FAULT_SEED = int(os.environ.get("BENCH_FAULT_SEED", "7"))

TRAJECTORY = REPO_ROOT / "BENCH_serving.json"

TC = transitive_closure()


def build_workload():
    """The served instance: TC reachability on a random digraph."""
    database = random_digraph(GRAPH_N, 3 * GRAPH_N, seed=GRAPH_SEED)
    edges = sorted(database.facts(), key=repr)
    rng = random.Random(GRAPH_SEED)
    # An output pair that is reachable under the full edge set, so
    # random sub-assignments split both ways.
    session = Session(TC, database)
    reachable = sorted(session.solve().values, key=repr)
    output = reachable[len(reachable) // 2]
    # Pre-generated query mix: each query asserts a random ~half of the
    # edge set true.  Deterministic, so the direct crosscheck replays it.
    queries = [
        frozenset(fact for fact in edges if rng.random() < 0.5)
        for _ in range(WORKERS * QUERIES_PER_WORKER)
    ]
    return database, edges, output, queries


async def run_load(database, output, queries):
    """Saturate one server; returns (metrics, answers-in-query-order)."""
    program_text = "\n".join(repr(rule) + "." for rule in TC.rules)
    per_worker = [
        queries[w * QUERIES_PER_WORKER : (w + 1) * QUERIES_PER_WORKER]
        for w in range(WORKERS)
    ]
    answers = [[None] * QUERIES_PER_WORKER for _ in range(WORKERS)]
    latencies = []

    async with CircuitServer() as (host, port):
        setup = CircuitClient(host, port)
        reg = await setup.register(
            program_text, sorted(database.facts(), key=repr), output, target=TC.target
        )
        assert reg["cached"] is False
        key = reg["key"]

        workers = [CircuitClient(host, port) for _ in range(WORKERS)]
        for worker in workers:
            await worker.connect()

        async def drive(index, client):
            for q, true_facts in enumerate(per_worker[index]):
                start = time.perf_counter()
                answers[index][q] = await client.boolean(key, true_facts)
                latencies.append(time.perf_counter() - start)

        wall_start = time.perf_counter()
        await asyncio.gather(*[drive(i, w) for i, w in enumerate(workers)])
        wall = time.perf_counter() - wall_start

        stats = await setup.stats()
        for client in workers + [setup]:
            await client.close()

    total = WORKERS * QUERIES_PER_WORKER
    latencies.sort()
    lanes = stats["boolean_lanes"]
    metrics = {
        "requests": total,
        "workers": WORKERS,
        "wall_seconds": wall,
        "requests_per_sec": total / wall,
        "p50_ms": 1e3 * latencies[len(latencies) // 2],
        "p99_ms": 1e3 * latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))],
        "lane_fill": lanes["fill_ratio"],
        "lane_batches": lanes["batches"],
        "lane_width": lanes["lane_width"],
        "cache": stats["cache"],
    }
    flat_answers = [value for worker in answers for value in worker]
    return metrics, flat_answers


def crosscheck(database, output, queries, served_answers):
    """Server answers must equal direct evaluation, query for query."""
    session = Session(TC, database)
    compiled = session.compiled(output)
    direct = compiled.evaluate_boolean_batch(queries)
    assert served_answers == direct, "served Boolean answers diverge from evaluate()"
    # And the numeric route: spot-check tropical point valuations.
    weights = {fact: 1.0 for fact in database.facts()}
    expected = compiled.evaluate(TROPICAL, weights)

    async def numeric_probe():
        async with CircuitServer() as (host, port):
            async with CircuitClient(host, port) as client:
                program_text = "\n".join(repr(rule) + "." for rule in TC.rules)
                reg = await client.register(
                    program_text,
                    sorted(database.facts(), key=repr),
                    output,
                    target=TC.target,
                )
                return await client.evaluate(reg["key"], "tropical", weights)

    assert asyncio.run(numeric_probe()) == expected


def test_serving_boolean_throughput(benchmark):
    database, edges, output, queries = build_workload()
    metrics, served_answers = asyncio.run(run_load(database, output, queries))
    crosscheck(database, output, queries, served_answers)

    print(
        f"\n== CircuitServer load ({metrics['workers']} workers, "
        f"{metrics['requests']} requests) ==\n"
        f"throughput {metrics['requests_per_sec']:>10.0f} req/s\n"
        f"p50        {metrics['p50_ms']:>10.2f} ms\n"
        f"p99        {metrics['p99_ms']:>10.2f} ms\n"
        f"lane fill  {metrics['lane_fill']:>10.1%} over {metrics['lane_batches']} batches"
    )

    # The acceptance bar: coalescing must actually fill lanes at
    # saturation -- more than half the slots of every paid bitset pass.
    assert metrics["lane_fill"] > 0.5, metrics

    record = append_record(
        TRAJECTORY,
        "serving/boolean_tc",
        {"smoke": SMOKE, **metrics},
    )
    print(
        f"recorded {record['bench']}: {record['requests_per_sec']:.0f} req/s, "
        f"lane fill {record['lane_fill']:.1%}, p99 {record['p99_ms']:.2f} ms"
    )

    # pytest-benchmark rider: the kernel-side cost of one full lane,
    # the unit the server amortizes per 64 coalesced requests.
    session = Session(TC, database)
    compiled = session.compiled(output)
    benchmark(compiled.evaluate_boolean_batch, queries[:64])


async def run_faulted_load(database, output, queries):
    """The smaller fleet under wire faults and admission pressure.

    Returns resilience telemetry.  The contract mirrors the chaos
    suite: every answer a worker keeps is exactly correct, every
    failure is an explicit error -- and here we additionally measure
    what the faults cost (shed-rate, retries, tail latency).
    """
    program_text = "\n".join(repr(rule) + "." for rule in TC.rules)
    per_worker = [
        queries[w * FAULT_QUERIES_PER_WORKER : (w + 1) * FAULT_QUERIES_PER_WORKER]
        for w in range(FAULT_WORKERS)
    ]
    answers = [[None] * FAULT_QUERIES_PER_WORKER for _ in range(FAULT_WORKERS)]
    latencies = []
    ok = failed = 0

    injector = FaultInjector(
        seed=FAULT_SEED,
        rates={SOCKET_RESET: 0.0, PARTIAL_WRITE: 0.0, FLUSH_RAISE: 0.0},
    )
    # max_inflight far below the fleet size forces admission shedding;
    # retry_after is tightened so shed retries don't dominate the wall.
    resilience = ResilienceConfig(max_inflight=4, retry_after=0.005)

    async with CircuitServer(
        resilience=resilience, fault_injector=injector
    ) as (host, port):
        setup = CircuitClient(host, port)
        reg = await setup.register(
            program_text, sorted(database.facts(), key=repr), output, target=TC.target
        )
        key = reg["key"]
        # Arm the faults only after clean registration: the measured
        # window is pure query traffic.
        injector.rates[SOCKET_RESET] = 0.08
        injector.rates[PARTIAL_WRITE] = 0.08
        injector.rates[FLUSH_RAISE] = 0.03

        workers = [
            CircuitClient(
                host,
                port,
                retry=RetryPolicy(max_attempts=6, base_delay=0.005, budget=64.0),
                retry_seed=FAULT_SEED * 1000 + w,
            )
            for w in range(FAULT_WORKERS)
        ]

        async def drive(index, client):
            nonlocal ok, failed
            try:
                for q, true_facts in enumerate(per_worker[index]):
                    start = time.perf_counter()
                    try:
                        answers[index][q] = await client.boolean(key, true_facts)
                    except ServerError:
                        failed += 1  # explicit, well-formed failure
                        continue
                    except (ConnectionError, asyncio.IncompleteReadError):
                        failed += 1  # retries exhausted, surfaced loudly
                        continue
                    latencies.append(time.perf_counter() - start)
                    ok += 1
            finally:
                await client.close()

        wall_start = time.perf_counter()
        await asyncio.gather(*[drive(i, w) for i, w in enumerate(workers)])
        wall = time.perf_counter() - wall_start

        retries = sum(w.retries for w in workers)
        # Disarm before the stats fetch so telemetry collection itself
        # cannot be torn by a late fault.
        injector.rates = {site: 0.0 for site in injector.rates}
        stats = await setup.stats()
        await setup.close()

    resilience_stats = stats["resilience"]
    sheds = resilience_stats["shed_requests"] + resilience_stats["shed_connections"]
    attempts = ok + failed + sheds
    latencies.sort()
    telemetry = {
        "fault_seed": FAULT_SEED,
        "fault_workers": FAULT_WORKERS,
        "fault_requests_ok": ok,
        "fault_requests_failed": failed,
        "fault_wall_seconds": wall,
        "fault_requests_per_sec": ok / wall,
        "p50_under_fault_ms": 1e3 * latencies[len(latencies) // 2],
        "p99_under_fault_ms": 1e3
        * latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))],
        "shed_rate": sheds / attempts,
        "sheds": sheds,
        "client_retries": retries,
        "faults_fired": dict(injector.fired),
        "server_internal_errors": resilience_stats["internal_errors"],
        "server_disconnects": resilience_stats["disconnects"],
    }
    flat_answers = [value for worker in answers for value in worker]
    return telemetry, flat_answers


def test_serving_resilience_under_faults():
    database, edges, output, queries = build_workload()
    fault_queries = queries[: FAULT_WORKERS * FAULT_QUERIES_PER_WORKER]
    telemetry, served = asyncio.run(run_faulted_load(database, output, fault_queries))

    # Exactness under chaos: every answer a worker kept matches direct
    # evaluation of the same query (failed slots stay None).
    session = Session(TC, database)
    compiled = session.compiled(output)
    direct = compiled.evaluate_boolean_batch(fault_queries)
    for got, want in zip(served, direct):
        assert got is None or got == want, "wrong answer served under faults"

    # The run was real: faults fired, the admission gate shed load, and
    # retries carried most of the traffic through anyway.
    assert sum(telemetry["faults_fired"].values()) > 0
    assert telemetry["sheds"] > 0
    assert telemetry["fault_requests_ok"] > len(fault_queries) // 2

    print(
        f"\n== CircuitServer faulted load ({telemetry['fault_workers']} workers, "
        f"seed {telemetry['fault_seed']}) ==\n"
        f"ok/failed  {telemetry['fault_requests_ok']}/{telemetry['fault_requests_failed']}\n"
        f"shed rate  {telemetry['shed_rate']:>10.1%} ({telemetry['sheds']} sheds)\n"
        f"retries    {telemetry['client_retries']:>10d}\n"
        f"p99        {telemetry['p99_under_fault_ms']:>10.2f} ms under fault"
    )

    # Telemetry-only record: no probe_ratio/speedup/requests_per_sec/
    # lane_fill keys, so tools/bench_check.py skips this bench key and
    # the clean-run serving scores stay gated.
    record = append_record(
        TRAJECTORY,
        "serving/boolean_tc_faulted",
        {"smoke": SMOKE, **telemetry},
    )
    print(
        f"recorded {record['bench']}: shed rate {record['shed_rate']:.1%}, "
        f"p99 under fault {record['p99_under_fault_ms']:.2f} ms"
    )
