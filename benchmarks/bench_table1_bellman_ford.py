"""Table 1, row 2a (infinite regular, Bellman–Ford): size O(mn),
depth O(n log n).

Workload: TC (the canonical infinite RPQ, language E*) on random
digraphs with m = 3n, sweeping n.  Construction: Theorem 5.6.
"""

from conftest import run_sweep

from repro.circuits import measure
from repro.constructions import bellman_ford_circuit
from repro.workloads import random_digraph

SWEEP = (8, 16, 24, 32, 48)
REPRESENTATIVE = 32


def build(n: int):
    db = random_digraph(n, 3 * n, seed=n)
    return bellman_ford_circuit(db, 0, n - 1)


def test_table1_bellman_ford(benchmark):
    rows = []
    for n in SWEEP:
        metrics = measure(build(n))
        rows.append(dict(n=n, m=3 * n, size=metrics.size, depth=metrics.depth))
    report = run_sweep(
        "Table 1 / infinite regular (Bellman–Ford): size O(mn)=O(n²), depth O(n log n)",
        claimed_size="n^2",  # m = 3n ⇒ mn = 3n²
        claimed_depth="n log n",
        rows=rows,
    )
    assert report.size_ok(), "Bellman–Ford circuit size is not O(mn)"
    assert report.depth_ok(), "Bellman–Ford circuit depth is not O(n log n)"
    benchmark(build, REPRESENTATIVE)
