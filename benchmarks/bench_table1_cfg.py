"""Table 1, row 3 (infinite non-regular CFG): size O(n⁵),
depth O(n² log n) for the naive-layer circuit, and the matching
Ω(log² n) / O(log² ·) story via the UVG circuit (Example 6.4).

Workload: Dyck-1 reachability on maximally nested bracket paths
``Lᵈ Rᵈ`` (n = 2d + 1 vertices).  Constructions: Theorem 3.1 (the
grounded-program layer circuit whose grounding realizes the O(n⁵)
bound class) and Theorem 6.2 (UVG, the depth-optimal one).
"""

from conftest import run_sweep

from repro.circuits import measure
from repro.constructions import fringe_circuit, generic_circuit
from repro.datalog import Database, Fact, dyck1
from repro.workloads import dyck_concatenated_path

PROGRAM = dyck1()
SWEEP = (2, 3, 4, 5, 6)
REPRESENTATIVE = 4


def workload(pairs: int):
    """(LR)^pairs: Catalan-many derivations per span, so the grounded
    program (and hence the circuit) grows genuinely with n -- the
    nested path Lᵈ Rᵈ has a single derivation and prunes to O(d)."""
    return Database.from_labeled_edges(dyck_concatenated_path(pairs))


def build_generic(pairs: int):
    return generic_circuit(PROGRAM, workload(pairs), Fact("S", (0, 2 * pairs)))


def build_uvg(pairs: int):
    return fringe_circuit(PROGRAM, workload(pairs), Fact("S", (0, 2 * pairs)))


def test_table1_cfg_naive_layers(benchmark):
    rows = []
    for pairs in SWEEP:
        metrics = measure(build_generic(pairs))
        n = 2 * pairs + 1
        rows.append(dict(n=n, m=2 * pairs, size=metrics.size, depth=metrics.depth))
    report = run_sweep(
        "Table 1 / infinite CFG (naive layers): size O(n⁵), depth O(n² log n)",
        claimed_size="n^5",
        claimed_depth="n^2 log n",
        rows=rows,
    )
    assert report.size_ok(), "naive-layer CFG circuit size exceeds O(n⁵)"
    assert report.depth_ok(), "naive-layer CFG circuit depth exceeds O(n² log n)"
    benchmark(build_generic, REPRESENTATIVE)


def test_table1_cfg_uvg_depth(benchmark):
    rows = []
    for pairs in SWEEP:
        metrics = measure(build_uvg(pairs))
        n = 2 * pairs + 1
        rows.append(dict(n=n, m=2 * pairs, size=metrics.size, depth=metrics.depth))
    report = run_sweep(
        "Table 1 / infinite CFG (UVG, Thm 6.2): depth O(log² m) for poly-fringe",
        claimed_size="n^5",
        claimed_depth="log^2 n",
        rows=rows,
        scale="m",
    )
    assert report.depth_ok(), "UVG circuit depth is not O(log² m)"
    benchmark(build_uvg, REPRESENTATIVE)
