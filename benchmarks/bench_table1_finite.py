"""Table 1, row 1 (finite CFG/RPQ): size O(m) / Ω(m), depth Θ(log n).

Workload: the finite RPQ ``abc`` on random labeled digraphs with a
guaranteed witness path, sweeping the number of edges.  The circuit is
Theorem 5.8's construction; the report checks the measured growth
against both claimed bounds.
"""


from conftest import run_sweep

from repro.circuits import measure
from repro.constructions import finite_rpq_circuit
from repro.grammars import parse_regex


DFA = parse_regex("abc").to_dfa()
SWEEP = (32, 64, 128, 256, 512)
REPRESENTATIVE = 256


def witness_rich_graph(num_edges: int):
    """A 3-stage layered graph: s -a→ uᵢ -b→ vᵢ -c→ t (k = m/3 chains).

    Every chain is an answer witness, so the circuit genuinely scales
    with m (a sparse random graph would be pruned to a constant)."""
    k = max(num_edges // 3, 2)
    edges = []
    for i in range(k):
        edges.append(("s", "a", ("u", i)))
        edges.append((("u", i), "b", ("v", i)))
        edges.append((("v", i), "c", "t"))
    return edges


def build(num_edges: int):
    return finite_rpq_circuit(witness_rich_graph(num_edges), DFA, "s", "t")


def test_table1_finite_rpq(benchmark):
    rows = []
    for m in SWEEP:
        circuit = build(m)
        metrics = measure(circuit)
        rows.append(
            dict(n=2 * (m // 3) + 2, m=m, size=metrics.size, depth=metrics.depth)
        )
    report = run_sweep(
        "Table 1 / finite CFG: claimed size O(m), depth O(log n)",
        claimed_size="n",  # m ∝ n in this sweep; fit against the m column
        claimed_depth="log n",
        rows=rows,
        scale="m",
    )
    assert report.size_ok(), "finite RPQ circuit size is not O(m)"
    assert report.depth_ok(), "finite RPQ circuit depth is not O(log n)"
    benchmark(build, REPRESENTATIVE)
