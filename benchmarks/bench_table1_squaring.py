"""Table 1, row 2b (infinite regular, repeated squaring): size
O(n³ log n), depth O(log² n) -- the depth-optimal construction
matching the Karchmer–Wigderson Ω(log² n) bound.

Workload: TC on random digraphs, sweeping n.  Construction: Theorem
5.7 (all-pairs matrix powering; the unpruned circuit realizes the
stated size, the measured depth is the polylog story).
"""

from conftest import run_sweep

from repro.circuits import measure
from repro.constructions import squaring_circuit
from repro.workloads import random_digraph

SWEEP = (6, 10, 14, 20, 28)
REPRESENTATIVE = 20


def build(n: int):
    db = random_digraph(n, 3 * n, seed=n)
    return squaring_circuit(db, 0, n - 1)


def test_table1_squaring(benchmark):
    rows = []
    for n in SWEEP:
        metrics = measure(build(n))
        rows.append(dict(n=n, m=3 * n, size=metrics.size, depth=metrics.depth))
    report = run_sweep(
        "Table 1 / infinite regular (squaring): size O(n³ log n), depth O(log² n)",
        claimed_size="n^3 log n",
        claimed_depth="log^2 n",
        rows=rows,
    )
    assert report.size_ok(), "squaring circuit size is not O(n³ log n)"
    assert report.depth_ok(), "squaring circuit depth is not O(log² n)"
    benchmark(build, REPRESENTATIVE)
