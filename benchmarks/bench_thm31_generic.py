"""Theorem 3.1 (Deutch et al.): the generic circuit is polynomial-size
for ANY program -- exercised on a non-linear, non-chain program
(same-generation with Up/Flat/Down is chain; here we use the
non-linear TC D(x,y) :- D(x,z) ∧ D(z,y)).
"""

from conftest import run_sweep

from repro.circuits import measure
from repro.constructions import generic_circuit
from repro.datalog import Fact, transitive_closure_nonlinear
from repro.workloads import path_graph

PROGRAM = transitive_closure_nonlinear()
SWEEP = (3, 5, 7, 9, 11)
REPRESENTATIVE = 7


def build(n: int):
    db = path_graph(n)
    return generic_circuit(PROGRAM, db, Fact("D", (0, n)))


def test_thm31_generic_nonlinear(benchmark):
    rows = []
    for n in SWEEP:
        metrics = measure(build(n))
        rows.append(dict(n=n, m=n, size=metrics.size, depth=metrics.depth))
    report = run_sweep(
        "Thm 3.1 / non-linear TC: size O(N·M) (polynomial), depth O(N log n)",
        claimed_size="n^3 log n",
        claimed_depth="n log n",
        rows=rows,
    )
    assert report.size_ok(), "generic circuit size is not polynomial"
    assert report.depth_ok()
    benchmark(build, REPRESENTATIVE)
