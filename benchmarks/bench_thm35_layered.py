"""Theorem 3.5: layered graphs admit linear-size, linear-depth circuits.

Workload: random (width, layers)-layered graphs, sweeping the layer
count (the lower-bound input family of Theorem 3.4).  Construction:
the graph-as-circuit of Theorem 3.5.
"""

from conftest import run_sweep

from repro.circuits import measure
from repro.constructions import dag_circuit
from repro.workloads import layered_graph

WIDTH = 4
SWEEP = (4, 8, 16, 32, 64)
REPRESENTATIVE = 32


def build(num_layers: int):
    graph = layered_graph(WIDTH, num_layers, seed=num_layers)
    return dag_circuit(graph.database(), graph.source, graph.sink), graph


def test_thm35_layered(benchmark):
    rows = []
    for layers in SWEEP:
        circuit, graph = build(layers)
        metrics = measure(circuit)
        rows.append(
            dict(n=graph.num_vertices, m=len(graph.edges), size=metrics.size, depth=metrics.depth)
        )
    report = run_sweep(
        "Thm 3.5 / layered graphs: size O(m), depth O(n)",
        claimed_size="n",
        claimed_depth="n",
        rows=rows,
        scale="m",
    )
    assert report.size_ok(), "layered circuit size is not linear"
    assert report.depth_ok(), "layered circuit depth is not linear"
    benchmark(lambda: build(REPRESENTATIVE)[0])
