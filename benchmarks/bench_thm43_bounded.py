"""Theorem 4.3: bounded programs admit O(log |I|)-depth circuits,
hence polynomial-size formulas (Prop 3.3).

Workload: Example 4.2's bounded program on growing path inputs.
Also measures the expanded-and-balanced formula (Thm 3.2), recording
that formula size stays polynomial -- the contrast to TC.
"""

from conftest import run_sweep

from repro.circuits import balance_formula, circuit_to_formula, measure
from repro.constructions import bounded_circuit
from repro.datalog import Fact, bounded_example

PROGRAM = bounded_example()
SWEEP = (6, 10, 14, 20, 28)
REPRESENTATIVE = 14


def build(n: int):
    """Complete DAG + A on every vertex: T(0, n-1) has Θ(n) monomials
    (E(0,n-1) plus A(0)·E(z,n-1) per z), so size/depth genuinely sweep;
    a path input prunes to an O(1) circuit and shows nothing."""
    from repro.workloads import complete_dag

    db = complete_dag(n)
    for i in range(n):
        db.add("A", i)
    return bounded_circuit(PROGRAM, db, bound=2, facts=Fact("T", (0, n - 1)))


def test_thm43_bounded_circuit(benchmark):
    rows = []
    for n in SWEEP:
        circuit = build(n)
        formula = balance_formula(circuit_to_formula(circuit))
        metrics = measure(circuit)
        rows.append(
            dict(
                n=n,
                m=n * (n - 1) // 2 + n,
                size=metrics.size,
                depth=metrics.depth,
                extra=f"formula size={formula.size} depth={formula.depth}",
            )
        )
    report = run_sweep(
        "Thm 4.3 / bounded program (Ex 4.2): size poly, depth O(log |I|)",
        claimed_size="n^2",
        claimed_depth="log n",
        rows=rows,
    )
    assert report.depth_ok(), "bounded-program circuit depth is not O(log n)"
    assert report.size_ok()
    benchmark(build, REPRESENTATIVE)
