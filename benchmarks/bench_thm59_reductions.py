"""Theorem 5.9: both reductions are size- and depth-preserving.

Measures TC → infinite-RPQ (instance blow-up is the constant |xyz|)
and RPQ → TC (product + per-accept-state union), reporting
instance/circuit sizes and verifying depth preservation across a sweep
of input graphs.
"""

from conftest import run_sweep

from repro.constructions import squaring_circuit
from repro.grammars import parse_regex
from repro.reductions import (
    rpq_circuit_via_tc,
    tc_to_rpq_instance,
    transfer_rpq_circuit_to_tc,
)
from repro.workloads import random_digraph

DFA = parse_regex("(ab)+").to_dfa()
SWEEP = (6, 10, 14, 18)
REPRESENTATIVE = 10


def roundtrip(n: int):
    db = random_digraph(n, 2 * n, seed=n)
    edges = sorted(db.tuples("E"))
    instance = tc_to_rpq_instance(edges, 0, n - 1, DFA)
    rpq_circuit = rpq_circuit_via_tc(
        instance.labeled_edges, DFA, instance.source, instance.sink,
        tc_builder=squaring_circuit,
    )
    tc_circuit = transfer_rpq_circuit_to_tc(instance, rpq_circuit)
    return instance, rpq_circuit, tc_circuit


def test_thm59_reduction_roundtrip(benchmark):
    rows = []
    for n in SWEEP:
        instance, rpq_circuit, tc_circuit = roundtrip(n)
        assert tc_circuit.depth <= rpq_circuit.depth  # depth preservation
        assert tc_circuit.size <= rpq_circuit.size + len(instance.wire_map) + 2
        rows.append(
            dict(
                n=n,
                m=2 * n,
                size=tc_circuit.size,
                depth=tc_circuit.depth,
                extra=(
                    f"instance m={instance.size}, rpq size={rpq_circuit.size} "
                    f"depth={rpq_circuit.depth}"
                ),
            )
        )
    report = run_sweep(
        "Thm 5.9 / TC↔RPQ roundtrip: transferred circuit keeps O(log² n) depth",
        claimed_size="n^3 log n",
        claimed_depth="log^2 n",
        rows=rows,
    )
    assert report.depth_ok(), "reduction did not preserve the polylog depth"
    benchmark(roundtrip, REPRESENTATIVE)
