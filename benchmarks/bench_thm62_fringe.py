"""Theorem 6.2 / Corollary 6.3: polynomial-fringe programs (here, a
linear monadic program and non-linear Dyck-1) admit O(log² |I|)-depth
circuits via the Ullman–Van Gelder construction.
"""

from conftest import run_sweep

from repro.circuits import measure
from repro.constructions import fringe_circuit
from repro.datalog import Database, Fact, dyck1, reachability
from repro.workloads import dyck_nested_path, path_graph

SWEEP_REACH = (4, 8, 12, 16)
SWEEP_DYCK = (2, 3, 4, 5)


def build_reach(n: int):
    db = path_graph(n)
    db.add("A", n)
    return fringe_circuit(reachability(), db, Fact("U", (0,)))


def build_dyck(depth: int):
    db = Database.from_labeled_edges(dyck_nested_path(depth))
    return fringe_circuit(dyck1(), db, Fact("S", (0, 2 * depth)))


def test_thm62_linear_monadic(benchmark):
    rows = []
    for n in SWEEP_REACH:
        metrics = measure(build_reach(n))
        rows.append(dict(n=n, m=n + 1, size=metrics.size, depth=metrics.depth))
    report = run_sweep(
        "Thm 6.2 / linear monadic reachability: depth O(log² |I|)",
        claimed_size="n^3 log n",
        claimed_depth="log^2 n",
        rows=rows,
    )
    assert report.depth_ok(), "UVG depth is not O(log² |I|) on linear monadic"
    benchmark(build_reach, 12)


def test_thm62_dyck(benchmark):
    rows = []
    for depth in SWEEP_DYCK:
        metrics = measure(build_dyck(depth))
        rows.append(dict(n=2 * depth + 1, m=2 * depth, size=metrics.size, depth=metrics.depth))
    report = run_sweep(
        "Thm 6.2 / Dyck-1 (Ex 6.4, non-linear poly-fringe): depth O(log² |I|)",
        claimed_size="n^5",
        claimed_depth="log^2 n",
        rows=rows,
    )
    assert report.depth_ok(), "UVG depth is not O(log² |I|) on Dyck-1"
    benchmark(build_dyck, 4)
