"""Head-to-head: the vectorized NumPy backend vs the pure-Python kernels.

The ``backend="vectorized"`` execution backend (DESIGN.md §13) replaces
the two hot loops of the columnar engine with whole-column array
expressions over ``np.frombuffer`` views of the CSR rule arrays:

* the ``_columnar_fixpoint`` delta loop becomes per-rule gather →
  ⊗-reduce over body slots → segment-⊕ scatter into head values;
* ``evaluate_batch`` runs each maximal same-opcode instruction stream
  of the compiled circuit as one array expression over the whole
  assignment matrix.

The ISSUE 9 acceptance bar, asserted at representative scale:

* **≥ 3× wall-clock** on the columnar fixpoint for tropical
  Bellman–Ford (TC shortest distances on random digraphs, ``m = 3n``)
  at ``n ≥ 96``;
* **≥ 2× wall-clock** on ``evaluate_batch`` over the provenance
  circuit of the same workload.

Every sweep point first cross-checks the two backends for exact
equality -- identical fixpoint values, iterations, convergence and
rule-evaluation counts; identical batch result vectors -- so the bench
doubles as an equivalence test at sizes the unit suite doesn't reach.
Results append to ``BENCH_vectorized.json`` via ``tools/bench_record``;
each record is tagged ``"backend": "vectorized"`` so
``tools/bench_check.py`` gates the trajectory per backend.  CI runs
the bench in smoke mode on every PR (the ``.[test,perf]`` leg).

Requires NumPy: the bench skips cleanly (pytest) or exits 0 (direct
run) when the ``perf`` extra is not installed -- the no-numpy CI leg
must stay green without it.

Smoke mode (``BENCH_SMOKE=1``, set by CI) shrinks the sweeps but keeps
the representative (largest) point and every assert.
"""

import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.bench_record import append_record  # noqa: E402

from repro.api import Session  # noqa: E402
from repro.backends import numpy_available  # noqa: E402
from repro.config import ExecutionConfig  # noqa: E402
from repro.datalog import columnar_grounding, transitive_closure  # noqa: E402
from repro.datalog.seminaive import _columnar_fixpoint  # noqa: E402
from repro.semirings import TROPICAL  # noqa: E402
from repro.workloads import random_digraph, random_weights  # noqa: E402

import pytest  # noqa: E402

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="requires the 'perf' extra (numpy)"
)

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
ROUNDS = 2 if SMOKE else 4  # best-of repetitions per timing

TC = transitive_closure()

# Representative scale is where the acceptance bars are asserted: past
# the fixed per-call overhead (ufunc-spec lookup, frombuffer views,
# batch-plan compile) both paths are array-op / interpreter-loop
# dominated.  Smoke keeps the largest point for exactly that reason.
FIXPOINT_SWEEP = (48, 96) if SMOKE else (48, 96, 144)
FIXPOINT_REPRESENTATIVE = 96
FIXPOINT_BAR = 3.0

BATCH_N = 96
BATCH_SWEEP = (64, 256) if SMOKE else (64, 128, 256)
BATCH_REPRESENTATIVE = 256
BATCH_BAR = 2.0

TRAJECTORY = REPO_ROOT / "BENCH_vectorized.json"


class _Valuation(dict):
    """The fixpoint kernels' ``edb_value`` contract: weighted EDB facts
    with a semiring-one default."""

    def __missing__(self, fact):
        return TROPICAL.one


def best_of(fn, rounds=ROUNDS):
    """Best wall-clock over *rounds* runs of *fn*; returns (seconds, result)."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def fixpoint_workload(n):
    """A tropical Bellman–Ford instance: shared grounding + weights."""
    database = random_digraph(n, 3 * n, seed=n)
    weights = _Valuation(random_weights(database, seed=n + 1))
    cground = columnar_grounding(TC, database)
    return cground, weights


def fixpoint_head_to_head(n):
    from repro.backends.vectorized import vectorized_columnar_fixpoint

    cground, weights = fixpoint_workload(n)
    python_seconds, python_result = best_of(
        lambda: _columnar_fixpoint(cground, TROPICAL, weights, 100_000)
    )
    vector_seconds, vector_result = best_of(
        lambda: vectorized_columnar_fixpoint(cground, TROPICAL, weights, 100_000)
    )
    # Cross-check: the vectorized kernel must take the array path here
    # (None would mean it silently declined and timed nothing) and
    # agree exactly -- values, iterations, convergence, evaluations.
    assert vector_result is not None, "vectorized kernel declined the tropical workload"
    assert vector_result == python_result
    return dict(
        n=n,
        rules=len(cground),
        seconds_python=python_seconds,
        seconds_vectorized=vector_seconds,
        speedup=python_seconds / max(vector_seconds, 1e-9),
    )


def batch_workload():
    """One compiled TC provenance circuit plus deterministic batches."""
    database = random_digraph(BATCH_N, 3 * BATCH_N, seed=BATCH_N)
    weights = random_weights(database, seed=BATCH_N + 1)
    session = Session(TC, database, ExecutionConfig(backend="python"))
    result = session.solve(TROPICAL, weights=weights)
    target = max(
        result.values,
        key=lambda fact: 0 if result.values[fact] in (TROPICAL.zero, TROPICAL.one) else 1,
    )
    compiled = session.compiled(target)
    facts = sorted(database.facts(), key=repr)
    return compiled, facts


def batch_head_to_head(compiled, facts, batch):
    assignments = [
        {fact: float((k * 13 + i) % 17 + 1) for i, fact in enumerate(facts)}
        for k in range(batch)
    ]
    python_seconds, python_values = best_of(
        lambda: compiled.evaluate_batch(TROPICAL, assignments, backend="python")
    )
    vector_seconds, vector_values = best_of(
        lambda: compiled.evaluate_batch(TROPICAL, assignments, backend="vectorized")
    )
    assert python_values == vector_values  # exact, every sweep point
    return dict(
        batch=batch,
        slots=compiled.num_slots,
        gates=compiled.size,
        seconds_python=python_seconds,
        seconds_vectorized=vector_seconds,
        speedup=python_seconds / max(vector_seconds, 1e-9),
    )


def print_table(title, rows, label):
    print(f"\n== {title} ==")
    print(f"{label:>6} {'python ms':>10} {'vectorized ms':>14} {'speedup':>8}")
    for row in rows:
        print(
            f"{row[label]:>6} {1e3 * row['seconds_python']:>10.1f} "
            f"{1e3 * row['seconds_vectorized']:>14.1f} {row['speedup']:>7.2f}x"
        )


def record_rows(bench, rows, representative, bar, key):
    top = next(row for row in rows if row[key] == representative)
    assert top["speedup"] >= bar, (bench, top)
    record = append_record(
        TRAJECTORY,
        bench,
        {
            "smoke": SMOKE,
            "backend": "vectorized",
            "speedup": top["speedup"],
            "python_ms": 1e3 * top["seconds_python"],
            "vectorized_ms": 1e3 * top["seconds_vectorized"],
            "rows": rows,
        },
    )
    print(f"recorded {record['bench']} [{record['backend']}]: {record['speedup']:.2f}x")


def test_vectorized_fixpoint_bellman_ford(benchmark):
    rows = [fixpoint_head_to_head(n) for n in FIXPOINT_SWEEP]
    print_table("vectorized vs python columnar fixpoint (tropical Bellman–Ford)", rows, "n")
    record_rows(
        "vectorized/fixpoint_bellman_ford", rows, FIXPOINT_REPRESENTATIVE, FIXPOINT_BAR, "n"
    )

    from repro.backends.vectorized import vectorized_columnar_fixpoint

    cground, weights = fixpoint_workload(FIXPOINT_REPRESENTATIVE)
    benchmark(vectorized_columnar_fixpoint, cground, TROPICAL, weights, 100_000)


def test_vectorized_evaluate_batch(benchmark):
    compiled, facts = batch_workload()
    rows = [batch_head_to_head(compiled, facts, batch) for batch in BATCH_SWEEP]
    print_table("vectorized vs python evaluate_batch (tropical TC circuit)", rows, "batch")
    record_rows("vectorized/evaluate_batch", rows, BATCH_REPRESENTATIVE, BATCH_BAR, "batch")

    assignments = [
        {fact: float((k * 13 + i) % 17 + 1) for i, fact in enumerate(facts)}
        for k in range(BATCH_REPRESENTATIVE)
    ]
    benchmark(compiled.evaluate_batch, TROPICAL, assignments, None, "vectorized")


if __name__ == "__main__":
    if not numpy_available():
        print("numpy not installed (perf extra); nothing to benchmark")
        sys.exit(0)
    sys.exit(pytest.main([__file__, "-q", "--benchmark-disable"]))
