"""Shared benchmark helpers.

Every bench follows the same recipe: sweep input scales, measure the
built circuit's size/depth, print the Table-1-style report with a
PASS/FAIL verdict against the paper's claimed bound, and let
pytest-benchmark time the construction at a representative scale.
"""

from __future__ import annotations

import pytest

from repro.analysis import SweepReport
from repro.datalog import scoped_symbols


@pytest.fixture(scope="session", autouse=True)
def _private_symbol_scope():
    """Benchmarks intern into a session-private symbol table: sweeps
    create millions of transient constants, and the process-wide
    ``GLOBAL_SYMBOLS`` is append-only (src/repro/datalog/store.py) --
    scoping keeps one bench run from bloating every later measurement
    in the same process."""
    with scoped_symbols():
        yield


def run_sweep(title, claimed_size, claimed_depth, rows, scale="n"):
    """Build, print and sanity-check a sweep report; returns it."""
    report = SweepReport(title, claimed_size, claimed_depth, scale=scale)
    for row in rows:
        report.add(**row)
    report.print()
    return report


@pytest.fixture(scope="session")
def sweeps_printed():
    return set()
