"""The paper's decision tree as an API: automatic construction choice.

``provenance_circuit`` routes each (program, database, fact) triple to
the best construction Sections 3--6 provide for its class, and reports
which theorem it used and why.

Run:  python examples/auto_construction.py
"""

from repro.circuits import evaluate
from repro.constructions import provenance_circuit
from repro.datalog import (
    Database,
    Fact,
    bounded_example,
    dyck1,
    transitive_closure,
)
from repro.semirings import TROPICAL
from repro.workloads import random_digraph, random_weights


def main() -> None:
    db = random_digraph(10, 25, seed=7)
    weights = random_weights(db, seed=7)

    cases = []

    # 1. TC: unbounded left-linear chain → magic-set specialization.
    cases.append((transitive_closure(), db, Fact("T", (0, 9)), weights, False))

    # 2. Example 4.2: bounded → Theorem 4.3 layers.  The A-facts get the
    # default weight 1 via the database valuation.
    bdb = db.copy()
    bdb.add("A", 0)
    bounded_weights = {**bdb.valuation(TROPICAL), **weights}
    cases.append((bounded_example(), bdb, Fact("T", (0, 9)), bounded_weights, False))

    # 3. Dyck-1, default: generic.  4. Dyck-1, depth-optimized: UVG.
    ledges = [(0, "L", 1), (1, "L", 2), (2, "R", 3), (3, "R", 4)]
    ldb = Database.from_labeled_edges(ledges)
    lweights = {f: 1.0 for f in ldb.facts()}
    cases.append((dyck1(), ldb, Fact("S", (0, 4)), lweights, False))
    cases.append((dyck1(), ldb, Fact("S", (0, 4)), lweights, True))

    for program, database, fact, valuation, optimize_depth in cases:
        choice = provenance_circuit(program, database, fact, optimize_depth=optimize_depth)
        value = evaluate(choice.circuit, TROPICAL, valuation)
        flag = " (depth-optimized)" if optimize_depth else ""
        print(f"\n{fact}{flag}")
        print(f"  construction : {choice.construction}  [{choice.theorem}]")
        print(f"  reason       : {choice.reason}")
        print(
            f"  circuit      : size={choice.circuit.size}, depth={choice.circuit.depth}"
        )
        print(f"  tropical val : {value}")


if __name__ == "__main__":
    main()
