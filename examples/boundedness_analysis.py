"""Boundedness analysis across the paper's program zoo (Section 4/5.1).

For each program: classify it, decide/probe boundedness with the best
available method, and corroborate with the Definition 4.1 iteration
probe on growing inputs.

Run:  python examples/boundedness_analysis.py
"""

from repro.boundedness import analyze_boundedness, empirical_iteration_probe
from repro.datalog import (
    Database,
    bounded_example,
    dyck1,
    reachability,
    transitive_closure,
)
from repro.grammars import rpq_program
from repro.workloads import path_graph


def tc_family(n):
    return path_graph(n)


def bounded_family(n):
    db = path_graph(n)
    db.add("A", 0)
    db.add("A", 1)
    return db


def reach_family(n):
    db = path_graph(n)
    db.add("A", n)
    return db


def dyck_family(n):
    from repro.workloads import dyck_nested_path

    return Database.from_labeled_edges(dyck_nested_path(n))


def finite_rpq_family(n):
    edges = [(i, "a", i + 1) for i in range(n)] + [(i, "b", i + 1) for i in range(n)]
    return Database.from_labeled_edges(edges)


def main() -> None:
    finite_rpq, _eps = rpq_program("ab|ba")
    zoo = [
        ("transitive closure (Ex 2.1)", transitive_closure(), tc_family),
        ("bounded program (Ex 4.2)", bounded_example(), bounded_family),
        ("monadic reachability (Ex 2.1)", reachability(), reach_family),
        ("Dyck-1 (Ex 6.4)", dyck1(), dyck_family),
        ("finite RPQ ab|ba (Thm 5.8)", finite_rpq, finite_rpq_family),
    ]
    for name, program, family in zoo:
        classes = []
        if program.is_linear():
            classes.append("linear")
        if program.is_monadic():
            classes.append("monadic")
        if program.is_basic_chain():
            classes.append("chain")
        if program.is_connected():
            classes.append("connected")
        print(f"\n=== {name} [{', '.join(classes) or 'general'}] ===")
        report = analyze_boundedness(program, family)
        verdict = {True: "BOUNDED", False: "UNBOUNDED", None: "INCONCLUSIVE"}[report.bounded]
        print(f"  verdict    : {verdict} (via {report.method})")
        if report.certificate is not None:
            print(f"  certificate: fixpoint within {report.certificate} iterations")
        print(f"  detail     : {report.details}")
        probe = empirical_iteration_probe(program, family, sizes=(4, 8, 12, 16))
        profile = ", ".join(f"n={n}:{it}" for n, it in probe.evidence)
        print(f"  iterations : {profile}")


if __name__ == "__main__":
    main()
