"""Dyck-1 reachability (Example 6.4): interprocedural-analysis style
matched-parenthesis paths, with provenance circuits.

Edges labeled ``L``/``R`` model call/return; a path is *valid* when its
brackets balance.  The Dyck-1 program is non-linear but has the
polynomial fringe property, so Theorem 6.2's Ullman–Van Gelder circuit
achieves depth O(log² m).

Run:  python examples/dyck_reachability.py
"""

from repro.circuits import canonical_polynomial, measure
from repro.constructions import fringe_circuit, generic_circuit
from repro.datalog import Database, Fact, dyck1
from repro.grammars import CFG, cfl_reachability
from repro.semirings import TROPICAL
from repro.workloads import dyck_nested_path


def main() -> None:
    program = dyck1()
    print("Dyck-1 program (Example 6.4):")
    print(program, "\n")

    # A call graph: main calls f (L), f calls g (L), returns (R), etc.
    edges = [
        ("main", "L", "f_entry"),
        ("f_entry", "L", "g_entry"),
        ("g_entry", "R", "f_mid"),
        ("f_mid", "R", "main_ret"),
        ("main_ret", "L", "h_entry"),
        ("h_entry", "R", "end"),
    ]
    db = Database.from_labeled_edges(edges)

    grammar = CFG.from_rules("S -> L R | L S R | S S", start="S")
    print("balanced (valid) vertex pairs:")
    weights = {fact: 1.0 for fact in db.facts()}
    for pair, value in sorted(cfl_reachability(grammar, db, TROPICAL, weights=weights).items()):
        print(f"  {pair[0]:9s} -> {pair[1]:9s}  bracket-path length {value:.0f}")

    fact = Fact("S", ("main", "end"))
    print(f"\nprovenance of S(main, end):")
    print(f"  {canonical_polynomial(generic_circuit(program, db, fact))}\n")

    print("Theorem 6.2 (UVG) vs Theorem 3.1 (generic) circuit shapes")
    print(f"{'depth-optimal?':>16} {'size':>8} {'depth':>6}")
    for depth in (2, 3, 4):
        path_db = Database.from_labeled_edges(dyck_nested_path(depth))
        target = Fact("S", (0, 2 * depth))
        generic = generic_circuit(program, path_db, target)
        uvg = fringe_circuit(program, path_db, target)
        print(f"  generic (d={depth}) {generic.size:>8} {generic.depth:>6}")
        print(f"  UVG     (d={depth}) {uvg.size:>8} {uvg.depth:>6}")


if __name__ == "__main__":
    main()
