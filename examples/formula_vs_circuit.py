"""Formulas vs circuits: the paper's central trade-off, measured.

* Bounded programs: O(log n)-depth circuits → polynomial-size formulas
  (Thm 4.3 + Prop 3.3), re-balanced to O(log size) depth (Thm 3.2).
* Transitive closure: the O(log² n)-depth squaring circuit (Thm 5.7)
  expands to formulas whose size explodes super-polynomially -- the
  measured face of the Karchmer–Wigderson lower bound (Thm 3.4).

Run:  python examples/formula_vs_circuit.py
"""

from repro.circuits import balance_formula, canonical_polynomial, circuit_to_formula
from repro.constructions import bounded_circuit, squaring_circuit
from repro.datalog import Fact, bounded_example
from repro.workloads import path_graph, random_digraph


def main() -> None:
    print("=== bounded program (Ex 4.2): formulas stay polynomial ===")
    program = bounded_example()
    print(f"{'n':>4} {'circuit size':>13} {'circuit depth':>14} {'formula size':>13} {'balanced depth':>15}")
    for n in (4, 8, 16, 32):
        db = path_graph(n)
        db.add("A", 0)
        db.add("A", 1)
        circuit = bounded_circuit(program, db, bound=2, facts=Fact("T", (0, 3)))
        formula = circuit_to_formula(circuit)
        balanced = balance_formula(formula)
        assert canonical_polynomial(balanced) == canonical_polynomial(circuit)
        print(
            f"{n:>4} {circuit.size:>13} {circuit.depth:>14} "
            f"{formula.size:>13} {balanced.depth:>15}"
        )

    print("\n=== transitive closure: formula expansion explodes ===")
    print(f"{'n':>4} {'circuit size':>13} {'circuit depth':>14} {'formula size':>13}")
    for n in (4, 5, 6, 7):
        db = random_digraph(n, 2 * n, seed=n)
        circuit = squaring_circuit(db, 0, n - 1)
        try:
            formula = circuit_to_formula(circuit, max_size=2_000_000)
            formula_size = str(formula.size)
        except MemoryError:
            formula_size = "> 2,000,000"
        print(f"{n:>4} {circuit.size:>13} {circuit.depth:>14} {formula_size:>13}")
    print(
        "\nThe circuit stays polynomial (Thm 3.1/5.7) while its formula\n"
        "expansion grows super-polynomially -- TC provenance has no small\n"
        "formulas (Thm 3.4 + Thm 3.2)."
    )


if __name__ == "__main__":
    main()
