"""Quickstart: provenance circuits for transitive closure.

Reproduces the paper's running example (Figure 1): build the TC
provenance polynomial three ways -- proof-tree enumeration, the
generic circuit of Theorem 3.1, and the Bellman–Ford circuit of
Theorem 5.6 -- then evaluate the same circuit over several semirings.

Run:  python examples/quickstart.py
"""

from repro.circuits import canonical_polynomial, evaluate, measure
from repro.constructions import bellman_ford_circuit, generic_circuit
from repro.datalog import Database, Fact, provenance_by_proof_trees, transitive_closure
from repro.semirings import BOOLEAN, COUNTING, TROPICAL, VITERBI


def main() -> None:
    # Figure 1's 7-edge graph.
    edges = [
        ("s", "u1"), ("s", "u2"),
        ("u1", "v1"), ("u1", "v2"), ("u2", "v2"),
        ("v1", "t"), ("v2", "t"),
    ]
    db = Database.from_edges(edges)
    tc = transitive_closure()
    fact = Fact("T", ("s", "t"))

    print("=== provenance polynomial of T(s,t) (Figure 1) ===")
    poly = provenance_by_proof_trees(tc, db, fact)
    print(f"by tight proof trees : {poly}")

    circuit = generic_circuit(tc, db, fact)
    print(f"by Thm 3.1 circuit   : {canonical_polynomial(circuit)}")
    print(f"circuit metrics      : {measure(circuit).row()}")

    bf = bellman_ford_circuit(db, "s", "t")
    print(f"by Thm 5.6 circuit   : {canonical_polynomial(bf)}")
    print(f"circuit metrics      : {measure(bf).row()}")

    print("\n=== one circuit, many semirings ===")
    weights = {f: 1.0 for f in db.facts()}
    print(f"tropical (shortest path length) : {evaluate(bf, TROPICAL, weights)}")
    prob = {f: 0.9 for f in db.facts()}
    print(f"viterbi (best path probability) : {evaluate(bf, VITERBI, prob):.3f}")
    flags = {f: True for f in db.facts()}
    print(f"boolean (reachability)          : {evaluate(bf, BOOLEAN, flags)}")
    # The counting semiring is NOT absorptive: circuit values count
    # walks, not paths -- evaluate the exact polynomial instead.
    counts = {f: 1 for f in db.facts()}
    print(f"counting (number of paths)      : {poly.evaluate(COUNTING, counts)}")


if __name__ == "__main__":
    main()
