"""Regular Path Queries over a weighted knowledge-graph-style network.

The RPQ `flight (flight | train)*` asks for journeys that start with a
flight and continue by any mix of flights and trains.  Evaluating its
provenance over the tropical semiring yields the cheapest qualifying
journey per city pair; over the Viterbi semiring, the most reliable
one.  Demonstrates the Theorem 5.3 dichotomy test and both RPQ
evaluation paths (fixpoint vs TC-reduction circuit, Theorem 5.9).

Run:  python examples/rpq_shortest_paths.py
"""

from repro.circuits import evaluate
from repro.datalog import Fact
from repro.grammars import SymbolRegex, solve_rpq
from repro.reductions import rpq_circuit_via_tc
from repro.semirings import TROPICAL, VITERBI


def main() -> None:
    flight, train = SymbolRegex("flight"), SymbolRegex("train")
    regex = flight + (flight | train).star()
    dfa = regex.to_dfa()
    print(f"RPQ: flight (flight|train)*   -> DFA with {dfa.num_states} states")
    print(f"language finite? {dfa.is_finite()}  (infinite ⇒ as hard as TC, Thm 5.9)\n")

    edges = [
        ("ATH", "flight", "VIE"),
        ("VIE", "train", "MUC"),
        ("MUC", "train", "PAR"),
        ("VIE", "flight", "PAR"),
        ("ATH", "flight", "PAR"),
        ("PAR", "train", "LON"),
    ]
    cost = {
        Fact("flight", ("ATH", "VIE")): 120.0,
        Fact("train", ("VIE", "MUC")): 40.0,
        Fact("train", ("MUC", "PAR")): 60.0,
        Fact("flight", ("VIE", "PAR")): 90.0,
        Fact("flight", ("ATH", "PAR")): 260.0,
        Fact("train", ("PAR", "LON")): 80.0,
    }
    reliability = {fact: 0.95 if fact.predicate == "train" else 0.85 for fact in cost}

    print("cheapest qualifying journey per pair (tropical semiring):")
    for (origin, dest), value in sorted(solve_rpq(edges, dfa, TROPICAL, weights=cost).items()):
        print(f"  {origin} -> {dest}: {value:7.1f}")

    print("\nmost reliable journey per pair (Viterbi semiring):")
    for (origin, dest), value in sorted(
        solve_rpq(edges, dfa, VITERBI, weights=reliability).items()
    ):
        print(f"  {origin} -> {dest}: {value:6.3f}")

    print("\ncircuit route (Theorem 5.9 reduction to TC) for ATH -> LON:")
    circuit = rpq_circuit_via_tc(edges, dfa, "ATH", "LON")
    print(f"  circuit size={circuit.size}, depth={circuit.depth}")
    print(f"  tropical value : {evaluate(circuit, TROPICAL, cost):.1f}")
    print(f"  viterbi value  : {evaluate(circuit, VITERBI, reliability):.3f}")


if __name__ == "__main__":
    main()
