"""Legacy shim for tooling that still invokes ``setup.py`` directly.

All project metadata, package discovery, pytest and ruff configuration
live in ``pyproject.toml``.
"""

from setuptools import setup

setup()
