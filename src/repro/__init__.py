"""repro: Circuits and Formulas for Datalog over Semirings (PODS 2025).

A full reproduction of Fan, Koutris & Roy, *Circuits and Formulas for
Datalog over Semirings* (PODS 2025): semirings and provenance
polynomials, an array-backed circuit/formula substrate, a Datalog
engine over semirings, grammar/automata machinery for basic chain
Datalog, every circuit construction of Sections 3--6, the lower-bound
reductions, boundedness analysis, and a benchmark harness that
re-measures Table 1 and Figure 1.

Quickstart::

    from repro.datalog import Database
    from repro.constructions import bellman_ford_circuit
    from repro.circuits import evaluate
    from repro.semirings import TROPICAL

    db = Database.from_edges([(0, 1), (1, 2), (0, 2)])
    circuit = bellman_ford_circuit(db, source=0, sink=2)
    weights = {fact: 1.0 for fact in db.facts()}
    print(evaluate(circuit, TROPICAL, weights))   # shortest path: 1.0
"""

from . import (
    analysis,
    api,
    boundedness,
    circuits,
    config,
    constructions,
    datalog,
    grammars,
    reductions,
    semirings,
    serving,
    workloads,
)
from .api import Session, solve
from .config import ExecutionConfig

__version__ = "1.2.0"

__all__ = [
    "analysis",
    "api",
    "boundedness",
    "circuits",
    "config",
    "constructions",
    "datalog",
    "grammars",
    "reductions",
    "semirings",
    "serving",
    "workloads",
    "ExecutionConfig",
    "Session",
    "solve",
    "__version__",
]
