"""Growth fitting and bench reporting (the Table-1 shape checks)."""

from .fitting import (
    GROWTH_MODELS,
    FitResult,
    GrowthModel,
    best_fit,
    consistent_with,
    dominance_ratio,
)
from .report import PerfReport, PerfRow, SweepReport, SweepRow

__all__ = [
    "GrowthModel",
    "GROWTH_MODELS",
    "FitResult",
    "best_fit",
    "consistent_with",
    "dominance_ratio",
    "SweepReport",
    "SweepRow",
    "PerfReport",
    "PerfRow",
]
