"""Growth-model fitting: checking Table 1's asymptotic shapes.

The paper's evaluation artifact is a grid of asymptotic bounds.  The
benchmarks measure concrete circuit sizes/depths across an input sweep
and this module decides which growth model fits best:

    c, log n, log² n, n, n log n, n², n³, n⁵, 2ⁿ

Each model is fit by least squares on the single scale coefficient
``a`` in ``y ≈ a · f(n)`` (plus an intercept), and ranked by residual
sum of squares on normalized data.  :func:`consistent_with` gives the
benchmark PASS criterion: the measured sequence grows no faster than
the claimed bound (up-to-constant dominance on the sweep), which is
the right check for *upper*-bound rows, while :func:`best_fit`
reports the closest shape for the report tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = ["GrowthModel", "GROWTH_MODELS", "FitResult", "best_fit", "consistent_with", "dominance_ratio"]


@dataclass(frozen=True)
class GrowthModel:
    name: str
    fn: Callable[[float], float]

    def __call__(self, n: float) -> float:
        return self.fn(n)


def _safe_log(n: float) -> float:
    return math.log(max(n, 2.0))


GROWTH_MODELS: Tuple[GrowthModel, ...] = (
    GrowthModel("1", lambda n: 1.0),
    GrowthModel("log n", _safe_log),
    GrowthModel("log^2 n", lambda n: _safe_log(n) ** 2),
    GrowthModel("n", lambda n: n),
    GrowthModel("n log n", lambda n: n * _safe_log(n)),
    GrowthModel("n^2", lambda n: n**2),
    GrowthModel("n^2 log n", lambda n: n**2 * _safe_log(n)),
    GrowthModel("n^3", lambda n: n**3),
    GrowthModel("n^3 log n", lambda n: n**3 * _safe_log(n)),
    GrowthModel("n^5", lambda n: n**5),
    GrowthModel("2^n", lambda n: 2.0 ** min(n, 60)),
)

_MODEL_BY_NAME: Dict[str, GrowthModel] = {m.name: m for m in GROWTH_MODELS}


@dataclass
class FitResult:
    """Ranked fits for one measured series."""

    sizes: List[float]
    values: List[float]
    scores: Dict[str, float]
    best: str
    coefficient: float

    def __repr__(self) -> str:
        return f"FitResult(best={self.best!r}, a={self.coefficient:.3g})"


def _fit_single(model: GrowthModel, xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares ``y = a·f(x) + b``; returns (a, b, rss on normalized y)."""
    fs = [model(x) for x in xs]
    n = len(xs)
    mean_f = sum(fs) / n
    mean_y = sum(ys) / n
    var_f = sum((f - mean_f) ** 2 for f in fs)
    if var_f == 0:
        a = 0.0
    else:
        a = sum((f - mean_f) * (y - mean_y) for f, y in zip(fs, ys)) / var_f
    b = mean_y - a * mean_f
    scale = max(abs(y) for y in ys) or 1.0
    rss = sum(((a * f + b - y) / scale) ** 2 for f, y in zip(fs, ys))
    # Penalize negative slopes: growth models must grow.
    if a < 0:
        rss += 1.0
    return a, b, rss


def best_fit(
    sizes: Sequence[float],
    values: Sequence[float],
    models: Sequence[GrowthModel] = GROWTH_MODELS,
) -> FitResult:
    """Rank *models* against the measured series; lowest RSS wins."""
    if len(sizes) != len(values):
        raise ValueError("sizes and values must align")
    if len(sizes) < 3:
        raise ValueError("need at least 3 points to fit a growth model")
    scores: Dict[str, float] = {}
    coefficients: Dict[str, float] = {}
    for model in models:
        a, _b, rss = _fit_single(model, sizes, values)
        scores[model.name] = rss
        coefficients[model.name] = a
    best_name = min(scores, key=scores.get)
    return FitResult(list(sizes), list(values), scores, best_name, coefficients[best_name])


def dominance_ratio(
    sizes: Sequence[float], values: Sequence[float], bound: str
) -> float:
    """``max_i value_i / f(n_i)`` over the sweep, normalized so that a
    bounded (O(f)) series yields a stable, small ratio spread."""
    model = _MODEL_BY_NAME[bound]
    ratios = [v / max(model(n), 1e-12) for n, v in zip(sizes, values)]
    return max(ratios) / max(min(ratios), 1e-12)


def consistent_with(
    sizes: Sequence[float],
    values: Sequence[float],
    bound: str,
    tolerance: float = 4.0,
) -> bool:
    """PASS criterion for an ``O(f)`` claim on a sweep.

    The normalized ratios ``value/f(n)`` must not drift upward by more
    than *tolerance*× across the sweep (a series truly growing faster
    than ``f`` has monotonically exploding ratios; constants cancel).
    """
    model = _MODEL_BY_NAME[bound]
    ratios = [v / max(model(n), 1e-12) for n, v in zip(sizes, values)]
    # Compare the tail against the head rather than max/min, so noise
    # in the middle of the sweep does not flip the verdict.
    head = max(ratios[0], 1e-12)
    tail = ratios[-1]
    return tail / head <= tolerance
