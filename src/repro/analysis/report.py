"""Benchmark report tables.

Formats the sweep measurements the way the paper's Table 1 rows read:
one line per input scale with measured size/depth, then the best-fit
growth model and the claimed bound with a PASS/FAIL verdict.  Used by
every file in ``benchmarks/``.

:class:`PerfReport` is the timing companion: one row per evaluation
strategy (interpreter, compiled, batched, ...) with throughput and
the speedup over a designated baseline row -- the table shape
``bench_eval_runtime.py`` prints and records to
``BENCH_eval_runtime.json`` (DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .fitting import best_fit, consistent_with

__all__ = ["SweepRow", "SweepReport", "PerfRow", "PerfReport"]


@dataclass
class SweepRow:
    """One measurement at one input scale."""

    n: int
    m: int
    size: int
    depth: int
    extra: str = ""


@dataclass
class SweepReport:
    """A measured sweep with claimed bounds for size and depth."""

    title: str
    claimed_size: Optional[str]
    claimed_depth: Optional[str]
    rows: List[SweepRow] = field(default_factory=list)
    scale: str = "n"  # which column drives the fit: "n" or "m"

    def add(self, n: int, m: int, size: int, depth: int, extra: str = "") -> None:
        self.rows.append(SweepRow(n, m, size, depth, extra))

    def _xs(self) -> List[float]:
        return [float(row.n if self.scale == "n" else row.m) for row in self.rows]

    def size_ok(self, tolerance: float = 4.0) -> bool:
        if self.claimed_size is None:
            return True
        return consistent_with(self._xs(), [r.size for r in self.rows], self.claimed_size, tolerance)

    def depth_ok(self, tolerance: float = 4.0) -> bool:
        if self.claimed_depth is None:
            return True
        return consistent_with(self._xs(), [r.depth for r in self.rows], self.claimed_depth, tolerance)

    def render(self) -> str:
        lines = [f"== {self.title} =="]
        header = f"{'n':>6} {'m':>8} {'size':>10} {'depth':>7}  extra"
        lines.append(header)
        for row in self.rows:
            lines.append(
                f"{row.n:>6} {row.m:>8} {row.size:>10} {row.depth:>7}  {row.extra}"
            )
        xs = self._xs()
        if len(self.rows) >= 3:
            size_fit = best_fit(xs, [r.size for r in self.rows])
            depth_fit = best_fit(xs, [r.depth for r in self.rows])
            lines.append(
                f"size : best fit ~ {size_fit.best:<10} claimed O({self.claimed_size})"
                f" -> {'PASS' if self.size_ok() else 'FAIL'}"
            )
            lines.append(
                f"depth: best fit ~ {depth_fit.best:<10} claimed O({self.claimed_depth})"
                f" -> {'PASS' if self.depth_ok() else 'FAIL'}"
            )
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render())


@dataclass
class PerfRow:
    """One timed evaluation strategy."""

    label: str
    seconds: float
    evaluations: int
    extra: str = ""

    @property
    def per_eval_us(self) -> float:
        """Microseconds per evaluation."""
        return 1e6 * self.seconds / max(self.evaluations, 1)


@dataclass
class PerfReport:
    """A throughput table with speedups against a baseline row.

    The *baseline* is the first added row unless named explicitly;
    speedup is baseline per-evaluation time over the row's -- larger
    is faster.
    """

    title: str
    baseline: Optional[str] = None
    rows: List[PerfRow] = field(default_factory=list)

    def add(self, label: str, seconds: float, evaluations: int, extra: str = "") -> PerfRow:
        row = PerfRow(label, seconds, evaluations, extra)
        self.rows.append(row)
        return row

    def _baseline_row(self) -> Optional[PerfRow]:
        if not self.rows:
            return None
        if self.baseline is None:
            return self.rows[0]
        return next((row for row in self.rows if row.label == self.baseline), self.rows[0])

    def speedup(self, label: str) -> float:
        """Per-evaluation speedup of *label* over the baseline row."""
        base = self._baseline_row()
        row = next(r for r in self.rows if r.label == label)
        return base.per_eval_us / max(row.per_eval_us, 1e-12)

    def as_records(self) -> List[dict]:
        """Machine-readable rows (for ``tools/bench_record.py``)."""
        base = self._baseline_row()
        return [
            {
                "label": row.label,
                "seconds": row.seconds,
                "evaluations": row.evaluations,
                "per_eval_us": row.per_eval_us,
                "speedup": base.per_eval_us / max(row.per_eval_us, 1e-12),
                "extra": row.extra,
            }
            for row in self.rows
        ]

    def render(self) -> str:
        lines = [f"== {self.title} =="]
        lines.append(f"{'strategy':<28} {'evals':>8} {'total s':>9} {'µs/eval':>10} {'speedup':>8}  extra")
        base = self._baseline_row()
        for row in self.rows:
            speedup = base.per_eval_us / max(row.per_eval_us, 1e-12)
            lines.append(
                f"{row.label:<28} {row.evaluations:>8} {row.seconds:>9.4f} "
                f"{row.per_eval_us:>10.2f} {speedup:>7.1f}x  {row.extra}"
            )
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render())
