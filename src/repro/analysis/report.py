"""Benchmark report tables.

Formats the sweep measurements the way the paper's Table 1 rows read:
one line per input scale with measured size/depth, then the best-fit
growth model and the claimed bound with a PASS/FAIL verdict.  Used by
every file in ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .fitting import best_fit, consistent_with

__all__ = ["SweepRow", "SweepReport"]


@dataclass
class SweepRow:
    """One measurement at one input scale."""

    n: int
    m: int
    size: int
    depth: int
    extra: str = ""


@dataclass
class SweepReport:
    """A measured sweep with claimed bounds for size and depth."""

    title: str
    claimed_size: Optional[str]
    claimed_depth: Optional[str]
    rows: List[SweepRow] = field(default_factory=list)
    scale: str = "n"  # which column drives the fit: "n" or "m"

    def add(self, n: int, m: int, size: int, depth: int, extra: str = "") -> None:
        self.rows.append(SweepRow(n, m, size, depth, extra))

    def _xs(self) -> List[float]:
        return [float(row.n if self.scale == "n" else row.m) for row in self.rows]

    def size_ok(self, tolerance: float = 4.0) -> bool:
        if self.claimed_size is None:
            return True
        return consistent_with(self._xs(), [r.size for r in self.rows], self.claimed_size, tolerance)

    def depth_ok(self, tolerance: float = 4.0) -> bool:
        if self.claimed_depth is None:
            return True
        return consistent_with(self._xs(), [r.depth for r in self.rows], self.claimed_depth, tolerance)

    def render(self) -> str:
        lines = [f"== {self.title} =="]
        header = f"{'n':>6} {'m':>8} {'size':>10} {'depth':>7}  extra"
        lines.append(header)
        for row in self.rows:
            lines.append(
                f"{row.n:>6} {row.m:>8} {row.size:>10} {row.depth:>7}  {row.extra}"
            )
        xs = self._xs()
        if len(self.rows) >= 3:
            size_fit = best_fit(xs, [r.size for r in self.rows])
            depth_fit = best_fit(xs, [r.depth for r in self.rows])
            lines.append(
                f"size : best fit ~ {size_fit.best:<10} claimed O({self.claimed_size})"
                f" -> {'PASS' if self.size_ok() else 'FAIL'}"
            )
            lines.append(
                f"depth: best fit ~ {depth_fit.best:<10} claimed O({self.claimed_depth})"
                f" -> {'PASS' if self.depth_ok() else 'FAIL'}"
            )
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render())
