"""The ``repro.api`` facade: one front door for the whole pipeline.

PRs 1-5 grew the engine bottom-up, and each layer exposed its own
entry point: ``relevant_grounding(engine=...)``,
``naive_evaluation(strategy=..., grounding_engine=...)``,
``magic_grounding(columnar=...)``, ``generic_circuit(engine=...)``,
``provenance_circuit(optimize_depth=...)``.  This module is the
redesigned public API on top of them (DESIGN.md §10):

* :class:`~repro.config.ExecutionConfig` -- one frozen bundle of the
  engine × strategy × construction knobs, accepted by every layer;
* :func:`solve` -- the one-shot "evaluate this program on this
  database over this semiring" call;
* :class:`Session` -- the compile-once handle: it caches the
  grounding, the per-output-fact circuit constructions and their
  compiled forms, so many queries against one (program, database)
  pair pay interning/grounding/compilation once.  The serving stack
  (:mod:`repro.serving`) holds one ``Session`` per cache entry;
* :func:`program_fingerprint` / :func:`database_fingerprint` -- the
  stable content identities the compiled-circuit cache is keyed on.

The historical entry points remain importable and working; their
knob kwargs are deprecation shims that fold into an
``ExecutionConfig`` (see :func:`repro.config.merge_legacy_knobs`).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping, Optional, Tuple, Union

from .circuits.runtime import CompiledCircuit, IncrementalEvaluator
from .config import (
    DEFAULT_CONFIG,
    ConfigLike,
    ExecutionConfig,
    coerce_config,
)
from .constructions.auto import ConstructionChoice, provenance_circuit
from .constructions.fringe import fringe_circuit
from .constructions.generic import generic_circuit
from .datalog.analysis import (
    AnalysisReport,
    ProgramValidationError,
    analyze_program,
    prune_unreachable,
)
from .datalog.ast import DatalogError, Fact, Program
from .datalog.database import Database
from .datalog.evaluation import EvaluationResult
from .datalog.grounding import (
    ColumnarGroundProgram,
    GroundProgram,
    columnar_grounding,
    relevant_grounding,
)
from .datalog.incremental import MaintainedFixpoint, MaintenancePolicy
from .datalog.seminaive import FixpointEngine
from .semirings import BOOLEAN
from .semirings.base import Semiring

__all__ = [
    "ExecutionConfig",
    "MaintenancePolicy",
    "ProgramValidationError",
    "Session",
    "StreamSession",
    "analyze_program",
    "solve",
    "program_fingerprint",
    "database_fingerprint",
]


def program_fingerprint(program: Program) -> str:
    """A stable content identity for *program* (rules + target).

    Rule ``repr`` is the canonical surface syntax (it round-trips
    through the parser), so two structurally equal programs agree and
    any rule or target change moves the fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(repr(program.target).encode())
    for rule in program.rules:
        digest.update(b"\x00")
        digest.update(repr(rule).encode())
    return digest.hexdigest()[:16]


def database_fingerprint(database: Database) -> str:
    """A stable content identity for *database* (facts + weights).

    Facts are folded in sorted-``repr`` order so insertion order does
    not matter; stored weights participate so a ``set_weight`` call
    moves the fingerprint (a compiled circuit's *structure* only
    depends on the facts, but the server's cached base valuations --
    and therefore correct serving -- depend on the weights too).
    """
    digest = hashlib.sha256()
    for fact in sorted(database.facts(), key=repr):
        digest.update(b"\x00")
        digest.update(repr(fact).encode())
        weight = database.weight(fact)
        if weight is not None:
            digest.update(b"\x01")
            digest.update(repr(weight).encode())
    return digest.hexdigest()[:16]


class Session:
    """A compile-once handle on one (program, database, config) triple.

    The paper's usage pattern is "build once, query many times"; the
    session is that pattern as an object.  Everything expensive is
    computed lazily and cached:

    * :meth:`ground` -- the grounding, in the representation the
      configured strategy consumes (id-space for
      ``strategy="columnar"``, tuple-space otherwise);
    * :meth:`circuit` -- one :class:`ConstructionChoice` per output
      fact, built by the configured construction (``auto`` runs the
      paper's decision tree); the choice caches its
      :class:`CompiledCircuit`;
    * :meth:`solve` -- the fixpoint over any semiring, reusing the
      cached grounding.

    The session never mutates its database; callers who mutate it
    should start a new session (fingerprints make staleness
    detectable -- the serving layer keys its cache on them).

    ``strict=True`` runs the full static analyzer
    (:func:`repro.datalog.analysis.analyze_program`) at construction
    and raises :class:`~repro.datalog.analysis.ProgramValidationError`
    on any error-severity diagnostic; :meth:`analyze` returns the full
    report (optionally semiring-aware) on demand.  With
    ``config.prune`` set, rules unreachable from the target are
    dropped before grounding (:meth:`plan_program`); reachable facts
    keep exactly their unpruned values.
    """

    def __init__(
        self,
        program: Program,
        database: Database,
        config: ConfigLike = None,
        strict: bool = False,
    ):
        self.program = program
        self.database = database
        self.config = coerce_config(config)
        if strict:
            report = analyze_program(program, database)
            if not report.ok:
                raise ProgramValidationError(report.errors())
        self._engine = FixpointEngine(config=self.config.evolve(construction=None))
        self._ground: Optional[Union[GroundProgram, ColumnarGroundProgram]] = None
        self._plan: Optional[Program] = None
        self._choices: Dict[Fact, ConstructionChoice] = {}
        self._fingerprint: Optional[Tuple[str, str, str]] = None
        self._stream: Optional["StreamSession"] = None

    # -- identity ------------------------------------------------------

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """``(program, database, construction)`` content identity."""
        if self._fingerprint is None:
            self._fingerprint = (
                program_fingerprint(self.program),
                database_fingerprint(self.database),
                self.config.resolved_construction,
            )
        return self._fingerprint

    # -- fixpoint evaluation -------------------------------------------

    @property
    def plan_program(self) -> Program:
        """The program the fixpoint plan runs: dead-rule-pruned when
        ``config.prune`` is set, the full program otherwise."""
        if self._plan is None:
            self._plan = (
                prune_unreachable(self.program) if self.config.prune else self.program
            )
        return self._plan

    def analyze(self, semiring: Optional[Semiring] = None) -> AnalysisReport:
        """The static analyzer's full report for this session's pair.

        Passing a *semiring* arms divergence prediction (DL006), which
        reuses the session's cached grounding when one exists.
        """
        ground = self._ground if self.program is self.plan_program else None
        return analyze_program(
            self.program,
            database=self.database,
            semiring=semiring,
            ground=ground,
            config=self.config,
        )

    def ground(self) -> Union[GroundProgram, ColumnarGroundProgram]:
        """The cached grounding, in the strategy's native representation."""
        if self._ground is None:
            program = self.plan_program
            if self.config.resolved_strategy == "columnar":
                self._ground = columnar_grounding(program, self.database)
            else:
                self._ground = relevant_grounding(program, self.database, config=self.config)
        return self._ground

    def solve(
        self,
        semiring: Semiring = BOOLEAN,
        weights: Optional[Mapping[Fact, object]] = None,
        max_iterations: Optional[int] = None,
        raise_on_divergence: bool = False,
    ) -> EvaluationResult:
        """Least-fixpoint evaluation over *semiring* (cached grounding)."""
        return self._engine.evaluate(
            self.plan_program,
            self.database,
            semiring,
            weights=weights,
            ground=self.ground(),
            max_iterations=max_iterations,
            raise_on_divergence=raise_on_divergence,
        )

    def value(self, fact: Fact, semiring: Semiring = BOOLEAN, **kwargs):
        """Least-fixpoint value of one *fact* (``0`` if underivable)."""
        return self.solve(semiring, **kwargs).value(fact)

    # -- circuits ------------------------------------------------------

    def circuit(self, fact: Fact) -> ConstructionChoice:
        """The cached :class:`ConstructionChoice` for output *fact*.

        ``config.construction`` picks the builder: ``auto`` (default)
        runs the decision tree of
        :func:`~repro.constructions.auto.provenance_circuit`;
        ``generic``/``fringe`` pin Theorem 3.1 / Theorem 6.2.
        """
        choice = self._choices.get(fact)
        if choice is None:
            construction = self.config.resolved_construction
            if construction == "auto":
                choice = provenance_circuit(self.program, self.database, fact, config=self.config)
            elif construction == "generic":
                choice = ConstructionChoice(
                    generic_circuit(self.program, self.database, fact, config=self.config),
                    construction="generic",
                    theorem="Theorem 3.1",
                    reason="pinned by ExecutionConfig(construction='generic')",
                )
            else:  # "fringe" (the vocabulary is validated by ExecutionConfig)
                choice = ConstructionChoice(
                    fringe_circuit(self.program, self.database, fact, config=self.config),
                    construction="fringe",
                    theorem="Theorem 6.2",
                    reason="pinned by ExecutionConfig(construction='fringe')",
                )
            self._choices[fact] = choice
        return choice

    def compiled(self, fact: Fact) -> CompiledCircuit:
        """The compiled circuit for output *fact* (cached end to end)."""
        return self.circuit(fact).compiled()

    def evaluate_batch(self, fact: Fact, semiring: Semiring, assignments) -> list:
        """Many valuations of *fact*'s circuit, one compile.

        Threads ``config.backend`` (DESIGN.md §13) into the runtime:
        under ``"vectorized"``/``"auto"`` each maximal same-opcode
        instruction stream runs as one NumPy array expression over the
        assignment matrix, falling back to the pure-Python interpreter
        whenever the semiring or the batch values are outside the ufunc
        contract.
        """
        return self.circuit(fact).evaluate_batch(
            semiring, assignments, backend=self.config.backend
        )

    def serve(
        self,
        fact: Fact,
        semiring: Semiring = BOOLEAN,
        assignment: Optional[Mapping[Fact, object]] = None,
    ) -> IncrementalEvaluator:
        """An incremental point-update session on *fact*'s circuit.

        *assignment* defaults to the database's stored valuation over
        *semiring* -- the live-serving seed.
        """
        if assignment is None:
            assignment = self.database.valuation(semiring)
        return self.circuit(fact).serve(semiring, assignment)

    # -- streaming -----------------------------------------------------

    def stream(
        self, *semirings: Semiring, policy: Optional[MaintenancePolicy] = None
    ) -> "StreamSession":
        """The session's live write handle (lazily created, cached).

        Attaches a :class:`~repro.datalog.incremental.MaintainedFixpoint`
        to the database, after which fact inserts/retracts/reweights
        are absorbed differentially instead of invalidating the
        session wholesale: the cached grounding tracks the maintained
        ground program, stale per-output circuit choices are dropped,
        and circuits served through :meth:`StreamSession.serve`
        receive leaf-level pushes.  Pass the semirings to maintain
        dense value state for (more can be tracked later).

        *policy* (first call only) arms the maintenance watchdogs; a
        budget trip degrades the stream to full recompute instead of
        surfacing the error (DESIGN.md §12).
        """
        if self._stream is None:
            self._stream = StreamSession(self, semirings, policy)
        else:
            for semiring in semirings:
                self._stream.track(semiring)
        return self._stream


class ServedStream:
    """A live circuit evaluator pinned to one output fact of a stream.

    Wraps an :class:`~repro.circuits.runtime.IncrementalEvaluator` and
    keeps it consistent across stream mutations:

    * retracting a leaf the circuit references pushes semiring ``0``
      into its gate (a provenance polynomial at ``x = 0`` -- exactly
      what "the fact is gone" means for an already-built circuit);
    * reweighting (or re-inserting) a known leaf pushes the new value;
    * inserting a fact the circuit has *no* gate for is structural:
      new derivations may exist, so the circuit is rebuilt from the
      maintained database state.

    Deltas that touch facts outside the circuit's leaf set are
    ignored -- they cannot change this output.
    """

    def __init__(self, stream: "StreamSession", output: Fact, semiring: Semiring):
        self._stream = stream
        self.output = output
        self.semiring = semiring
        self.rebuilds = 0
        self._build()

    def _build(self) -> None:
        session = self._stream.session
        self.evaluator = session.circuit(self.output).serve(
            self.semiring, self._stream.assignment(self.semiring)
        )

    def _apply(self, kind: str, fact: Fact, weight: object) -> None:
        known = fact in self.evaluator.compiled.var_slots
        if kind == "insert" and not known:
            self.rebuilds += 1
            self._build()
            return
        if not known:
            return
        semiring = self.semiring
        if kind == "retract":
            value = semiring.zero
        else:
            value = semiring.one if weight is None else weight
        self.evaluator.update({fact: value})

    def value(self):
        """The output fact's current circuit value."""
        return self.evaluator.value()

    @property
    def last_cone_size(self) -> int:
        return self.evaluator.last_cone_size


class StreamSession:
    """Differential writes against a :class:`Session` (DESIGN.md §11).

    Obtained from :meth:`Session.stream`.  Inserts/retracts route
    through the database (so any direct ``db.add_fact`` is equivalent)
    into the attached
    :class:`~repro.datalog.incremental.MaintainedFixpoint`; this
    wrapper keeps the *session-level* artifacts consistent too:

    * the session's cached grounding follows the maintained ground
      program (columnar strategies consume it directly, tuple
      strategies decode it at the boundary);
    * per-output circuit choices are invalidated (they are
      structural), but circuits already served via :meth:`serve` stay
      live through leaf pushes and only rebuild on structural inserts;
    * :meth:`assignment` completes the database valuation with
      semiring zeros for retracted facts that older compiled circuits
      still reference, so binding them never KeyErrors.

    **Degrade-to-recompute** (DESIGN.md §12): if maintenance ever
    fails -- a watchdog budget trips, a non-stable semiring diverges,
    or the maintainer crashes mid-propagation -- the stream *detaches*
    the broken maintainer and degrades: reads fall back to full
    recompute through :meth:`Session.solve` and writes apply straight
    to the database.  Answers stay exactly correct, only slower.  The
    next write attempts one clean rebuild of the maintainer from
    current database state and re-attaches on success.  Degradations
    are counted (``degradations``/``degraded``/``last_degrade_reason``)
    and surfaced in the server's ``/stats``.
    """

    def __init__(
        self,
        session: Session,
        semirings: Tuple[Semiring, ...] = (),
        policy: Optional[MaintenancePolicy] = None,
    ):
        self.session = session
        self.policy = policy
        self._semirings: list[Semiring] = list(semirings)
        self._zeroed: set[Fact] = set()
        self._served: list[ServedStream] = []
        self.fixpoint: Optional[MaintainedFixpoint] = None
        self.degraded = False
        self.degradations = 0
        self.last_degrade_reason: Optional[str] = None
        try:
            self._attach()
        except Exception as exc:
            # Even the initial build degrades instead of failing the
            # stream: reads recompute, the next write retries attach.
            self._degrade(exc)

    # -- maintainer lifecycle ------------------------------------------

    def _attach(self) -> None:
        """One clean build: fresh maintainer over current database state."""
        session = self.session
        self.fixpoint = MaintainedFixpoint(
            session.program,
            session.database,
            semirings=tuple(self._semirings),
            policy=self.policy,
        )
        session._ground = self.fixpoint.cground
        self.fixpoint.add_listener(self._on_delta)
        self.degraded = False

    def _degrade(self, exc: BaseException) -> None:
        """Detach the (possibly inconsistent) maintainer and fall back
        to recompute.  The database itself is never suspect -- its
        mutations land before maintainers are notified -- so dropping
        its delta-patched caches wholesale restores a clean slate."""
        fixpoint = self.fixpoint
        if fixpoint is not None:
            fixpoint.remove_listener(self._on_delta)
            fixpoint.detach()
        self.fixpoint = None
        self.degraded = True
        self.degradations += 1
        self.last_degrade_reason = f"{type(exc).__name__}: {exc}"
        database = self.session.database
        database._invalidate()
        self._invalidate_session()
        for served in tuple(self._served):
            served.rebuilds += 1
            served._build()

    def _invalidate_session(self) -> None:
        session = self.session
        session._fingerprint = None
        session._choices.clear()
        session._ground = None

    def _recover_then(self, kind: str, apply, fact: Fact, weight: object):
        """The degraded write path: try one clean re-attach, then run
        the write -- maintained again on success, plain on failure."""
        try:
            self._attach()
        except Exception as exc:
            self._degrade(exc)
            result = apply()
            self._after_degraded_write(kind, fact, weight)
            return result
        return self._maintained(kind, apply, fact, weight)

    def _maintained(self, kind: str, apply, fact: Fact, weight: object):
        """Run a write through the live maintainer; degrade on failure."""
        try:
            return apply()
        except KeyError:
            raise  # retracting an absent fact is a caller error, not a fault
        except Exception as exc:
            self._degrade(exc)
            self._after_degraded_write(kind, fact, weight)
            # The database mutation landed before maintenance failed
            # (Database notifies observers last), so the write is
            # already durable; report it as applied.
            if kind == "insert":
                return True
            if kind == "retract":
                return fact
            return None

    def _after_degraded_write(self, kind: str, fact: Fact, weight: object) -> None:
        """Keep session artifacts + served circuits consistent for a
        write that bypassed (or killed) the maintainer."""
        self._invalidate_session()
        if kind == "retract":
            self._zeroed.add(fact)
        else:
            self._zeroed.discard(fact)
        for served in tuple(self._served):
            served._apply(kind, fact, weight)

    # -- writes --------------------------------------------------------

    def _guard_idb(self, fact: Fact) -> None:
        """IDB writes are a caller error, never a degrade trigger."""
        if fact.predicate in self.session.program.idb_predicates:
            raise DatalogError(
                f"cannot mutate {fact}: {fact.predicate!r} is an IDB predicate "
                f"of the streamed program (derived relations are maintained, "
                f"not stored)"
            )

    def insert(self, fact, *args, weight: object = None) -> bool:
        """Insert an EDB fact; True iff it was new."""
        coerced = fact if isinstance(fact, Fact) else Fact(fact, tuple(args))
        self._guard_idb(coerced)
        if self.fixpoint is None:
            database = self.session.database
            new = coerced not in database

            def apply():
                database.add_fact(coerced, weight)
                return new

            return self._recover_then("insert", apply, coerced, weight)
        fixpoint = self.fixpoint
        return self._maintained(
            "insert", lambda: fixpoint.insert(coerced, weight=weight), coerced, weight
        )

    def retract(self, fact, *args) -> Fact:
        """Retract an EDB fact; KeyError if absent."""
        coerced = fact if isinstance(fact, Fact) else Fact(fact, tuple(args))
        self._guard_idb(coerced)
        if self.fixpoint is None:
            database = self.session.database
            return self._recover_then(
                "retract", lambda: database.retract_fact(coerced), coerced, None
            )
        fixpoint = self.fixpoint
        return self._maintained(
            "retract", lambda: fixpoint.retract(coerced), coerced, None
        )

    def set_weight(self, fact: Fact, weight: object) -> None:
        """Change one EDB fact's annotation."""
        self._guard_idb(fact)
        database = self.session.database
        if self.fixpoint is None:
            return self._recover_then(
                "weight", lambda: database.set_weight(fact, weight), fact, weight
            )
        return self._maintained(
            "weight", lambda: database.set_weight(fact, weight), fact, weight
        )

    def track(self, semiring: Semiring) -> None:
        """Maintain dense value state for one more semiring."""
        if semiring not in self._semirings:
            self._semirings.append(semiring)
        if self.fixpoint is not None:
            try:
                self.fixpoint.track(semiring)
            except Exception as exc:
                self._degrade(exc)

    # -- reads ---------------------------------------------------------

    def value(self, fact: Fact, semiring: Semiring = BOOLEAN):
        """Maintained value of one IDB fact (O(1) array read when
        maintained; a cached full recompute when degraded)."""
        if self.fixpoint is None:
            return self.session.solve(semiring).value(fact)
        return self.fixpoint.value(fact, semiring)

    def values(self, semiring: Semiring = BOOLEAN) -> Dict[Fact, object]:
        if self.fixpoint is None:
            return dict(self.session.solve(semiring).values)
        return self.fixpoint.values(semiring)

    def result(self, semiring: Semiring = BOOLEAN, **kwargs) -> EvaluationResult:
        """Batch-equivalent :class:`EvaluationResult` (see
        :meth:`MaintainedFixpoint.result`)."""
        if self.fixpoint is None:
            return self.session.solve(semiring, **kwargs)
        return self.fixpoint.result(semiring, **kwargs)

    def assignment(self, semiring: Semiring) -> Dict[Fact, object]:
        """The database valuation, extended with zeros for leaves only
        older compiled circuits still reference."""
        assignment = self.session.database.valuation(semiring)
        zero = semiring.zero
        for fact in self._zeroed:
            assignment.setdefault(fact, zero)
        return assignment

    def serve(self, fact: Fact, semiring: Semiring = BOOLEAN) -> ServedStream:
        """A continuously-maintained circuit evaluator on *fact*."""
        served = ServedStream(self, fact, semiring)
        self._served.append(served)
        return served

    # -- delta plumbing ------------------------------------------------

    def _on_delta(self, kind: str, fact: Fact, weight: object) -> None:
        session = self.session
        session._fingerprint = None
        session._choices.clear()
        session._ground = self.fixpoint.cground
        if kind == "retract":
            self._zeroed.add(fact)
        else:
            self._zeroed.discard(fact)
        for served in tuple(self._served):
            served._apply(kind, fact, weight)


def solve(
    program: Program,
    database: Database,
    semiring: Semiring = BOOLEAN,
    *,
    config: ConfigLike = None,
    weights: Optional[Mapping[Fact, object]] = None,
    ground: Optional[Union[GroundProgram, ColumnarGroundProgram]] = None,
    max_iterations: Optional[int] = None,
    raise_on_divergence: bool = False,
    strict: bool = False,
) -> EvaluationResult:
    """One-shot fixpoint evaluation through the unified facade.

    Equivalent to every historical spelling -- ``naive_evaluation``,
    ``seminaive_evaluation``, ``FixpointEngine(...).evaluate`` -- with
    the knobs carried by one :class:`ExecutionConfig`::

        from repro.api import ExecutionConfig, solve
        result = solve(program, db, TROPICAL,
                       config=ExecutionConfig(engine="columnar", strategy="columnar"))

    ``strict=True`` runs the full semiring-aware static analyzer
    first and raises
    :class:`~repro.datalog.analysis.ProgramValidationError` on any
    error diagnostic -- including a predicted divergence (DL006), so a
    COUNTING fixpoint over cyclic data fails before a single round
    runs instead of burning the iteration budget.

    For repeated queries against the same pair, build a
    :class:`Session` instead.
    """
    if strict:
        report = analyze_program(
            program, database=database, semiring=semiring, ground=ground, config=config
        )
        if not report.ok:
            raise ProgramValidationError(report.errors())
    engine = FixpointEngine(config=coerce_config(config).evolve(construction=None))
    return engine.evaluate(
        program,
        database,
        semiring,
        weights=weights,
        ground=ground,
        max_iterations=max_iterations,
        raise_on_divergence=raise_on_divergence,
    )


# Re-exported so `from repro.api import ...` is self-contained.
DEFAULT_CONFIG = DEFAULT_CONFIG
