"""Numeric kernel backends (DESIGN.md §13).

The hot loops -- the dense delta loop in
:func:`repro.datalog.seminaive._columnar_fixpoint` and
:meth:`repro.circuits.runtime.CompiledCircuit.evaluate_batch` -- ship
two interchangeable implementations:

* ``python`` (the default): the exec-generated pure-Python kernels.
  No dependencies; always available; exact reference semantics.
* ``vectorized``: whole-column NumPy ufunc expressions over zero-copy
  ``np.frombuffer`` views of the same ``array('q')`` buffers
  (:mod:`repro.backends.vectorized`).  Requires NumPy (the ``perf``
  extra).
* ``auto``: ``vectorized`` when NumPy is importable, else ``python``.

Selection is a field on :class:`repro.config.ExecutionConfig`
(``backend=``), validated against :data:`repro.config.BACKENDS` at
construction time and resolved against NumPy availability *lazily* at
evaluation time by :func:`resolve_backend` -- building a config never
imports NumPy, so the no-dependency install path stays import-clean.

The vectorized kernels are conservative: whenever an input could make
NumPy semantics diverge from the Python reference (NaN ordering,
``int64`` overflow vs. Python bigints, unbindable values), they return
``None`` and the caller re-runs the pure-Python kernel from scratch --
both are deterministic, so the fallback is exact, just slower.

:mod:`repro.backends.sharding` rides along here: coarse multicore
parallelism for ``columnar_grounding()`` (shard by stable hash of the
head fact across a ``multiprocessing`` pool, merge deterministically).
"""

from __future__ import annotations

from ..config import BACKENDS, DEFAULT_BACKEND

__all__ = ["numpy_available", "resolve_backend"]

_NUMPY_PROBED = False
_NUMPY = None


def _numpy():
    """The :mod:`numpy` module, or ``None`` -- probed once, cached."""
    global _NUMPY_PROBED, _NUMPY
    if not _NUMPY_PROBED:
        try:
            import numpy  # noqa: F401 -- availability probe
        except ImportError:
            # ModuleNotFoundError for clean absence; plain ImportError
            # for broken installs -- either way the backend is absent.
            _NUMPY = None
        else:
            _NUMPY = numpy
        _NUMPY_PROBED = True
    return _NUMPY


def numpy_available() -> bool:
    """Whether the optional NumPy dependency (the ``perf`` extra) imports."""
    return _numpy() is not None


def resolve_backend(backend: str | None) -> str:
    """Resolve a configured backend name to ``"python"`` | ``"vectorized"``.

    ``None`` means the repo default (:data:`repro.config.DEFAULT_BACKEND`).
    ``"auto"`` picks ``"vectorized"`` when NumPy imports and ``"python"``
    otherwise; an explicit ``"vectorized"`` without NumPy raises
    :class:`ModuleNotFoundError` -- an explicit request must not degrade
    silently.
    """
    name = backend or DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS} (or None for the default)")
    if name == "auto":
        return "vectorized" if numpy_available() else "python"
    if name == "vectorized" and not numpy_available():
        raise ModuleNotFoundError(
            "backend='vectorized' requires NumPy (install the 'perf' extra, e.g. pip install "
            "'repro-datalog-circuits[perf]'); use backend='auto' to fall back to the pure-Python "
            "kernels automatically when NumPy is absent"
        )
    return name
