"""Sharded multicore grounding (DESIGN.md §13).

:func:`sharded_columnar_grounding` splits ``columnar_grounding()``
across a ``multiprocessing`` pool: every worker receives the *same*
pickled base :class:`~repro.datalog.store.ColumnarStore` (the flat
``array('q')`` columns and the private symbol-scoping from PR 5 are
what make that payload cheap), runs the *full* derivation fixpoint --
so rounds, the derived set and freshly interned symbol ids are
identical everywhere -- but only **emits** the ground rules whose head
hashes to its shard (:func:`~repro.datalog.grounding.shard_of_fact`).
Every ground rule is therefore emitted by exactly one worker, and the
union of the shards is exactly the serial grounding.

The merge walks the shards in shard order: per-shard fact ids are
remapped through one interning pass into the merged program (the
shard's ``fact_rows`` are symbol-id tuples, valid verbatim because all
workers share the symbol table contents), rule arrays are extended
with rebased CSR pointers, and the per-shard ``iterations`` -- equal
by construction -- become the merged count.  The result has the same
``rule_keys()`` and ``iterations`` as the serial pass; only the rule
*order* differs (grouped by shard, ascending emission order within a
shard), which no consumer depends on.

When a pool cannot be created (sandboxes without ``/dev/shm``,
unpicklable programs), the same shard/merge protocol runs serially
in-process -- slower, but bit-identical, so the determinism contract
holds everywhere.
"""

from __future__ import annotations

import os
import pickle
from array import array
from typing import List, Tuple

from ..datalog.ast import Program
from ..datalog.database import Database
from ..datalog.grounding import ColumnarGroundProgram, _ColumnarProgramGrounder, _stats

__all__ = ["sharded_columnar_grounding"]

#: One shard's contribution, in plain picklable arrays:
#: ``(fact_preds, fact_rows, rule_head, rule_no, idb_indptr, idb_flat,
#: edb_indptr, edb_flat, symbols, iterations)``.
_ShardResult = Tuple


def _ground_shard(task) -> _ShardResult:
    """Pool worker: full fixpoint, shard-filtered emission."""
    program, store, index, count = task
    grounder = _ColumnarProgramGrounder(program, None, store=store, shard=(index, count)).run()
    cground = grounder.cground
    return (
        cground.fact_preds,
        cground.fact_rows,
        cground.rule_head,
        cground.rule_no,
        cground.idb_indptr,
        cground.idb_flat,
        cground.edb_indptr,
        cground.edb_flat,
        cground.symbols,
        grounder.iterations,
    )


def _pool_map(tasks) -> Tuple[List[_ShardResult], bool]:
    """Map :func:`_ground_shard` over a pool, or serially in-process.

    The serial fallback runs the identical shard/merge protocol (the
    grounder copies the shared base store per shard), so results are
    bit-identical either way.  Returns ``(parts, pooled)`` -- the flag
    tells the caller whether worker-process grounding stats were lost
    and need re-recording in this process.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else "spawn"
    try:
        ctx = multiprocessing.get_context(method)
        workers = min(len(tasks), max(os.cpu_count() or 1, 2))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_ground_shard, tasks), True
    except (OSError, PermissionError, ImportError, AttributeError, pickle.PicklingError):
        return [_ground_shard(task) for task in tasks], False


def sharded_columnar_grounding(
    program: Program, database: Database, workers: int
) -> ColumnarGroundProgram:
    """``columnar_grounding`` sharded by hash of head fact (see the
    module docstring for the protocol)."""
    if workers < 2:
        raise ValueError("sharded_columnar_grounding requires workers >= 2")
    base = database.columnar_store()
    tasks = [(program, base, index, workers) for index in range(workers)]
    parts, pooled = _pool_map(tasks)

    iterations = {part[9] for part in parts}
    if len(iterations) != 1:
        raise AssertionError(f"shard workers disagreed on fixpoint rounds: {sorted(iterations)}")

    # Merge in shard order.  Worker symbol tables are identical by
    # construction (same pickled base, same deterministic interning
    # order); shard 0's table is used so head constants interned
    # during grounding decode in the merged program too.
    merged = ColumnarGroundProgram(program, parts[0][8])
    for part in parts:
        preds, rows, rule_head, rule_no, idb_ptr, idb_flat, edb_ptr, edb_flat = part[:8]
        fid_map = array("q", (merged.fact_id(pred, row) for pred, row in zip(preds, rows)))
        merged.rule_head.extend(fid_map[fid] for fid in rule_head)
        merged.rule_no.extend(rule_no)
        idb_base = len(merged.idb_flat)
        merged.idb_flat.extend(fid_map[fid] for fid in idb_flat)
        merged.idb_indptr.extend(idb_base + ptr for ptr in idb_ptr[1:])
        edb_base = len(merged.edb_flat)
        merged.edb_flat.extend(fid_map[fid] for fid in edb_flat)
        merged.edb_indptr.extend(edb_base + ptr for ptr in edb_ptr[1:])
    merged.iterations = iterations.pop()
    if pooled:
        # The serial fallback's shard grounders recorded their rule
        # counts in this process already; pool workers recorded them in
        # children, so re-record the merged total here.
        _stats().ground_rules += len(merged)
    return merged
