"""Whole-column NumPy kernels for the two hot loops (DESIGN.md §13).

Both entry points return ``None`` whenever they cannot *prove* the
result will match the pure-Python reference bit for bit -- unsupported
semiring, NumPy absent, values outside the machine representation
(``int64`` overflow vs. Python bigints, huge exact ints in a float
column), or a NaN born anywhere in the computation (NumPy's
``minimum``/``maximum`` propagate NaN where Python's comparison-based
``⊕`` swallows it).  The callers then fall back to the pure-Python
kernel from scratch: both backends are deterministic, so the fallback
is exact, just slower.

Zero-copy view contract: the columnar fixpoint reads the CSR rule
arrays of :class:`~repro.datalog.grounding.ColumnarGroundProgram`
(``rule_head``, ``idb_indptr``/``idb_flat``, ``edb_indptr``/
``edb_flat``, ``by_head_csr()``, ``by_body_csr()``) through
``np.frombuffer`` -- no copy, no decode.  The views are read-only by
construction (NumPy marks buffer views non-writeable only for bytes;
we simply never write through them) and valid for the duration of the
call because the grounding is immutable once built.

Parity notes (mirrored by ``tests/backends/test_vectorized.py``):

* ``⊗``-folds run column by column starting from ``one`` and
  ``⊕``-segments fold left-to-right via ``ufunc.reduceat`` with the
  identity applied once at the end -- the exact fold orders of
  :func:`repro.datalog.seminaive._columnar_fixpoint`, so even
  out-of-domain inputs (negative "probabilities", fuzzy values > 1)
  produce identical results.
* Dirty sets are materialized as sorted index arrays, so
  ``rule_evaluations``, iteration counts and convergence decisions
  coincide round for round (Jacobi order is preserved: all updates are
  batched per round).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from ..circuits.circuit import OP_ADD
from ..semirings.base import Semiring
from . import _numpy

__all__ = ["vectorized_columnar_fixpoint", "vectorized_evaluate_batch"]

#: Magnitude cap for exact Python ints living in a float64 column: at
#: ``2**32`` a fold of up to ~2**20 of them stays below 2**53, so the
#: float arithmetic is exact wherever Python's would have stayed in
#: (arbitrary-precision) int space.
_FLOAT_EXACT_INT_LIMIT = 2**32

#: Magnitude cap on circuit-batch int64 values: binary gates over
#: inputs ≤ 2**31 produce intermediates ≤ 2**62, which int64 holds
#: exactly; any gate result above the cap bails back to Python bigints.
_BATCH_INT_LIMIT = 2**31


def _ufunc_spec(semiring: Semiring):
    """``(np, ⊕-ufunc, ⊗-ufunc, dtype, eq_tols)`` or ``None``."""
    np = _numpy()
    if np is None:
        return None
    add_name, mul_name = semiring.vector_add_expr, semiring.vector_mul_expr
    if not add_name or not mul_name or not semiring.vector_dtype:
        return None
    add_u = getattr(np, add_name, None)
    mul_u = getattr(np, mul_name, None)
    if add_u is None or mul_u is None:
        return None
    return np, add_u, mul_u, np.dtype(semiring.vector_dtype), semiring.vector_eq_tols


def _coerce_values(np, raw: List[object], dtype):
    """*raw* as a 1-D array of *dtype*, or ``None`` when the conversion
    could diverge from Python-object arithmetic (see module docstring)."""
    kind = dtype.kind
    if kind == "b":
        # Python `or`/`and` return an *operand*; only genuine bools
        # coincide with logical_or/logical_and over a bool column.
        if any(type(v) is not bool for v in raw):
            return None
    elif kind == "i":
        if any(not isinstance(v, int) for v in raw):
            return None
    else:
        for v in raw:
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                return None
            if isinstance(v, int) and (v > _FLOAT_EXACT_INT_LIMIT or v < -_FLOAT_EXACT_INT_LIMIT):
                return None
    try:
        out = np.array(raw, dtype=dtype)
    except (OverflowError, ValueError, TypeError):
        return None
    return out


def _expand_csr(np, starts, lens):
    """Flat positions of the CSR ranges ``[starts[i], starts[i]+lens[i])``."""
    total = int(lens.sum())
    bases = starts - (np.cumsum(lens) - lens)
    return np.repeat(bases, lens) + np.arange(total, dtype=np.int64)


def _changed_mask(np, totals, current, tols):
    """``not semiring.eq`` vectorized: exact ``!=`` or ``math.isclose``."""
    if tols is None:
        return totals != current
    rel, abs_tol = tols
    finite = np.isfinite(totals) & np.isfinite(current)
    close = (totals == current) | (
        finite
        & (np.abs(totals - current) <= np.maximum(rel * np.maximum(np.abs(totals), np.abs(current)), abs_tol))
    )
    return ~close


def _counting_guard(np, lens_per_rule, by_head_ptr) -> Optional[int]:
    """Magnitude threshold under which int64 arithmetic is provably
    exact: products of ≤ K body values each below the threshold stay
    under 2**62 and ⊕-folds of ≤ F of those stay under 2**63."""
    K = max(1, int(lens_per_rule.max()) if lens_per_rule.size else 1)
    fan = np.diff(by_head_ptr)
    F = max(1, int(fan.max()) if fan.size else 1)
    bits = 62 - F.bit_length()
    per_factor = bits // K
    if per_factor < 2:
        return None
    return 1 << per_factor


def vectorized_columnar_fixpoint(
    cground,
    semiring: Semiring,
    edb_value: Mapping,
    max_iterations: int,
) -> Optional[Tuple[List[object], int, bool, int]]:
    """The delta loop of ``_columnar_fixpoint`` as whole-column array
    ops; returns ``(value, iterations, converged, rule_evaluations)``
    exactly as the Python kernel would, or ``None`` to decline."""
    spec = _ufunc_spec(semiring)
    if spec is None:
        return None
    np, add_u, mul_u, dtype, tols = spec
    nrules = len(cground)
    nfacts = cground.fact_count
    if nrules == 0 or nfacts == 0:
        return None
    zero, one = semiring.zero, semiring.one
    is_float = dtype.kind == "f"
    is_int = dtype.kind == "i"

    # Zero-copy views over the CSR rule arrays.
    i64 = np.int64
    rule_head = np.frombuffer(cground.rule_head, dtype=i64)
    idb_ptr = np.frombuffer(cground.idb_indptr, dtype=i64)
    idb_flat = np.frombuffer(cground.idb_flat, dtype=i64) if len(cground.idb_flat) else np.empty(0, i64)
    edb_ptr = np.frombuffer(cground.edb_indptr, dtype=i64)
    edb_flat = np.frombuffer(cground.edb_flat, dtype=i64) if len(cground.edb_flat) else np.empty(0, i64)
    bh_ptr_a, bh_rules_a = cground.by_head_csr()
    bb_ptr_a, bb_rules_a = cground.by_body_csr()
    bh_ptr = np.frombuffer(bh_ptr_a, dtype=i64)
    bh_rules = np.frombuffer(bh_rules_a, dtype=i64) if len(bh_rules_a) else np.empty(0, i64)
    bb_ptr = np.frombuffer(bb_ptr_a, dtype=i64)
    bb_rules = np.frombuffer(bb_rules_a, dtype=i64) if len(bb_rules_a) else np.empty(0, i64)

    idb_lens = idb_ptr[1:] - idb_ptr[:-1]
    edb_lens = edb_ptr[1:] - edb_ptr[:-1]

    int_guard = _counting_guard(np, np.maximum(idb_lens + edb_lens, 1), bh_ptr) if is_int else None
    if is_int and int_guard is None:
        return None

    # Dense valuation, EDB slots decoded once -- as the Python kernel.
    value = np.full(nfacts, zero, dtype=dtype)
    decode = cground.decode_fact
    edb_ids = cground.edb_fact_ids()
    edb_fids = np.frombuffer(edb_ids, dtype=i64) if len(edb_ids) else np.empty(0, i64)
    if edb_fids.size:
        raw = [edb_value[decode(int(fid))] for fid in edb_fids]
        filled = _coerce_values(np, raw, dtype)
        if filled is None:
            return None
        value[edb_fids] = filled
    if is_float and bool(np.isnan(value).any()):
        return None
    if int_guard is not None and value.size and int(np.abs(value).max()) > int_guard:
        return None

    # Rules grouped by body-row length once: the gather columns for a
    # group of G rules with L body atoms form a (G, L) matrix.
    def _groups(ptr, lens, flat):
        groups = []
        for length in np.unique(lens) if lens.size else []:
            L = int(length)
            rows = np.nonzero(lens == L)[0]
            cols = flat[ptr[rows][:, None] + np.arange(L, dtype=i64)] if L else None
            groups.append((L, rows, cols))
        return groups

    idb_groups = _groups(idb_ptr, idb_lens, idb_flat)
    edb_groups = _groups(edb_ptr, edb_lens, edb_flat)

    with np.errstate(all="ignore"):
        # Stage-invariant EDB products: fold from `one`, column by
        # column -- Python's exact left-fold order.
        edb_product = np.full(nrules, one, dtype=dtype)
        for L, rows, cols in edb_groups:
            if not L:
                continue
            term = np.full(rows.size, one, dtype=dtype)
            for j in range(L):
                term = mul_u(term, value[cols[:, j]])
            edb_product[rows] = term
        if is_float and bool(np.isnan(edb_product).any()):
            return None
        if int_guard is not None and edb_product.size and int(np.abs(edb_product).max()) > int_guard:
            return None

        rule_term = np.full(nrules, zero, dtype=dtype)
        dirty_mark = np.ones(nrules, dtype=bool)
        dirty_count = nrules
        iterations = 0
        converged = False
        rule_evaluations = 0
        while iterations < max_iterations:
            rule_evaluations += dirty_count
            for L, rows, cols in idb_groups:
                sel = dirty_mark[rows]
                if not sel.any():
                    continue
                r = rows[sel]
                term = edb_product[r]
                if L:
                    c = cols[sel]
                    for j in range(L):
                        term = mul_u(term, value[c[:, j]])
                rule_term[r] = term
            heads = np.unique(rule_head[dirty_mark]) if dirty_count else np.empty(0, i64)
            iterations += 1
            if not heads.size:
                converged = True
                break
            # Segment-⊕ per dirty head over *all* its cached rule
            # terms (by_head order = ascending rule position), then the
            # identity folded in once -- ⊕ is exactly associative and
            # commutative on these machine types absent NaN.
            starts = bh_ptr[heads]
            seg_lens = bh_ptr[heads + 1] - starts
            flat = _expand_csr(np, starts, seg_lens)
            gathered = rule_term[bh_rules[flat]]
            seg_starts = np.cumsum(seg_lens) - seg_lens
            totals = add_u.reduceat(gathered, seg_starts)
            totals = add_u(totals, np.asarray(zero, dtype=dtype))
            if is_float and bool(np.isnan(totals).any()):
                return None
            changed = _changed_mask(np, totals, value[heads], tols)
            if not changed.any():
                converged = True
                break
            delta = heads[changed]
            value[delta] = totals[changed]
            if int_guard is not None and int(np.abs(value).max()) > int_guard:
                return None
            # Next dirty set: CSR-expand by_body over the delta heads,
            # dedupe via a mark array; nonzero() yields it sorted.
            starts = bb_ptr[delta]
            seg_lens = bb_ptr[delta + 1] - starts
            dirty_mark[:] = False
            if int(seg_lens.sum()):
                dirty_mark[bb_rules[_expand_csr(np, starts, seg_lens)]] = True
            dirty_count = int(dirty_mark.sum())
    return value.tolist(), iterations, converged, rule_evaluations


# ----------------------------------------------------------------------
# Batched circuit evaluation
# ----------------------------------------------------------------------


def _batch_plan(np, compiled, outputs_only: bool):
    """Array-ified instruction streams for one ``CompiledCircuit``,
    cached on the circuit (``_vec_plans``).

    Each same-opcode segment is split greedily into *chunks* whose
    gates are mutually independent (no gate reads a destination at or
    after the chunk's first destination), so a chunk executes as one
    ufunc call over the whole assignment matrix.  The test is
    conservative -- node indices are topological, so ``child >= first
    dest of chunk`` is the only way a dependency can point inside it.
    """
    plan = compiled._vec_plans.get(outputs_only)
    if plan is not None:
        return plan
    if outputs_only:
        loads, ones, segments = compiled._filtered_streams()
    else:
        loads, ones, segments = compiled.load_pairs, compiled.const1_nodes, compiled.segments
    i64 = np.int64
    load_d = np.array([d for d, _ in loads], dtype=i64)
    load_s = np.array([s for _, s in loads], dtype=i64)
    ones_arr = np.array(ones, dtype=i64)
    chunks = []

    def flush(op, triples):
        if triples:
            d, l, r = zip(*triples)
            chunks.append((op, np.array(d, i64), np.array(l, i64), np.array(r, i64)))

    for op, triples in segments:
        current: list = []
        first_dest = -1
        for dest, left, right in triples:
            if current and (left >= first_dest or right >= first_dest):
                flush(op, current)
                current = []
            if not current:
                first_dest = dest
            current.append((dest, left, right))
        flush(op, current)
    plan = (load_d, load_s, ones_arr, chunks)
    compiled._vec_plans[outputs_only] = plan
    return plan


def vectorized_evaluate_batch(
    compiled,
    semiring: Semiring,
    assignments: List,
    out: int,
    position: Optional[int],
) -> Optional[List[object]]:
    """``CompiledCircuit.evaluate_batch`` as one array expression per
    independent instruction chunk over the whole assignment matrix;
    ``None`` declines back to the per-assignment Python runner.

    *assignments* must already be materialized (the caller lists the
    iterable so the fallback can re-consume it); *out*/*position* are
    the resolved output node and its output-list position (``None``
    position means an interior node: the full streams run, matching
    the Python path's full pass).
    """
    spec = _ufunc_spec(semiring)
    if spec is None:
        return None
    np, add_u, mul_u, dtype, _tols = spec
    if not assignments:
        return []
    rows = [compiled.bind(assignment) for assignment in assignments]
    flat: List[object] = []
    for row in rows:
        flat.extend(row)
    coerced = _coerce_values(np, flat, dtype)
    if coerced is None:
        return None
    is_float = dtype.kind == "f"
    is_int = dtype.kind == "i"
    if is_float and bool(np.isnan(coerced).any()):
        return None
    if is_int and coerced.size and int(np.abs(coerced).max()) > _BATCH_INT_LIMIT:
        return None
    matrix = coerced.reshape(len(rows), compiled.num_slots) if compiled.num_slots else coerced.reshape(len(rows), 0)
    load_d, load_s, ones_arr, chunks = _batch_plan(np, compiled, position is not None)
    values = np.full((len(rows), compiled.size), semiring.zero, dtype=dtype)
    if ones_arr.size:
        values[:, ones_arr] = semiring.one
    if load_d.size:
        values[:, load_d] = matrix[:, load_s]
    with np.errstate(all="ignore"):
        for op, d, l, r in chunks:
            ufunc = add_u if op == OP_ADD else mul_u
            result = ufunc(values[:, l], values[:, r])
            # NaN born mid-circuit (inf·0, inf + -inf) or an int64
            # magnitude past the exactness cap: Python semantics
            # diverge from the ufuncs there, so decline.
            if is_float and bool(np.isnan(result).any()):
                return None
            if is_int and result.size and int(np.abs(result).max()) > _BATCH_INT_LIMIT:
                return None
            values[:, d] = result
    return values[:, out].tolist()
