"""Boundedness of Datalog over semirings (Section 4).

CQ homomorphisms and ``Chom`` UCQ containment (Theorem 4.6's
machinery), the exact CFG-finiteness decision for chain programs
(Proposition 5.5), a homomorphism-based boundedness certifier for
linear programs, and the Definition 4.1 empirical iteration probe.
"""

from .checker import (
    BoundednessReport,
    analyze_boundedness,
    chain_program_boundedness,
    circuit_equivalence_probe,
    empirical_iteration_probe,
    expansion_boundedness_certificate,
)
from .ucq_equivalence import equivalent_ucq, ucq_answers, ucq_matches_program
from .homomorphism import (
    cq_contained_in,
    cq_equivalent,
    find_homomorphism,
    has_homomorphism,
    ucq_contained_in,
)

__all__ = [
    "find_homomorphism",
    "has_homomorphism",
    "cq_contained_in",
    "cq_equivalent",
    "ucq_contained_in",
    "BoundednessReport",
    "chain_program_boundedness",
    "expansion_boundedness_certificate",
    "empirical_iteration_probe",
    "circuit_equivalence_probe",
    "analyze_boundedness",
    "equivalent_ucq",
    "ucq_answers",
    "ucq_matches_program",
]
