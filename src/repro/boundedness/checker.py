"""Boundedness analysis (Section 4, Proposition 5.5).

Boundedness over the Boolean semiring is undecidable in general
[12, 16], so this module offers a portfolio:

* :func:`chain_program_boundedness` -- **exact** for basic chain
  programs over any absorptive semiring: boundedness ⟺ finiteness of
  the corresponding CFG (Proposition 5.5), decidable in polynomial
  time.
* :func:`expansion_boundedness_certificate` -- a sound *boundedness*
  certifier for linear programs over ``Chom`` semirings via Theorem
  4.6: find ``N`` such that every expansion in a lookahead window
  beyond ``N`` receives a homomorphism from some expansion ≤ ``N``.
  A found ``N`` is a proof for the window and strong evidence overall
  (for the CGKV-style programs treated in Section 6.2 it is
  conclusive when the window exceeds the automaton's period).
* :func:`empirical_iteration_probe` -- Definition 4.1 head-on: run
  the Boolean fixpoint on growing inputs and watch the iteration
  count.  Flat ⇒ evidence of boundedness; growing ⇒ *proof* of
  unboundedness on the probed family.
* :func:`circuit_equivalence_probe` -- the same question asked of
  *circuits*: sample random Boolean valuations 64 at a time through
  the bitset-parallel runtime
  (:func:`repro.circuits.runtime.evaluate_boolean_batch`) and compare
  two circuits -- e.g. the ``k``-layer truncation against a deeper
  unrolling -- on every sample.  A mismatch is a concrete
  unboundedness witness at level ``k``; agreement on a large sample
  is the Monte-Carlo face of the Corollary 4.7 equivalence (Boolean
  agreement suffices over ``Chom``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.runtime import compile_circuit
from ..datalog.ast import Program
from ..datalog.database import Database
from ..datalog.expansions import ConjunctiveQuery, expansions
from ..datalog.seminaive import FixpointEngine
from ..grammars.chain import chain_program_to_cfg
from .homomorphism import has_homomorphism

__all__ = [
    "BoundednessReport",
    "chain_program_boundedness",
    "expansion_boundedness_certificate",
    "empirical_iteration_probe",
    "circuit_equivalence_probe",
    "analyze_boundedness",
]


@dataclass
class BoundednessReport:
    """Outcome of a boundedness analysis.

    ``bounded`` is ``True``/``False`` when the method is conclusive
    for the asked question, ``None`` when only evidence was gathered.
    """

    program_target: str
    method: str
    bounded: Optional[bool]
    certificate: Optional[int] = None
    details: str = ""
    evidence: List[Tuple[int, int]] = field(default_factory=list)

    def __repr__(self) -> str:
        verdict = {True: "BOUNDED", False: "UNBOUNDED", None: "INCONCLUSIVE"}[self.bounded]
        extra = f", k={self.certificate}" if self.certificate is not None else ""
        return f"BoundednessReport({self.program_target}: {verdict} via {self.method}{extra})"


def chain_program_boundedness(program: Program) -> BoundednessReport:
    """Proposition 5.5: exact decision for basic chain programs.

    The program is bounded over **any** absorptive semiring iff its
    CFG is finite; the certificate is the longest accepted word length
    (the fixpoint is reached within that many rounds).
    """
    grammar = chain_program_to_cfg(program)
    if grammar.is_finite():
        normalized = grammar.normalized()
        words = normalized.generate_words(max_length=_finite_word_cap(normalized))
        longest = max((len(w) for w in words), default=0)
        return BoundednessReport(
            program.target,
            method="cfg-finiteness",
            bounded=True,
            certificate=max(longest, 1),
            details=f"CFG finite; longest word has length {longest}",
        )
    return BoundednessReport(
        program.target,
        method="cfg-finiteness",
        bounded=False,
        details="CFG is infinite (dependency cycle among useful nonterminals)",
    )


def _finite_word_cap(grammar) -> int:
    # An acyclic, ε/unit-free grammar derives words of length at most
    # (max rhs length) ** (#nonterminals); keep a generous small cap.
    max_rhs = max((len(p.rhs) for p in grammar.productions), default=1)
    return max(1, max_rhs) ** max(1, len(grammar.nonterminals))


def expansion_boundedness_certificate(
    program: Program,
    max_certificate: int = 6,
    window: int = 4,
) -> BoundednessReport:
    """Theorem 4.6 certifier for linear programs over ``Chom``.

    Searches for the smallest ``N ≤ max_certificate`` such that every
    expansion with ``N < steps ≤ N + window`` recursive applications
    is subsumed (receives a homomorphism from) some expansion with
    ``≤ N`` applications.  Homomorphism-subsumed expansions stay
    subsumed under further unfolding for the linear programs treated
    here, so the window check is the practical content of the theorem.
    """
    if not program.is_linear():
        return BoundednessReport(
            program.target,
            method="expansion-homomorphism",
            bounded=None,
            details="program is not linear; expansion machinery unavailable",
        )
    by_steps: List[List[ConjunctiveQuery]] = [
        expansions(program, i) for i in range(max_certificate + window + 1)
    ]
    for n in range(max_certificate + 1):
        base = [cq for group in by_steps[: n + 1] for cq in group]
        if not base:
            continue
        covered = True
        for later_group in by_steps[n + 1 : n + window + 1]:
            for later in later_group:
                if not any(has_homomorphism(early, later) for early in base):
                    covered = False
                    break
            if not covered:
                break
        if covered:
            return BoundednessReport(
                program.target,
                method="expansion-homomorphism",
                bounded=True,
                certificate=n + 1,
                details=(
                    f"every expansion with steps in ({n}, {n + window}] is "
                    f"homomorphically subsumed by an expansion with ≤ {n} steps"
                ),
            )
    return BoundednessReport(
        program.target,
        method="expansion-homomorphism",
        bounded=None,
        details=(
            f"no certificate ≤ {max_certificate} with window {window}; "
            "program is likely unbounded"
        ),
    )


def empirical_iteration_probe(
    program: Program,
    instance_family: Callable[[int], Database],
    sizes: Sequence[int],
    engine: Optional[FixpointEngine] = None,
) -> BoundednessReport:
    """Definition 4.1 probe: Boolean fixpoint rounds across input sizes.

    A strictly growing profile proves unboundedness (the rounds exceed
    every constant on the family); a flat profile is evidence of
    boundedness.  *engine* threads a configured
    :class:`FixpointEngine` through the probe; note the round count is
    strategy-independent today (naive and semi-naive take identical
    rounds, and the Boolean closure is set-based), so the parameter
    only matters for future backends with different counting.
    """
    engine = engine or FixpointEngine()
    evidence = [
        (size, engine.boolean_iterations(program, instance_family(size))) for size in sizes
    ]
    iteration_counts = [it for _size, it in evidence]
    growing = all(b > a for a, b in zip(iteration_counts, iteration_counts[1:]))
    flat = len(set(iteration_counts)) == 1
    if growing and len(sizes) >= 3:
        return BoundednessReport(
            program.target,
            method="iteration-probe",
            bounded=False,
            details="fixpoint rounds grow strictly with input size",
            evidence=evidence,
        )
    if flat:
        return BoundednessReport(
            program.target,
            method="iteration-probe",
            bounded=None,
            certificate=iteration_counts[0] if iteration_counts else None,
            details="fixpoint rounds constant on the probed family (evidence only)",
            evidence=evidence,
        )
    return BoundednessReport(
        program.target,
        method="iteration-probe",
        bounded=None,
        details="mixed iteration profile",
        evidence=evidence,
    )


def circuit_equivalence_probe(
    first: Circuit,
    second: Circuit,
    trials: int = 256,
    seed: int = 0,
    density: float = 0.5,
    first_output: Optional[int] = None,
    second_output: Optional[int] = None,
) -> Optional[Tuple[List, int]]:
    """Randomized Boolean equivalence probe between two circuits.

    Draws *trials* random true-variable sets over the union of both
    circuits' variables (each variable true with probability
    *density*) and evaluates both circuits on all of them through the
    bitset-parallel batch runtime -- 64 assignments per ``|``/``&``
    pass, so the probe costs ``trials / 64`` circuit traversals per
    side instead of *trials*.

    Returns ``None`` when every sample agrees, otherwise the first
    disagreeing ``(true_variables, index)`` witness as a tuple of the
    assignment's true set and its trial index.  Used to cross-examine
    a claimed boundedness certificate: compare the ``k``-layer
    circuit against a deeper unrolling of the same program.
    """
    rng = random.Random(seed)
    variables = sorted(set(first.variables()) | set(second.variables()), key=repr)
    batches = [
        [var for var in variables if rng.random() < density] for _ in range(trials)
    ]
    first_values = compile_circuit(first).evaluate_boolean_batch(batches, first_output)
    second_values = compile_circuit(second).evaluate_boolean_batch(batches, second_output)
    for index, (a, b) in enumerate(zip(first_values, second_values)):
        if a != b:
            return (batches[index], index)
    return None


def analyze_boundedness(
    program: Program,
    instance_family: Optional[Callable[[int], Database]] = None,
    sizes: Sequence[int] = (4, 8, 12, 16),
    engine: Optional[FixpointEngine] = None,
) -> BoundednessReport:
    """Portfolio dispatch: exact for chain programs, Theorem 4.6
    certificates for linear ones, empirical probe as a fallback."""
    if program.is_basic_chain():
        return chain_program_boundedness(program)
    if program.is_linear():
        report = expansion_boundedness_certificate(program)
        if report.bounded is not None:
            return report
    if instance_family is not None:
        return empirical_iteration_probe(program, instance_family, sizes, engine=engine)
    return BoundednessReport(
        program.target,
        method="none",
        bounded=None,
        details="no applicable decision procedure; supply an instance family to probe",
    )
