"""CQ homomorphisms and containment (Chandra–Merlin; Theorem 4.6).

A homomorphism from CQ ``q'`` to CQ ``q`` maps variables of ``q'`` to
terms of ``q``, preserving constants, atoms and the head.  Classic
results used by the paper:

* ``q₁ ⊆ q₂`` over set semantics ⟺ a homomorphism ``q₂ → q₁``
  (Chandra–Merlin [6]).
* Over any semiring in ``Chom`` (absorptive ⊗-idempotent), UCQ
  containment ``U₁ ⊆_S U₂`` ⟺ every CQ of ``U₁`` receives a
  homomorphism from some CQ of ``U₂`` (Kostylev et al. [21]); this is
  what powers Theorem 4.6's boundedness characterization.

The search is backtracking over atoms with most-constrained-first
ordering; worst-case exponential (the problem is NP-complete) but fast
on the expansion CQs that arise here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..datalog.ast import Atom, Constant, Term, Variable
from ..datalog.expansions import ConjunctiveQuery

__all__ = [
    "find_homomorphism",
    "has_homomorphism",
    "cq_contained_in",
    "ucq_contained_in",
    "cq_equivalent",
]


def find_homomorphism(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> Optional[Dict[Variable, Term]]:
    """A homomorphism ``source → target`` (head-preserving), or ``None``.

    Head preservation: the i-th head term of *source* must map to the
    i-th head term of *target* (constants must match literally).
    """
    if source.head.predicate != target.head.predicate:
        return None
    if source.head.arity != target.head.arity:
        return None
    mapping: Dict[Variable, Term] = {}
    for s_term, t_term in zip(source.head.terms, target.head.terms):
        if isinstance(s_term, Constant):
            if s_term != t_term:
                return None
        else:
            bound = mapping.get(s_term)
            if bound is not None and bound != t_term:
                return None
            mapping[s_term] = t_term

    # Index target atoms by predicate for candidate generation.
    by_predicate: Dict[str, List[Atom]] = {}
    for atom in target.body:
        by_predicate.setdefault(atom.predicate, []).append(atom)

    # Most-constrained-first: atoms over rarer predicates first.
    ordered = sorted(
        source.body, key=lambda a: len(by_predicate.get(a.predicate, ()))
    )

    def extend(
        index: int, current: Dict[Variable, Term]
    ) -> Optional[Dict[Variable, Term]]:
        if index == len(ordered):
            return current
        atom = ordered[index]
        for candidate in by_predicate.get(atom.predicate, ()):
            trial = dict(current)
            ok = True
            for s_term, t_term in zip(atom.terms, candidate.terms):
                if isinstance(s_term, Constant):
                    if s_term != t_term:
                        ok = False
                        break
                else:
                    bound = trial.get(s_term)
                    if bound is None:
                        trial[s_term] = t_term
                    elif bound != t_term:
                        ok = False
                        break
            if ok:
                result = extend(index + 1, trial)
                if result is not None:
                    return result
        return None

    return extend(0, mapping)


def has_homomorphism(source: ConjunctiveQuery, target: ConjunctiveQuery) -> bool:
    return find_homomorphism(source, target) is not None


def cq_contained_in(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """``first ⊆ second`` (Chandra–Merlin: hom ``second → first``)."""
    return has_homomorphism(second, first)


def ucq_contained_in(
    first: Iterable[ConjunctiveQuery], second: Sequence[ConjunctiveQuery]
) -> bool:
    """``⋃ first ⊆_S ⋃ second`` for every ``S ∈ Chom`` (Kostylev et
    al. [21]): each CQ of *first* is covered by some CQ of *second*."""
    return all(any(has_homomorphism(q2, q1) for q2 in second) for q1 in first)


def cq_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    return cq_contained_in(first, second) and cq_contained_in(second, first)
