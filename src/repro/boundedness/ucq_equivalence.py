"""Boundedness ⟺ UCQ-equivalence (Proposition 4.8).

Over an absorptive ⊗-idempotent semiring (the class ``Chom``), a
program is bounded iff its target predicate is equivalent to a UCQ --
namely the union of its first ``k`` levels of expansions, where ``k``
is the boundedness certificate.  :func:`equivalent_ucq` materializes
that UCQ; :func:`ucq_matches_program` validates the equivalence
empirically by evaluating both sides on given databases (over the
Boolean semiring, which suffices for ``Chom`` by Corollary 4.7).
"""

from __future__ import annotations

from typing import Iterable, List

from ..datalog.ast import DatalogError, Program
from ..datalog.database import Database
from ..datalog.seminaive import FixpointEngine
from ..datalog.expansions import ConjunctiveQuery, expansions
from ..semirings.numeric import BOOLEAN
from .homomorphism import has_homomorphism

__all__ = ["equivalent_ucq", "ucq_answers", "ucq_matches_program"]


def equivalent_ucq(
    program: Program, certificate: int, minimize: bool = True
) -> List[ConjunctiveQuery]:
    """The UCQ of Proposition 4.8: expansions with < *certificate*
    recursive steps (the fixpoint is reached after ``certificate``
    ICO rounds, i.e. derivations use at most ``certificate − 1``
    recursive rule applications).

    With *minimize*, homomorphically subsumed disjuncts are dropped
    (sound over ``Chom`` by the containment characterization of
    Theorem 4.6).  Linear programs only.
    """
    if certificate < 1:
        raise DatalogError("certificate must be ≥ 1")
    disjuncts: List[ConjunctiveQuery] = []
    for steps in range(certificate):
        disjuncts.extend(expansions(program, steps))
    if not minimize:
        return disjuncts
    kept: List[ConjunctiveQuery] = []
    for cq in disjuncts:
        if any(has_homomorphism(other, cq) for other in kept):
            continue  # an earlier disjunct already subsumes this one
        kept = [other for other in kept if not has_homomorphism(cq, other)]
        kept.append(cq)
    return kept


def ucq_answers(
    ucq: Iterable[ConjunctiveQuery], database: Database
) -> frozenset:
    """Boolean answers of a UCQ: all head tuples with some valuation."""
    from ..datalog.grounding import _FactIndex, _join  # local: avoids a cycle

    answers: set = set()
    for cq in ucq:
        index = _FactIndex()
        for fact in database.facts():
            index.insert(fact)
        for theta in _join(list(cq.body), index, {}):
            head = cq.head.substitute(theta)
            answers.add(tuple(term.value for term in head.terms))
    return frozenset(answers)


def ucq_matches_program(
    program: Program,
    certificate: int,
    databases: Iterable[Database],
) -> bool:
    """Check ``target ≡ UCQ`` on concrete inputs (Boolean semantics).

    A ``False`` refutes either the certificate or the boundedness
    claim; ``True`` on a diverse family is the empirical face of
    Proposition 4.8.
    """
    ucq = equivalent_ucq(program, certificate)
    engine = FixpointEngine()
    for database in databases:
        program_answers = frozenset(
            fact.args
            for fact, value in engine.evaluate(program, database, BOOLEAN).values.items()
            if value and fact.predicate == program.target
        )
        if ucq_answers(ucq, database) != program_answers:
            return False
    return True
