"""Circuits and formulas over semirings (Sections 2.5 and 3).

* :class:`Circuit` / :class:`CircuitBuilder` -- the array-backed
  fan-in-2 DAG representation and its constructor.
* :mod:`~repro.circuits.evaluate` -- linear-time bottom-up evaluation
  over any semiring, plus :func:`crosscheck_fixpoint`, the bridge that
  compares circuit outputs against the Datalog
  :class:`~repro.datalog.seminaive.FixpointEngine`.
* :mod:`~repro.circuits.runtime` -- the compiled evaluation runtime
  (DESIGN.md §7): :class:`CompiledCircuit` with fused per-semiring
  kernels, :func:`evaluate_batch`, 64-wide bitset-parallel
  :func:`evaluate_boolean_batch`, and the dirty-cone
  :class:`IncrementalEvaluator` for sparse re-valuation.
* :mod:`~repro.circuits.transform` -- circuit → formula expansion
  (Prop 3.3) and Brent/Wegener depth balancing (Thm 3.2).
* :mod:`~repro.circuits.polynomials` -- canonical ``Sorp(X)``
  polynomial extraction and absorptive-equivalence decision.
* :mod:`~repro.circuits.metrics` -- size/depth measurement for the
  Table-1 benchmarks.
"""

from .circuit import OP_ADD, OP_CONST0, OP_CONST1, OP_MUL, OP_VAR, Circuit, CircuitBuilder
from .evaluate import (
    crosscheck_fixpoint,
    evaluate,
    evaluate_all,
    evaluate_boolean,
    reference_evaluate_all,
    reference_evaluate_boolean,
)
from .metrics import CircuitMetrics, measure
from .runtime import (
    CompiledCircuit,
    IncrementalEvaluator,
    compile_circuit,
    evaluate_batch,
    evaluate_boolean_batch,
)
from .polynomials import (
    canonical_polynomial,
    equivalent_over_absorptive,
    produced_polynomial,
    random_equivalence_check,
)
from .serialize import from_json, to_dot, to_json
from .transform import (
    FormulaTree,
    balance_formula,
    circuit_to_formula,
    circuit_to_tree,
    formula_depth_bound,
    tree_to_formula,
)

__all__ = [
    "OP_VAR",
    "OP_CONST0",
    "OP_CONST1",
    "OP_ADD",
    "OP_MUL",
    "Circuit",
    "CircuitBuilder",
    "evaluate",
    "evaluate_all",
    "evaluate_boolean",
    "reference_evaluate_all",
    "reference_evaluate_boolean",
    "crosscheck_fixpoint",
    "CompiledCircuit",
    "compile_circuit",
    "evaluate_batch",
    "evaluate_boolean_batch",
    "IncrementalEvaluator",
    "CircuitMetrics",
    "measure",
    "canonical_polynomial",
    "produced_polynomial",
    "equivalent_over_absorptive",
    "random_equivalence_check",
    "FormulaTree",
    "circuit_to_formula",
    "circuit_to_tree",
    "tree_to_formula",
    "balance_formula",
    "formula_depth_bound",
    "to_json",
    "from_json",
    "to_dot",
]
