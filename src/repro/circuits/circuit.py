"""Array-backed semiring circuits (Section 2.5 of the paper).

A circuit over a semiring ``S`` is a DAG whose fan-in-0 nodes are
either *input variables* (tagging EDB facts) or the constants ``0``
and ``1``, and whose internal nodes are ``⊕``- or ``⊗``-gates of
fan-in exactly two.  A *formula* is a circuit in which every gate has
fan-out at most one.

The representation is deliberately flat -- parallel Python lists of
opcodes and child indices -- because the benchmark harness builds
circuits with millions of gates and object graphs are too slow (see
DESIGN.md §6).  Nodes are appended in topological order: a gate's
children always have smaller indices, so evaluation and metrics are
single forward/backward passes without an explicit toposort.

The :class:`CircuitBuilder` adds optional hash-consing (structural
common-subexpression elimination) and convenience helpers for balanced
``⊕``/``⊗``-trees, which the constructions of Sections 3--6 use to get
the ``O(log n)``-depth summations the paper's proofs invoke.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Mapping, Optional, Sequence

__all__ = ["OP_VAR", "OP_CONST0", "OP_CONST1", "OP_ADD", "OP_MUL", "Circuit", "CircuitBuilder"]

OP_VAR = 0
OP_CONST0 = 1
OP_CONST1 = 2
OP_ADD = 3
OP_MUL = 4

_OP_NAMES = {
    OP_VAR: "var",
    OP_CONST0: "0",
    OP_CONST1: "1",
    OP_ADD: "⊕",
    OP_MUL: "⊗",
}


class Circuit:
    """An immutable fan-in-2 semiring circuit.

    Attributes
    ----------
    ops, lhs, rhs:
        Parallel arrays; for leaf opcodes the child slots hold ``-1``.
    labels:
        For ``OP_VAR`` nodes, the variable tag (EDB fact id); ``None``
        for other nodes.
    outputs:
        Indices of the designated output gates (usually one).
    """

    __slots__ = ("ops", "lhs", "rhs", "labels", "outputs", "_depths", "_op_counts", "_compiled")

    def __init__(
        self,
        ops: Sequence[int],
        lhs: Sequence[int],
        rhs: Sequence[int],
        labels: Sequence[Optional[Hashable]],
        outputs: Sequence[int],
    ):
        if not (len(ops) == len(lhs) == len(rhs) == len(labels)):
            raise ValueError("parallel arrays must have equal length")
        self.ops = list(ops)
        self.lhs = list(lhs)
        self.rhs = list(rhs)
        self.labels = list(labels)
        self.outputs = list(outputs)
        for out in self.outputs:
            if not 0 <= out < len(self.ops):
                raise ValueError(f"output index {out} out of range")
        self._depths: Optional[List[int]] = None
        self._op_counts: Optional[tuple] = None
        self._compiled = None  # CompiledCircuit cache (repro.circuits.runtime)

    # ------------------------------------------------------------------
    # Basic metrics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def size(self) -> int:
        """Number of gates, |F| in the paper."""
        return len(self.ops)

    def _counts(self) -> tuple:
        """(#⊕, #⊗, #var) computed in one sweep and cached.

        The circuit is immutable, so compute-once is sound; the
        per-opcode counters used to be fresh O(n) sweeps on every
        access, and the sweep reports read them per row.
        """
        if self._op_counts is None:
            num_add = num_mul = num_var = 0
            for op in self.ops:
                if op == OP_ADD:
                    num_add += 1
                elif op == OP_MUL:
                    num_mul += 1
                elif op == OP_VAR:
                    num_var += 1
            self._op_counts = (num_add, num_mul, num_var)
        return self._op_counts

    @property
    def num_gates(self) -> int:
        """Number of internal (⊕/⊗) gates."""
        counts = self._counts()
        return counts[0] + counts[1]

    @property
    def num_add_gates(self) -> int:
        return self._counts()[0]

    @property
    def num_mul_gates(self) -> int:
        return self._counts()[1]

    @property
    def num_inputs(self) -> int:
        return self._counts()[2]

    def variables(self) -> list[Hashable]:
        """Distinct input-variable tags in first-occurrence order."""
        seen: dict[Hashable, None] = {}
        for op, label in zip(self.ops, self.labels):
            if op == OP_VAR and label not in seen:
                seen[label] = None
        return list(seen)

    def node_depths(self) -> List[int]:
        """Depth of each node = longest path from any leaf (leaves are 0)."""
        if self._depths is None:
            depths = [0] * len(self.ops)
            for i, op in enumerate(self.ops):
                if op in (OP_ADD, OP_MUL):
                    left = depths[self.lhs[i]]
                    right = depths[self.rhs[i]]
                    depths[i] = (left if left >= right else right) + 1
            self._depths = depths
        return self._depths

    @property
    def depth(self) -> int:
        """Longest input→output path (edge count), as in Section 2.5."""
        if not self.ops:
            return 0
        depths = self.node_depths()
        return max(depths[out] for out in self.outputs) if self.outputs else max(depths)

    def fanout(self) -> List[int]:
        """Out-degree of each node, counting one per use as a child."""
        counts = [0] * len(self.ops)
        for i, op in enumerate(self.ops):
            if op in (OP_ADD, OP_MUL):
                counts[self.lhs[i]] += 1
                counts[self.rhs[i]] += 1
        return counts

    def is_formula(self) -> bool:
        """True iff every node feeds at most one gate (Section 2.5)."""
        return all(count <= 1 for count in self.fanout())

    def reachable_from_outputs(self) -> List[bool]:
        """Mark nodes on a path to some output (the *useful* cone)."""
        marked = [False] * len(self.ops)
        stack = list(self.outputs)
        while stack:
            node = stack.pop()
            if marked[node]:
                continue
            marked[node] = True
            if self.ops[node] in (OP_ADD, OP_MUL):
                stack.append(self.lhs[node])
                stack.append(self.rhs[node])
        return marked

    def prune(self) -> "Circuit":
        """Drop gates not reachable from the outputs, preserving order."""
        marked = self.reachable_from_outputs()
        remap = [-1] * len(self.ops)
        ops: List[int] = []
        lhs: List[int] = []
        rhs: List[int] = []
        labels: List[Optional[Hashable]] = []
        for i, keep in enumerate(marked):
            if not keep:
                continue
            remap[i] = len(ops)
            ops.append(self.ops[i])
            labels.append(self.labels[i])
            if self.ops[i] in (OP_ADD, OP_MUL):
                lhs.append(remap[self.lhs[i]])
                rhs.append(remap[self.rhs[i]])
            else:
                lhs.append(-1)
                rhs.append(-1)
        outputs = [remap[out] for out in self.outputs]
        return Circuit(ops, lhs, rhs, labels, outputs)

    def with_outputs(self, outputs: Iterable[int]) -> "Circuit":
        """Same DAG with a different designated output set."""
        return Circuit(self.ops, self.lhs, self.rhs, self.labels, list(outputs))

    # ------------------------------------------------------------------
    # Display / debugging
    # ------------------------------------------------------------------

    def node_repr(self, index: int) -> str:
        op = self.ops[index]
        if op == OP_VAR:
            return f"x[{self.labels[index]!r}]"
        if op in (OP_CONST0, OP_CONST1):
            return _OP_NAMES[op]
        return f"{_OP_NAMES[op]}({self.lhs[index]}, {self.rhs[index]})"

    def pretty(self, max_nodes: int = 50) -> str:
        lines = [
            f"Circuit(size={self.size}, depth={self.depth}, "
            f"inputs={self.num_inputs}, outputs={self.outputs})"
        ]
        for i in range(min(len(self.ops), max_nodes)):
            marker = " <- output" if i in self.outputs else ""
            lines.append(f"  %{i} = {self.node_repr(i)}{marker}")
        if len(self.ops) > max_nodes:
            lines.append(f"  ... ({len(self.ops) - max_nodes} more nodes)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Circuit(size={self.size}, depth={self.depth}, "
            f"inputs={self.num_inputs}, outputs={len(self.outputs)})"
        )


class CircuitBuilder:
    """Mutable constructor for :class:`Circuit`.

    With ``share=True`` (default) identical leaves and gate
    applications are hash-consed, so repeated ``add``/``mul`` calls
    with equal children return the same node; this keeps the
    constructions' sizes at their paper values.  With ``share=False``
    every call appends a fresh node -- required when building
    *formulas*, where sharing is forbidden.
    """

    def __init__(self, share: bool = True):
        self.share = share
        self.ops: List[int] = []
        self.lhs: List[int] = []
        self.rhs: List[int] = []
        self.labels: List[Optional[Hashable]] = []
        self._memo: dict[tuple, int] = {}
        self._const0: Optional[int] = None
        self._const1: Optional[int] = None

    def __len__(self) -> int:
        return len(self.ops)

    def _append(self, op: int, left: int, right: int, label: Optional[Hashable]) -> int:
        index = len(self.ops)
        self.ops.append(op)
        self.lhs.append(left)
        self.rhs.append(right)
        self.labels.append(label)
        return index

    # -- leaves ---------------------------------------------------------

    def var(self, label: Hashable) -> int:
        """An input gate tagged with the EDB-fact variable *label*."""
        if self.share:
            key = (OP_VAR, label)
            node = self._memo.get(key)
            if node is None:
                node = self._append(OP_VAR, -1, -1, label)
                self._memo[key] = node
            return node
        return self._append(OP_VAR, -1, -1, label)

    def const0(self) -> int:
        if self.share:
            if self._const0 is None:
                self._const0 = self._append(OP_CONST0, -1, -1, None)
            return self._const0
        return self._append(OP_CONST0, -1, -1, None)

    def const1(self) -> int:
        if self.share:
            if self._const1 is None:
                self._const1 = self._append(OP_CONST1, -1, -1, None)
            return self._const1
        return self._append(OP_CONST1, -1, -1, None)

    # -- gates ----------------------------------------------------------

    def add(self, left: int, right: int) -> int:
        """An ``⊕``-gate; simplifies ``x ⊕ 0 = x`` when sharing."""
        if self.share:
            if self.ops[left] == OP_CONST0:
                return right
            if self.ops[right] == OP_CONST0:
                return left
            key = (OP_ADD, *sorted((left, right)))
            node = self._memo.get(key)
            if node is None:
                node = self._append(OP_ADD, left, right, None)
                self._memo[key] = node
            return node
        return self._append(OP_ADD, left, right, None)

    def mul(self, left: int, right: int) -> int:
        """An ``⊗``-gate; simplifies by ``0``/``1`` when sharing."""
        if self.share:
            if self.ops[left] == OP_CONST0 or self.ops[right] == OP_CONST0:
                return self.const0()
            if self.ops[left] == OP_CONST1:
                return right
            if self.ops[right] == OP_CONST1:
                return left
            key = (OP_MUL, *sorted((left, right)))
            node = self._memo.get(key)
            if node is None:
                node = self._append(OP_MUL, left, right, None)
                self._memo[key] = node
            return node
        return self._append(OP_MUL, left, right, None)

    # -- balanced n-ary folds (the O(log n)-depth summations) ------------

    def add_all(self, nodes: Sequence[int]) -> int:
        """Balanced ``⊕``-tree over *nodes*; empty sum is the constant 0.

        The binary-tree layout realizes the ``O(log n)``-depth
        summation used throughout the paper's constructions (e.g.
        Theorem 4.3 and Theorem 5.6).
        """
        return self._fold(list(nodes), self.add, self.const0)

    def mul_all(self, nodes: Sequence[int]) -> int:
        """Balanced ``⊗``-tree over *nodes*; empty product is 1."""
        return self._fold(list(nodes), self.mul, self.const1)

    def _fold(self, level: List[int], combine, empty) -> int:
        if not level:
            return empty()
        while len(level) > 1:
            nxt: List[int] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(combine(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    # -- import ----------------------------------------------------------

    def splice(self, other: Circuit, input_map: Optional[Mapping[Hashable, int]] = None) -> List[int]:
        """Copy *other* into this builder, returning the node remapping.

        *input_map* optionally redirects variable tags of *other* to
        existing nodes of this builder (the wire-rewiring step of the
        reductions in Theorems 5.9/5.11/6.8).  Unmapped variables are
        recreated as fresh/shared var leaves.
        """
        input_map = input_map or {}
        remap: List[int] = [-1] * len(other.ops)
        for i, op in enumerate(other.ops):
            if op == OP_VAR:
                label = other.labels[i]
                if label in input_map:
                    remap[i] = input_map[label]
                else:
                    remap[i] = self.var(label)
            elif op == OP_CONST0:
                remap[i] = self.const0()
            elif op == OP_CONST1:
                remap[i] = self.const1()
            elif op == OP_ADD:
                remap[i] = self.add(remap[other.lhs[i]], remap[other.rhs[i]])
            else:
                remap[i] = self.mul(remap[other.lhs[i]], remap[other.rhs[i]])
        return remap

    # -- finish -----------------------------------------------------------

    def build(self, outputs: Sequence[int] | int, prune: bool = False) -> Circuit:
        if isinstance(outputs, int):
            outputs = [outputs]
        circuit = Circuit(self.ops, self.lhs, self.rhs, self.labels, list(outputs))
        return circuit.prune() if prune else circuit
