"""Circuit evaluation over arbitrary semirings.

Evaluation is a single forward pass over the node arrays (nodes are in
topological order by construction), so it runs in time linear in the
circuit size -- the "compressed data structure" guarantee of the
paper's introduction.

Since ISSUE 3 the public entry points (:func:`evaluate`,
:func:`evaluate_all`, :func:`evaluate_boolean`) are thin wrappers over
the compiled evaluation runtime (:mod:`repro.circuits.runtime`,
DESIGN.md §7): the circuit is compiled once -- typed arrays, a
deduplicated variable table, per-op instruction streams, fused
kernels for the numeric semirings -- and the compiled form is cached
on the (immutable) circuit, so every existing call site transparently
gets the fast path.  The seed interpreters are kept verbatim as
:func:`reference_evaluate_all` / :func:`reference_evaluate_boolean`:
they are the semantics the runtime is property-tested against and the
baseline the ``bench_eval_runtime`` speedup asserts are measured
from.

Evaluating over :class:`~repro.semirings.polynomial.SorpSemiring` with
the identity assignment extracts the circuit's *canonical polynomial*
(Section 2.5's "produces"), already normalized by absorption; see
:mod:`repro.circuits.polynomials`.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..semirings.base import Semiring
from .circuit import OP_ADD, OP_CONST0, OP_CONST1, OP_MUL, OP_VAR, Circuit
from .runtime import compile_circuit

__all__ = [
    "evaluate",
    "evaluate_all",
    "evaluate_boolean",
    "reference_evaluate_all",
    "reference_evaluate_boolean",
    "crosscheck_fixpoint",
]


def evaluate(
    circuit: Circuit,
    semiring: Semiring,
    assignment: Mapping[Hashable, object] | Callable[[Hashable], object],
    output: Optional[int] = None,
):
    """Evaluate *circuit* bottom-up over *semiring*.

    *assignment* maps variable tags to semiring values; it may be a
    mapping or a callable.  Returns the value at *output* (default:
    the circuit's sole output; multiple outputs require an explicit
    index or :func:`evaluate_all`).
    """
    return compile_circuit(circuit).evaluate(semiring, assignment, output)


def evaluate_all(
    circuit: Circuit,
    semiring: Semiring,
    assignment: Mapping[Hashable, object] | Callable[[Hashable], object],
) -> List:
    """Evaluate every node; returns the full value array (linear time)."""
    return compile_circuit(circuit).evaluate_all(semiring, assignment)


def evaluate_boolean(
    circuit: Circuit,
    true_variables,
    output: Optional[int] = None,
) -> bool:
    """Fast-path Boolean evaluation: variables in *true_variables* are True.

    Equivalent to evaluating over :data:`repro.semirings.BOOLEAN` with
    the characteristic assignment, but specialized with bitmask
    operations (the Boolean semiring is the workhorse of the transfer
    arguments in Proposition 3.6).  For many assignments at once, use
    :func:`repro.circuits.runtime.evaluate_boolean_batch`, which packs
    up to 64 of them into each pass.
    """
    return compile_circuit(circuit).evaluate_boolean_batch([true_variables], output)[0]


def reference_evaluate_all(
    circuit: Circuit,
    semiring: Semiring,
    assignment: Mapping[Hashable, object] | Callable[[Hashable], object],
) -> List:
    """The seed interpreter: one dispatch loop, one assignment at a time.

    Kept as the executable specification of circuit semantics; the
    compiled runtime must agree with it exactly (see
    ``tests/circuits/test_runtime.py`` and DESIGN.md §7).
    """
    lookup = assignment if callable(assignment) else assignment.__getitem__
    zero, one = semiring.zero, semiring.one
    add, mul = semiring.add, semiring.mul
    ops, lhs, rhs, labels = circuit.ops, circuit.lhs, circuit.rhs, circuit.labels
    values: List = [None] * len(ops)
    for i, op in enumerate(ops):
        if op == OP_ADD:
            values[i] = add(values[lhs[i]], values[rhs[i]])
        elif op == OP_MUL:
            values[i] = mul(values[lhs[i]], values[rhs[i]])
        elif op == OP_VAR:
            values[i] = lookup(labels[i])
        elif op == OP_CONST0:
            values[i] = zero
        elif op == OP_CONST1:
            values[i] = one
        else:
            raise ValueError(f"unknown opcode {op}")
    return values


def reference_evaluate_boolean(
    circuit: Circuit,
    true_variables,
    output: Optional[int] = None,
) -> bool:
    """The seed Boolean interpreter (one assignment per pass).

    Raises on unknown opcodes like :func:`reference_evaluate_all`
    does -- the seed version fell through silently, treating a corrupt
    opcode as ``False``.
    """
    true_set = set(true_variables)
    ops, lhs, rhs, labels = circuit.ops, circuit.lhs, circuit.rhs, circuit.labels
    values = [False] * len(ops)
    for i, op in enumerate(ops):
        if op == OP_ADD:
            values[i] = values[lhs[i]] or values[rhs[i]]
        elif op == OP_MUL:
            values[i] = values[lhs[i]] and values[rhs[i]]
        elif op == OP_VAR:
            values[i] = labels[i] in true_set
        elif op == OP_CONST1:
            values[i] = True
        elif op != OP_CONST0:
            raise ValueError(f"unknown opcode {op}")
    if output is None:
        if len(circuit.outputs) != 1:
            raise ValueError("circuit has multiple outputs; pass output=")
        output = circuit.outputs[0]
    return values[output]


def crosscheck_fixpoint(
    circuit: Circuit,
    facts: Sequence,
    program,
    database,
    semiring: Semiring,
    weights: Optional[Mapping] = None,
    strategy: Optional[str] = None,
) -> Dict[object, Tuple[object, object]]:
    """Compare circuit outputs against the Datalog fixpoint engine.

    *facts* pairs the circuit's outputs (positionally) with the IDB
    facts they are meant to compute.  The circuit is evaluated on the
    database valuation (overridden by *weights*) and each output is
    compared -- via ``semiring.eq`` -- with the value the
    :class:`~repro.datalog.seminaive.FixpointEngine` computes under
    *strategy* (default: the repo-wide semi-naive default).

    Returns ``{fact: (circuit_value, fixpoint_value)}`` for the facts
    that disagree; an empty dict certifies agreement.  This is the
    bridge the construction theorems promise ("the circuit produces
    the provenance"), used by the equivalence tests and benchmarks.
    """
    from ..datalog.seminaive import FixpointEngine

    if len(facts) != len(circuit.outputs):
        raise ValueError(
            f"{len(facts)} facts for a circuit with {len(circuit.outputs)} outputs"
        )
    assignment = dict(database.valuation(semiring))
    if weights:
        assignment.update(weights)
    values = evaluate_all(
        circuit, semiring, lambda label: assignment.get(label, semiring.one)
    )
    result = FixpointEngine(strategy).evaluate(
        program, database, semiring, weights=weights
    )
    mismatches: Dict[object, Tuple[object, object]] = {}
    for fact, output in zip(facts, circuit.outputs):
        circuit_value = values[output]
        fixpoint_value = result.value(fact)
        if not semiring.eq(circuit_value, fixpoint_value):
            mismatches[fact] = (circuit_value, fixpoint_value)
    return mismatches
