"""Circuit metrics reported by the benchmark harness.

The paper's Table 1 is a grid of asymptotic circuit *size* and *depth*
bounds; :func:`measure` extracts the concrete numbers from a built
circuit so the benchmarks can fit growth curves against the claimed
bounds (see :mod:`repro.analysis.fitting`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from .circuit import OP_ADD, OP_MUL, Circuit

__all__ = ["CircuitMetrics", "measure"]


@dataclass(frozen=True)
class CircuitMetrics:
    """Size/depth/shape statistics of one circuit."""

    size: int
    depth: int
    num_add_gates: int
    num_mul_gates: int
    num_inputs: int
    num_constants: int
    num_outputs: int
    max_fanout: int
    is_formula: bool
    num_wires: int

    @property
    def num_internal(self) -> int:
        return self.num_add_gates + self.num_mul_gates

    def as_dict(self) -> dict:
        return asdict(self)

    def row(self) -> str:
        """One fixed-width report line (used by the bench tables)."""
        return (
            f"size={self.size:>9}  depth={self.depth:>6}  "
            f"⊕={self.num_add_gates:>8}  ⊗={self.num_mul_gates:>8}  "
            f"inputs={self.num_inputs:>7}  formula={str(self.is_formula):>5}"
        )


def measure(circuit: Circuit) -> CircuitMetrics:
    """Compute all static metrics of *circuit* in one pass."""
    num_add = 0
    num_mul = 0
    num_inputs = 0
    num_constants = 0
    wires = 0
    for op in circuit.ops:
        if op == OP_ADD:
            num_add += 1
            wires += 2
        elif op == OP_MUL:
            num_mul += 1
            wires += 2
        elif op == 0:  # OP_VAR
            num_inputs += 1
        else:
            num_constants += 1
    fanout = circuit.fanout()
    return CircuitMetrics(
        size=circuit.size,
        depth=circuit.depth,
        num_add_gates=num_add,
        num_mul_gates=num_mul,
        num_inputs=num_inputs,
        num_constants=num_constants,
        num_outputs=len(circuit.outputs),
        max_fanout=max(fanout, default=0),
        is_formula=all(f <= 1 for f in fanout),
        num_wires=wires,
    )
