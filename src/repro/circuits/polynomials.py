"""Canonical polynomials of circuits, and circuit equivalence.

Section 2.5 defines a circuit to *produce* the polynomial obtained by
bottom-up symbolic evaluation, and to *compute* a polynomial ``p``
over ``S`` when the produced polynomial is ``S``-equivalent to ``p``.

Over an absorptive semiring, equivalence of the produced polynomials
is decided by comparing their images in ``Sorp(X)`` (the free
absorptive semiring; initiality means two circuits with equal Sorp
polynomials compute the same function over *every* absorptive
semiring).  :func:`canonical_polynomial` performs exactly this
extraction; :func:`equivalent_over_absorptive` compares two circuits.

:func:`produced_polynomial` gives the literal ℕ[X] polynomial with
multiplicities (no absorption) for non-recursive sanity checks, and
:func:`random_equivalence_check` provides a cheap randomized
refutation test over a numeric semiring.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..semirings.base import Semiring
from ..semirings.numeric import TROPICAL
from ..semirings.polynomial import (
    FormalPolynomial,
    NaturalPolynomialSemiring,
    Polynomial,
    SorpSemiring,
)
from .circuit import Circuit
from .evaluate import evaluate
from .runtime import compile_circuit

__all__ = [
    "canonical_polynomial",
    "produced_polynomial",
    "equivalent_over_absorptive",
    "random_equivalence_check",
]


def canonical_polynomial(
    circuit: Circuit,
    output: Optional[int] = None,
    idempotent_mul: bool = False,
) -> Polynomial:
    """The circuit's polynomial in ``Sorp(X)`` (absorption applied).

    With ``idempotent_mul=True`` the extraction is performed in the
    free Chom semiring instead (variable exponents capped at one),
    matching ⊗-idempotent targets such as the fuzzy semiring.
    """
    sorp = SorpSemiring(idempotent_mul=idempotent_mul)
    return evaluate(circuit, sorp, lambda label: sorp.var(label), output=output)


def produced_polynomial(circuit: Circuit, output: Optional[int] = None) -> FormalPolynomial:
    """The literal produced polynomial in ``ℕ[X]`` (no absorption).

    Faithful to the bottom-up expansion of Section 2.5 but can be
    exponentially large; intended for small circuits and tests.
    """
    natural = NaturalPolynomialSemiring()
    return evaluate(circuit, natural, lambda label: natural.var(label), output=output)


def equivalent_over_absorptive(
    first: Circuit,
    second: Circuit,
    idempotent_mul: bool = False,
    first_output: Optional[int] = None,
    second_output: Optional[int] = None,
) -> bool:
    """Decide equivalence over all absorptive (or all Chom) semirings.

    Complete by initiality of ``Sorp(X)`` (resp. its ⊗-idempotent
    quotient): equal canonical polynomials ⟺ equal functions over
    every semiring in the class.
    """
    p1 = canonical_polynomial(first, first_output, idempotent_mul)
    p2 = canonical_polynomial(second, second_output, idempotent_mul)
    return p1 == p2


def random_equivalence_check(
    first: Circuit,
    second: Circuit,
    semiring: Semiring = TROPICAL,
    trials: int = 16,
    seed: int = 0,
    weight_pool: Iterable[float] = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0),
    first_output: Optional[int] = None,
    second_output: Optional[int] = None,
) -> bool:
    """Randomized refutation: evaluate both circuits on random inputs.

    Returns ``False`` on the first disagreeing assignment (a definite
    inequivalence witness over *semiring*), ``True`` if all trials
    agree.  Unlike :func:`equivalent_over_absorptive` this runs in
    time linear in circuit size per trial, so it scales to the
    benchmark-sized circuits.
    """
    rng = random.Random(seed)
    pool = list(weight_pool)
    variables = sorted(
        set(first.variables()) | set(second.variables()), key=repr
    )
    # Compile each circuit once and reuse the form across all trials
    # (repro.circuits.runtime), keeping the seed interpreter's early
    # exit: the first disagreeing assignment refutes without paying
    # for the remaining trials.
    compiled_first = compile_circuit(first)
    compiled_second = compile_circuit(second)
    for _ in range(trials):
        assignment = {var: rng.choice(pool) for var in variables}
        v1 = compiled_first.evaluate(semiring, assignment, output=first_output)
        v2 = compiled_second.evaluate(semiring, assignment, output=second_output)
        if not semiring.eq(v1, v2):
            return False
    return True
