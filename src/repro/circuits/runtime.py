"""The circuit evaluation runtime: compile once, evaluate many times.

The paper's central promise is that a provenance circuit is a
*compressed data structure* (Section 2.5): you build it once and then
answer many valuation queries against it.  The seed interpreter in
:mod:`repro.circuits.evaluate` walks the node arrays one assignment at
a time through a Python dispatch loop -- an ``if``/``elif`` chain, two
list indexings and a bound-method call per node, plus a label hash per
input gate.  This module amortizes all of that over a batch
(DESIGN.md §7):

* :class:`CompiledCircuit` freezes a :class:`~repro.circuits.circuit.Circuit`
  into typed arrays (``array('q')`` opcodes/children), a deduplicated
  variable table (``label -> slot``) and per-op instruction streams
  (maximal same-opcode gate runs), so the inner loop does no label
  hashing and no per-node opcode branching.  On top of that sits a
  *closure compiler*: for semirings that declare
  ``compiled_add_expr``/``compiled_mul_expr`` (the numeric workhorses
  -- Boolean, counting, tropical, ...) it ``exec``-generates a kernel
  with ``⊕``/``⊗`` fused into local-variable expressions; small
  circuits get fully straight-line code, one statement per gate.
* :func:`evaluate_batch` reuses one compiled form and one variable
  table across a whole batch of assignments, for *any* semiring.
* :func:`evaluate_boolean_batch` packs up to ``word_size`` (default
  64) true-variable sets into one Python-int bitmask per node and
  evaluates them all in a single ``|``/``&`` pass -- the workhorse for
  the transfer arguments (Prop. 3.6), the boundedness checker's
  equivalence probes and Monte-Carlo fact-reliability sweeps.
* :class:`IncrementalEvaluator` keeps the last value array and, given
  a sparse assignment delta, recomputes only the dirty cone of
  influence via a fanout-indexed worklist -- the "one EDB weight
  changed, re-answer the query" serving scenario.

All entry points are exact drop-in equivalents of the seed
interpreter (property-tested in ``tests/circuits/test_runtime.py``).
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..semirings.base import Semiring
from .circuit import OP_ADD, OP_CONST0, OP_CONST1, OP_MUL, OP_VAR, Circuit

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "evaluate_batch",
    "evaluate_boolean_batch",
    "IncrementalEvaluator",
    "BITSET_ADD_EXPR",
    "BITSET_MUL_EXPR",
]

Assignment = Mapping[Hashable, object] | Callable[[Hashable], object]

#: Bitset instruction expressions: ``⊕`` is bitwise-or, ``⊗`` is
#: bitwise-and, one mask bit per packed Boolean assignment.
BITSET_ADD_EXPR = "({a} | {b})"
BITSET_MUL_EXPR = "({a} & {b})"

#: Above this many nodes the closure compiler stops emitting
#: straight-line code (one statement per gate, values in locals) and
#: falls back to the segment-loop kernel; ``exec`` of a multi-hundred-
#: thousand-line function costs more than it saves.
_STRAIGHT_LINE_LIMIT = 20_000

# Cache of exec-compiled kernels shared across circuits is keyed per
# CompiledCircuit (the instruction streams differ), but the generated
# *source* depends only on the streams and the two fused expressions.


def _gen_straight_source(
    compiled: "CompiledCircuit",
    add_expr: str,
    mul_expr: str,
    generic: bool,
    keep: Optional[List[bool]],
) -> str:
    """One statement per node, every value a Python local.

    With *keep* (the reachable-from-outputs mask) the generated code
    skips dead nodes entirely and returns only the designated output
    values -- the single-query serving kernel.  Without it, every node
    is materialized and the full value array is returned.
    """
    lines = ["def _kernel(vec, zero, one" + (", add, mul" if generic else "") + "):"]
    ops, lhs, rhs = compiled.ops, compiled.lhs, compiled.rhs
    node_slot = compiled.node_slot
    for i in range(compiled.size):
        if keep is not None and not keep[i]:
            continue
        op = ops[i]
        if op == OP_VAR:
            lines.append(f"    v{i} = vec[{node_slot[i]}]")
        elif op == OP_CONST0:
            lines.append(f"    v{i} = zero")
        elif op == OP_CONST1:
            lines.append(f"    v{i} = one")
        elif op == OP_ADD:
            if generic:
                lines.append(f"    v{i} = add(v{lhs[i]}, v{rhs[i]})")
            else:
                lines.append(f"    v{i} = " + add_expr.format(a=f"v{lhs[i]}", b=f"v{rhs[i]}"))
        else:  # OP_MUL (opcodes validated at compile time)
            if generic:
                lines.append(f"    v{i} = mul(v{lhs[i]}, v{rhs[i]})")
            else:
                lines.append(f"    v{i} = " + mul_expr.format(a=f"v{lhs[i]}", b=f"v{rhs[i]}"))
    if keep is None:
        body = ", ".join(f"v{i}" for i in range(compiled.size))
    else:
        body = ", ".join(f"v{i}" for i in compiled.outputs)
    lines.append(f"    return [{body}]")
    return "\n".join(lines)


def _gen_loop_source(add_expr: str, mul_expr: str, generic: bool, outputs_only: bool) -> str:
    """Segment-loop kernel: one branch per same-opcode run, not per node.

    The instruction streams (``_loads``/``_ones``/``_segments``) are
    bound as defaults at ``exec`` time; the outputs-only variant gets
    streams pre-filtered to the output cone and returns only the
    designated output values.
    """
    if generic:
        add_stmt = "values[_d] = add(values[_l], values[_r])"
        mul_stmt = "values[_d] = mul(values[_l], values[_r])"
    else:
        add_stmt = "a = values[_l]; b = values[_r]; values[_d] = " + add_expr.format(a="a", b="b")
        mul_stmt = "a = values[_l]; b = values[_r]; values[_d] = " + mul_expr.format(a="a", b="b")
    returns = "[values[_o] for _o in _outputs]" if outputs_only else "values"
    return (
        "def _kernel(vec, zero, one"
        + (", add, mul" if generic else "")
        + ", _loads=_loads, _ones=_ones, _segments=_segments, _n=_n, _outputs=_outputs):\n"
        "    values = [zero] * _n\n"
        "    for _d in _ones:\n"
        "        values[_d] = one\n"
        "    for _d, _s in _loads:\n"
        "        values[_d] = vec[_s]\n"
        "    for _op, _triples in _segments:\n"
        f"        if _op == {OP_ADD}:\n"
        "            for _d, _l, _r in _triples:\n"
        f"                {add_stmt}\n"
        "        else:\n"
        "            for _d, _l, _r in _triples:\n"
        f"                {mul_stmt}\n"
        f"    return {returns}\n"
    )


class CompiledCircuit:
    """A :class:`Circuit` frozen for repeated evaluation.

    Compilation validates every opcode, deduplicates variable labels
    into a dense slot table and linearizes the gates into maximal
    same-opcode instruction streams.  The compiled object is immutable
    and caches one ``exec``-generated kernel per distinct
    ``(⊕-expression, ⊗-expression)`` pair plus one generic kernel for
    semirings without fused expressions.
    """

    __slots__ = (
        "circuit",
        "size",
        "outputs",
        "ops",
        "lhs",
        "rhs",
        "var_labels",
        "var_slots",
        "node_slot",
        "slot_nodes",
        "load_pairs",
        "const1_nodes",
        "segments",
        "_kernels",
        "_vec_plans",
        "_users",
        "_keep",
        "_outs_streams",
        "_out_positions",
    )

    def __init__(self, circuit: Circuit):
        ops = circuit.ops
        self.circuit = circuit
        self.size = len(ops)
        self.outputs = list(circuit.outputs)
        self.ops = array("q", ops)
        self.lhs = array("q", circuit.lhs)
        self.rhs = array("q", circuit.rhs)

        var_labels: List[Hashable] = []
        var_slots: Dict[Hashable, int] = {}
        node_slot: Dict[int, int] = {}
        slot_nodes: List[List[int]] = []
        load_pairs: List[Tuple[int, int]] = []
        const1_nodes: List[int] = []
        segments: List[Tuple[int, List[Tuple[int, int, int]]]] = []
        run: Optional[List[Tuple[int, int, int]]] = None
        run_op = -1
        labels = circuit.labels
        lhs, rhs = circuit.lhs, circuit.rhs
        for i, op in enumerate(ops):
            if op == OP_ADD or op == OP_MUL:
                if op != run_op:
                    run = []
                    segments.append((op, run))
                    run_op = op
                run.append((i, lhs[i], rhs[i]))
            elif op == OP_VAR:
                label = labels[i]
                slot = var_slots.get(label)
                if slot is None:
                    slot = len(var_labels)
                    var_slots[label] = slot
                    var_labels.append(label)
                    slot_nodes.append([])
                node_slot[i] = slot
                slot_nodes[slot].append(i)
                load_pairs.append((i, slot))
            elif op == OP_CONST1:
                const1_nodes.append(i)
            elif op != OP_CONST0:
                raise ValueError(f"unknown opcode {op}")
        self.var_labels = var_labels
        self.var_slots = var_slots
        self.node_slot = node_slot
        self.slot_nodes = slot_nodes
        self.load_pairs = load_pairs
        self.const1_nodes = const1_nodes
        self.segments = segments
        self._kernels: Dict[Tuple[Optional[Tuple[str, str]], bool], Callable] = {}
        self._vec_plans: Dict[bool, tuple] = {}
        self._users: Optional[List[List[int]]] = None
        self._keep: Optional[List[bool]] = None
        self._outs_streams: Optional[tuple] = None
        self._out_positions: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        """Distinct variable labels (the width of the slot vector)."""
        return len(self.var_labels)

    @property
    def num_segments(self) -> int:
        """Same-opcode instruction runs in the gate stream."""
        return len(self.segments)

    def users(self) -> List[List[int]]:
        """Fanout index: ``users()[i]`` lists the gates reading node ``i``."""
        if self._users is None:
            users: List[List[int]] = [[] for _ in range(self.size)]
            for _op, triples in self.segments:
                for dest, left, right in triples:
                    users[left].append(dest)
                    if right != left:
                        users[right].append(dest)
            self._users = users
        return self._users

    def resolve_output(self, output: Optional[int]) -> int:
        """Default-output resolution, matching the seed interpreter."""
        if output is None:
            if len(self.outputs) != 1:
                raise ValueError(
                    f"circuit has {len(self.outputs)} outputs; pass output= explicitly"
                )
            return self.outputs[0]
        return output

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def _keep_mask(self) -> List[bool]:
        """Nodes reachable from the designated outputs (the live cone)."""
        if self._keep is None:
            self._keep = self.circuit.reachable_from_outputs()
        return self._keep

    def _output_position(self, node: int) -> Optional[int]:
        """Position of *node* in the output list, or ``None``."""
        positions = self._out_positions
        if positions is None:
            positions = {}
            for pos, out in enumerate(self.outputs):
                if out not in positions:
                    positions[out] = pos
            self._out_positions = positions
        return positions.get(node)

    def _filtered_streams(self) -> tuple:
        """Instruction streams restricted to the output cone."""
        if self._outs_streams is None:
            keep = self._keep_mask()
            loads = [(dest, slot) for dest, slot in self.load_pairs if keep[dest]]
            ones = [dest for dest in self.const1_nodes if keep[dest]]
            segments = []
            for op, triples in self.segments:
                live = [t for t in triples if keep[t[0]]]
                if live:
                    segments.append((op, live))
            self._outs_streams = (loads, ones, segments)
        return self._outs_streams

    def _kernel(self, exprs: Optional[Tuple[str, str]], outputs_only: bool = False) -> Callable:
        """The kernel for one fused-expression pair (``None`` = generic).

        The ``outputs_only`` variant applies dead-cone elimination --
        nodes not reachable from the designated outputs are never
        computed -- and returns only the output values; the full
        variant materializes every node (the ``evaluate_all``
        contract).
        """
        key = (exprs, outputs_only)
        kernel = self._kernels.get(key)
        if kernel is None:
            generic = exprs is None
            add_expr, mul_expr = ("", "") if generic else exprs
            if outputs_only:
                loads, ones, segments = self._filtered_streams()
            else:
                loads, ones, segments = self.load_pairs, self.const1_nodes, self.segments
            namespace: Dict[str, object] = {
                "_loads": loads,
                "_ones": ones,
                "_segments": segments,
                "_n": self.size,
                "_outputs": self.outputs,
            }
            if self.size <= _STRAIGHT_LINE_LIMIT:
                keep = self._keep_mask() if outputs_only else None
                source = _gen_straight_source(self, add_expr, mul_expr, generic, keep)
            else:
                source = _gen_loop_source(add_expr, mul_expr, generic, outputs_only)
            exec(source, namespace)  # noqa: S102 - the closure compiler
            kernel = namespace["_kernel"]
            self._kernels[key] = kernel
        return kernel

    def _runner(self, semiring: Semiring, outputs_only: bool = False) -> Callable[[List], List]:
        """``vec -> values`` for *semiring*, with constants pre-bound.

        The closure itself is rebuilt per call and deliberately NOT
        cached on the semiring: a cache would pin per-call semiring
        instances (``canonical_polynomial`` constructs a fresh
        ``SorpSemiring`` every invocation) for the compiled circuit's
        lifetime.  The expensive part -- the ``exec``-generated kernel
        -- is cached by expression pair in :meth:`_kernel`, so the
        rebuild costs one dict probe and a closure allocation.
        """
        zero, one = semiring.zero, semiring.one
        add_expr = semiring.compiled_add_expr
        mul_expr = semiring.compiled_mul_expr
        if add_expr is not None and mul_expr is not None:
            kernel = self._kernel((add_expr, mul_expr), outputs_only)

            def runner(vec, _k=kernel, _z=zero, _o=one):
                return _k(vec, _z, _o)

        else:
            kernel = self._kernel(None, outputs_only)
            add, mul = semiring.add, semiring.mul

            def runner(vec, _k=kernel, _z=zero, _o=one, _a=add, _m=mul):
                return _k(vec, _z, _o, _a, _m)

        return runner

    # ------------------------------------------------------------------
    # Evaluation entry points
    # ------------------------------------------------------------------

    def bind(self, assignment: Assignment) -> List:
        """Resolve *assignment* into a dense slot vector.

        This is the only place labels are hashed: once per distinct
        label per assignment, never per node.
        """
        lookup = assignment if callable(assignment) else assignment.__getitem__
        return [lookup(label) for label in self.var_labels]

    def evaluate_all(self, semiring: Semiring, assignment: Assignment) -> List:
        """Full value array, exactly like the seed ``evaluate_all``."""
        return self._runner(semiring)(self.bind(assignment))

    def evaluate(self, semiring: Semiring, assignment: Assignment, output: Optional[int] = None):
        """Value at one output (node index), like the seed ``evaluate``.

        Queries against a designated output run the dead-cone-
        eliminated kernel; an explicit interior node index falls back
        to the full pass.
        """
        out = self.resolve_output(output)
        position = self._output_position(out)
        if position is None:
            return self._runner(semiring)(self.bind(assignment))[out]
        return self._runner(semiring, True)(self.bind(assignment))[position]

    def evaluate_batch(
        self,
        semiring: Semiring,
        assignments: Iterable[Assignment],
        output: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> List:
        """One value per assignment, amortizing the compile and the
        kernel lookup across the whole batch.

        ``backend`` selects the numeric kernels (DESIGN.md §13):
        ``"vectorized"`` runs each independent instruction chunk as one
        NumPy ufunc call over the whole assignment matrix, falling back
        to the per-assignment Python runner whenever the vectorized
        kernel declines (unsupported semiring, unrepresentable values);
        ``None``/``"python"`` is the default Python path.
        """
        out = self.resolve_output(output)
        position = self._output_position(out)
        if backend is not None:
            from ..backends import resolve_backend

            if resolve_backend(backend) == "vectorized":
                from ..backends.vectorized import vectorized_evaluate_batch

                assignments = list(assignments)
                batched = vectorized_evaluate_batch(self, semiring, assignments, out, position)
                if batched is not None:
                    return batched
        bind = self.bind
        if position is None:
            runner = self._runner(semiring)
            return [runner(bind(assignment))[out] for assignment in assignments]
        runner = self._runner(semiring, True)
        return [runner(bind(assignment))[position] for assignment in assignments]

    def evaluate_boolean_batch(
        self,
        batches: Iterable[Iterable[Hashable]],
        output: Optional[int] = None,
        word_size: int = 64,
    ) -> List[bool]:
        """Bitset-parallel Boolean evaluation of many true-variable sets.

        Each element of *batches* is a collection of variable labels
        to set ``True`` (labels absent from the circuit are ignored,
        matching ``evaluate_boolean``).  Up to *word_size* assignments
        are packed into one integer bitmask per node and evaluated in
        a single ``|``/``&`` pass; returns one ``bool`` per input
        assignment, in order.
        """
        if word_size < 1:
            raise ValueError("word_size must be positive")
        out = self.resolve_output(output)
        position = self._output_position(out)
        if position is None:
            kernel = self._kernel((BITSET_ADD_EXPR, BITSET_MUL_EXPR))
            extract = out
        else:
            kernel = self._kernel((BITSET_ADD_EXPR, BITSET_MUL_EXPR), True)
            extract = position
        var_slots = self.var_slots
        num_slots = len(self.var_labels)
        batch_list = list(batches)
        results: List[bool] = []
        for start in range(0, len(batch_list), word_size):
            chunk = batch_list[start : start + word_size]
            width = len(chunk)
            full = (1 << width) - 1
            masks = [0] * num_slots
            for j, true_variables in enumerate(chunk):
                bit = 1 << j
                for label in true_variables:
                    slot = var_slots.get(label)
                    if slot is not None:
                        masks[slot] |= bit
            word = kernel(masks, 0, full)[extract]
            results.extend(bool((word >> j) & 1) for j in range(width))
        return results


def compile_circuit(circuit: Circuit | CompiledCircuit) -> CompiledCircuit:
    """Compile *circuit*, caching the result on the (immutable) circuit."""
    if isinstance(circuit, CompiledCircuit):
        return circuit
    compiled = circuit._compiled
    if compiled is None:
        compiled = CompiledCircuit(circuit)
        circuit._compiled = compiled
    return compiled


def evaluate_batch(
    circuit: Circuit | CompiledCircuit,
    semiring: Semiring,
    assignments: Iterable[Assignment],
    output: Optional[int] = None,
    backend: Optional[str] = None,
) -> List:
    """Batch evaluation over an arbitrary semiring (compiles once)."""
    return compile_circuit(circuit).evaluate_batch(semiring, assignments, output, backend=backend)


def evaluate_boolean_batch(
    circuit: Circuit | CompiledCircuit,
    batches: Iterable[Iterable[Hashable]],
    output: Optional[int] = None,
    word_size: int = 64,
) -> List[bool]:
    """Bitset-parallel Boolean batch evaluation (compiles once)."""
    return compile_circuit(circuit).evaluate_boolean_batch(batches, output, word_size)


class IncrementalEvaluator:
    """Serve valuation queries under sparse assignment updates.

    Holds the compiled circuit, the current slot vector and the last
    full value array.  :meth:`update` applies a ``{label: value}``
    delta and re-evaluates only the *dirty cone of influence*: a
    worklist seeded with the touched input gates is drained in
    ascending node order (node indices are topological), and a gate's
    users -- looked up in the compiled fanout index -- are enqueued
    only when its value actually changed under ``semiring.eq``.  A
    delta touching one EDB weight therefore costs the size of that
    fact's cone, not the size of the circuit.
    """

    __slots__ = ("compiled", "semiring", "_vec", "_values", "_dirty", "last_cone_size")

    def __init__(
        self,
        circuit: Circuit | CompiledCircuit,
        semiring: Semiring,
        assignment: Assignment,
    ):
        self.compiled = compile_circuit(circuit)
        self.semiring = semiring
        self._vec = self.compiled.bind(assignment)
        self._values = self.compiled._runner(semiring)(list(self._vec))
        self._dirty = bytearray(self.compiled.size)
        self.last_cone_size = 0

    @property
    def values(self) -> List:
        """The live value array (do not mutate)."""
        return self._values

    def value(self, output: Optional[int] = None):
        """Current value at one output (node index)."""
        return self._values[self.compiled.resolve_output(output)]

    def output_values(self) -> List:
        """Current values at every designated output, in order."""
        return [self._values[out] for out in self.compiled.outputs]

    def update(self, delta: Mapping[Hashable, object]) -> List:
        """Apply a sparse delta; returns :meth:`output_values`.

        Unknown labels raise ``KeyError`` (they have no gate to
        feed).  ``self.last_cone_size`` records how many nodes were
        re-evaluated -- the dirty cone the update actually paid for.
        """
        compiled = self.compiled
        semiring = self.semiring
        eq, add, mul = semiring.eq, semiring.add, semiring.mul
        var_slots = compiled.var_slots
        slot_nodes = compiled.slot_nodes
        dirty = self._dirty
        heap: List[int] = []
        # Resolve every label before mutating anything: a KeyError on a
        # partially-applied delta would otherwise leave slots written
        # and nodes marked dirty with the worklist discarded.
        resolved = [(var_slots[label], value) for label, value in delta.items()]
        for slot, value in resolved:
            self._vec[slot] = value
            for node in slot_nodes[slot]:
                if not dirty[node]:
                    dirty[node] = 1
                    heappush(heap, node)
        values = self._values
        vec = self._vec
        ops, lhs, rhs = compiled.ops, compiled.lhs, compiled.rhs
        node_slot = compiled.node_slot
        users = compiled.users()
        cone = 0
        while heap:
            node = heappop(heap)
            dirty[node] = 0
            cone += 1
            op = ops[node]
            if op == OP_ADD:
                new = add(values[lhs[node]], values[rhs[node]])
            elif op == OP_MUL:
                new = mul(values[lhs[node]], values[rhs[node]])
            else:  # OP_VAR: constants never enter the worklist
                new = vec[node_slot[node]]
            # Store only when the value changed under semiring.eq: for
            # tolerance-based eq (Viterbi's isclose) absorbing each
            # sub-tolerance write would let unbounded drift accumulate
            # against a value the users never re-consumed.
            if not eq(values[node], new):
                values[node] = new
                for user in users[node]:
                    if not dirty[user]:
                        dirty[user] = 1
                        heappush(heap, user)
        self.last_cone_size = cone
        return self.output_values()
