"""Circuit serialization: JSON round-trip and Graphviz DOT export.

A provenance circuit is a *stored artifact* in practice (that is the
point of compressing provenance, per the paper's introduction), so the
library ships a stable on-disk format plus a DOT renderer for
inspecting small circuits.
"""

from __future__ import annotations

import json
from typing import Optional

from .circuit import OP_ADD, OP_CONST0, OP_CONST1, OP_MUL, OP_VAR, Circuit

__all__ = ["to_json", "from_json", "to_dot"]

_FORMAT_VERSION = 1


def to_json(circuit: Circuit) -> str:
    """Serialize to a JSON string.

    Variable labels are stored via ``repr`` when not JSON-native;
    :func:`from_json` restores JSON-native labels exactly and falls
    back to the string form otherwise (documented lossy corner --
    tuple-labeled product-graph circuits round-trip as strings).
    """
    labels = []
    for op, label in zip(circuit.ops, circuit.labels):
        if op != OP_VAR:
            labels.append(None)
        elif isinstance(label, (str, int, float, bool)) or label is None:
            labels.append(label)
        else:
            labels.append(repr(label))
    payload = {
        "format": "repro-circuit",
        "version": _FORMAT_VERSION,
        "ops": circuit.ops,
        "lhs": circuit.lhs,
        "rhs": circuit.rhs,
        "labels": labels,
        "outputs": circuit.outputs,
    }
    return json.dumps(payload)


def from_json(text: str) -> Circuit:
    """Inverse of :func:`to_json` (modulo non-native label stringification)."""
    payload = json.loads(text)
    if payload.get("format") != "repro-circuit":
        raise ValueError("not a repro circuit document")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported circuit format version {payload.get('version')}")
    return Circuit(
        payload["ops"], payload["lhs"], payload["rhs"], payload["labels"], payload["outputs"]
    )


def to_dot(circuit: Circuit, name: str = "circuit", max_nodes: Optional[int] = 500) -> str:
    """Graphviz DOT rendering (⊕/⊗ gates, labeled inputs, output ring)."""
    if max_nodes is not None and circuit.size > max_nodes:
        raise ValueError(
            f"circuit has {circuit.size} nodes > max_nodes={max_nodes}; "
            "render a pruned or smaller circuit"
        )
    lines = [f"digraph {name} {{", "  rankdir=BT;"]
    outputs = set(circuit.outputs)
    for i, op in enumerate(circuit.ops):
        if op == OP_VAR:
            shape, label = "box", str(circuit.labels[i])
        elif op == OP_CONST0:
            shape, label = "box", "0"
        elif op == OP_CONST1:
            shape, label = "box", "1"
        elif op == OP_ADD:
            shape, label = "circle", "⊕"
        else:
            shape, label = "circle", "⊗"
        extra = ", peripheries=2" if i in outputs else ""
        escaped = label.replace('"', '\\"')
        lines.append(f'  n{i} [shape={shape}, label="{escaped}"{extra}];')
        if op in (OP_ADD, OP_MUL):
            lines.append(f"  n{circuit.lhs[i]} -> n{i};")
            lines.append(f"  n{circuit.rhs[i]} -> n{i};")
    lines.append("}")
    return "\n".join(lines)
