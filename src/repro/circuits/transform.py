"""Circuit ⟷ formula transformations (Theorem 3.2 and Proposition 3.3).

* :func:`circuit_to_formula` -- Proposition 3.3: a circuit of depth
  ``d`` expands into an equivalent formula of size ``≤ 2^d`` and the
  same depth, by duplicating every shared subcircuit.

* :func:`balance_formula` -- the Brent/Wegener restructuring behind
  Theorem 3.2: a formula of size ``s`` is rebuilt to depth
  ``O(log s)``.  The rewriting uses the identity

      ``F(v) = A ⊗ v ⊕ B  ≡  (F(1) ⊗ v) ⊕ F(0)``

  for the read-once occurrence of a designated subformula ``v``, which
  relies on the absorption law ``B ⊕ B ⊗ v = B``.  It is therefore
  semantics-preserving over every **absorptive** semiring (and in
  particular over the Boolean semiring, the setting of Wegener [33]);
  it is *not* sound over, e.g., the counting semiring.

Together these realize the paper's equivalence: polynomial-size
formulas ⟺ ``O(log n)``-depth circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Union

from .circuit import OP_ADD, OP_CONST0, OP_CONST1, OP_MUL, OP_VAR, Circuit, CircuitBuilder

__all__ = [
    "FormulaTree",
    "circuit_to_formula",
    "circuit_to_tree",
    "tree_to_formula",
    "balance_formula",
    "formula_depth_bound",
]


@dataclass
class FormulaTree:
    """A formula as an explicit tree (the balancer's working form).

    ``op`` is one of the circuit opcodes; leaves carry ``label`` (for
    vars).  ``leaves`` caches the subtree leaf count.
    """

    op: int
    left: Optional["FormulaTree"] = None
    right: Optional["FormulaTree"] = None
    label: Optional[Hashable] = None
    leaves: int = 1

    @staticmethod
    def var(label: Hashable) -> "FormulaTree":
        return FormulaTree(OP_VAR, label=label)

    @staticmethod
    def const(one: bool) -> "FormulaTree":
        return FormulaTree(OP_CONST1 if one else OP_CONST0)

    @staticmethod
    def combine(op: int, left: "FormulaTree", right: "FormulaTree") -> "FormulaTree":
        return FormulaTree(op, left, right, leaves=left.leaves + right.leaves)

    @property
    def is_leaf(self) -> bool:
        return self.op in (OP_VAR, OP_CONST0, OP_CONST1)

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def size(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + self.left.size() + self.right.size()


def circuit_to_tree(circuit: Circuit, output: Optional[int] = None, max_size: int = 2_000_000) -> FormulaTree:
    """Expand *circuit* (from *output*) into a tree, duplicating shares.

    This is the constructive content of Proposition 3.3; the result
    has the same depth and at most ``2^depth`` leaves.  *max_size*
    guards against the inherent exponential blow-up.
    """
    if output is None:
        if len(circuit.outputs) != 1:
            raise ValueError("circuit has multiple outputs; pass output=")
        output = circuit.outputs[0]

    budget = [max_size]

    def expand(node: int) -> FormulaTree:
        budget[0] -= 1
        if budget[0] < 0:
            raise MemoryError(
                f"formula expansion exceeded {max_size} nodes; "
                "the circuit's shared structure is essential (cf. Thm 3.4)"
            )
        op = circuit.ops[node]
        if op == OP_VAR:
            return FormulaTree.var(circuit.labels[node])
        if op == OP_CONST0:
            return FormulaTree.const(False)
        if op == OP_CONST1:
            return FormulaTree.const(True)
        left = expand(circuit.lhs[node])
        right = expand(circuit.rhs[node])
        return FormulaTree.combine(op, left, right)

    return expand(output)


def tree_to_formula(tree: FormulaTree) -> Circuit:
    """Serialize a :class:`FormulaTree` into a formula circuit."""
    builder = CircuitBuilder(share=False)

    def emit(node: FormulaTree) -> int:
        if node.op == OP_VAR:
            return builder.var(node.label)
        if node.op == OP_CONST0:
            return builder.const0()
        if node.op == OP_CONST1:
            return builder.const1()
        left = emit(node.left)
        right = emit(node.right)
        if node.op == OP_ADD:
            return builder.add(left, right)
        return builder.mul(left, right)

    return builder.build(emit(tree))


def circuit_to_formula(circuit: Circuit, output: Optional[int] = None, max_size: int = 2_000_000) -> Circuit:
    """Proposition 3.3: depth-preserving circuit → formula expansion."""
    return tree_to_formula(circuit_to_tree(circuit, output, max_size))


# ----------------------------------------------------------------------
# Brent/Wegener balancing (Theorem 3.2)
# ----------------------------------------------------------------------

_BASE_LEAVES = 4


def _substitute(tree: FormulaTree, target: FormulaTree, replacement: FormulaTree) -> FormulaTree:
    """Copy *tree* with the (identity-located) *target* node replaced."""
    if tree is target:
        return replacement
    if tree.is_leaf:
        return tree
    left = _substitute(tree.left, target, replacement)
    right = _substitute(tree.right, target, replacement)
    if left is tree.left and right is tree.right:
        return tree
    return FormulaTree.combine(tree.op, left, right)


def _find_separator(tree: FormulaTree) -> FormulaTree:
    """Walk the heavy path to a node with between n/3 and 2n/3 leaves."""
    total = tree.leaves
    node = tree
    while node.leaves * 3 > total * 2:
        if node.is_leaf:  # pragma: no cover - total ≥ 3 prevents this
            break
        node = node.left if node.left.leaves >= node.right.leaves else node.right
    return node


def _simplify(tree: FormulaTree) -> FormulaTree:
    """Constant-fold 0/1 identities bottom-up (keeps balanced sizes lean)."""
    if tree.is_leaf:
        return tree
    left = _simplify(tree.left)
    right = _simplify(tree.right)
    if tree.op == OP_ADD:
        if left.op == OP_CONST0:
            return right
        if right.op == OP_CONST0:
            return left
        if left.op == OP_CONST1 or right.op == OP_CONST1:
            # absorptive semirings: 1 ⊕ x = 1
            return FormulaTree.const(True)
    else:  # OP_MUL
        if left.op == OP_CONST0 or right.op == OP_CONST0:
            return FormulaTree.const(False)
        if left.op == OP_CONST1:
            return right
        if right.op == OP_CONST1:
            return left
    if left is tree.left and right is tree.right:
        return tree
    return FormulaTree.combine(tree.op, left, right)


def _balance(tree: FormulaTree) -> FormulaTree:
    if tree.leaves <= _BASE_LEAVES:
        return tree
    separator = _find_separator(tree)
    if separator is tree:
        # Root itself within [n/3, 2n/3] is impossible; recurse on kids.
        left = _balance(tree.left)
        right = _balance(tree.right)
        return FormulaTree.combine(tree.op, left, right)
    inner = _balance(separator)
    # F(v) with v := the separator subformula; F ≡ (F(1) ⊗ v) ⊕ F(0)
    # over absorptive semirings (B ⊕ B⊗v = B).
    f_one = _simplify(_substitute(tree, separator, FormulaTree.const(True)))
    f_zero = _simplify(_substitute(tree, separator, FormulaTree.const(False)))
    balanced_one = _balance(f_one)
    balanced_zero = _balance(f_zero)
    return FormulaTree.combine(
        OP_ADD, FormulaTree.combine(OP_MUL, balanced_one, inner), balanced_zero
    )


def balance_formula(formula: Union[Circuit, FormulaTree]) -> Circuit:
    """Theorem 3.2: rebuild a formula to depth ``O(log size)``.

    Sound over every absorptive semiring (see module docstring).  The
    input may be a formula circuit or a :class:`FormulaTree`; the
    output is a formula circuit computing an equivalent polynomial.
    """
    tree = formula if isinstance(formula, FormulaTree) else circuit_to_tree(formula)
    return tree_to_formula(_balance(_simplify(tree)))


def formula_depth_bound(size: int) -> int:
    """The O(log s) bound realized by :func:`balance_formula`.

    From the recurrence ``D(n) ≤ D(2n/3 + 1) + 2`` with ``D(4) ≤ 4``:
    ``D(n) ≤ 2·log_{3/2}(n) + 4``.  Tests assert measured depth stays
    under this explicit constant.
    """
    import math

    if size <= 1:
        return 1
    return int(2 * math.log(size, 1.5)) + 4
