"""The execution knobs, unified: one :class:`ExecutionConfig` for every layer.

PRs 1-5 grew five independent spellings for "how should this run":
``strategy=`` on the fixpoint entry points, ``grounding_engine=`` on
the same entry points one layer up, ``engine=`` on the grounding and
circuit-construction functions, ``columnar=`` on
:func:`~repro.datalog.magic.magic_grounding`, and per-construction
keyword arguments on :func:`~repro.constructions.auto.provenance_circuit`.
Each knob was coherent locally and inconsistent globally -- the same
word ("columnar") named a join engine, a fixpoint strategy and an
output representation depending on the call site.

This module is the single source of truth those layers now share
(DESIGN.md §10):

* the knob vocabularies (:data:`GROUNDING_ENGINES`,
  :data:`FIXPOINT_STRATEGIES`, :data:`CONSTRUCTIONS`) and their
  defaults, re-exported by the layers that historically defined them;
* :class:`ExecutionConfig`, the one value every layer accepts via a
  ``config=`` keyword -- grounding, fixpoint, circuit construction,
  the :mod:`repro.api` facade and the serving stack
  (:mod:`repro.serving`) all thread the same frozen object;
* :func:`merge_legacy_knobs`, the deprecation shim the public entry
  points use to keep the historical kwarg spellings working (warn,
  don't break) while folding them into an ``ExecutionConfig``.

It deliberately imports nothing from the rest of the package so every
layer -- including :mod:`repro.datalog.grounding` at the bottom of the
stack -- can depend on it without cycles.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Mapping, Optional, Tuple, Union

__all__ = [
    "GROUNDING_ENGINES",
    "DEFAULT_GROUNDING_ENGINE",
    "FIXPOINT_STRATEGIES",
    "DEFAULT_FIXPOINT_STRATEGY",
    "CONSTRUCTIONS",
    "DEFAULT_CONSTRUCTION",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ExecutionConfig",
    "DEFAULT_CONFIG",
    "coerce_config",
    "merge_legacy_knobs",
]

#: Join engines for grounding (DESIGN.md §5, §8): ``indexed`` probes
#: pattern-keyed hash indexes, ``columnar`` runs the fused pass in
#: interned id space, ``naive`` is the reference nested-loop join.
GROUNDING_ENGINES: Tuple[str, ...] = ("indexed", "naive", "columnar")
DEFAULT_GROUNDING_ENGINE = "indexed"

#: Fixpoint strategies (DESIGN.md §4, §9): ``seminaive`` re-evaluates
#: only dirty rules, ``columnar`` runs the same delta rounds on dense
#: id-indexed arrays, ``naive`` is the paper's literal loop.
FIXPOINT_STRATEGIES: Tuple[str, ...] = ("naive", "seminaive", "columnar")
DEFAULT_FIXPOINT_STRATEGY = "seminaive"

#: Circuit constructions (Sections 3-6): ``auto`` runs the paper's
#: decision tree (:func:`repro.constructions.auto.provenance_circuit`),
#: ``generic`` pins Theorem 3.1, ``fringe`` pins Theorem 6.2.
CONSTRUCTIONS: Tuple[str, ...] = ("auto", "generic", "fringe")
DEFAULT_CONSTRUCTION = "auto"

#: Numeric kernel backends (DESIGN.md §13): ``python`` runs the
#: exec-generated pure-Python kernels (no dependencies), ``vectorized``
#: runs whole-column NumPy ufunc expressions over the same buffers and
#: requires NumPy (the ``perf`` extra), ``auto`` picks ``vectorized``
#: when NumPy is importable and falls back to ``python`` otherwise.
BACKENDS: Tuple[str, ...] = ("python", "vectorized", "auto")
DEFAULT_BACKEND = "python"

_VOCABULARIES = {
    "engine": GROUNDING_ENGINES,
    "strategy": FIXPOINT_STRATEGIES,
    "construction": CONSTRUCTIONS,
    "backend": BACKENDS,
}


@dataclass(frozen=True)
class ExecutionConfig:
    """One immutable bundle of execution knobs, accepted everywhere.

    ``None`` fields mean "use the repo default", so a partially
    specified config composes cleanly across layers: the fixpoint
    engine reads ``strategy``, the grounding layer reads ``engine``,
    the construction layer reads ``construction``/``optimize_depth``,
    and each ignores the fields it does not own.  The ``resolved_*``
    properties apply the defaults.

    Configs are hashable and cheap; build them once and thread them
    (:class:`repro.api.Session` and :class:`repro.serving.CircuitServer`
    both key caches on them).
    """

    engine: Optional[str] = None
    strategy: Optional[str] = None
    construction: Optional[str] = None
    optimize_depth: bool = False
    backend: Optional[str] = None
    #: Drop rules unreachable from the target before grounding
    #: (:func:`repro.datalog.analysis.prune_unreachable`).  Off by
    #: default: pruning is exact for the target cone but removes
    #: unreachable IDB predicates from the result set entirely.
    prune: bool = False

    def __post_init__(self) -> None:
        for field in ("engine", "strategy", "construction", "backend"):
            value = getattr(self, field)
            allowed = _VOCABULARIES[field]
            if value is not None and value not in allowed:
                raise ValueError(
                    f"unknown {field} {value!r}; expected one of {allowed} (or None for the default)"
                )

    @property
    def resolved_engine(self) -> str:
        return self.engine or DEFAULT_GROUNDING_ENGINE

    @property
    def resolved_strategy(self) -> str:
        return self.strategy or DEFAULT_FIXPOINT_STRATEGY

    @property
    def resolved_construction(self) -> str:
        return self.construction or DEFAULT_CONSTRUCTION

    @property
    def resolved_backend(self) -> str:
        """The configured backend name with the default applied.

        Note this is the *name* resolution only; ``"auto"`` is resolved
        against NumPy availability lazily at evaluation time by
        :func:`repro.backends.resolve_backend`, so building a config
        never imports NumPy.
        """
        return self.backend or DEFAULT_BACKEND

    def evolve(self, **changes) -> "ExecutionConfig":
        """A copy with *changes* applied (``dataclasses.replace``)."""
        return replace(self, **changes)

    def key(self) -> Tuple:
        """A stable, hashable identity (used in cache keys)."""
        return tuple(getattr(self, f.name) for f in fields(self))


#: The all-defaults config; what ``config=None`` coerces to.
DEFAULT_CONFIG = ExecutionConfig()

ConfigLike = Union[None, ExecutionConfig, Mapping[str, object]]


def coerce_config(config: ConfigLike) -> ExecutionConfig:
    """Normalize ``None`` | mapping | :class:`ExecutionConfig` to a config.

    Mappings (e.g. a JSON body field in the serving layer) are passed
    to the constructor, so unknown keys and values fail loudly.
    """
    if config is None:
        return DEFAULT_CONFIG
    if isinstance(config, ExecutionConfig):
        return config
    if isinstance(config, Mapping):
        return ExecutionConfig(**config)
    raise TypeError(
        f"config must be an ExecutionConfig, a mapping of its fields, or None; got {type(config).__name__}"
    )


def merge_legacy_knobs(where: str, config: ConfigLike, **legacy) -> ExecutionConfig:
    """Fold deprecated kwarg spellings into an :class:`ExecutionConfig`.

    *legacy* maps a config field name to an ``(old_spelling, value)``
    pair; a non-``None`` value emits a :class:`DeprecationWarning`
    naming the replacement and is merged into *config*.  A legacy
    value that contradicts an explicitly configured field raises
    :class:`ValueError` -- silently preferring either spelling would
    make the migration ambiguous.

    ``stacklevel=3`` attributes the warning to the caller of the
    public entry point (user code), not to the shim itself.
    """
    merged = coerce_config(config)
    for field, (old, value) in legacy.items():
        if value is None:
            continue
        warnings.warn(
            f"{where}({old}=...) is deprecated; pass config=ExecutionConfig({field}={value!r}) "
            "through the repro.api facade instead (DESIGN.md §10)",
            DeprecationWarning,
            stacklevel=3,
        )
        current = getattr(merged, field)
        if current is not None and current != value:
            raise ValueError(
                f"{where}: legacy {old}={value!r} conflicts with config.{field}={current!r}"
            )
        merged = merged.evolve(**{field: value})
    return merged
