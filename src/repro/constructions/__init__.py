"""Every circuit construction of the paper (Sections 3--6).

=============================  =====================================
Function                       Paper result
=============================  =====================================
:func:`generic_circuit`        Thm 3.1 (Deutch et al.): poly-size
                               circuit for any program
:func:`ucq_circuit`            Prop 3.7: O(log)-depth UCQ circuit
                               and poly-size formula
:func:`bounded_circuit`        Thm 4.3: O(log)-depth circuit for
                               bounded programs
:func:`dag_circuit` /          Thm 3.5: linear size, linear depth
:func:`layered_circuit`        for layered/acyclic st-connectivity
:func:`bellman_ford_circuit`   Thm 5.6: O(mn) size, O(n log n) depth
                               for TC
:func:`squaring_circuit`       Thm 5.7: O(n³ log n) size,
                               O(log² n) depth for TC
:func:`finite_rpq_circuit`     Thm 5.8: O(m) size, O(log n) depth
                               for finite RPQs
:func:`fringe_circuit`         Thm 6.2 (Ullman–Van Gelder):
                               O(log² |I|) depth under the
                               polynomial fringe property
=============================  =====================================

All constructions label input gates with EDB :class:`~repro.datalog.ast.Fact`
objects, so ``database.valuation(semiring)`` is always a valid
evaluation assignment.
"""

from .auto import ConstructionChoice, provenance_circuit
from .bellman_ford import bellman_ford_all_targets, bellman_ford_circuit
from .bounded import bounded_circuit
from .finite_rpq import finite_rpq_circuit
from .fringe import default_stage_count, fringe_circuit
from .generic import generic_circuit
from .layered import dag_circuit, layered_circuit
from .squaring import squaring_all_pairs, squaring_circuit
from .ucq import cq_valuations, ucq_circuit

__all__ = [
    "ConstructionChoice",
    "provenance_circuit",
    "generic_circuit",
    "ucq_circuit",
    "cq_valuations",
    "bounded_circuit",
    "dag_circuit",
    "layered_circuit",
    "bellman_ford_circuit",
    "bellman_ford_all_targets",
    "squaring_circuit",
    "squaring_all_pairs",
    "finite_rpq_circuit",
    "fringe_circuit",
    "default_stage_count",
]
