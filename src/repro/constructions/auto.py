"""Automatic construction selection: the paper's decision tree as code.

Given a program/database/fact, pick the best construction the paper
provides for that class:

1. TC-shaped queries on a DAG → the graph-as-circuit (Thm 3.5);
2. a bounded program (exact or certified) → ``k`` layers (Thm 4.3);
3. left-linear chain (regular) programs → magic-set specialization
   (Thm 5.8's device) feeding the generic construction, keeping the
   grounding at ``O(m)``;
4. programs with the polynomial fringe property (linear or chain) →
   the Ullman–Van Gelder circuit (Thm 6.2) when ``optimize_depth`` is
   requested;
5. otherwise → the generic circuit (Thm 3.1).

Returns the circuit plus a :class:`ConstructionChoice` explaining the
decision -- useful both as a user-facing API and as living
documentation of Sections 3--6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..boundedness.checker import chain_program_boundedness, expansion_boundedness_certificate
from ..circuits.circuit import Circuit
from ..circuits.runtime import CompiledCircuit, IncrementalEvaluator, compile_circuit
from ..config import ConfigLike, coerce_config
from ..datalog.ast import Fact, Program
from ..datalog.database import Database
from ..datalog.magic import magic_specialize, specialized_fact
from .bounded import bounded_circuit
from .fringe import fringe_circuit
from .generic import generic_circuit

__all__ = ["ConstructionChoice", "provenance_circuit"]


@dataclass
class ConstructionChoice:
    """The selected construction and the reasoning trail.

    The choice is also the natural serving handle: the paper's usage
    pattern is "build one circuit, answer many valuation queries", so
    the compiled-runtime entry points (DESIGN.md §7) are exposed here
    directly.  All of them share one cached
    :class:`~repro.circuits.runtime.CompiledCircuit`.
    """

    circuit: Circuit
    construction: str
    theorem: str
    reason: str

    def __repr__(self) -> str:
        return f"ConstructionChoice({self.construction}, {self.theorem}: {self.reason})"

    def compiled(self) -> CompiledCircuit:
        """The circuit frozen for repeated evaluation (cached)."""
        return compile_circuit(self.circuit)

    def evaluate(self, semiring, assignment, output=None):
        """One valuation query against the compiled circuit."""
        return self.compiled().evaluate(semiring, assignment, output)

    def evaluate_batch(self, semiring, assignments, output=None, backend=None):
        """Many valuation queries, one compile (see ``evaluate_batch``).

        *backend* threads the DESIGN.md §13 execution backend through to
        the compiled runtime (``"vectorized"`` evaluates each same-opcode
        instruction stream as one NumPy array expression when the
        semiring publishes ufunc specs; any other value keeps the pure
        Python interpreter)."""
        return self.compiled().evaluate_batch(semiring, assignments, output, backend=backend)

    def evaluate_boolean_batch(self, batches, output=None, word_size=64):
        """Bitset-parallel Boolean queries, 64 per pass."""
        return self.compiled().evaluate_boolean_batch(batches, output, word_size)

    def serve(self, semiring, assignment) -> IncrementalEvaluator:
        """An incremental evaluator seeded with *assignment* -- the
        "one EDB weight changed, re-answer the query" scenario."""
        return IncrementalEvaluator(self.compiled(), semiring, assignment)


def provenance_circuit(
    program: Program,
    database: Database,
    fact: Fact,
    optimize_depth: bool = False,
    config: ConfigLike = None,
) -> ConstructionChoice:
    """Build a provenance circuit for *fact*, choosing the construction
    by program class (see module docstring).

    *config* threads the unified execution knobs (DESIGN.md §10):
    ``config.engine`` selects the grounding join engine behind every
    construction, and ``config.optimize_depth`` is the facade spelling
    of the *optimize_depth* flag (either one requests the fringe
    construction when the program class allows it).
    """
    config = coerce_config(config)
    optimize_depth = optimize_depth or config.optimize_depth
    if fact.predicate != program.target:
        program = program.with_target(fact.predicate)

    # Bounded? (exact for chain programs, certified for linear ones)
    bound: Optional[int] = None
    if program.is_basic_chain():
        report = chain_program_boundedness(program)
        if report.bounded:
            bound = report.certificate
    elif program.is_linear():
        report = expansion_boundedness_certificate(program)
        if report.bounded:
            bound = report.certificate
    if bound is not None:
        circuit = bounded_circuit(program, database, bound=bound, facts=fact, config=config)
        return ConstructionChoice(
            circuit,
            construction="bounded",
            theorem="Theorem 4.3",
            reason=f"program is bounded with certificate k={bound}; "
            "k ICO layers give depth O(log |I|)",
        )

    # Left-linear chain with a constant source: magic-set specialization.
    if program.is_left_linear_chain() and len(fact.args) == 2:
        source, other = fact.args
        specialized = magic_specialize(program, source)
        target = specialized_fact(program, source, other)
        circuit = generic_circuit(specialized, database, target, config=config)
        return ConstructionChoice(
            circuit,
            construction="magic-generic",
            theorem="Theorem 5.8 (magic-set step)",
            reason=f"left-linear chain program specialized to source {source!r}: "
            "unary IDBs keep the grounding at O(m)",
        )

    if optimize_depth and (program.is_linear() or program.is_basic_chain()):
        circuit = fringe_circuit(program, database, fact, config=config)
        return ConstructionChoice(
            circuit,
            construction="ullman-van-gelder",
            theorem="Theorem 6.2",
            reason="polynomial fringe property (linear/chain program): "
            "depth O(log² |I|)",
        )

    circuit = generic_circuit(program, database, fact, config=config)
    return ConstructionChoice(
        circuit,
        construction="generic",
        theorem="Theorem 3.1",
        reason="fallback: polynomial-size circuit for any program over an "
        "absorptive semiring",
    )
