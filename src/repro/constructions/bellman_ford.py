"""The Bellman–Ford circuit for TC (Theorem 5.6).

Single-source/single-target reachability provenance over any
absorptive semiring: layer ``k`` holds, per vertex ``j``, the
polynomial ``f_j^k`` summing all walks of length ≤ ``k`` from the
source to ``j``::

    f_j^k = f_j^{k-1} ⊕ ⊕_{i ∈ N_j} ( f_i^{k-1} ⊗ x_{i,j} )

``n − 1`` layers suffice; walk monomials that are not paths are
absorbed by their path sub-monomials (absorptive law), so the output
equals the TC provenance polynomial.  Size ``O(m·n)``, depth
``O(n log n)`` (each in-neighbourhood sum is a balanced tree).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..circuits.circuit import Circuit, CircuitBuilder
from ..datalog.ast import Fact
from ..datalog.database import Database

__all__ = ["bellman_ford_circuit", "bellman_ford_all_targets"]

Vertex = Hashable


def _graph(database: Database, edge: str) -> Tuple[List[Vertex], Dict[Vertex, List[Tuple[Vertex, Fact]]]]:
    vertices: set = set()
    incoming: Dict[Vertex, List[Tuple[Vertex, Fact]]] = {}
    for args in database.tuples(edge):
        u, v = args
        vertices.add(u)
        vertices.add(v)
        incoming.setdefault(v, []).append((u, Fact(edge, (u, v))))
    return sorted(vertices, key=repr), incoming


def bellman_ford_circuit(
    database: Database,
    source: Vertex,
    sink: Vertex,
    edge: str = "E",
    rounds: Optional[int] = None,
) -> Circuit:
    """Theorem 5.6's circuit for the fact ``T(source, sink)``.

    *rounds* defaults to ``n − 1``; fewer rounds give the walks-up-to-
    that-length under-approximation (useful for the layer-sweep
    ablation bench).  ``source == sink`` is rejected: the empty walk
    (value ``1``) would absorb the whole polynomial, while TC proof
    trees of ``T(s, s)`` always use at least one edge.
    """
    if source == sink:
        raise ValueError("Bellman–Ford circuit needs source ≠ sink (see docstring)")
    circuit, _node_of = _bellman_ford(database, source, {sink}, edge, rounds)
    return circuit


def bellman_ford_all_targets(
    database: Database,
    source: Vertex,
    edge: str = "E",
    rounds: Optional[int] = None,
) -> Tuple[Circuit, Dict[Vertex, int]]:
    """Single-source variant: one circuit, an output gate per vertex.

    Returns ``(circuit, vertex → output index)``; vertices unreachable
    in ≤ rounds steps map to a constant-0 output.
    """
    vertices, _ = _graph(database, edge)
    circuit, node_of = _bellman_ford(database, source, set(vertices), edge, rounds)
    return circuit, node_of


def _bellman_ford(
    database: Database,
    source: Vertex,
    sinks: set,
    edge: str,
    rounds: Optional[int],
) -> Tuple[Circuit, Dict[Vertex, int]]:
    vertices, incoming = _graph(database, edge)
    if source not in set(vertices):
        vertices.append(source)
    n = len(vertices)
    if rounds is None:
        rounds = max(n - 1, 1)

    builder = CircuitBuilder(share=True)
    edge_var: Dict[Fact, int] = {}
    for v, pairs in incoming.items():
        for _u, fact in pairs:
            if fact not in edge_var:
                edge_var[fact] = builder.var(fact)

    # f^0: only the source is reached (by the empty walk, value 1).
    value: Dict[Vertex, int] = {
        v: (builder.const1() if v == source else builder.const0()) for v in vertices
    }
    for _ in range(rounds):
        fresh: Dict[Vertex, int] = {}
        for v in vertices:
            terms = [value[v]]
            for u, fact in incoming.get(v, ()):
                terms.append(builder.mul(value[u], edge_var[fact]))
            fresh[v] = builder.add_all(terms)
        if fresh == value:
            break  # structural fixpoint (acyclic or converged early)
        value = fresh

    # Build with every sink as an output, then prune the dead cone.
    sink_order = sorted(sinks, key=repr)
    outputs = [value.get(s, builder.const0()) for s in sink_order]
    circuit = builder.build(outputs, prune=True)
    node_of = {s: circuit.outputs[i] for i, s in enumerate(sink_order)}
    return circuit, node_of
