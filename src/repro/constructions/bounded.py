"""Circuits for bounded programs (Theorem 4.3).

A program bounded with constant ``k`` (Definition 4.1) reaches its
fixpoint in ``k`` ICO rounds on every input, so ``k`` layers of the
generic construction suffice: polynomial size and -- because ``k`` is
a constant and each layer's summations are balanced -- depth
``O(log |I|)``.  By Proposition 3.3 this also gives polynomial-size
formulas.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..circuits.circuit import Circuit
from ..config import ConfigLike
from ..datalog.ast import Fact, Program
from ..datalog.database import Database
from ..datalog.grounding import GroundProgram
from .generic import generic_circuit

__all__ = ["bounded_circuit"]


def bounded_circuit(
    program: Program,
    database: Database,
    bound: int,
    facts: Optional[Union[Fact, Sequence[Fact]]] = None,
    ground: Optional[GroundProgram] = None,
    config: ConfigLike = None,
) -> Circuit:
    """The Theorem 4.3 circuit: *bound* ICO layers, balanced sums.

    *bound* is the boundedness constant ``k`` of Definition 4.1 --
    a semantic property of the program/semiring pair that the caller
    must supply (deciding it is undecidable in general; see
    :mod:`repro.boundedness` for certifiers on decidable fragments).
    With too small a *bound* the circuit under-approximates the
    provenance; tests cross-check against tight proof trees.
    """
    if bound < 1:
        raise ValueError("the boundedness constant must be ≥ 1")
    return generic_circuit(program, database, facts, stages=bound, ground=ground, config=config)
