"""Linear-size circuits for finite RPQs (Theorem 5.8).

When the regular language ``L`` of an RPQ is finite, every accepted
word has length ≤ ``K`` (a constant of the query).  Specializing to a
source vertex -- the paper's magic-set step, realized here directly on
the DFA product -- the circuit keeps one gate per (vertex, DFA state)
per round, for ``K`` rounds::

    reach₀[(src, q₀)] = 1
    reachₖ[(v, q)]   = ⊕_{(u,a,v) ∈ E, δ(q',a) = q} reachₖ₋₁[(u,q')] ⊗ x_{(u,a,v)}

and the output is ``⊕_{k ≤ K, f accepting} reachₖ[(sink, f)]``.
Size ``O(K·m·|δ|) = O(m)``, depth ``O(K·log n) = O(log n)`` -- the
asymptotically optimal finite row of Table 1.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from ..circuits.circuit import Circuit, CircuitBuilder
from ..datalog.ast import Fact
from ..grammars.regular import DFA

__all__ = ["finite_rpq_circuit"]

Vertex = Hashable
Edge = Tuple[Vertex, str, Vertex]


def finite_rpq_circuit(
    edges: Iterable[Edge],
    dfa: DFA,
    source: Vertex,
    sink: Vertex,
) -> Circuit:
    """Theorem 5.8's circuit for one ``(source, sink)`` RPQ fact.

    *dfa* must recognize a **finite** language (raises ``ValueError``
    otherwise; the infinite case is exactly as hard as TC by Theorem
    5.9).  Input labels are the labeled-edge facts
    ``Fact(label, (u, v))``.  ε ∈ L is ignored (no zero-length facts
    in chain Datalog); a ``source == sink`` query then sums the
    nonempty accepted closed walks.
    """
    if not dfa.is_finite():
        raise ValueError(
            "the RPQ language is infinite; use the Bellman–Ford or squaring "
            "construction on the product graph instead (Theorem 5.9)"
        )
    max_len = dfa.longest_word_length()
    edge_list = list(edges)

    # Incoming product transitions per (vertex, state).
    incoming: Dict[Tuple[Vertex, int], List[Tuple[Tuple[Vertex, int], Fact]]] = {}
    for u, label, v in edge_list:
        fact = Fact(str(label), (u, v))
        for (state, symbol), nxt in dfa.transitions.items():
            if symbol == label:
                incoming.setdefault((v, nxt), []).append(((u, state), fact))

    builder = CircuitBuilder(share=True)
    start_key = (source, dfa.start)
    reach: Dict[Tuple[Vertex, int], int] = {start_key: builder.const1()}
    accept_terms: List[int] = []
    if dfa.start in dfa.accepts and source == sink:
        pass  # ε-word deliberately excluded (see docstring)
    for _ in range(max_len):
        fresh: Dict[Tuple[Vertex, int], int] = {}
        for key, sources in incoming.items():
            terms = []
            for origin, fact in sources:
                upstream = reach.get(origin)
                if upstream is not None:
                    terms.append(builder.mul(upstream, builder.var(fact)))
            if terms:
                fresh[key] = builder.add_all(terms)
        reach = fresh
        for state in dfa.accepts:
            node = reach.get((sink, state))
            if node is not None:
                accept_terms.append(node)
        if not reach:
            break
    output = builder.add_all(accept_terms)
    return builder.build(output, prune=True)
