"""The Ullman–Van Gelder circuit (Theorem 6.2).

For programs with the polynomial fringe property (every tight proof
tree has polynomially many leaves -- all linear programs, Dyck-1, ...),
a circuit of polynomial size and depth ``O(log² |I|)`` computes every
provenance polynomial over any absorptive semiring.

The construction tracks a weighted digraph ``H`` on ``⟨0⟩ ∪ {⟨α⟩ : α
IDB fact}``: ``H(⟨0⟩, ⟨α⟩)`` converges to the value of ``α``, while
``H(⟨δ⟩, ⟨α⟩)`` is a *conditional* value -- the sum over partial proof
trees of ``α`` with a single open IDB leaf ``δ``.  Each of the ``K``
stages does (paper's four steps):

1. re-derive ``H₁(⟨0⟩, ⟨α⟩)`` by one ICO round over the grounding;
2. re-derive ``H₁(⟨δ⟩, ⟨α⟩)`` for each rule and each choice of one
   open IDB body occurrence ``δ``, closing the others with stage-1
   values;
3. accumulate: ``H₂ = H^{(k-1)} ⊕ H₁``;
4. square: one step of transitive closure on ``H₂``.

Ullman & Van Gelder show ``K = max_T log_{4/3}|T|`` stages suffice
(``T`` ranging over tight proof trees), so ``K = O(log |I|)`` under
the polynomial fringe property, and each stage is an ``O(log |I|)``-
depth circuit: total depth ``O(log² |I|)``.

``H`` is kept sparse (only derivable entries), which keeps the
all-pairs squaring step proportional to the realized edges instead of
``N³``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..circuits.circuit import Circuit, CircuitBuilder
from ..config import ConfigLike, merge_legacy_knobs
from ..datalog.ast import Fact, Program
from ..datalog.database import Database
from ..datalog.grounding import (
    ColumnarGroundProgram,
    GroundProgram,
    columnar_grounding,
    relevant_grounding,
)

__all__ = ["fringe_circuit", "default_stage_count"]

_ROOT = 0  # the special id ⟨0⟩


def default_stage_count(ground, fringe_bound: Optional[int] = None) -> int:
    """``K = ⌈log_{4/3}(fringe bound)⌉ + 1`` stages.

    Without an explicit bound we use the grounding size: a tight proof
    tree's internal nodes are distinct *rule applications along each
    path*, and for poly-fringe programs the tree size is polynomial in
    the input -- the grounding size is a sound polynomial over-
    approximation for the linear and chain programs benchmarked here
    (each node consumes a distinct ground rule occurrence budget).
    *ground* may be a tuple-space or columnar grounding; only its
    ``size`` is read.
    """
    if fringe_bound is None:
        fringe_bound = max(ground.size, 2)
    return max(1, math.ceil(math.log(max(fringe_bound, 2), 4 / 3))) + 1


def fringe_circuit(
    program: Program,
    database: Database,
    facts: Optional[Union[Fact, Sequence[Fact]]] = None,
    stages: Optional[int] = None,
    fringe_bound: Optional[int] = None,
    ground: Optional[Union[GroundProgram, ColumnarGroundProgram]] = None,
    engine: Optional[str] = None,
    config: ConfigLike = None,
) -> Circuit:
    """Theorem 6.2's circuit for *facts* (default: all target facts).

    *stages* overrides ``K``; *fringe_bound* feeds
    :func:`default_stage_count`.  *engine* selects the grounding join
    engine when *ground* is not supplied (``"indexed"`` | ``"naive"``
    | ``"columnar"``, see
    :func:`~repro.datalog.grounding.relevant_grounding`); with
    ``engine="columnar"`` the program is grounded straight into id
    space and the per-stage rule sweeps read the columnar arrays --
    facts are decoded only for input-gate labels and outputs.  A
    precomputed grounding of either form can be passed as *ground*.
    Input labels are EDB facts, so ``database.valuation(semiring)``
    evaluates the result.

    ``engine=`` is the deprecated spelling of
    ``config=ExecutionConfig(engine=...)``; it still works but warns.
    """
    config = merge_legacy_knobs("fringe_circuit", config, engine=("engine", engine))
    if ground is None:
        if config.resolved_engine == "columnar":
            ground = columnar_grounding(program, database)
        else:
            ground = relevant_grounding(program, database, config=config)
    if stages is None:
        stages = default_stage_count(ground, fringe_bound)
    if isinstance(ground, ColumnarGroundProgram):
        return _fringe_circuit_columnar(program, ground, facts, stages)

    idb_facts: List[Fact] = sorted(ground.idb_facts, key=repr)
    fact_id: Dict[Fact, int] = {fact: i + 1 for i, fact in enumerate(idb_facts)}

    builder = CircuitBuilder(share=True)
    edge_var: Dict[Fact, int] = {}

    def var(fact: Fact) -> int:
        node = edge_var.get(fact)
        if node is None:
            node = builder.var(fact)
            edge_var[fact] = node
        return node

    rule_edb_product: List[int] = [
        builder.mul_all([var(f) for f in rule.edb_body]) for rule in ground.rules
    ]

    rule_head_num: List[int] = [fact_id[rule.head] for rule in ground.rules]
    rule_idb_nums: List[Tuple[int, ...]] = [
        tuple(fact_id[f] for f in rule.idb_body) for rule in ground.rules
    ]
    graph = _fringe_stages(builder, stages, rule_edb_product, rule_head_num, rule_idb_nums)

    outputs_facts = _resolve_outputs(program, facts, idb_facts)
    output_nodes = [
        graph.get(_ROOT, {}).get(fact_id[f], builder.const0())
        if f in fact_id
        else builder.const0()
        for f in outputs_facts
    ]
    return builder.build(output_nodes, prune=True)


def _fringe_stages(
    builder: CircuitBuilder,
    stages: int,
    rule_edb_product: List[int],
    rule_head_num: List[int],
    rule_idb_nums: List[Tuple[int, ...]],
) -> Dict[int, Dict[int, int]]:
    """The four-step stage loop on the weighted digraph ``H``.

    Rules are consumed as numeric views -- per-rule EDB product node,
    head vertex, IDB body vertices -- so the tuple and columnar
    front-ends share one implementation; ``H`` is kept sparse
    (``H[a]`` is ``{b: node}``).
    """
    graph: Dict[int, Dict[int, int]] = {}
    nrules = len(rule_edb_product)

    for _stage in range(stages):
        # Step 1: one ICO round for H₁(⟨0⟩, ⟨α⟩).
        stage1_root: Dict[int, List[int]] = {}
        root_row = graph.get(_ROOT, {})
        for position in range(nrules):
            node = rule_edb_product[position]
            ok = True
            for body_num in rule_idb_nums[position]:
                upstream = root_row.get(body_num)
                if upstream is None:
                    ok = False
                    break
                node = builder.mul(node, upstream)
            if ok:
                stage1_root.setdefault(rule_head_num[position], []).append(node)
        h1: Dict[int, Dict[int, int]] = {_ROOT: {}}
        for target_id, terms in stage1_root.items():
            h1[_ROOT][target_id] = builder.add_all(terms)

        # Step 2: conditional edges H₁(⟨δ⟩, ⟨α⟩): leave one IDB body
        # occurrence open, close the others with step-1 root values.
        # Terms per (δ, α) pair are collected and summed in a balanced
        # tree, keeping the per-stage depth at O(log).
        conditional_terms: Dict[Tuple[int, int], List[int]] = {}
        h1_root = h1[_ROOT]
        for position in range(nrules):
            idb_nums = rule_idb_nums[position]
            if not idb_nums:
                continue
            edb_node = rule_edb_product[position]
            for open_position, open_num in enumerate(idb_nums):
                node = edb_node
                ok = True
                for at, body_num in enumerate(idb_nums):
                    if at == open_position:
                        continue
                    upstream = h1_root.get(body_num)
                    if upstream is None:
                        ok = False
                        break
                    node = builder.mul(node, upstream)
                if not ok:
                    continue
                key = (open_num, rule_head_num[position])
                conditional_terms.setdefault(key, []).append(node)
        for (source_id, target_id), terms in conditional_terms.items():
            h1.setdefault(source_id, {})[target_id] = builder.add_all(terms)

        # Step 3: accumulate H₂ = H^{(k-1)} ⊕ H₁.
        h2: Dict[int, Dict[int, int]] = {}
        for table in (graph, h1):
            for a, row in table.items():
                dest = h2.setdefault(a, {})
                for b, node in row.items():
                    existing = dest.get(b)
                    dest[b] = node if existing is None else builder.add(existing, node)

        # Step 4: one squaring step of transitive closure on H₂, with
        # balanced per-pair summation over the middle vertices γ.
        composition_terms: Dict[Tuple[int, int], List[int]] = {}
        for a, row in h2.items():
            for mid, left in row.items():
                middle_row = h2.get(mid)
                if not middle_row:
                    continue
                for b, right in middle_row.items():
                    composition_terms.setdefault((a, b), []).append(
                        builder.mul(left, right)
                    )
        new_graph: Dict[int, Dict[int, int]] = {
            a: dict(row) for a, row in h2.items()
        }
        for (a, b), terms in composition_terms.items():
            existing = new_graph.setdefault(a, {}).get(b)
            if existing is not None:
                terms = [existing] + terms
            new_graph[a][b] = builder.add_all(terms)
        graph = new_graph
    return graph


def _fringe_circuit_columnar(
    program: Program,
    cground: ColumnarGroundProgram,
    facts: Optional[Union[Fact, Sequence[Fact]]],
    stages: int,
) -> Circuit:
    """Theorem 6.2's construction streamed from the id-space grounding.

    Vertices of ``H`` are numbered straight off the head fact ids;
    rules and their IDB bodies are read from the columnar CSR arrays,
    EDB constants are decoded once for the input-gate labels, and
    outputs decode at the very end -- no other tuple conversion
    anywhere.
    """
    head_fids = cground.idb_fact_ids()
    fact_num: Dict[int, int] = {fid: i + 1 for i, fid in enumerate(head_fids)}
    decode = cground.decode_fact

    builder = CircuitBuilder(share=True)
    edge_var: Dict[int, int] = {
        fid: builder.var(decode(fid)) for fid in cground.edb_fact_ids()
    }
    nrules = len(cground)
    idb_indptr, idb_flat = cground.idb_indptr, cground.idb_flat
    edb_indptr, edb_flat = cground.edb_indptr, cground.edb_flat
    rule_edb_product: List[int] = [
        builder.mul_all(
            [
                edge_var[edb_flat[at]]
                for at in range(edb_indptr[position], edb_indptr[position + 1])
            ]
        )
        for position in range(nrules)
    ]
    rule_head_num: List[int] = [fact_num[fid] for fid in cground.rule_head]
    rule_idb_nums: List[Tuple[int, ...]] = [
        tuple(
            fact_num[idb_flat[at]]
            for at in range(idb_indptr[position], idb_indptr[position + 1])
        )
        for position in range(nrules)
    ]
    graph = _fringe_stages(builder, stages, rule_edb_product, rule_head_num, rule_idb_nums)

    root_row = graph.get(_ROOT, {})
    output_nodes: List[int] = []
    if facts is None:
        targets = sorted(
            ((decode(fid), fid) for fid in cground.target_fact_ids()),
            key=lambda pair: repr(pair[0]),
        )
        for _, fid in targets:
            output_nodes.append(root_row.get(fact_num[fid], builder.const0()))
    else:
        for fact in [facts] if isinstance(facts, Fact) else facts:
            fid = cground.find_fact_id(fact)
            num = fact_num.get(fid) if fid is not None else None
            output_nodes.append(
                root_row.get(num, builder.const0()) if num is not None else builder.const0()
            )
    return builder.build(output_nodes, prune=True)


def _resolve_outputs(
    program: Program,
    facts: Optional[Union[Fact, Sequence[Fact]]],
    idb_facts: Iterable[Fact],
) -> List[Fact]:
    if facts is None:
        return [f for f in idb_facts if f.predicate == program.target]
    if isinstance(facts, Fact):
        return [facts]
    return list(facts)
