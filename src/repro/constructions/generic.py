"""The generic provenance circuit (Theorem 3.1, Deutch et al. [10]).

For any Datalog program over an absorptive semiring, a circuit of
polynomial size computes every provenance polynomial: layer ``k``
evaluates one application of the grounded ICO, and ``N`` layers
suffice, where ``N`` is the number of derivable IDB facts -- a tight
proof tree repeats no IDB fact along a root-to-leaf path, so its
height is at most ``N``, and monomials of non-tight trees are absorbed
(Proposition 2.4).

Size is ``O(N · M)`` (``M`` = grounding size) and depth ``O(N log n)``
-- polynomial but with the linear-in-``N`` depth the rest of the paper
improves on for special classes.

Gates are hash-consed, so when the symbolic layer values stabilize
early (e.g. bounded programs, acyclic inputs) the construction stops
adding gates and exits.

The stage loop is the *symbolic* twin of the semi-naive engine
(:mod:`repro.datalog.seminaive`): per-fact node deltas plus the
grounding's ``rules_by_idb_body`` index mean each stage only rebuilds
``⊗``-chains for rules whose body node actually changed.  Hash-consing
makes this an exact optimization -- an unchanged head re-folds to the
identical gate id -- so the constructed circuit is the same one the
dense loop produced, found with far fewer builder calls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..circuits.circuit import Circuit, CircuitBuilder
from ..datalog.ast import Fact, Program
from ..datalog.database import Database
from ..datalog.grounding import GroundProgram, relevant_grounding

__all__ = ["generic_circuit"]


def generic_circuit(
    program: Program,
    database: Database,
    facts: Optional[Union[Fact, Sequence[Fact]]] = None,
    stages: Optional[int] = None,
    ground: Optional[GroundProgram] = None,
    engine: Optional[str] = None,
) -> Circuit:
    """Build the Theorem 3.1 circuit for *facts* (default: all target
    facts) of *program* on *database*.

    *stages* defaults to the sound bound ``N`` (number of derivable
    IDB facts); pass a smaller value only with an external guarantee
    (e.g. a boundedness constant -- that case is
    :func:`repro.constructions.bounded.bounded_circuit`).  *engine*
    selects the grounding join engine when *ground* is not supplied
    (``"indexed"`` | ``"naive"`` | ``"columnar"``, see
    :func:`~repro.datalog.grounding.relevant_grounding`).

    The circuit's input labels are the EDB :class:`Fact` objects, so
    ``database.valuation(semiring)`` is a ready-made assignment.
    """
    if ground is None:
        ground = relevant_grounding(program, database, engine=engine)
    idb_facts: List[Fact] = sorted(ground.idb_facts, key=repr)
    if stages is None:
        stages = max(len(idb_facts), 1)

    builder = CircuitBuilder(share=True)
    value: Dict[Fact, int] = {fact: builder.const0() for fact in idb_facts}

    # Pre-intern EDB inputs and per-rule EDB products (stage-invariant).
    rule_edb_product: List[int] = [
        builder.mul_all([builder.var(edb) for edb in rule.edb_body]) for rule in ground.rules
    ]

    # Delta-driven stages over the grounding's body index: only rules
    # whose body node changed in the previous stage are re-chained.
    rules = ground.rules
    by_body = ground.rules_by_idb_body
    by_head = ground.rule_indices_by_head
    rule_node: List[int] = list(rule_edb_product)
    dirty: Sequence[int] = range(len(rules))
    for _ in range(stages):
        dirty_heads = set()
        for position in dirty:
            rule = rules[position]
            node = rule_edb_product[position]
            for body_fact in rule.idb_body:
                node = builder.mul(node, value[body_fact])
            rule_node[position] = node
            dirty_heads.add(rule.head)
        delta: Dict[Fact, int] = {}
        for fact in dirty_heads:
            fresh = builder.add_all([rule_node[position] for position in by_head[fact]])
            if fresh != value[fact]:
                delta[fact] = fresh
        if not delta:
            break  # symbolic fixpoint: further layers are no-ops
        value.update(delta)
        dirty = sorted(
            {position for fact in delta for position in by_body.get(fact, ())}
        )

    outputs = _resolve_outputs(program, facts, idb_facts)
    output_nodes = [value.get(fact, builder.const0()) for fact in outputs]
    # Keep missing facts' const0 outputs meaningful even when pruning.
    circuit = builder.build(output_nodes, prune=True)
    return circuit


def _resolve_outputs(
    program: Program,
    facts: Optional[Union[Fact, Sequence[Fact]]],
    idb_facts: Iterable[Fact],
) -> List[Fact]:
    if facts is None:
        return [f for f in idb_facts if f.predicate == program.target]
    if isinstance(facts, Fact):
        return [facts]
    return list(facts)
