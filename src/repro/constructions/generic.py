"""The generic provenance circuit (Theorem 3.1, Deutch et al. [10]).

For any Datalog program over an absorptive semiring, a circuit of
polynomial size computes every provenance polynomial: layer ``k``
evaluates one application of the grounded ICO, and ``N`` layers
suffice, where ``N`` is the number of derivable IDB facts -- a tight
proof tree repeats no IDB fact along a root-to-leaf path, so its
height is at most ``N``, and monomials of non-tight trees are absorbed
(Proposition 2.4).

Size is ``O(N · M)`` (``M`` = grounding size) and depth ``O(N log n)``
-- polynomial but with the linear-in-``N`` depth the rest of the paper
improves on for special classes.

Gates are hash-consed, so when the symbolic layer values stabilize
early (e.g. bounded programs, acyclic inputs) the construction stops
adding gates and exits.

The stage loop is the *symbolic* twin of the semi-naive engine
(:mod:`repro.datalog.seminaive`): per-fact node deltas plus the
grounding's ``rules_by_idb_body`` index mean each stage only rebuilds
``⊗``-chains for rules whose body node actually changed.  Hash-consing
makes this an exact optimization -- an unchanged head re-folds to the
identical gate id -- so the constructed circuit is the same one the
dense loop produced, found with far fewer builder calls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..circuits.circuit import Circuit, CircuitBuilder
from ..config import ConfigLike, merge_legacy_knobs
from ..datalog.ast import Fact, Program
from ..datalog.database import Database
from ..datalog.grounding import (
    ColumnarGroundProgram,
    GroundProgram,
    columnar_grounding,
    relevant_grounding,
)

__all__ = ["generic_circuit"]


def generic_circuit(
    program: Program,
    database: Database,
    facts: Optional[Union[Fact, Sequence[Fact]]] = None,
    stages: Optional[int] = None,
    ground: Optional[Union[GroundProgram, ColumnarGroundProgram]] = None,
    engine: Optional[str] = None,
    config: ConfigLike = None,
) -> Circuit:
    """Build the Theorem 3.1 circuit for *facts* (default: all target
    facts) of *program* on *database*.

    *stages* defaults to the sound bound ``N`` (number of derivable
    IDB facts); pass a smaller value only with an external guarantee
    (e.g. a boundedness constant -- that case is
    :func:`repro.constructions.bounded.bounded_circuit`).  *engine*
    selects the grounding join engine when *ground* is not supplied
    (``"indexed"`` | ``"naive"`` | ``"columnar"``, see
    :func:`~repro.datalog.grounding.relevant_grounding`); with
    ``engine="columnar"`` the program is grounded straight into id
    space (:func:`~repro.datalog.grounding.columnar_grounding`) and
    the stage loop streams from the columnar arrays -- EDB constants
    are decoded exactly once, for the input-gate labels.  A
    precomputed grounding of either form can be passed as *ground*.

    The circuit's input labels are the EDB :class:`Fact` objects, so
    ``database.valuation(semiring)`` is a ready-made assignment.

    ``engine=`` is the deprecated spelling of
    ``config=ExecutionConfig(engine=...)``; it still works but warns.
    """
    config = merge_legacy_knobs("generic_circuit", config, engine=("engine", engine))
    if ground is None:
        if config.resolved_engine == "columnar":
            ground = columnar_grounding(program, database)
        else:
            ground = relevant_grounding(program, database, config=config)
    if isinstance(ground, ColumnarGroundProgram):
        return _generic_circuit_columnar(program, ground, facts, stages)
    idb_facts: List[Fact] = sorted(ground.idb_facts, key=repr)
    if stages is None:
        stages = max(len(idb_facts), 1)

    builder = CircuitBuilder(share=True)
    value: Dict[Fact, int] = {fact: builder.const0() for fact in idb_facts}

    # Pre-intern EDB inputs and per-rule EDB products (stage-invariant).
    rule_edb_product: List[int] = [
        builder.mul_all([builder.var(edb) for edb in rule.edb_body]) for rule in ground.rules
    ]

    # Delta-driven stages over the grounding's body index: only rules
    # whose body node changed in the previous stage are re-chained.
    rules = ground.rules
    by_body = ground.rules_by_idb_body
    by_head = ground.rule_indices_by_head
    rule_node: List[int] = list(rule_edb_product)
    dirty: Sequence[int] = range(len(rules))
    for _ in range(stages):
        dirty_heads = set()
        for position in dirty:
            rule = rules[position]
            node = rule_edb_product[position]
            for body_fact in rule.idb_body:
                node = builder.mul(node, value[body_fact])
            rule_node[position] = node
            dirty_heads.add(rule.head)
        delta: Dict[Fact, int] = {}
        for fact in dirty_heads:
            fresh = builder.add_all([rule_node[position] for position in by_head[fact]])
            if fresh != value[fact]:
                delta[fact] = fresh
        if not delta:
            break  # symbolic fixpoint: further layers are no-ops
        value.update(delta)
        dirty = sorted(
            {position for fact in delta for position in by_body.get(fact, ())}
        )

    outputs = _resolve_outputs(program, facts, idb_facts)
    output_nodes = [value.get(fact, builder.const0()) for fact in outputs]
    # Keep missing facts' const0 outputs meaningful even when pruning.
    circuit = builder.build(output_nodes, prune=True)
    return circuit


def _generic_circuit_columnar(
    program: Program,
    cground: ColumnarGroundProgram,
    facts: Optional[Union[Fact, Sequence[Fact]]],
    stages: Optional[int],
) -> Circuit:
    """The stage loop of :func:`generic_circuit`, streamed from the
    id-space grounding (DESIGN.md §9).

    Same delta-driven construction, same hash-consed gates: node ids
    live in one dense list indexed by fact id, rules and the
    ``by_body`` / ``by_head`` adjacency are read from the CSR arrays,
    and dirty bookkeeping is ``bytearray`` marks -- the only
    :class:`Fact` objects ever materialized are the EDB input labels
    (once each) and the requested outputs.
    """
    head_fids = cground.idb_fact_ids()
    if stages is None:
        stages = max(len(head_fids), 1)

    builder = CircuitBuilder(share=True)
    nfacts = cground.fact_count
    nrules = len(cground)
    decode = cground.decode_fact
    # Node slot per fact id: const0 for IDB facts, an input gate for
    # EDB facts (a fid outside both sets cannot occur in a relevant
    # grounding; the None placeholder fails fast if it ever does,
    # mirroring the tuple path's KeyError).
    value: List[Optional[int]] = [None] * nfacts
    is_head = bytearray(nfacts)
    const0 = builder.const0()
    for fid in head_fids:
        value[fid] = const0
        is_head[fid] = 1
    for fid in cground.edb_fact_ids():
        if not is_head[fid]:
            value[fid] = builder.var(decode(fid))

    idb_indptr, idb_flat = cground.idb_indptr, cground.idb_flat
    edb_indptr, edb_flat = cground.edb_indptr, cground.edb_flat
    rule_head = cground.rule_head
    by_head_ptr, by_head_rules = cground.by_head_csr()
    by_body_ptr, by_body_rules = cground.by_body_csr()
    idb_rows: List[Sequence[int]] = [
        tuple(idb_flat[idb_indptr[position] : idb_indptr[position + 1]])
        for position in range(nrules)
    ]
    mul, add_all = builder.mul, builder.add_all
    rule_edb_product: List[int] = [
        builder.mul_all(
            [
                value[edb_flat[at]]
                for at in range(edb_indptr[position], edb_indptr[position + 1])
            ]
        )
        for position in range(nrules)
    ]

    rule_node: List[int] = list(rule_edb_product)
    head_mark = bytearray(nfacts)
    dirty: Sequence[int] = range(nrules)
    for _ in range(stages):
        dirty_heads: List[int] = []
        for position in dirty:
            node = rule_edb_product[position]
            for fid in idb_rows[position]:
                node = mul(node, value[fid])
            rule_node[position] = node
            head = rule_head[position]
            if not head_mark[head]:
                head_mark[head] = 1
                dirty_heads.append(head)
        delta_fids: List[int] = []
        delta_nodes: List[int] = []
        for head in dirty_heads:
            head_mark[head] = 0
            fresh = add_all(
                [
                    rule_node[by_head_rules[at]]
                    for at in range(by_head_ptr[head], by_head_ptr[head + 1])
                ]
            )
            if fresh != value[head]:
                delta_fids.append(head)
                delta_nodes.append(fresh)
        if not delta_fids:
            break  # symbolic fixpoint: further layers are no-ops
        for head, node in zip(delta_fids, delta_nodes):
            value[head] = node
        rule_mark = bytearray(nrules)
        next_dirty: List[int] = []
        for head in delta_fids:
            for at in range(by_body_ptr[head], by_body_ptr[head + 1]):
                position = by_body_rules[at]
                if not rule_mark[position]:
                    rule_mark[position] = 1
                    next_dirty.append(position)
        next_dirty.sort()
        dirty = next_dirty

    # Outputs decode at the boundary only; order matches the tuple
    # path (repr-sorted idb facts filtered to the target).
    output_nodes: List[int] = []
    if facts is None:
        targets = sorted(
            ((decode(fid), fid) for fid in cground.target_fact_ids()),
            key=lambda pair: repr(pair[0]),
        )
        output_nodes = [value[fid] for _, fid in targets]
    else:
        for fact in [facts] if isinstance(facts, Fact) else facts:
            fid = cground.find_fact_id(fact)
            if fid is not None and is_head[fid]:
                output_nodes.append(value[fid])
            else:
                output_nodes.append(builder.const0())
    return builder.build(output_nodes, prune=True)


def _resolve_outputs(
    program: Program,
    facts: Optional[Union[Fact, Sequence[Fact]]],
    idb_facts: Iterable[Fact],
) -> List[Fact]:
    if facts is None:
        return [f for f in idb_facts if f.predicate == program.target]
    if isinstance(facts, Fact):
        return [facts]
    return list(facts)
