"""The graph-as-circuit construction for DAGs (Theorem 3.5).

For ``st``-connectivity on a layered (more generally, acyclic)
digraph, the graph *is* the circuit: each vertex gets a ``⊕``-gate
over its in-edges, each edge a ``⊗``-gate joining its tail's vertex
gate with the edge variable.  Linear size, linear depth -- the
size-optimal end of the trade-off that Theorem 3.4 shows cannot be
combined with small formulas.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..circuits.circuit import Circuit, CircuitBuilder
from ..datalog.ast import Fact
from ..datalog.database import Database

__all__ = ["layered_circuit", "dag_circuit"]

Vertex = Hashable


def _topological_order(
    vertices: Iterable[Vertex], edges: List[Tuple[Vertex, Vertex]]
) -> List[Vertex]:
    out: Dict[Vertex, List[Vertex]] = {}
    indegree: Dict[Vertex, int] = {v: 0 for v in vertices}
    for u, v in edges:
        out.setdefault(u, []).append(v)
        indegree[v] = indegree.get(v, 0) + 1
        indegree.setdefault(u, 0)
    queue = sorted((v for v, d in indegree.items() if d == 0), key=repr)
    order: List[Vertex] = []
    while queue:
        node = queue.pop(0)
        order.append(node)
        for nxt in sorted(out.get(node, ()), key=repr):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    if len(order) != len(indegree):
        raise ValueError("graph has a cycle; Theorem 3.5 needs a DAG")
    return order


def dag_circuit(
    database: Database,
    source: Vertex,
    sink: Vertex,
    edge: str = "E",
) -> Circuit:
    """Theorem 3.5 on any DAG: provenance of ``st``-connectivity with
    ``O(m)`` gates and ``O(n)`` depth.

    In-edge sums are sequential chains (not balanced trees) exactly so
    the gate count stays linear with fan-in 2, mirroring the paper's
    statement of linear size *and* linear depth.
    """
    edges = [(args[0], args[1]) for args in database.tuples(edge)]
    vertices = {v for pair in edges for v in pair} | {source, sink}
    order = _topological_order(vertices, edges)

    incoming: Dict[Vertex, List[Tuple[Vertex, Fact]]] = {v: [] for v in vertices}
    for u, v in edges:
        incoming[v].append((u, Fact(edge, (u, v))))

    builder = CircuitBuilder(share=True)
    vertex_node: Dict[Vertex, Optional[int]] = {}
    for v in order:
        if v == source:
            vertex_node[v] = builder.const1()
            continue
        total: Optional[int] = None
        for u, fact in incoming[v]:
            upstream = vertex_node.get(u)
            if upstream is None:
                continue
            term = builder.mul(upstream, builder.var(fact))
            total = term if total is None else builder.add(total, term)
        vertex_node[v] = total
    output = vertex_node.get(sink)
    if output is None:
        output = builder.const0()
    return builder.build(output, prune=True)


def layered_circuit(
    layers: List[List[Vertex]],
    edges: Iterable[Tuple[Vertex, Vertex]],
    source: Vertex,
    sink: Vertex,
    edge: str = "E",
) -> Circuit:
    """Theorem 3.5 specialized to an ``(ℓ, n)``-layered graph.

    *layers* orders the vertices layer by layer (source below the
    bottom layer, sink above the top one, as in the theorem's setup);
    only consecutive-layer edges are legal.
    """
    position: Dict[Vertex, int] = {}
    for depth, layer in enumerate(layers):
        for v in layer:
            position[v] = depth
    position.setdefault(source, -1)
    position.setdefault(sink, len(layers))
    database = Database()
    for u, v in edges:
        if position[v] - position[u] != 1:
            raise ValueError(
                f"edge {u!r}→{v!r} skips layers ({position[u]}→{position[v]}); "
                "layered graphs only connect consecutive layers"
            )
        database.add(edge, u, v)
    return dag_circuit(database, source, sink, edge)
