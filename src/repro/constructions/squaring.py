"""The repeated-squaring circuit for TC (Theorem 5.7).

The absorptive-semiring analogue of ``TC ∈ NC²``: with ``M`` the
adjacency matrix over ``S`` (``1`` on the diagonal, ``x_{i,j}`` on
edges, ``0`` elsewhere), the ``(s, t)`` entry of ``M^n`` is the TC
provenance polynomial of ``T(s, t)``.  Computing ``M², M⁴, M⁸, ...``
needs ``O(log n)`` semiring matrix products, each a depth-``O(log n)``
circuit of ``O(n³)`` ``⊗``-gates and ``O(n² log n)`` ``⊕``-gates:
total size ``O(n³ log n)``, depth ``O(log² n)`` -- matching the
Karchmer–Wigderson lower bound (Theorem 3.4), hence depth-optimal.

Absorption is used twice (as in the paper's proof): walk monomials
collapse to path monomials, and diagonal entries stay ``1``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

from ..circuits.circuit import Circuit, CircuitBuilder
from ..datalog.ast import Fact
from ..datalog.database import Database

__all__ = ["squaring_circuit", "squaring_all_pairs"]

Vertex = Hashable
Matrix = List[List[int]]  # node indices in the builder


def _initial_matrix(
    builder: CircuitBuilder, database: Database, edge: str
) -> Tuple[List[Vertex], Matrix]:
    vertices = sorted(
        {v for args in database.tuples(edge) for v in args}, key=repr
    )
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    zero = builder.const0()
    one = builder.const1()
    matrix: Matrix = [[zero] * n for _ in range(n)]
    for i in range(n):
        matrix[i][i] = one
    for args in database.tuples(edge):
        u, v = args
        if u == v:
            continue  # self-loops are absorbed by the diagonal 1
        matrix[index[u]][index[v]] = builder.var(Fact(edge, (u, v)))
    return vertices, matrix


def _multiply(builder: CircuitBuilder, a: Matrix, b: Matrix) -> Matrix:
    n = len(a)
    result: Matrix = [[0] * n for _ in range(n)]
    for i in range(n):
        row = a[i]
        for j in range(n):
            products = [builder.mul(row[k], b[k][j]) for k in range(n)]
            result[i][j] = builder.add_all(products)
    return result


def _power_matrix(
    builder: CircuitBuilder, database: Database, edge: str
) -> Tuple[List[Vertex], Matrix]:
    vertices, matrix = _initial_matrix(builder, database, edge)
    n = len(vertices)
    squarings = max(1, math.ceil(math.log2(max(n, 2))))
    for _ in range(squarings):
        matrix = _multiply(builder, matrix, matrix)
    return vertices, matrix


def squaring_circuit(
    database: Database,
    source: Vertex,
    sink: Vertex,
    edge: str = "E",
) -> Circuit:
    """Theorem 5.7's circuit for ``T(source, sink)`` (``source ≠ sink``).

    The full ``M^{2^⌈log n⌉}`` is built once; pruning then keeps only
    the cone of the requested entry.
    """
    if source == sink:
        raise ValueError("the diagonal entry is identically 1; pick source ≠ sink")
    builder = CircuitBuilder(share=True)
    vertices, matrix = _power_matrix(builder, database, edge)
    index = {v: i for i, v in enumerate(vertices)}
    if source not in index or sink not in index:
        return builder.build(builder.const0())
    output = matrix[index[source]][index[sink]]
    return builder.build(output, prune=True)


def squaring_all_pairs(
    database: Database,
    edge: str = "E",
) -> Tuple[Circuit, Dict[Tuple[Vertex, Vertex], int]]:
    """All-pairs variant: the unpruned circuit realizes the full
    ``O(n³ log n)`` size / ``O(log² n)`` depth bounds of Theorem 5.7.

    Returns ``(circuit, (u, v) → output index)`` for all ``u ≠ v``.
    """
    builder = CircuitBuilder(share=True)
    vertices, matrix = _power_matrix(builder, database, edge)
    pairs = [
        (u, v) for u in vertices for v in vertices if u != v
    ]
    index = {v: i for i, v in enumerate(vertices)}
    outputs = [matrix[index[u]][index[v]] for u, v in pairs]
    circuit = builder.build(outputs)
    node_of = {pair: circuit.outputs[i] for i, pair in enumerate(pairs)}
    return circuit, node_of
