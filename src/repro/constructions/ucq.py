"""UCQ provenance circuits and formulas (Proposition 3.7).

A UCQ has only polynomially many derivations (valuations), so its
provenance is a plain sum of products: a balanced circuit of
``O(log |I|)`` depth, which expanded is already a polynomial-size
*formula* (no sharing needed).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from ..circuits.circuit import Circuit, CircuitBuilder
from ..datalog.ast import Constant, Fact, Variable
from ..datalog.database import Database
from ..datalog.expansions import ConjunctiveQuery
from ..datalog.grounding import _FactIndex, _join  # shared join machinery

__all__ = ["ucq_circuit", "cq_valuations"]


def cq_valuations(
    cq: ConjunctiveQuery,
    database: Database,
    answer: Tuple[Hashable, ...],
) -> List[Tuple[Fact, ...]]:
    """All body groundings of *cq* whose head equals *answer*.

    Each valuation is returned as the tuple of grounded body facts --
    one monomial of the provenance polynomial.
    """
    head_vars = cq.head.terms
    if len(head_vars) != len(answer):
        raise ValueError(f"answer arity {len(answer)} ≠ head arity {len(head_vars)}")
    theta: Dict[Variable, Constant] = {}
    for term, value in zip(head_vars, answer):
        if isinstance(term, Variable):
            bound = theta.get(term)
            if bound is not None and bound.value != value:
                return []
            theta[term] = Constant(value)
        elif term.value != value:
            return []
    index = _FactIndex()
    for fact in database.facts():
        index.insert(fact)
    valuations: List[Tuple[Fact, ...]] = []
    for substitution in _join(list(cq.body), index, theta):
        body_facts = tuple(atom.substitute(substitution).to_fact() for atom in cq.body)
        valuations.append(body_facts)
    return valuations


def ucq_circuit(
    cqs: Iterable[ConjunctiveQuery] | ConjunctiveQuery,
    database: Database,
    answer: Tuple[Hashable, ...],
    as_formula: bool = False,
) -> Circuit:
    """Proposition 3.7: balanced sum-of-products circuit for a UCQ.

    With ``as_formula=True`` the builder disables sharing, yielding
    the polynomial-size formula directly (each monomial re-reads its
    input variables).
    """
    if isinstance(cqs, ConjunctiveQuery):
        cqs = [cqs]
    builder = CircuitBuilder(share=not as_formula)
    monomial_nodes: List[int] = []
    seen_monomials: set = set()
    for cq in cqs:
        for body_facts in cq_valuations(cq, database, answer):
            key = tuple(sorted(body_facts, key=repr))
            if key in seen_monomials:
                continue  # syntactically duplicate monomial across CQs
            seen_monomials.add(key)
            monomial_nodes.append(builder.mul_all([builder.var(f) for f in body_facts]))
    output = builder.add_all(monomial_nodes)
    return builder.build(output)
