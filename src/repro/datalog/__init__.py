"""Datalog over semirings (Sections 2.1, 2.3, 2.4 of the paper).

The engine: AST + parser, annotated databases backed by an interned
columnar fact store (:mod:`repro.datalog.store`, DESIGN.md §8),
grounding (full and relevant, each served by the indexed join engine
by default with the columnar id-space engine and the naive
nested-loop engine selectable -- see :mod:`repro.datalog.grounding`
and DESIGN.md §5), fixpoint evaluation
over any naturally ordered semiring via the :class:`FixpointEngine`
(semi-naive with indexed deltas by default, the paper's naive loop as
the selectable reference strategy -- see
:mod:`repro.datalog.seminaive`), proof-tree enumeration (tight trees,
Prop 2.4), CQ expansions of linear programs (Thm 4.5) and a library
of the paper's example programs.
"""

from .analysis import (
    AnalysisReport,
    DependencyReport,
    Diagnostic,
    DivergencePrediction,
    ProgramValidationError,
    analyze_program,
    dead_rules,
    dependency_report,
    predict_divergence,
    prune_unreachable,
    reachable_predicates,
    require_valid,
    tarjan_sccs,
    validation_diagnostics,
)
from .ast import Atom, Constant, DatalogError, Fact, Program, Rule, SourceSpan, Term, Variable
from .database import Database
from .evaluation import (
    DivergenceError,
    EvaluationResult,
    boolean_iterations,
    evaluate_fact,
    naive_evaluation,
)
from .expansions import (
    ConjunctiveQuery,
    canonical_database,
    expansion_of_word,
    expansion_words,
    expansions,
    expansions_up_to,
    unify_atoms,
)
from .grounding import (
    DEFAULT_GROUNDING_ENGINE,
    GROUNDING_ENGINES,
    GROUNDING_STATS,
    ColumnarGroundProgram,
    GroundingStats,
    GroundProgram,
    GroundRule,
    columnar_grounding,
    count_join_probes,
    derivable_facts,
    full_grounding,
    relevant_grounding,
)
from .incremental import MaintainedFixpoint
from .seminaive import (
    COLUMNAR,
    DEFAULT_STRATEGY,
    NAIVE,
    SEMINAIVE,
    STRATEGIES,
    FixpointEngine,
    seminaive_evaluation,
)
from .store import (
    GLOBAL_SYMBOLS,
    ColumnarRelation,
    ColumnarStore,
    DeltaView,
    SymbolTable,
    default_symbols,
    scoped_symbols,
)
from .magic import (
    magic_grounding,
    magic_specialize,
    magic_specialize_sink,
    specialized_fact,
)
from .library import (
    bounded_example,
    dyck1,
    reachability,
    same_generation,
    transitive_closure,
    transitive_closure_nonlinear,
)
from .parser import ParseError, parse_atom, parse_program, parse_rule
from .prooftrees import (
    ProofTree,
    count_tight_proof_trees,
    enumerate_proof_trees,
    enumerate_tight_proof_trees,
    max_tight_fringe,
    provenance_by_proof_trees,
)

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "Atom",
    "Fact",
    "Rule",
    "Program",
    "DatalogError",
    "SourceSpan",
    "Database",
    "Diagnostic",
    "DependencyReport",
    "DivergencePrediction",
    "AnalysisReport",
    "ProgramValidationError",
    "analyze_program",
    "validation_diagnostics",
    "require_valid",
    "predict_divergence",
    "dependency_report",
    "tarjan_sccs",
    "reachable_predicates",
    "dead_rules",
    "prune_unreachable",
    "parse_program",
    "parse_rule",
    "parse_atom",
    "ParseError",
    "GroundRule",
    "GroundProgram",
    "ColumnarGroundProgram",
    "GroundingStats",
    "SymbolTable",
    "GLOBAL_SYMBOLS",
    "default_symbols",
    "scoped_symbols",
    "ColumnarRelation",
    "ColumnarStore",
    "DeltaView",
    "GROUNDING_STATS",
    "GROUNDING_ENGINES",
    "DEFAULT_GROUNDING_ENGINE",
    "count_join_probes",
    "full_grounding",
    "relevant_grounding",
    "columnar_grounding",
    "derivable_facts",
    "EvaluationResult",
    "DivergenceError",
    "naive_evaluation",
    "seminaive_evaluation",
    "evaluate_fact",
    "boolean_iterations",
    "FixpointEngine",
    "MaintainedFixpoint",
    "DEFAULT_STRATEGY",
    "NAIVE",
    "SEMINAIVE",
    "COLUMNAR",
    "STRATEGIES",
    "ProofTree",
    "enumerate_tight_proof_trees",
    "enumerate_proof_trees",
    "provenance_by_proof_trees",
    "count_tight_proof_trees",
    "max_tight_fringe",
    "ConjunctiveQuery",
    "unify_atoms",
    "expansions",
    "expansions_up_to",
    "expansion_of_word",
    "expansion_words",
    "canonical_database",
    "transitive_closure",
    "transitive_closure_nonlinear",
    "magic_specialize",
    "magic_specialize_sink",
    "magic_grounding",
    "specialized_fact",
    "reachability",
    "bounded_example",
    "dyck1",
    "same_generation",
]
