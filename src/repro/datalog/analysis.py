"""Static program analysis: diagnostics before any fixpoint runs.

The engine historically executed whatever :class:`Program` it was
handed: safety was checked only at construction (bypassable via
``validate=False``), arity clashes against the *database* surfaced deep
in the columnar store, and divergence under a non-stable semiring was
discovered at runtime when the round budget blew up.  This module is
the front-end pass that catches all of it statically -- the same
syntactic analysis style the paper's boundedness results rest on
(Sections 4-5 reason about rule shape, chain structure and dependency
cycles, never about data) -- and doubles as an optimizer: its
reachability facts drive :func:`prune_unreachable`, the dead-rule
pruning pass applied before grounding (DESIGN.md §14).

Entry points
------------

* :func:`analyze_program` -- the full pass battery, returning an
  :class:`AnalysisReport` of structured :class:`Diagnostic`\\ s;
* :func:`require_valid` -- the fast error gate used by
  :class:`~repro.datalog.seminaive.FixpointEngine` at evaluation entry
  (raises :class:`ProgramValidationError` carrying diagnostics);
* :func:`predict_divergence` -- semiring-aware divergence prediction;
* :func:`prune_unreachable` / :func:`dead_rules` -- the pruning pass;
* :func:`dependency_report` -- Tarjan SCCs, recursion classification
  and the stratification report.

Diagnostic codes (stable; see DESIGN.md §14 for the full table)
---------------------------------------------------------------

====== ========= ======================================================
code   severity  meaning
====== ========= ======================================================
DL001  error     unsafe rule (head variable not bound in the body)
DL002  error     predicate used with two different arities (rule pair)
DL003  warning   database fact arity differs from the program's use
DL004  warning   database stores facts for an IDB predicate
DL005  info      dependency / SCC / stratification report
DL006  error     divergence predicted (warning when only data-dependent)
DL007  warning   dead rule: head unreachable from the target
DL008  warning   IDB predicate unreachable from the target
DL009  info      EDB predicate has no facts in the database
====== ========= ======================================================

Soundness notes
---------------

*Divergence* (DL006): the fixpoint over an absorptive (0-stable)
semiring always converges, and so does any program whose *ground*
dependency graph is acyclic (proof trees have bounded height), which
is why a :class:`DivergencePrediction` only answers ``diverges`` when
it has a derivable ground cycle in hand **and** the semiring's
``1 ⊕ 1 ⊕ ...`` chain never stabilizes (probed directly, see
:func:`_plus_chain_unstable`) **and** the semiring is positive with no
zero-weighted EDB fact **and** the database stores no IDB facts (the
grounding's boolean closure counts stored seeds as given but the
fixpoint values them 0, so a seed-supported cycle may carry nothing):
each lap of the cycle then contributes one more nonzero additive
term, so the head's partial sums inherit the instability of the
``⊕``-chain.
Everything in between -- cyclic data over a stable-but-not-absorptive
semiring (negative-weight tropical cycles, capped counting) -- is
honestly ``unknown``.

*Pruning* (DL007): a derivation tree of any fact whose predicate is
reachable from the target only ever applies rules whose head predicate
is itself reachable (reachability is closed under head → body edges),
so dropping unreachable-headed rules preserves the least-fixpoint
value of every reachable-predicate fact exactly, and the pruned
grounding is exactly the reachable-headed subset of the original
(pinned in ``tests/datalog/test_analysis.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..config import ConfigLike
from ..semirings.base import Semiring
from .ast import DatalogError, Fact, Program, Rule, SourceSpan
from .database import Database
from .grounding import ColumnarGroundProgram, GroundProgram, relevant_grounding

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "DependencyReport",
    "DivergencePrediction",
    "AnalysisReport",
    "ProgramValidationError",
    "tarjan_sccs",
    "dependency_report",
    "reachable_predicates",
    "dead_rules",
    "prune_unreachable",
    "predict_divergence",
    "validation_diagnostics",
    "analyze_program",
    "require_valid",
    "CONVERGES",
    "DIVERGES",
    "UNKNOWN",
]

#: Severity vocabulary, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

#: :class:`DivergencePrediction` verdicts.
CONVERGES = "converges"
DIVERGES = "diverges"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding with a stable ``DL``-code.

    ``rule`` / ``predicate`` / ``span`` locate the finding; all three
    are optional (AST-built programs carry no spans).  ``related``
    holds secondary locations -- e.g. the *other* rule of an arity
    clash.
    """

    code: str
    severity: str
    message: str
    rule: Optional[Rule] = None
    predicate: Optional[str] = None
    span: Optional[SourceSpan] = None
    related: Tuple[Rule, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}; expected one of {SEVERITIES}")

    def format(self, filename: str = "<program>") -> str:
        """One human line: ``file:line:col: DL001 error: message``."""
        where = filename
        if self.span is not None:
            where = f"{filename}:{self.span.line}:{self.span.column}"
        return f"{where}: {self.code} {self.severity}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        """A JSON-safe dict (the ``/lint`` wire form)."""
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.rule is not None:
            payload["rule"] = repr(self.rule)
        if self.predicate is not None:
            payload["predicate"] = self.predicate
        if self.span is not None:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
            payload["source_line"] = self.span.source
        if self.related:
            payload["related"] = [repr(rule) for rule in self.related]
        return payload

    def __repr__(self) -> str:
        return self.format()


class ProgramValidationError(DatalogError):
    """A program failed static validation; ``diagnostics`` has the details."""

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = tuple(diagnostics)
        summary = "; ".join(d.message for d in self.diagnostics[:3])
        if len(self.diagnostics) > 3:
            summary += f" (+{len(self.diagnostics) - 3} more)"
        codes = ",".join(sorted({d.code for d in self.diagnostics}))
        super().__init__(f"{codes}: {summary}")


# ----------------------------------------------------------------------
# Dependency structure: Tarjan SCCs, classification, strata, reachability
# ----------------------------------------------------------------------


def tarjan_sccs(graph: Mapping[str, Iterable[str]]) -> List[Tuple[str, ...]]:
    """Strongly connected components of *graph*, iteratively.

    Nodes are the mapping's keys; edges point at dependencies.  SCCs
    are emitted in reverse topological order of the condensation
    (every SCC after all SCCs it can reach), which is exactly the
    bottom-up evaluation order the stratification report wants.
    Deterministic: nodes and neighbours are visited in sorted order.
    """
    sccs: List[Tuple[str, ...]] = []
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: set = set()
    stack: List[str] = []
    counter = 0
    neighbours = {node: sorted(n for n in graph.get(node, ()) if n in graph) for node in graph}
    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_at = work.pop()
            if child_at == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            descended = False
            children = neighbours[node]
            for position in range(child_at, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    descended = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if descended:
                continue
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(tuple(sorted(component)))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


@dataclass(frozen=True)
class DependencyReport:
    """The predicate dependency structure of one program.

    ``sccs`` lists the IDB SCCs bottom-up (dependencies first);
    ``classification[i]`` is ``"acyclic"`` | ``"linear"`` |
    ``"nonlinear"`` for ``sccs[i]``; ``stratum[i]`` is its level in
    the condensation (an SCC only reads strata strictly below it,
    plus itself); ``strata`` regroups the SCC predicates by level.
    ``recursion`` is the program-level summary (worst SCC) and
    ``reachable`` the predicates (IDB and EDB) reachable from the
    target via head → body edges.
    """

    sccs: Tuple[Tuple[str, ...], ...]
    classification: Tuple[str, ...]
    stratum: Tuple[int, ...]
    strata: Tuple[Tuple[str, ...], ...]
    recursion: str
    reachable: FrozenSet[str]

    def scc_of(self, predicate: str) -> Tuple[str, ...]:
        for scc in self.sccs:
            if predicate in scc:
                return scc
        raise KeyError(predicate)

    def is_recursive(self) -> bool:
        return self.recursion != "acyclic"

    def to_json(self) -> Dict[str, object]:
        return {
            "recursion": self.recursion,
            "sccs": [
                {
                    "predicates": list(scc),
                    "classification": self.classification[i],
                    "stratum": self.stratum[i],
                }
                for i, scc in enumerate(self.sccs)
            ],
            "strata": [list(group) for group in self.strata],
            "reachable": sorted(self.reachable, key=str),
        }


def _scc_is_cyclic(program: Program, members: FrozenSet[str]) -> bool:
    if len(members) > 1:
        return True
    return any(
        atom.predicate in members
        for rule in program.rules
        if rule.head.predicate in members
        for atom in rule.body
    )


def _classify_scc(program: Program, members: FrozenSet[str]) -> str:
    if not _scc_is_cyclic(program, members):
        return "acyclic"
    for rule in program.rules:
        if rule.head.predicate not in members:
            continue
        in_scc = sum(1 for atom in rule.body if atom.predicate in members)
        if in_scc > 1:
            return "nonlinear"
    return "linear"


def reachable_predicates(program: Program) -> FrozenSet[str]:
    """Predicates (IDB and EDB) reachable from the target via head → body."""
    seen = {program.target}
    frontier = [program.target]
    while frontier:
        predicate = frontier.pop()
        for rule in program.rules_for(predicate):
            for atom in rule.body:
                if atom.predicate not in seen:
                    seen.add(atom.predicate)
                    frontier.append(atom.predicate)
    return frozenset(seen)


def dependency_report(program: Program) -> DependencyReport:
    """Tarjan SCCs + recursion classification + stratification.

    Stratification here is about evaluation order, not negation (this
    Datalog dialect is negation-free, so every program stratifies):
    stratum ``k`` SCCs only read IDBs from strata ``< k`` and
    themselves, so a stratum-by-stratum fixpoint is sound and is what
    the pruned/partitioned execution plans key on.
    """
    graph = program.dependency_graph()
    sccs = tuple(tarjan_sccs(graph))
    scc_index = {p: i for i, scc in enumerate(sccs) for p in scc}
    classification = tuple(_classify_scc(program, frozenset(scc)) for scc in sccs)
    stratum: List[int] = [0] * len(sccs)
    for i, scc in enumerate(sccs):
        for predicate in scc:
            for dependency in graph[predicate]:
                j = scc_index[dependency]
                if j != i:
                    stratum[i] = max(stratum[i], stratum[j] + 1)
    height = max(stratum, default=0) + 1 if sccs else 0
    strata = tuple(
        tuple(p for i, scc in enumerate(sccs) if stratum[i] == level for p in scc)
        for level in range(height)
    )
    worst = "acyclic"
    for kind in classification:
        if kind == "nonlinear":
            worst = "nonlinear"
            break
        if kind == "linear":
            worst = "linear"
    return DependencyReport(
        sccs=sccs,
        classification=classification,
        stratum=tuple(stratum),
        strata=strata,
        recursion=worst,
        reachable=reachable_predicates(program),
    )


def dead_rules(program: Program) -> Tuple[Rule, ...]:
    """Rules whose head predicate no target derivation can ever use."""
    reachable = reachable_predicates(program)
    return tuple(rule for rule in program.rules if rule.head.predicate not in reachable)


def prune_unreachable(program: Program) -> Program:
    """Drop rules whose head is unreachable from the target.

    Sound for the target cone: every derivation of a
    reachable-predicate fact only applies reachable-headed rules (see
    the module docstring), so their least-fixpoint values are
    preserved exactly; only unreachable predicates disappear from the
    result.  Returns *program* itself when nothing is dead, so the
    pass is free on already-lean programs.
    """
    reachable = reachable_predicates(program)
    kept = tuple(rule for rule in program.rules if rule.head.predicate in reachable)
    if len(kept) == len(program.rules):
        return program
    # validate=False: the kept rules passed whatever validation the
    # input program had (the analyzer prunes deliberately-invalid
    # programs too, to report pruned_rule_count alongside the errors).
    return Program(kept, program.target, validate=False)


# ----------------------------------------------------------------------
# Divergence prediction
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DivergencePrediction:
    """Verdict of :func:`predict_divergence`.

    ``verdict`` is :data:`CONVERGES` / :data:`DIVERGES` /
    :data:`UNKNOWN`; both definite verdicts are *claims* about the
    runtime ``converged`` flag (property-tested against the full
    engine × strategy matrix), ``unknown`` is compatible with either.
    ``witness`` is a fact on a derivable ground cycle when one was
    found.
    """

    verdict: str
    reason: str
    semiring: str
    witness: Optional[Fact] = None

    @property
    def definite(self) -> bool:
        return self.verdict != UNKNOWN

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "verdict": self.verdict,
            "reason": self.reason,
            "semiring": self.semiring,
        }
        if self.witness is not None:
            payload["witness"] = repr(self.witness)
        return payload

    def __repr__(self) -> str:
        return f"DivergencePrediction({self.verdict} over {self.semiring}: {self.reason})"


def _plus_chain_unstable(semiring: Semiring, budget: int = 4096) -> bool:
    """True iff ``1 ⊕ 1 ⊕ ...`` never stabilizes.

    Absorptive and ⊕-idempotent semirings stabilize immediately; for
    the rest the chain is probed directly: two equal consecutive
    partial sums mean it has stabilized (the chain is monotone over a
    naturally ordered carrier, so a plateau never resumes growing),
    and a chain still moving after the budget is treated as unstable.
    The budget is deliberately generous -- ``counting-cap1024``
    stabilizes only at step 1024, well inside 4096 -- so the answer is
    exact for every semiring in the repo.
    """
    if semiring.absorptive or semiring.idempotent_add:
        return False
    value = semiring.one
    for _ in range(budget):
        bumped = semiring.add(value, semiring.one)
        if bumped == value:
            return False
        value = bumped
    return True


def _first_cycle_fact(ground: Union[GroundProgram, ColumnarGroundProgram]) -> Optional[Fact]:
    """A fact on a directed cycle of the ground dependency graph, or None.

    The graph has an edge ``body fact → head fact`` for every ground
    rule; only IDB facts can lie on a cycle (EDB facts have no
    incoming edges).  Works on either ground representation -- in id
    space for :class:`ColumnarGroundProgram` (no decode except the
    witness) -- via an iterative white/gray/black DFS.
    """
    if isinstance(ground, ColumnarGroundProgram):
        nrules = len(ground)
        indptr, flat = ground.idb_indptr, ground.idb_flat
        adjacency: Dict[object, List[object]] = {}
        for position in range(nrules):
            head = ground.rule_head[position]
            for at in range(indptr[position], indptr[position + 1]):
                adjacency.setdefault(flat[at], []).append(head)
        witness = _dfs_cycle(adjacency)
        return ground.decode_fact(witness) if witness is not None else None
    adjacency = {}
    for rule in ground.rules:
        for body_fact in rule.idb_body:
            adjacency.setdefault(body_fact, []).append(rule.head)
    return _dfs_cycle(adjacency)


_WHITE, _GRAY, _BLACK = 0, 1, 2


def _dfs_cycle(adjacency: Mapping[object, List[object]]) -> Optional[object]:
    colour: Dict[object, int] = {}
    for root in adjacency:
        if colour.get(root, _WHITE) != _WHITE:
            continue
        stack: List[Tuple[object, int]] = [(root, 0)]
        colour[root] = _GRAY
        while stack:
            node, child_at = stack.pop()
            descended = False
            children = adjacency.get(node, ())
            for position in range(child_at, len(children)):
                child = children[position]
                state = colour.get(child, _WHITE)
                if state == _GRAY:
                    return child
                if state == _WHITE and child in adjacency:
                    stack.append((node, position + 1))
                    colour[child] = _GRAY
                    stack.append((child, 0))
                    descended = True
                    break
            if not descended:
                colour[node] = _BLACK
        # A node with no outgoing edges was never coloured; that is fine.
    return None


def _unit_production_cycle(program: Program) -> bool:
    """True iff single-IDB-atom rules form a predicate cycle.

    In grammar terms these are unit productions ``A → B``; a cycle of
    them (``T(X,Y) :- T(X,Y).`` being the one-step case) yields
    infinitely many derivation trees per fact without growing the CFG
    language, so it is the one shape a finite-language certificate
    must separately exclude.
    """
    idbs = program.idb_predicates
    adjacency: Dict[object, List[object]] = {}
    for rule in program.rules:
        if len(rule.body) == 1 and rule.body[0].predicate in idbs:
            adjacency.setdefault(rule.head.predicate, []).append(rule.body[0].predicate)
    return _dfs_cycle(adjacency) is not None


def _chain_boundedness_verdict(
    program: Program,
    report: DependencyReport,
    database: Optional[Database],
    name: str,
) -> Optional[DivergencePrediction]:
    """The Section-5 layer: a finite chain-program CFG, carefully.

    :func:`~repro.boundedness.checker.chain_program_boundedness` is
    exact for *boundedness over absorptive semirings*; to promote its
    finite-CFG certificate to a convergence claim over an arbitrary
    semiring the derivation *count* per fact must be finite too, which
    needs every loophole a finite target language leaves open closed:

    * no unit-production cycle (infinitely many trees, same words);
    * every cyclic SCC reachable from the target (the CFG says nothing
      about predicates the target never reads);
    * no database-stored IDB facts (a stored seed makes an otherwise
      unproductive cycle derivable).

    Under those guards a reachable cyclic SCC that could ever derive a
    fact would pump the language infinite -- so with a finite language
    every cycle is unproductive, grounds empty, and the fixpoint
    converges over any semiring, no grounding required.
    """
    if database is None or not program.is_basic_chain():
        return None
    cyclic_predicates = {
        p
        for i, scc in enumerate(report.sccs)
        if report.classification[i] != "acyclic"
        for p in scc
    }
    if not cyclic_predicates <= report.reachable:
        return None
    if _unit_production_cycle(program):
        return None
    stored = database.predicates()
    if any(p in stored for p in program.idb_predicates):
        return None
    from ..boundedness.checker import chain_program_boundedness

    bounded = chain_program_boundedness(program)
    if not bounded.bounded:
        return None
    return DivergencePrediction(
        CONVERGES,
        f"basic chain program with a finite CFG (bounded, certificate {bounded.certificate}) "
        "and no unit cycles or stored IDB seeds: every reachable cycle is unproductive, "
        "so derivation counts are finite over any semiring",
        name,
    )


def predict_divergence(
    program: Program,
    semiring: Semiring,
    database: Optional[Database] = None,
    ground: Optional[Union[GroundProgram, ColumnarGroundProgram]] = None,
    config: ConfigLike = None,
) -> DivergencePrediction:
    """Will the fixpoint of *program* over *semiring* converge?

    Static layers (no database needed): absorptive semirings and
    acyclic dependency graphs always converge.  For basic chain
    programs a finite CFG (via
    :func:`repro.boundedness.checker.chain_program_boundedness`)
    yields a grounding-free ``converges`` verdict under the extra
    guards :func:`_chain_boundedness_verdict` documents.

    Data layer (database or precomputed *ground* supplied): an acyclic
    *ground* dependency graph converges regardless of the semiring; a
    derivable ground cycle over a positive semiring whose ``⊕``-chain
    never stabilizes (and no zero-weighted EDB fact to cut the cycle)
    diverges.  Everything else is ``unknown`` -- never a false
    definite verdict (see the module docstring's soundness note).
    """
    name = semiring.name
    if semiring.absorptive:
        return DivergencePrediction(
            CONVERGES,
            "absorptive (0-stable) semiring: the fixpoint closes in at most one round per fact",
            name,
        )
    report = dependency_report(program)
    if not report.is_recursive():
        return DivergencePrediction(
            CONVERGES,
            "acyclic predicate dependency graph: proof trees have bounded height",
            name,
        )
    chain_verdict = _chain_boundedness_verdict(program, report, database, name)
    if chain_verdict is not None:
        return chain_verdict
    unstable = _plus_chain_unstable(semiring)
    if database is None and ground is None:
        if unstable:
            return DivergencePrediction(
                UNKNOWN,
                f"cyclic IDB recursion over the non-stable ⊕ of {name}: diverges on any database "
                "that realizes the cycle (supply one for a definite verdict)",
                name,
            )
        return DivergencePrediction(
            UNKNOWN,
            "cyclic recursion; convergence depends on the database and its weights",
            name,
        )
    if ground is None:
        ground = relevant_grounding(program, database, config=config)
    witness = _first_cycle_fact(ground)
    if witness is None:
        return DivergencePrediction(
            CONVERGES,
            "ground dependency graph is acyclic on this database: bounded proof-tree height",
            name,
        )
    if unstable and semiring.positive:
        if database is None or any(
            p in database.predicates() for p in program.idb_predicates
        ):
            # The grounding's boolean closure counts stored IDB facts
            # as given, but the fixpoint starts every IDB value at 0 --
            # a cycle derivable only through a stored seed carries no
            # value, so a definite verdict needs a seed-free database.
            return DivergencePrediction(
                UNKNOWN,
                f"ground cycle through {witness} over the non-stable ⊕ of {name}, but stored "
                "IDB facts may be its only support and the fixpoint does not value them",
                name,
                witness=witness,
            )
        if any(
            semiring.is_zero(value) for value in database.valuation(semiring).values()
        ):
            return DivergencePrediction(
                UNKNOWN,
                "derivable ground cycle, but a zero-weighted EDB fact may cut it",
                name,
                witness=witness,
            )
        return DivergencePrediction(
            DIVERGES,
            f"derivable ground cycle through {witness} over the non-stable ⊕ of {name}: "
            "every lap adds a fresh nonzero term and the ⊕-chain never stabilizes",
            name,
            witness=witness,
        )
    return DivergencePrediction(
        UNKNOWN,
        f"derivable ground cycle through {witness}, but the ⊕ of {name} is stable; "
        "convergence depends on the cycle weights",
        name,
        witness=witness,
    )


# ----------------------------------------------------------------------
# The pass battery
# ----------------------------------------------------------------------


def _safety_diagnostics(program: Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for rule in program.rules:
        if rule.is_safe():
            continue
        body_vars = set()
        for atom in rule.body:
            body_vars.update(atom.variables)
        loose = sorted(v.name for v in set(rule.head.variables) - body_vars)
        out.append(
            Diagnostic(
                "DL001",
                "error",
                f"unsafe rule: head variable{'s' if len(loose) > 1 else ''} "
                f"{', '.join(loose)} not bound in the body: {rule}",
                rule=rule,
                predicate=rule.head.predicate,
                span=rule.span,
            )
        )
    return out


def _arity_diagnostics(program: Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    first_use: Dict[str, Tuple[int, Rule]] = {}
    reported: set = set()
    for rule in program.rules:
        for atom in (rule.head, *rule.body):
            known = first_use.get(atom.predicate)
            if known is None:
                first_use[atom.predicate] = (atom.arity, rule)
                continue
            arity, origin = known
            if atom.arity != arity and (atom.predicate, atom.arity) not in reported:
                reported.add((atom.predicate, atom.arity))
                out.append(
                    Diagnostic(
                        "DL002",
                        "error",
                        f"predicate {atom.predicate!r} used with arity {arity} in `{origin}` "
                        f"but arity {atom.arity} in `{rule}`",
                        rule=rule,
                        predicate=atom.predicate,
                        span=atom.span if atom.span is not None else rule.span,
                        related=(origin,) if origin is not rule else (),
                    )
                )
    return out


def _database_diagnostics(program: Program, database: Database) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    idbs = program.idb_predicates
    program_arity = {p: program.arity_of(p) for p in program.predicates}
    for predicate in sorted(database.predicates()):
        arities = sorted({len(args) for args in database.tuples(predicate)})
        if predicate in idbs:
            out.append(
                Diagnostic(
                    "DL004",
                    "warning",
                    f"database stores facts for IDB predicate {predicate!r}; derived relations "
                    "are computed, and stored IDB facts join as extra base derivations",
                    predicate=predicate,
                )
            )
        expected = program_arity.get(predicate)
        if expected is None:
            continue
        mismatched = [a for a in arities if a != expected]
        if mismatched:
            out.append(
                Diagnostic(
                    "DL003",
                    "warning",
                    f"database holds {predicate!r} facts of arity "
                    f"{', '.join(map(str, mismatched))} but the program uses arity {expected}; "
                    "mismatched rows can never match an atom",
                    predicate=predicate,
                )
            )
    db_predicates = database.predicates()
    for predicate in sorted(program.edb_predicates):
        if predicate not in db_predicates:
            out.append(
                Diagnostic(
                    "DL009",
                    "info",
                    f"EDB predicate {predicate!r} has no facts in the database; "
                    "every rule reading it grounds empty",
                    predicate=predicate,
                )
            )
    return out


def validation_diagnostics(
    program: Program, database: Optional[Database] = None
) -> List[Diagnostic]:
    """The cheap validation passes: safety, arity, database consistency.

    ``O(|rules| + |db predicates|)`` -- this is what
    :func:`require_valid` runs on every fixpoint entry, so it stays
    deliberately free of grounding or reachability work.
    """
    out = _safety_diagnostics(program)
    out.extend(_arity_diagnostics(program))
    if database is not None:
        out.extend(_database_diagnostics(program, database))
    return out


def _reachability_diagnostics(program: Program, report: DependencyReport) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    unreachable_idbs = sorted(program.idb_predicates - report.reachable)
    for predicate in unreachable_idbs:
        out.append(
            Diagnostic(
                "DL008",
                "warning",
                f"IDB predicate {predicate!r} is unreachable from target {program.target!r}; "
                "no target derivation can use it",
                predicate=predicate,
            )
        )
    for rule in dead_rules(program):
        out.append(
            Diagnostic(
                "DL007",
                "warning",
                f"dead rule (head {rule.head.predicate!r} unreachable from target "
                f"{program.target!r}): {rule}; prune_unreachable() drops it before grounding",
                rule=rule,
                predicate=rule.head.predicate,
                span=rule.span,
            )
        )
    return out


def _dependency_diagnostic(report: DependencyReport) -> Diagnostic:
    parts = []
    for i, scc in enumerate(report.sccs):
        parts.append(f"[{', '.join(scc)}] {report.classification[i]} (stratum {report.stratum[i]})")
    return Diagnostic(
        "DL005",
        "info",
        f"recursion: {report.recursion}; {len(report.sccs)} SCC"
        f"{'s' if len(report.sccs) != 1 else ''} in {len(report.strata)} "
        f"strat{'a' if len(report.strata) != 1 else 'um'}: " + "; ".join(parts),
    )


def _divergence_diagnostic(
    prediction: DivergencePrediction, program: Program
) -> Optional[Diagnostic]:
    if prediction.verdict == DIVERGES:
        return Diagnostic(
            "DL006",
            "error",
            f"divergence predicted over {prediction.semiring}: {prediction.reason}",
            predicate=program.target,
        )
    if prediction.verdict == UNKNOWN and "non-stable" in prediction.reason:
        return Diagnostic(
            "DL006",
            "warning",
            f"possible divergence over {prediction.semiring}: {prediction.reason}",
            predicate=program.target,
        )
    return None


@dataclass(frozen=True)
class AnalysisReport:
    """Everything :func:`analyze_program` found, structured.

    ``diagnostics`` is ordered errors-first (stable within a
    severity); ``dependencies`` and ``divergence`` carry the raw
    reports the info/error diagnostics summarize.
    """

    program: Program
    diagnostics: Tuple[Diagnostic, ...]
    dependencies: DependencyReport
    divergence: Optional[DivergencePrediction] = None
    pruned_rule_count: int = 0

    @property
    def ok(self) -> bool:
        """True iff no error-severity diagnostic."""
        return not self.errors()

    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    def infos(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "info")

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "ok": self.ok,
            "target": self.program.target,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "dependencies": self.dependencies.to_json(),
            "pruned_rule_count": self.pruned_rule_count,
        }
        if self.divergence is not None:
            payload["divergence"] = self.divergence.to_json()
        return payload

    def __repr__(self) -> str:
        counts = {s: 0 for s in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        summary = ", ".join(f"{n} {s}{'s' if n != 1 else ''}" for s, n in counts.items())
        return f"AnalysisReport({self.program.target!r}: {summary})"


def analyze_program(
    program: Program,
    database: Optional[Database] = None,
    semiring: Optional[Semiring] = None,
    ground: Optional[Union[GroundProgram, ColumnarGroundProgram]] = None,
    config: ConfigLike = None,
) -> AnalysisReport:
    """Run the full pass battery over *program*.

    *database* arms the data-aware passes (DL003/DL004/DL009 and the
    ground-cycle layer of divergence prediction); *semiring* arms
    divergence prediction at all; *ground* short-circuits the
    grounding the prediction would otherwise compute.  Severity
    ordering: errors first, then warnings, then infos, each in pass
    order.
    """
    diagnostics = validation_diagnostics(program, database)
    report = dependency_report(program)
    diagnostics.extend(_reachability_diagnostics(program, report))
    diagnostics.append(_dependency_diagnostic(report))
    prediction: Optional[DivergencePrediction] = None
    if semiring is not None:
        # Divergence prediction grounds the program when a database is
        # supplied; skip it when validation already found errors (the
        # grounding could crash on the very defects being reported).
        clean = not any(d.severity == "error" for d in diagnostics)
        if clean:
            prediction = predict_divergence(
                program, semiring, database=database, ground=ground, config=config
            )
            verdict_diagnostic = _divergence_diagnostic(prediction, program)
            if verdict_diagnostic is not None:
                diagnostics.append(verdict_diagnostic)
    rank = {severity: position for position, severity in enumerate(SEVERITIES)}
    ordered = sorted(enumerate(diagnostics), key=lambda pair: (rank[pair[1].severity], pair[0]))
    return AnalysisReport(
        program=program,
        diagnostics=tuple(d for _, d in ordered),
        dependencies=report,
        divergence=prediction,
        pruned_rule_count=len(program.rules) - len(prune_unreachable(program).rules),
    )


def require_valid(program: Program, database: Optional[Database] = None) -> None:
    """Raise :class:`ProgramValidationError` on any error diagnostic.

    The fixpoint entry gate (``FixpointEngine.evaluate(validate=True)``,
    the default): runs only the cheap validation passes, so the cost is
    linear in the rule count -- negligible next to grounding.
    """
    errors = [d for d in validation_diagnostics(program, database) if d.severity == "error"]
    if errors:
        raise ProgramValidationError(errors)
