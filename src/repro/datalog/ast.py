"""Datalog abstract syntax (Section 2.1 of the paper).

A :class:`Program` is a set of :class:`Rule`\\ s ``R₀(x₀) :- R₁(x₁) ∧
... ∧ Rₘ(xₘ)``.  Predicates occurring in some head are IDBs, the rest
are EDBs; a designated *target* IDB is the output (predicate I/O
convention).  Terms are :class:`Variable`\\ s or :class:`Constant`\\ s.

The classification helpers implement the program classes the paper's
theorems quantify over: linear, monadic, chain (Section 5), connected
(Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Tuple, Union

__all__ = [
    "Variable",
    "Constant",
    "Term",
    "Atom",
    "Fact",
    "Rule",
    "Program",
    "DatalogError",
    "SourceSpan",
]


class DatalogError(ValueError):
    """Malformed program (unsafe rule, unknown target, arity clash...)."""


@dataclass(frozen=True)
class SourceSpan:
    """Where a parsed construct came from (1-based line/column).

    The parser (:mod:`repro.datalog.parser`) attaches spans to the
    atoms and rules it builds so the static analyzer
    (:mod:`repro.datalog.analysis`) can point its diagnostics at the
    offending source.  Programs built directly from the AST carry no
    spans (``span is None`` everywhere) and every diagnostic degrades
    gracefully to rule ``repr``.
    """

    line: int
    column: int
    end_line: int
    end_column: int
    source: str = ""

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Variable:
    """A Datalog variable (named, compared by name)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A Datalog constant from the active domain."""

    value: Hashable

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Variable, Constant]


@dataclass(frozen=True)
class Atom:
    """An atom ``R(t₁, ..., tₖ)``.

    ``span`` is parser-provided provenance and deliberately *not* a
    dataclass field: two atoms parsed from different places compare
    (and hash) equal, exactly like AST-built atoms.
    """

    predicate: str
    terms: Tuple[Term, ...]

    span = None  # Optional[SourceSpan]; not a field, excluded from eq/hash

    def __init__(self, predicate: str, terms: Iterable[Term], span: "Optional[SourceSpan]" = None):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(terms))
        if span is not None:
            object.__setattr__(self, "span", span)

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        return tuple(t for t in self.terms if isinstance(t, Variable))

    @property
    def constants(self) -> Tuple[Constant, ...]:
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def is_ground(self) -> bool:
        return all(isinstance(t, Constant) for t in self.terms)

    def substitute(self, theta: Mapping[Variable, Term]) -> "Atom":
        """Apply a substitution (variables not in *theta* stay)."""
        return Atom(
            self.predicate,
            tuple(theta.get(t, t) if isinstance(t, Variable) else t for t in self.terms),
        )

    def to_fact(self) -> "Fact":
        """Convert a ground atom to a :class:`Fact`."""
        if not self.is_ground():
            raise DatalogError(f"atom {self} is not ground")
        return Fact(self.predicate, tuple(t.value for t in self.terms))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Fact:
    """A ground fact ``R(c₁, ..., cₖ)`` with raw constant values.

    Facts are the variable tags of provenance circuits: the input gate
    for EDB fact ``α`` carries the label ``Fact(α)`` (the ``x_α`` of
    Section 2.4).
    """

    predicate: str
    args: Tuple[Hashable, ...]

    def __init__(self, predicate: str, args: Iterable[Hashable]):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def to_atom(self) -> Atom:
        return Atom(self.predicate, tuple(Constant(a) for a in self.args))

    def __repr__(self) -> str:
        inner = ",".join(str(a) for a in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- body``; an empty body is not allowed here
    (EDB facts live in the database, not the program).

    ``span`` mirrors :attr:`Atom.span`: parser provenance, not a
    dataclass field, excluded from equality and hashing.
    """

    head: Atom
    body: Tuple[Atom, ...]

    span = None  # Optional[SourceSpan]; not a field, excluded from eq/hash

    def __init__(self, head: Atom, body: Iterable[Atom], span: "Optional[SourceSpan]" = None):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        if not self.body:
            raise DatalogError(f"rule {head} has an empty body")
        if span is not None:
            object.__setattr__(self, "span", span)

    @property
    def variables(self) -> FrozenSet[Variable]:
        out = set(self.head.variables)
        for atom in self.body:
            out.update(atom.variables)
        return frozenset(out)

    def is_safe(self) -> bool:
        """Range restriction: every head variable occurs in the body."""
        body_vars = set()
        for atom in self.body:
            body_vars.update(atom.variables)
        return set(self.head.variables) <= body_vars

    def body_predicates(self) -> Tuple[str, ...]:
        return tuple(a.predicate for a in self.body)

    def idb_atoms(self, idbs: FrozenSet[str]) -> Tuple[Atom, ...]:
        return tuple(a for a in self.body if a.predicate in idbs)

    def edb_atoms(self, idbs: FrozenSet[str]) -> Tuple[Atom, ...]:
        return tuple(a for a in self.body if a.predicate not in idbs)

    def is_initialization(self, idbs: FrozenSet[str]) -> bool:
        """A rule whose body contains no IDB atom (Section 2.1)."""
        return not self.idb_atoms(idbs)

    def is_linear(self, idbs: FrozenSet[str]) -> bool:
        """At most one IDB atom in the body."""
        return len(self.idb_atoms(idbs)) <= 1

    def is_chain(self) -> bool:
        """A chain rule (Section 5): ``P(x,y) :- Q₀(x,z₁) ∧ ... ∧ Qₖ(zₖ,y)``
        with binary predicates and distinct variables threading through."""
        if self.head.arity != 2:
            return False
        head_terms = self.head.terms
        if not all(isinstance(t, Variable) for t in head_terms):
            return False
        x, y = head_terms
        if x == y or not self.body:
            return False
        current = x
        seen = {x}
        for i, atom in enumerate(self.body):
            if atom.arity != 2:
                return False
            first, second = atom.terms
            if not (isinstance(first, Variable) and isinstance(second, Variable)):
                return False
            if first != current:
                return False
            is_last = i == len(self.body) - 1
            if is_last:
                if second != y:
                    return False
            else:
                if second in seen or second == y:
                    return False
                seen.add(second)
            current = second
        return True

    def is_connected(self) -> bool:
        """Connectedness (Section 6.2): the variable graph of the body
        is connected and contains every head variable."""
        body_vars: set[Variable] = set()
        adjacency: Dict[Variable, set[Variable]] = {}
        for atom in self.body:
            atom_vars = list(dict.fromkeys(atom.variables))
            body_vars.update(atom_vars)
            for v in atom_vars:
                adjacency.setdefault(v, set()).update(u for u in atom_vars if u != v)
        head_vars = set(self.head.variables)
        if not head_vars <= body_vars:
            return False
        if not body_vars:
            return True
        start = next(iter(body_vars))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in adjacency.get(node, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen == body_vars

    def rename(self, suffix: str) -> "Rule":
        """Rename every variable with *suffix* (for standardizing apart)."""
        theta = {v: Variable(f"{v.name}{suffix}") for v in self.variables}
        return Rule(self.head.substitute(theta), tuple(a.substitute(theta) for a in self.body))

    def __repr__(self) -> str:
        body = " ∧ ".join(repr(a) for a in self.body)
        return f"{self.head} :- {body}"


@dataclass
class Program:
    """A Datalog program with a designated target IDB.

    Validates safety and arity consistency at construction.  The
    classification predicates (``is_linear`` etc.) select the
    fragments of Sections 4--6.
    """

    rules: Tuple[Rule, ...]
    target: str
    _idbs: FrozenSet[str] = field(init=False, repr=False)

    def __init__(self, rules: Iterable[Rule], target: Optional[str] = None, validate: bool = True):
        self.rules = tuple(rules)
        if not self.rules:
            raise DatalogError("a program needs at least one rule")
        idbs = frozenset(rule.head.predicate for rule in self.rules)
        self._idbs = idbs
        self.target = target if target is not None else self.rules[0].head.predicate
        if self.target not in idbs:
            raise DatalogError(f"target {self.target!r} is not an IDB of the program")
        if validate:
            self._validate()

    def _validate(self) -> None:
        """The construction-time subset of the static analyzer: safety
        (DL001) and arity consistency (DL002).  ``validate=False`` on
        the constructor skips it -- the escape hatch the analyzer tests
        use to build deliberately broken programs; the fixpoint entry
        points re-check through
        :func:`repro.datalog.analysis.require_valid` so an invalid
        program cannot reach evaluation unnoticed."""
        arities: Dict[str, int] = {}
        for rule in self.rules:
            if not rule.is_safe():
                raise DatalogError(f"DL001: unsafe rule (head variable not in body): {rule}")
            for atom in (rule.head, *rule.body):
                known = arities.setdefault(atom.predicate, atom.arity)
                if known != atom.arity:
                    raise DatalogError(
                        f"DL002: predicate {atom.predicate!r} used with arities {known} and {atom.arity}"
                    )

    # -- predicate sets --------------------------------------------------

    @property
    def idb_predicates(self) -> FrozenSet[str]:
        return self._idbs

    @property
    def edb_predicates(self) -> FrozenSet[str]:
        out: set[str] = set()
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate not in self._idbs:
                    out.add(atom.predicate)
        return frozenset(out)

    @property
    def predicates(self) -> FrozenSet[str]:
        return self.idb_predicates | self.edb_predicates

    def arity_of(self, predicate: str) -> int:
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                if atom.predicate == predicate:
                    return atom.arity
        raise DatalogError(f"unknown predicate {predicate!r}")

    # -- rule subsets -----------------------------------------------------

    def initialization_rules(self) -> Tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.is_initialization(self._idbs))

    def recursive_rules(self) -> Tuple[Rule, ...]:
        return tuple(r for r in self.rules if not r.is_initialization(self._idbs))

    def rules_for(self, predicate: str) -> Tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.head.predicate == predicate)

    # -- classification (paper fragments) ----------------------------------

    def is_linear(self) -> bool:
        """Every rule has at most one IDB body atom (Section 2.1)."""
        return all(rule.is_linear(self._idbs) for rule in self.rules)

    def is_monadic(self) -> bool:
        """Every IDB is unary (EDB arities unconstrained)."""
        return all(self.arity_of(p) == 1 for p in self._idbs)

    def is_basic_chain(self) -> bool:
        """Basic chain program (Section 5): every recursive rule is a
        chain rule, and initialization rules are chains too (single-
        atom chains at least)."""
        return all(rule.is_chain() for rule in self.rules)

    def is_connected(self) -> bool:
        return all(rule.is_connected() for rule in self.rules)

    def is_left_linear_chain(self) -> bool:
        """Chain program whose recursive rules have their IDB atom
        leftmost (corresponds to a left-linear = regular grammar)."""
        if not self.is_basic_chain():
            return False
        for rule in self.recursive_rules():
            idb_positions = [
                i for i, atom in enumerate(rule.body) if atom.predicate in self._idbs
            ]
            if idb_positions != [0]:
                return False
        return True

    def is_right_linear_chain(self) -> bool:
        """Chain program whose recursive rules have their IDB atom
        rightmost (right-linear = also regular)."""
        if not self.is_basic_chain():
            return False
        for rule in self.recursive_rules():
            idb_positions = [
                i for i, atom in enumerate(rule.body) if atom.predicate in self._idbs
            ]
            if idb_positions != [len(rule.body) - 1]:
                return False
        return True

    def dependency_graph(self) -> Dict[str, FrozenSet[str]]:
        """IDB → IDBs appearing in the bodies of its rules."""
        graph: Dict[str, set[str]] = {p: set() for p in self._idbs}
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate in self._idbs:
                    graph[rule.head.predicate].add(atom.predicate)
        return {p: frozenset(deps) for p, deps in graph.items()}

    def is_recursive(self) -> bool:
        """True iff some IDB depends on itself (directly or transitively)."""
        graph = self.dependency_graph()
        for start in graph:
            stack = list(graph[start])
            seen: set[str] = set()
            while stack:
                node = stack.pop()
                if node == start:
                    return True
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(graph[node])
        return False

    def with_target(self, target: str) -> "Program":
        return Program(self.rules, target)

    def __repr__(self) -> str:
        lines = [f"Program(target={self.target!r})"]
        lines.extend(f"  {rule}" for rule in self.rules)
        return "\n".join(lines)
