"""Annotated input databases (the EDB instance ``I``).

Each EDB fact carries an optional *weight* (semiring annotation) and
is itself the provenance *tag* -- the ``x_α`` variable of Section 2.4
that circuits use as input-gate labels.  :meth:`Database.valuation`
turns the stored weights into a circuit-evaluation assignment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from ..semirings.base import Semiring
from .ast import Fact

__all__ = ["Database"]


class Database:
    """A set of EDB facts with optional semiring annotations."""

    def __init__(self, facts: Iterable[Fact] = (), weights: Optional[Mapping[Fact, object]] = None):
        self._relations: Dict[str, set[Tuple[Hashable, ...]]] = {}
        self._weights: Dict[Fact, object] = {}
        for fact in facts:
            self.add_fact(fact)
        if weights:
            for fact, weight in weights.items():
                self.add_fact(fact, weight)

    # -- construction ----------------------------------------------------

    def add(self, predicate: str, *args: Hashable, weight: object = None) -> Fact:
        """Insert ``predicate(*args)``; returns the created :class:`Fact`."""
        fact = Fact(predicate, args)
        return self.add_fact(fact, weight)

    def add_fact(self, fact: Fact, weight: object = None) -> Fact:
        self._relations.setdefault(fact.predicate, set()).add(fact.args)
        if weight is not None:
            self._weights[fact] = weight
        return fact

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        predicate: str = "E",
        weights: Optional[Mapping[Tuple[Hashable, Hashable], object]] = None,
    ) -> "Database":
        """Binary-relation shortcut: a digraph as the EDB ``E``."""
        db = cls()
        weights = weights or {}
        for u, v in edges:
            db.add(predicate, u, v, weight=weights.get((u, v)))
        return db

    @classmethod
    def from_labeled_edges(
        cls,
        edges: Iterable[Tuple[Hashable, str, Hashable]],
        weights: Optional[Mapping[Tuple[Hashable, str, Hashable], object]] = None,
    ) -> "Database":
        """Edge-labeled digraph: label ``a`` becomes binary EDB ``a``."""
        db = cls()
        weights = weights or {}
        for u, label, v in edges:
            db.add(label, u, v, weight=weights.get((u, label, v)))
        return db

    # -- access ------------------------------------------------------------

    def predicates(self) -> FrozenSet[str]:
        return frozenset(self._relations)

    def tuples(self, predicate: str) -> FrozenSet[Tuple[Hashable, ...]]:
        return frozenset(self._relations.get(predicate, ()))

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        predicates = (predicate,) if predicate else sorted(self._relations)
        for pred in predicates:
            for args in sorted(self._relations.get(pred, ()), key=repr):
                yield Fact(pred, args)

    def __contains__(self, fact: Fact) -> bool:
        return fact.args in self._relations.get(fact.predicate, ())

    def __len__(self) -> int:
        """Input size ``m``: total number of EDB facts."""
        return sum(len(tuples) for tuples in self._relations.values())

    @property
    def size(self) -> int:
        return len(self)

    def active_domain(self) -> FrozenSet[Hashable]:
        """``Dom(I)``: all constants occurring in the input."""
        domain: set[Hashable] = set()
        for tuples in self._relations.values():
            for args in tuples:
                domain.update(args)
        return frozenset(domain)

    # -- annotations ---------------------------------------------------------

    def weight(self, fact: Fact, default: object = None) -> object:
        return self._weights.get(fact, default)

    def set_weight(self, fact: Fact, weight: object) -> None:
        if fact not in self:
            raise KeyError(f"{fact} not in database")
        self._weights[fact] = weight

    def valuation(self, semiring: Semiring) -> Dict[Fact, object]:
        """Fact → semiring value; unannotated facts default to ``1``.

        This is the assignment ``x_α ↦ value`` used both by naive
        Datalog evaluation and by circuit evaluation, so the two can
        be cross-checked gate-for-gate.
        """
        out: Dict[Fact, object] = {}
        for fact in self.facts():
            weight = self._weights.get(fact)
            out[fact] = semiring.one if weight is None else weight
        return out

    def copy(self) -> "Database":
        clone = Database()
        for pred, tuples in self._relations.items():
            for args in tuples:
                clone.add(pred, *args)
        clone._weights.update(self._weights)
        return clone

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{pred}:{len(tuples)}" for pred, tuples in sorted(self._relations.items())
        )
        return f"Database({parts or 'empty'})"
