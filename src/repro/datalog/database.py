"""Annotated input databases (the EDB instance ``I``).

Each EDB fact carries an optional *weight* (semiring annotation) and
is itself the provenance *tag* -- the ``x_α`` variable of Section 2.4
that circuits use as input-gate labels.  :meth:`Database.valuation`
turns the stored weights into a circuit-evaluation assignment.

The class is the user-facing façade over two physical layouts: the
historical per-predicate Python sets (direct membership tests, cheap
single-fact writes) and a lazily materialized interned
:class:`~repro.datalog.store.ColumnarStore` (DESIGN.md §8) that the
``engine="columnar"`` grounding backend consumes.  Derived views that
used to rescan every fact on each call -- the sorted fact list, the
active domain, per-semiring valuations and the columnar store -- are
cached and invalidated on mutation, so hot paths (grounding, repeated
evaluation, circuit construction) pay the scan once per database
state, not once per call.

Invalidation is *delta-aware* when a maintainer (a
:class:`~repro.datalog.incremental.MaintainedFixpoint`) is attached:
single-fact insert/retract/reweight then patches the cached domain,
valuations and columnar store in place instead of dropping them, and
the maintainer is notified after the caches are consistent (DESIGN.md
§11).  Without a maintainer the historical wholesale invalidation is
kept -- batch writers pay one rebuild, not per-fact bookkeeping.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from ..semirings.base import Semiring
from .ast import Fact
from .store import ColumnarStore, SymbolTable

__all__ = ["Database"]


class Database:
    """A set of EDB facts with optional semiring annotations."""

    #: Distinct semirings cached per database state (FIFO eviction).
    _VALUATION_CACHE_SIZE = 8

    def __init__(self, facts: Iterable[Fact] = (), weights: Optional[Mapping[Fact, object]] = None):
        self._relations: Dict[str, set[Tuple[Hashable, ...]]] = {}
        self._weights: Dict[Fact, object] = {}
        # Derived-view caches, all invalidated by _invalidate() when a
        # fact lands.  The valuation cache is keyed by id(semiring)
        # with the semiring kept in the value so the id stays pinned.
        self._facts_cache: Optional[Tuple[Fact, ...]] = None
        self._domain_cache: Optional[FrozenSet[Hashable]] = None
        self._valuation_cache: Dict[int, Tuple[Semiring, Dict[Fact, object]]] = {}
        self._columnar_cache: Optional[ColumnarStore] = None
        # Interning scope for columnar materialization: None = the
        # process-wide GLOBAL_SYMBOLS; set by columnar_store(symbols=...)
        # and sticky across cache invalidations.
        self._columnar_symbols: Optional[SymbolTable] = None
        # Attached MaintainedFixpoint observers (DESIGN.md §11): when
        # non-empty, single-fact mutations patch the caches in place
        # and notify each maintainer instead of wholesale invalidation.
        self._maintainers: list = []
        for fact in facts:
            self.add_fact(fact)
        if weights:
            for fact, weight in weights.items():
                self.add_fact(fact, weight)

    # -- construction ----------------------------------------------------

    def add(self, predicate: str, *args: Hashable, weight: object = None) -> Fact:
        """Insert ``predicate(*args)``; returns the created :class:`Fact`."""
        fact = Fact(predicate, args)
        return self.add_fact(fact, weight)

    def add_fact(self, fact: Fact, weight: object = None) -> Fact:
        relation = self._relations.setdefault(fact.predicate, set())
        new = fact.args not in relation
        if new:
            relation.add(fact.args)
        if weight is not None:
            self._weights[fact] = weight
        if new:
            self._invalidate(fact)
            for maintainer in tuple(self._maintainers):
                maintainer._apply_insert(fact, weight)
        elif weight is not None:
            self._reweight(fact, weight)
            for maintainer in tuple(self._maintainers):
                maintainer._apply_weight(fact, weight)
        return fact

    def retract(self, predicate: str, *args: Hashable) -> Fact:
        """Remove ``predicate(*args)``; returns the removed :class:`Fact`.

        Raises :class:`KeyError` when the fact is not present -- a
        silent no-op would let a streaming client believe an expiry
        landed when it targeted the wrong fact.
        """
        return self.retract_fact(Fact(predicate, args))

    def retract_fact(self, fact: Fact) -> Fact:
        relation = self._relations.get(fact.predicate)
        if relation is None or fact.args not in relation:
            raise KeyError(f"{fact} not in database")
        relation.remove(fact.args)
        self._weights.pop(fact, None)
        self._invalidate(fact, removed=True)
        for maintainer in tuple(self._maintainers):
            maintainer._apply_retract(fact)
        return fact

    def _invalidate(self, fact: Optional[Fact] = None, removed: bool = False) -> None:
        """Drop -- or, with a maintainer attached, patch -- the caches.

        The sorted fact tuple always drops (rebuilding it is one lazy
        pass).  With no maintainer, or for bulk operations (``fact``
        is ``None``), every derived view drops wholesale as before.
        With a maintainer and a single-fact delta, the active domain,
        cached per-semiring valuations and the columnar store are
        updated in place so unrelated state survives the mutation.
        """
        self._facts_cache = None
        if fact is None or not self._maintainers:
            self._domain_cache = None
            self._valuation_cache.clear()
            self._columnar_cache = None
            return
        if removed:
            # Whether the fact's constants still occur elsewhere would
            # take a scan to establish; drop just the domain.
            self._domain_cache = None
            for _, valuation in self._valuation_cache.values():
                valuation.pop(fact, None)
            if self._columnar_cache is not None:
                self._columnar_cache.remove_fact(fact)
        else:
            if self._domain_cache is not None:
                self._domain_cache = self._domain_cache | frozenset(fact.args)
            weight = self._weights.get(fact)
            for semiring, valuation in self._valuation_cache.values():
                valuation[fact] = semiring.one if weight is None else weight
            if self._columnar_cache is not None:
                self._columnar_cache.insert_fact(fact)

    def _reweight(self, fact: Fact, weight: object) -> None:
        if self._maintainers:
            for _, valuation in self._valuation_cache.values():
                valuation[fact] = weight
        else:
            self._valuation_cache.clear()

    # -- maintainers -----------------------------------------------------

    def _attach_maintainer(self, maintainer) -> None:
        if maintainer not in self._maintainers:
            self._maintainers.append(maintainer)

    def _detach_maintainer(self, maintainer) -> None:
        if maintainer in self._maintainers:
            self._maintainers.remove(maintainer)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        predicate: str = "E",
        weights: Optional[Mapping[Tuple[Hashable, Hashable], object]] = None,
    ) -> "Database":
        """Binary-relation shortcut: a digraph as the EDB ``E``."""
        db = cls()
        weights = weights or {}
        for u, v in edges:
            db.add(predicate, u, v, weight=weights.get((u, v)))
        return db

    @classmethod
    def from_labeled_edges(
        cls,
        edges: Iterable[Tuple[Hashable, str, Hashable]],
        weights: Optional[Mapping[Tuple[Hashable, str, Hashable], object]] = None,
    ) -> "Database":
        """Edge-labeled digraph: label ``a`` becomes binary EDB ``a``."""
        db = cls()
        weights = weights or {}
        for u, label, v in edges:
            db.add(label, u, v, weight=weights.get((u, label, v)))
        return db

    # -- access ------------------------------------------------------------

    def predicates(self) -> FrozenSet[str]:
        return frozenset(self._relations)

    def tuples(self, predicate: str) -> FrozenSet[Tuple[Hashable, ...]]:
        return frozenset(self._relations.get(predicate, ()))

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        if predicate is None:
            if self._facts_cache is None:
                self._facts_cache = tuple(
                    Fact(pred, args)
                    for pred in sorted(self._relations)
                    for args in sorted(self._relations.get(pred, ()), key=repr)
                )
            yield from self._facts_cache
            return
        for args in sorted(self._relations.get(predicate, ()), key=repr):
            yield Fact(predicate, args)

    def __contains__(self, fact: Fact) -> bool:
        return fact.args in self._relations.get(fact.predicate, ())

    def __len__(self) -> int:
        """Input size ``m``: total number of EDB facts."""
        return sum(len(tuples) for tuples in self._relations.values())

    @property
    def size(self) -> int:
        return len(self)

    def active_domain(self) -> FrozenSet[Hashable]:
        """``Dom(I)``: all constants occurring in the input.

        Cached per database state -- callers like full grounding and
        the columnar grounder may ask repeatedly between mutations.
        """
        if self._domain_cache is None:
            domain: set[Hashable] = set()
            for tuples in self._relations.values():
                for args in tuples:
                    domain.update(args)
            self._domain_cache = frozenset(domain)
        return self._domain_cache

    # -- columnar materialization ------------------------------------------

    def columnar_store(self, symbols: Optional["SymbolTable"] = None) -> ColumnarStore:
        """The interned columnar snapshot of this database (DESIGN.md §8).

        Materialized lazily on first use against the process-wide
        symbol table and cached until the next mutation.  The returned
        store is shared: consumers that append derived facts (the
        ``engine="columnar"`` grounder) must take a
        :meth:`~repro.datalog.store.ColumnarStore.copy` first;
        read-only consumers (pattern lookups, scans) may use it
        directly, and any indexes they build stay cached here.

        Pass a private *symbols* table to keep this database's
        constants out of the process-wide table (the global table is
        never pruned, so long-lived processes churning through many
        short-lived databases with unique constants should scope
        interning to the database's lifetime).  The table *sticks*:
        it replaces the cache and every later materialization of this
        database -- including the ones ``engine="columnar"`` grounding
        runs trigger internally -- interns into it, so the escape
        hatch is one call, not a parameter on every entry point.
        Scope **before** the first columnar use: constants a prior
        no-arg materialization already interned into the global table
        cannot be un-interned.
        """
        if symbols is not None and symbols is not self._columnar_symbols:
            self._columnar_symbols = symbols
            self._columnar_cache = None
        if self._columnar_cache is None:
            self._columnar_cache = ColumnarStore.from_facts(
                self.facts(), self._columnar_symbols
            )
        return self._columnar_cache

    # -- annotations ---------------------------------------------------------

    def weight(self, fact: Fact, default: object = None) -> object:
        return self._weights.get(fact, default)

    def set_weight(self, fact: Fact, weight: object) -> None:
        if fact not in self:
            raise KeyError(f"{fact} not in database")
        self._weights[fact] = weight
        self._reweight(fact, weight)
        for maintainer in tuple(self._maintainers):
            maintainer._apply_weight(fact, weight)

    def valuation(self, semiring: Semiring) -> Dict[Fact, object]:
        """Fact → semiring value; unannotated facts default to ``1``.

        This is the assignment ``x_α ↦ value`` used both by naive
        Datalog evaluation and by circuit evaluation, so the two can
        be cross-checked gate-for-gate.  Computed once per
        ``(database state, semiring)`` and cached; a fresh dict copy
        is returned each call so callers may mutate their view.
        """
        cached = self._valuation_cache.get(id(semiring))
        if cached is None:
            out: Dict[Fact, object] = {}
            one = semiring.one
            weights = self._weights
            for fact in self.facts():
                weight = weights.get(fact)
                out[fact] = one if weight is None else weight
            # Bounded FIFO: callers constructing fresh semiring objects
            # per query must not pin one full valuation (plus the
            # semiring) per call for the life of the database.
            while len(self._valuation_cache) >= self._VALUATION_CACHE_SIZE:
                self._valuation_cache.pop(next(iter(self._valuation_cache)))
            self._valuation_cache[id(semiring)] = (semiring, out)
            return dict(out)
        return dict(cached[1])

    def copy(self) -> "Database":
        clone = Database()
        for pred, tuples in self._relations.items():
            for args in tuples:
                clone.add(pred, *args)
        clone._weights.update(self._weights)
        # The interning scope travels with the data: a clone of a
        # privately-scoped database must not leak its constants into
        # the process-wide table on its first columnar use.
        clone._columnar_symbols = self._columnar_symbols
        return clone

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{pred}:{len(tuples)}" for pred, tuples in sorted(self._relations.items())
        )
        return f"Database({parts or 'empty'})"
