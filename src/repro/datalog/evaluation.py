"""Datalog semantics over semirings: the ICO and naive evaluation.

Section 2.3: the immediate consequence operator (ICO) maps each IDB
fact ``α`` to the ``⊕``-sum over all grounded rules with head ``α`` of
the ``⊗``-product of the rule's body facts.  Naive evaluation starts
from all-``0`` and applies the ICO until a fixpoint.

Convergence is guaranteed for absorptive (0-stable) semirings -- in at
most ``N`` rounds, where ``N`` is the number of derivable IDB facts,
because a tight proof tree repeats no IDB fact on a root-to-leaf path
and so has height at most ``N``.  Over non-stable semirings (e.g. the
counting semiring on cyclic inputs) evaluation may diverge; the
``max_iterations`` guard reports that instead of spinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..semirings.base import Semiring
from .ast import Fact, Program
from .database import Database
from .grounding import GroundProgram, derivable_facts, relevant_grounding

__all__ = ["EvaluationResult", "naive_evaluation", "evaluate_fact", "boolean_iterations"]


class DivergenceError(RuntimeError):
    """Naive evaluation hit the iteration cap without converging."""


@dataclass
class EvaluationResult:
    """Outcome of naive evaluation.

    ``values`` holds the least-fixpoint annotation of every derivable
    IDB fact; ``iterations`` is the number of ICO applications until
    the fixpoint was certified (the quantity bounded by Definition
    4.1's ``k`` for bounded programs).
    """

    semiring: Semiring
    values: Dict[Fact, object]
    iterations: int
    converged: bool

    def value(self, fact: Fact):
        return self.values.get(fact, self.semiring.zero)

    def target_values(self, program: Program) -> Dict[Fact, object]:
        return {
            fact: value
            for fact, value in self.values.items()
            if fact.predicate == program.target
        }


def naive_evaluation(
    program: Program,
    database: Database,
    semiring: Semiring,
    weights: Optional[Mapping[Fact, object]] = None,
    ground: Optional[GroundProgram] = None,
    max_iterations: Optional[int] = None,
    raise_on_divergence: bool = False,
) -> EvaluationResult:
    """Run naive evaluation of *program* on *database* over *semiring*.

    *weights* overrides the database's stored annotations (default:
    stored weight, else ``1``).  *ground* lets callers reuse a
    precomputed grounding.  ``max_iterations`` defaults to
    ``max(#IDB facts, 1) + 1`` extra headroom for absorptive
    semirings and must be set explicitly for non-stable ones.
    """
    if ground is None:
        ground = relevant_grounding(program, database)
    edb_value = dict(database.valuation(semiring))
    if weights:
        edb_value.update(weights)

    idb_facts = sorted(ground.idb_facts, key=repr)
    if max_iterations is None:
        max_iterations = max(len(idb_facts), 1) + 2

    # Precompute each ground rule's EDB product once.
    rule_edb_product = [
        semiring.mul_all(edb_value[fact] for fact in rule.edb_body) for rule in ground.rules
    ]

    values: Dict[Fact, object] = {fact: semiring.zero for fact in idb_facts}
    iterations = 0
    converged = False
    for _ in range(max_iterations):
        fresh: Dict[Fact, object] = {fact: semiring.zero for fact in idb_facts}
        for rule, edb_product in zip(ground.rules, rule_edb_product):
            term = edb_product
            for body_fact in rule.idb_body:
                term = semiring.mul(term, values[body_fact])
            fresh[rule.head] = semiring.add(fresh[rule.head], term)
        iterations += 1
        if all(semiring.eq(fresh[fact], values[fact]) for fact in idb_facts):
            converged = True
            values = fresh
            break
        values = fresh
    if not converged and raise_on_divergence:
        raise DivergenceError(
            f"naive evaluation over {semiring.name} did not converge in "
            f"{max_iterations} iterations"
        )
    return EvaluationResult(semiring, values, iterations, converged)


def evaluate_fact(
    program: Program,
    database: Database,
    semiring: Semiring,
    fact: Fact,
    weights: Optional[Mapping[Fact, object]] = None,
):
    """Least-fixpoint value of one IDB *fact* (``0`` if underivable)."""
    result = naive_evaluation(program, database, semiring, weights)
    return result.value(fact)


def boolean_iterations(program: Program, database: Database) -> int:
    """Rounds until the Boolean fixpoint (Definition 4.1 probe)."""
    _, iterations = derivable_facts(program, database)
    return iterations
