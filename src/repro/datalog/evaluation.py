"""Datalog semantics over semirings: the ICO and the fixpoint front-end.

Section 2.3: the immediate consequence operator (ICO) maps each IDB
fact ``α`` to the ``⊕``-sum over all grounded rules with head ``α`` of
the ``⊗``-product of the rule's body facts.  Naive evaluation starts
from all-``0`` and applies the ICO until a fixpoint.

Two strategies compute that fixpoint (see
:mod:`repro.datalog.seminaive` for the :class:`FixpointEngine` API and
the naive-vs-semi-naive trade-off):

* ``naive`` -- the paper's loop, kept verbatim in
  :func:`_naive_fixpoint` as the reference implementation: every round
  re-evaluates every ground rule, ``O(iterations × |ground rules|)``.
* ``seminaive`` -- the default: per-fact deltas plus the
  ``rules_by_idb_body`` index re-evaluate only rules whose body
  actually changed, round-for-round equivalent to naive.
* ``columnar`` -- the same delta-driven rounds run in id space on a
  :class:`~repro.datalog.grounding.ColumnarGroundProgram` (dense
  value arrays indexed by fact id, CSR adjacency, object-space ⊗/⊕;
  DESIGN.md §9), round-for-round equivalent to both.

:func:`naive_evaluation` keeps its historical name and signature but
now delegates to the engine, so every caller gets the semi-naive
backend unless it pins ``strategy="naive"``.

Convergence is guaranteed for absorptive (0-stable) semirings -- in at
most ``N`` rounds, where ``N`` is the number of derivable IDB facts,
because a tight proof tree repeats no IDB fact on a root-to-leaf path
and so has height at most ``N``.  Over non-stable semirings (e.g. the
counting semiring on cyclic inputs) evaluation may diverge; the
``max_iterations`` guard reports that instead of spinning, identically
under both strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..config import ConfigLike, merge_legacy_knobs
from ..semirings.base import Semiring
from .ast import Fact, Program
from .database import Database
from .grounding import GroundProgram, derivable_facts

__all__ = [
    "EvaluationResult",
    "DivergenceError",
    "naive_evaluation",
    "evaluate_fact",
    "boolean_iterations",
]


class DivergenceError(RuntimeError):
    """Fixpoint evaluation hit the iteration cap without converging."""


@dataclass
class EvaluationResult:
    """Outcome of a fixpoint evaluation.

    ``values`` holds the least-fixpoint annotation of every derivable
    IDB fact; ``iterations`` is the number of ICO applications until
    the fixpoint was certified (the quantity bounded by Definition
    4.1's ``k`` for bounded programs) and is identical across
    strategies.  ``strategy`` records which backend produced the
    result; ``rule_evaluations`` counts ``⊗``-term recomputations, the
    cost metric on which the strategies differ.
    """

    semiring: Semiring
    values: Dict[Fact, object]
    iterations: int
    converged: bool
    strategy: str = "naive"
    rule_evaluations: int = 0

    def value(self, fact: Fact):
        return self.values.get(fact, self.semiring.zero)

    def target_values(self, program: Program) -> Dict[Fact, object]:
        return {
            fact: value
            for fact, value in self.values.items()
            if fact.predicate == program.target
        }


def _naive_fixpoint(
    ground: GroundProgram,
    semiring: Semiring,
    edb_value: Mapping[Fact, object],
    idb_facts: List[Fact],
    max_iterations: int,
) -> Tuple[Dict[Fact, object], int, bool, int]:
    """The literal Section 2.3 loop: re-evaluate everything each round.

    Returns ``(values, iterations, converged, rule_evaluations)``; the
    reference the semi-naive strategy is tested against.
    """
    # Precompute each ground rule's EDB product once.
    rule_edb_product = [
        semiring.mul_all(edb_value[fact] for fact in rule.edb_body) for rule in ground.rules
    ]

    values: Dict[Fact, object] = {fact: semiring.zero for fact in idb_facts}
    iterations = 0
    converged = False
    rule_evaluations = 0
    for _ in range(max_iterations):
        fresh: Dict[Fact, object] = {fact: semiring.zero for fact in idb_facts}
        for rule, edb_product in zip(ground.rules, rule_edb_product):
            term = edb_product
            for body_fact in rule.idb_body:
                term = semiring.mul(term, values[body_fact])
            fresh[rule.head] = semiring.add(fresh[rule.head], term)
            rule_evaluations += 1
        iterations += 1
        if all(semiring.eq(fresh[fact], values[fact]) for fact in idb_facts):
            converged = True
            values = fresh
            break
        values = fresh
    return values, iterations, converged, rule_evaluations


def naive_evaluation(
    program: Program,
    database: Database,
    semiring: Semiring,
    weights: Optional[Mapping[Fact, object]] = None,
    ground: Optional[GroundProgram] = None,
    max_iterations: Optional[int] = None,
    raise_on_divergence: bool = False,
    strategy: Optional[str] = None,
    grounding_engine: Optional[str] = None,
    config: ConfigLike = None,
    validate: bool = True,
) -> EvaluationResult:
    """Fixpoint evaluation of *program* on *database* over *semiring*.

    *weights* overrides the database's stored annotations (default:
    stored weight, else ``1``).  *ground* lets callers reuse a
    precomputed grounding.  ``max_iterations`` defaults to
    ``max(#IDB facts, 1) + 2`` extra headroom for absorptive
    semirings and must be set explicitly for non-stable ones.

    Despite the historical name this delegates to the
    :class:`~repro.datalog.seminaive.FixpointEngine`; *strategy* picks
    the backend (``"naive"`` | ``"seminaive"`` | ``"columnar"``,
    default :data:`~repro.datalog.seminaive.DEFAULT_STRATEGY`, i.e.
    semi-naive).  All produce identical results round for round.
    *grounding_engine* picks the join engine used when *ground* is not
    supplied (``"indexed"`` | ``"naive"`` | ``"columnar"``, see
    :func:`~repro.datalog.grounding.relevant_grounding`); *ground*
    itself may be a tuple-space ``GroundProgram`` or an id-space
    :class:`~repro.datalog.grounding.ColumnarGroundProgram`.

    ``strategy=`` and ``grounding_engine=`` are the deprecated
    spellings of ``config=ExecutionConfig(strategy=..., engine=...)``
    (the :mod:`repro.api` facade, DESIGN.md §10); they still work but
    warn.

    ``validate=True`` (the default) runs the DL001/DL002 static checks
    before grounding and raises
    :class:`~repro.datalog.analysis.ProgramValidationError` on an
    unsafe or arity-inconsistent program; ``validate=False`` is the
    escape hatch for tests that need to execute such programs anyway.
    """
    from .seminaive import FixpointEngine

    config = merge_legacy_knobs(
        "naive_evaluation",
        config,
        strategy=("strategy", strategy),
        engine=("grounding_engine", grounding_engine),
    )
    return FixpointEngine(config=config).evaluate(
        program,
        database,
        semiring,
        weights=weights,
        ground=ground,
        max_iterations=max_iterations,
        raise_on_divergence=raise_on_divergence,
        validate=validate,
    )


def evaluate_fact(
    program: Program,
    database: Database,
    semiring: Semiring,
    fact: Fact,
    weights: Optional[Mapping[Fact, object]] = None,
    strategy: Optional[str] = None,
    config: ConfigLike = None,
):
    """Least-fixpoint value of one IDB *fact* (``0`` if underivable).

    ``strategy=`` is the deprecated spelling of
    ``config=ExecutionConfig(strategy=...)``; it still works but warns.
    """
    config = merge_legacy_knobs("evaluate_fact", config, strategy=("strategy", strategy))
    result = naive_evaluation(program, database, semiring, weights, config=config)
    return result.value(fact)


def boolean_iterations(program: Program, database: Database) -> int:
    """Rounds until the Boolean fixpoint (Definition 4.1 probe)."""
    _, iterations = derivable_facts(program, database)
    return iterations
