"""CQ expansions of linear Datalog programs (Theorem 4.5, Section 6.2).

For a linear program, unfolding the recursive rules ``i`` times and
closing with an initialization rule yields a conjunctive query ``Cᵢ``
over the EDBs; the target satisfies ``T(I) = ⋃ᵢ Cᵢ(I)`` over any
p-stable semiring.  Example 4.4 shows the TC expansions (paths of each
length).

Expansions of a *monadic* linear program are additionally indexed by
*words* over the rule alphabet ``Σ_Π`` (Section 6.2): a word is a
sequence of recursive-rule choices ending in an initialization rule.
:func:`expansion_of_word` materializes the CQ of a given word, which
is what the Theorem 6.8 reduction and the boundedness machinery need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .ast import Atom, DatalogError, Program, Term, Variable
from .database import Database

__all__ = [
    "ConjunctiveQuery",
    "unify_atoms",
    "expansions",
    "expansions_up_to",
    "expansion_of_word",
    "expansion_words",
    "canonical_database",
]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A CQ ``head(x̄) :- body`` with an all-EDB body."""

    head: Atom
    body: Tuple[Atom, ...]

    @property
    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for atom in (self.head, *self.body):
            for term in atom.terms:
                if isinstance(term, Variable):
                    seen.setdefault(term)
        return tuple(seen)

    @property
    def size(self) -> int:
        return len(self.body)

    def substitute(self, theta: Mapping[Variable, Term]) -> "ConjunctiveQuery":
        return ConjunctiveQuery(
            self.head.substitute(theta), tuple(a.substitute(theta) for a in self.body)
        )

    def __repr__(self) -> str:
        body = " ∧ ".join(map(repr, self.body))
        return f"{self.head} :- {body}"


def _resolve(term: Term, theta: Dict[Variable, Term]) -> Term:
    while isinstance(term, Variable) and term in theta:
        term = theta[term]
    return term


def unify_atoms(
    first: Atom, second: Atom, theta: Optional[Dict[Variable, Term]] = None
) -> Optional[Dict[Variable, Term]]:
    """Most general unifier of two atoms (terms are vars/constants only).

    Returns an extended substitution or ``None`` when not unifiable.
    """
    if first.predicate != second.predicate or first.arity != second.arity:
        return None
    theta = dict(theta) if theta else {}
    for s, t in zip(first.terms, second.terms):
        s = _resolve(s, theta)
        t = _resolve(t, theta)
        if s == t:
            continue
        if isinstance(s, Variable):
            theta[s] = t
        elif isinstance(t, Variable):
            theta[t] = s
        else:
            return None
    return theta


def _apply_fully(atom: Atom, theta: Dict[Variable, Term]) -> Atom:
    return Atom(atom.predicate, tuple(_resolve(term, theta) for term in atom.terms))


def _check_linear(program: Program) -> None:
    if not program.is_linear():
        raise DatalogError("CQ expansions are defined here for linear programs only")


def expansion_words(program: Program, steps: int) -> Iterator[Tuple[int, ...]]:
    """All words with *steps* recursive rules then one init rule.

    Words are tuples of rule indices into ``program.rules``; only
    index sequences that type-check (each rule's IDB subgoal matches
    the next rule's head predicate, starting from the target) are
    produced.
    """
    _check_linear(program)
    idbs = program.idb_predicates
    recursive = [
        (i, r) for i, r in enumerate(program.rules) if not r.is_initialization(idbs)
    ]
    initial = [(i, r) for i, r in enumerate(program.rules) if r.is_initialization(idbs)]

    def walk(predicate: str, remaining: int) -> Iterator[Tuple[int, ...]]:
        if remaining == 0:
            for index, rule in initial:
                if rule.head.predicate == predicate:
                    yield (index,)
            return
        for index, rule in recursive:
            if rule.head.predicate != predicate:
                continue
            subgoal = rule.idb_atoms(idbs)[0]
            for rest in walk(subgoal.predicate, remaining - 1):
                yield (index, *rest)

    yield from walk(program.target, steps)


def expansion_of_word(program: Program, word: Sequence[int]) -> ConjunctiveQuery:
    """Materialize the CQ of a rule-index *word* (last index = init rule).

    Rules are standardized apart with per-step suffixes, each rule's
    head unified with the pending IDB subgoal.
    """
    _check_linear(program)
    idbs = program.idb_predicates
    target_arity = program.arity_of(program.target)
    head_vars = tuple(Variable(f"X{i}") for i in range(target_arity))
    goal = Atom(program.target, head_vars)
    head = goal
    body: List[Atom] = []
    for step, rule_index in enumerate(word):
        rule = program.rules[rule_index].rename(f"_{step}")
        theta = unify_atoms(rule.head, goal)
        if theta is None:
            raise DatalogError(
                f"word {tuple(word)} invalid: rule {rule_index} head does not "
                f"unify with pending goal {goal}"
            )
        head = _apply_fully(head, theta)
        body = [_apply_fully(a, theta) for a in body]
        idb_subgoals = [
            _apply_fully(a, theta) for a in rule.body if a.predicate in idbs
        ]
        body.extend(_apply_fully(a, theta) for a in rule.body if a.predicate not in idbs)
        is_last = step == len(word) - 1
        if is_last:
            if idb_subgoals:
                raise DatalogError("word must end with an initialization rule")
        else:
            if len(idb_subgoals) != 1:
                raise DatalogError("non-final word positions must be recursive rules")
            goal = idb_subgoals[0]
    return ConjunctiveQuery(head, tuple(body))


def expansions(program: Program, steps: int) -> List[ConjunctiveQuery]:
    """All expansions ``C`` with exactly *steps* recursive applications."""
    return [expansion_of_word(program, word) for word in expansion_words(program, steps)]


def expansions_up_to(program: Program, max_steps: int) -> List[List[ConjunctiveQuery]]:
    """``[C₀-list, C₁-list, ..., C_max-list]`` grouped by step count."""
    return [expansions(program, i) for i in range(max_steps + 1)]


def canonical_database(
    cq: ConjunctiveQuery, prefix: str = "c_"
) -> Tuple[Database, Dict[Variable, object]]:
    """Chandra–Merlin canonical database of *cq*.

    Every variable is frozen into a distinct constant ``prefix+name``;
    returns the database and the variable → constant mapping (needed
    by the Theorem 6.8 instance construction, which identifies some of
    these constants with graph vertices).
    """
    mapping: Dict[Variable, object] = {}
    for var in cq.variables:
        mapping[var] = f"{prefix}{var.name}"
    db = Database()
    for atom in cq.body:
        args = tuple(
            mapping[t] if isinstance(t, Variable) else t.value for t in atom.terms
        )
        db.add(atom.predicate, *args)
    return db, mapping
