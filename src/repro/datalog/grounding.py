"""Grounding of Datalog programs (Section 2.1).

A *grounding* of a rule instantiates its variables with active-domain
constants.  Two strategies are provided:

* :func:`full_grounding` -- all ``|Dom(I)|^{#vars}`` instantiations
  whose EDB body atoms hold in the input.  This is the paper's
  definition; exponential in rule width, usable only on tiny inputs.

* :func:`relevant_grounding` -- only ground rules all of whose body
  facts are actually derivable.  Omitted ground rules would contribute
  ``0`` to every ICO sum, so provenance polynomials (and therefore all
  circuits built from the grounding) are unchanged; this is what makes
  the Theorem 3.1/6.2 constructions practical (DESIGN.md §2, ablated
  in DESIGN.md §6).

Each strategy is served by one of three interchangeable join
*engines*, selected with the ``engine`` keyword (DESIGN.md §5, §8):

* ``"indexed"`` (the default) -- a fused, delta-driven grounding pass.
  The fact store keeps per-predicate hash indexes keyed on the exact
  constant pattern an atom presents (:class:`_FactIndex.lookup`), body
  atoms are reordered greedily by selectivity before each join
  (:func:`_order_body`), and ground rules are emitted incrementally
  while the Boolean fixpoint is computed -- a single semi-naive pass
  instead of a fixpoint followed by a from-scratch re-join.  Cost is
  ``O(Σ bindings actually enumerated)`` with each index probe a dict
  lookup.

* ``"columnar"`` -- the same fused, delta-driven pass run entirely in
  *id space* on the interned columnar store of
  :mod:`repro.datalog.store` (DESIGN.md §8): constants are interned
  once into integer ids, relations are parallel ``array('q')``
  columns, pattern lookups are ``bisect`` ranges over contiguous
  sorted-id arrays, and semi-naive rounds consume the store's
  :class:`~repro.datalog.store.DeltaView` windows.  Facts are decoded
  back to :class:`Fact` objects only when ground rules are emitted.
  :func:`columnar_grounding` skips even that: the slot-compiled
  variant of the pass emits a :class:`ColumnarGroundProgram` --
  ground rules as parallel int arrays over interned fact ids, the
  form the ``strategy="columnar"`` fixpoint and the circuit
  constructions consume without any tuple conversion (DESIGN.md §9).

* ``"naive"`` -- the original reference engine: a Boolean semi-naive
  fixpoint (:func:`derivable_facts`) followed by a backtracking
  nested-loop re-join of every rule, with only single-argument-position
  indexing (narrowest index wins, every candidate row is scanned).
  Kept verbatim for A/B benchmarking and as the oracle for the
  equivalence tests (``tests/datalog/test_grounding_engines.py``,
  ``tests/datalog/test_columnar_store.py``).

All engines produce the *same* :class:`GroundProgram` (as a set of
ground rules); only the number of join probes differs.  Probes are
counted in the module-level :data:`GROUNDING_STATS`, the instrumented
counter the benchmarks (``benchmarks/bench_ablation_grounding.py``,
``benchmarks/bench_seminaive.py``,
``benchmarks/bench_columnar_store.py``) and the regression tests read.
"""

from __future__ import annotations

import zlib
from contextvars import ContextVar
from dataclasses import dataclass, field
from itertools import product
from operator import itemgetter
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from array import array

from ..config import (
    DEFAULT_GROUNDING_ENGINE,
    GROUNDING_ENGINES,
    ConfigLike,
    merge_legacy_knobs,
)
from .ast import Atom, Constant, DatalogError, Fact, Program, Rule, Variable
from .database import Database
from .store import SymbolTable

__all__ = [
    "GroundRule",
    "GroundProgram",
    "ColumnarGroundProgram",
    "GroundingStats",
    "GROUNDING_STATS",
    "GROUNDING_ENGINES",
    "DEFAULT_GROUNDING_ENGINE",
    "count_join_probes",
    "full_grounding",
    "relevant_grounding",
    "columnar_grounding",
    "derivable_facts",
    "shard_of_fact",
]


def shard_of_fact(predicate: str, ids: Tuple[int, ...], nshards: int) -> int:
    """Stable shard of a ground fact in id space (DESIGN.md §13).

    Mixes the predicate's CRC32 with the symbol ids FNV-style.  Must be
    identical across worker processes, which rules out the builtin
    ``hash`` (``PYTHONHASHSEED`` salts strings per process); symbol ids
    are themselves process-stable because every shard worker starts
    from the same pickled base store.
    """
    h = zlib.crc32(predicate.encode("utf-8"))
    for sid in ids:
        h = (h * 1000003 ^ sid) & 0xFFFFFFFF
    return h % nshards

# The engine vocabulary and its default live in repro.config (the
# shared knob module, DESIGN.md §10); the historical names are
# re-exported here because this layer defined them first.


def _resolve_engine(engine: Optional[str]) -> str:
    if engine is None:
        return DEFAULT_GROUNDING_ENGINE
    if engine not in GROUNDING_ENGINES:
        raise ValueError(
            f"unknown grounding engine {engine!r}; expected one of {GROUNDING_ENGINES}"
        )
    return engine


@dataclass
class GroundingStats:
    """Instrumentation for the join engines.

    * ``probes`` -- candidate rows handed to the matcher: the unit of
      join work both engines share, and the metric on which they
      differ (the indexed engine's pattern lookups return only rows
      that already agree on every bound position, so far fewer rows
      are ever probed).
    * ``matches`` -- probes that extended the substitution.
    * ``ground_rules`` -- ground-rule instances emitted.

    Engines write to the *context-local* stats object
    (:func:`count_join_probes` installs a private capture around the
    region it measures, so concurrent or interleaved measurements
    cannot pollute each other's counts).  Outside any capture they
    fall back to the module-level :data:`GROUNDING_STATS`, which
    accumulates across calls; direct use of the global remains
    supported::

        GROUNDING_STATS.reset()
        relevant_grounding(program, db, engine="naive")
        naive_probes = GROUNDING_STATS.probes
    """

    probes: int = 0
    matches: int = 0
    ground_rules: int = 0

    def reset(self) -> None:
        self.probes = 0
        self.matches = 0
        self.ground_rules = 0


#: Module-level join instrumentation (see :class:`GroundingStats`):
#: the default capture target when no :func:`count_join_probes` scope
#: is active.
GROUNDING_STATS = GroundingStats()

#: The context-local capture target.  ``contextvars`` gives every
#: thread / async task its own binding, so interleaved
#: :func:`count_join_probes` regions are isolated from each other and
#: from the global accumulator.
_GROUNDING_STATS_VAR: ContextVar[GroundingStats] = ContextVar(
    "repro_grounding_stats", default=GROUNDING_STATS
)


def _stats() -> GroundingStats:
    """The stats object engines must write to in the current context."""
    return _GROUNDING_STATS_VAR.get()


def count_join_probes(run):
    """Run ``run()`` against a private stats capture; return
    ``(probes, result)``.

    The one measurement protocol shared by the benchmarks and the
    probe-regression tests, so they cannot drift apart.  The capture
    is context-local: neither a concurrent measurement nor the
    module-level :data:`GROUNDING_STATS` accumulator sees this run's
    counts, and captures nest (an inner capture's counts stay out of
    the outer one).
    """
    capture = GroundingStats()
    token = _GROUNDING_STATS_VAR.set(capture)
    try:
        result = run()
    finally:
        _GROUNDING_STATS_VAR.reset(token)
    return capture.probes, result


@dataclass(frozen=True)
class GroundRule:
    """A grounded rule, body split into IDB and EDB facts.

    The grounded head is derived from ``idb_body ∪ edb_body`` by the
    originating rule; ``rule_index`` back-references the program rule.
    Body tuples preserve the original rule's body-atom order even when
    the join that discovered the instance ran in a different
    (selectivity-chosen) order.
    """

    head: Fact
    idb_body: Tuple[Fact, ...]
    edb_body: Tuple[Fact, ...]
    rule_index: int = -1

    @property
    def body(self) -> Tuple[Fact, ...]:
        return self.idb_body + self.edb_body

    def __repr__(self) -> str:
        body = " ∧ ".join(map(repr, self.body))
        return f"{self.head} :- {body}"


@dataclass
class GroundProgram:
    """The grounded program: ground rules indexed by head fact.

    Besides ``by_head`` (head fact → ground rules), two derived
    integer indexes are built once on first use and cached; they are
    the backbone of the semi-naive engine
    (:mod:`repro.datalog.seminaive`):

    * :attr:`rules_by_idb_body` -- IDB fact → indices of the ground
      rules whose **body** mentions it.  When a fact's value changes,
      exactly these rules can produce a different term.
    * :attr:`rule_indices_by_head` -- head fact → indices of the rules
      deriving it, used to re-fold a head's ``⊕``-sum from cached
      per-rule terms.
    """

    program: Program
    rules: List[GroundRule]
    by_head: Dict[Fact, List[GroundRule]] = field(default_factory=dict)
    _rules_by_idb_body: Optional[Dict[Fact, Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _rule_indices_by_head: Optional[Dict[Fact, Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.by_head:
            for rule in self.rules:
                self.by_head.setdefault(rule.head, []).append(rule)

    @property
    def rules_by_idb_body(self) -> Mapping[Fact, Tuple[int, ...]]:
        """IDB fact → indices of ground rules with that fact in the body."""
        if self._rules_by_idb_body is None:
            index: Dict[Fact, List[int]] = {}
            for position, rule in enumerate(self.rules):
                for fact in set(rule.idb_body):
                    index.setdefault(fact, []).append(position)
            self._rules_by_idb_body = {
                fact: tuple(positions) for fact, positions in index.items()
            }
        return self._rules_by_idb_body

    @property
    def rule_indices_by_head(self) -> Mapping[Fact, Tuple[int, ...]]:
        """Head fact → indices of the ground rules deriving it."""
        if self._rule_indices_by_head is None:
            index: Dict[Fact, List[int]] = {}
            for position, rule in enumerate(self.rules):
                index.setdefault(rule.head, []).append(position)
            self._rule_indices_by_head = {
                fact: tuple(positions) for fact, positions in index.items()
            }
        return self._rule_indices_by_head

    def rule_keys(self) -> FrozenSet[Tuple]:
        """The grounding as a set of order-independent rule identities
        ``(rule_index, head, idb_body, edb_body)``.

        Engines emit the same ground rules in different orders, so
        this is the identity the engine-equivalence tests and the
        head-to-head benchmarks compare on.
        """
        return frozenset(
            (rule.rule_index, rule.head, rule.idb_body, rule.edb_body)
            for rule in self.rules
        )

    @property
    def idb_facts(self) -> FrozenSet[Fact]:
        return frozenset(self.by_head)

    @property
    def size(self) -> int:
        """``M`` of Theorem 4.3: total atoms over all ground rules."""
        return sum(1 + len(rule.body) for rule in self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def rules_for(self, fact: Fact) -> Sequence[GroundRule]:
        return self.by_head.get(fact, ())

    def target_facts(self) -> List[Fact]:
        return sorted(
            (f for f in self.by_head if f.predicate == self.program.target), key=repr
        )

    def max_body_idbs(self) -> int:
        return max((len(r.idb_body) for r in self.rules), default=0)

    def __repr__(self) -> str:
        return (
            f"GroundProgram(rules={len(self.rules)}, idb_facts={len(self.by_head)}, "
            f"size={self.size})"
        )


class ColumnarGroundProgram:
    """The grounded program in id space: rules as parallel int arrays
    (DESIGN.md §9).

    The columnar twin of :class:`GroundProgram`, produced by
    :func:`columnar_grounding` without ever decoding a constant.
    Every distinct ground fact is interned once into a dense *fact
    id* -- an index into the parallel ``fact_preds`` / ``fact_rows``
    tables -- and the ground rules are parallel ``array('q')`` runs:

    * ``rule_head[r]`` -- the head's fact id;
    * ``rule_no[r]`` -- the originating program-rule index;
    * ``idb_indptr`` / ``idb_flat`` -- CSR rows of IDB body fact ids,
      in original body-atom order;
    * ``edb_indptr`` / ``edb_flat`` -- the same for the EDB body.

    The two adjacency indexes the semi-naive fixpoint consumes (the
    dict-of-lists :attr:`GroundProgram.rules_by_idb_body` and
    :attr:`GroundProgram.rule_indices_by_head` of the tuple world)
    are CSR arrays over fact ids here (:meth:`by_body_csr`,
    :meth:`by_head_csr`): one contiguous ``(indptr, data)`` pair
    each, built in two counting passes and probed by plain integer
    indexing -- no :class:`Fact` hashing anywhere on the fixpoint's
    hot path.

    Decoding back to :class:`Fact` / :class:`GroundRule` objects
    happens only at the boundary (:meth:`decode_fact`,
    :meth:`idb_facts`, :meth:`rule_keys`, :meth:`to_ground_program`),
    once per distinct fact.
    """

    __slots__ = (
        "program",
        "symbols",
        "iterations",
        "fact_preds",
        "fact_rows",
        "rule_head",
        "rule_no",
        "idb_indptr",
        "idb_flat",
        "edb_indptr",
        "edb_flat",
        "_fact_ids",
        "_decoded",
        "_by_head",
        "_by_body",
        "_idb_fids",
        "_edb_fids",
    )

    def __init__(self, program: Program, symbols: SymbolTable):
        self.program = program
        self.symbols = symbols
        #: Boolean-fixpoint rounds of the grounding pass (set by
        #: :func:`columnar_grounding`; mirrors ``derivable_facts``).
        self.iterations: Optional[int] = None
        self.fact_preds: List[str] = []
        self.fact_rows: List[Tuple[int, ...]] = []
        self.rule_head = array("q")
        self.rule_no = array("q")
        self.idb_indptr = array("q", (0,))
        self.idb_flat = array("q")
        self.edb_indptr = array("q", (0,))
        self.edb_flat = array("q")
        self._fact_ids: Dict[str, Dict[Tuple[int, ...], int]] = {}
        self._decoded: Dict[int, Fact] = {}
        self._by_head: Optional[Tuple[array, array]] = None
        self._by_body: Optional[Tuple[array, array]] = None
        self._idb_fids: Optional[array] = None
        self._edb_fids: Optional[array] = None

    # -- writers (grounding-time) ----------------------------------------

    def interner(self, predicate: str):
        """A ``row ids -> fact id`` interning closure for one predicate.

        The emission hot path calls one of these per body atom per
        ground rule; binding the per-predicate row dict and the fact
        tables up front keeps that to a single small-tuple dict probe
        (no ``(predicate, ids)`` key allocation, no string hashing).
        """
        table = self._fact_ids.setdefault(predicate, {})
        fact_preds, fact_rows = self.fact_preds, self.fact_rows

        def fact_id_for(ids: Tuple[int, ...]) -> int:
            fid = table.get(ids)
            if fid is None:
                fid = len(fact_preds)
                table[ids] = fid
                fact_preds.append(predicate)
                fact_rows.append(ids)
            return fid

        return fact_id_for

    def fact_id(self, predicate: str, ids: Tuple[int, ...]) -> int:
        """The dense fact id of ``predicate(ids)``, interning on first use."""
        return self.interner(predicate)(ids)

    def append_rule(
        self,
        rule_no: int,
        head_fid: int,
        idb_fids: Sequence[int],
        edb_fids: Sequence[int],
    ) -> None:
        self.rule_head.append(head_fid)
        self.rule_no.append(rule_no)
        self.idb_flat.extend(idb_fids)
        self.idb_indptr.append(len(self.idb_flat))
        self.edb_flat.extend(edb_fids)
        self.edb_indptr.append(len(self.edb_flat))
        self._by_head = self._by_body = None
        self._idb_fids = self._edb_fids = None

    # -- shape -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rule_head)

    @property
    def fact_count(self) -> int:
        return len(self.fact_preds)

    @property
    def size(self) -> int:
        """``M`` of Theorem 4.3: total atoms over all ground rules."""
        return len(self.rule_head) + len(self.idb_flat) + len(self.edb_flat)

    def max_body_idbs(self) -> int:
        indptr = self.idb_indptr
        return max(
            (indptr[r + 1] - indptr[r] for r in range(len(self))), default=0
        )

    def idb_fact_ids(self) -> array:
        """Distinct head fact ids, ascending (the IDB facts)."""
        if self._idb_fids is None:
            mark = bytearray(self.fact_count)
            for fid in self.rule_head:
                mark[fid] = 1
            self._idb_fids = array("q", (i for i, m in enumerate(mark) if m))
        return self._idb_fids

    def edb_fact_ids(self) -> array:
        """Distinct EDB body fact ids, ascending."""
        if self._edb_fids is None:
            mark = bytearray(self.fact_count)
            for fid in self.edb_flat:
                mark[fid] = 1
            self._edb_fids = array("q", (i for i, m in enumerate(mark) if m))
        return self._edb_fids

    def target_fact_ids(self) -> List[int]:
        """Head fact ids of the program's target predicate."""
        target = self.program.target
        preds = self.fact_preds
        return [fid for fid in self.idb_fact_ids() if preds[fid] == target]

    # -- CSR adjacency ---------------------------------------------------

    @staticmethod
    def _csr(
        keys: Sequence[int], payload: Sequence[int], buckets: int
    ) -> Tuple[array, array]:
        """Bucket *payload* by *keys*: ``(indptr, data)`` with bucket
        ``b``'s payload at ``data[indptr[b]:indptr[b + 1]]``, append
        order preserved within a bucket (two counting passes)."""
        indptr = [0] * (buckets + 1)
        for key in keys:
            indptr[key + 1] += 1
        for bucket in range(buckets):
            indptr[bucket + 1] += indptr[bucket]
        data = array("q", bytes(8 * len(payload)))
        fill = indptr[:-1]
        for key, value in zip(keys, payload):
            data[fill[key]] = value
            fill[key] += 1
        return array("q", indptr), data

    def by_head_csr(self) -> Tuple[array, array]:
        """Fact id → positions of the ground rules deriving it (CSR).

        The columnar :attr:`GroundProgram.rule_indices_by_head`:
        ``data[indptr[fid]:indptr[fid + 1]]`` lists rule positions in
        ascending order; non-head fact ids have empty ranges.
        """
        if self._by_head is None:
            self._by_head = self._csr(
                self.rule_head, range(len(self.rule_head)), self.fact_count
            )
        return self._by_head

    def by_body_csr(self) -> Tuple[array, array]:
        """Fact id → positions of the ground rules with that fact in
        their IDB body (CSR; deduplicated per rule, like the tuple
        index).  When a fact's value changes, exactly these rules can
        produce a different ⊗-term."""
        if self._by_body is None:
            keys = array("q")
            payload = array("q")
            indptr, flat = self.idb_indptr, self.idb_flat
            for position in range(len(self)):
                start, stop = indptr[position], indptr[position + 1]
                if stop - start == 1:
                    keys.append(flat[start])
                    payload.append(position)
                elif stop > start:
                    row = flat[start:stop]
                    seen = set()
                    for fid in row:
                        if fid not in seen:
                            seen.add(fid)
                            keys.append(fid)
                            payload.append(position)
            self._by_body = self._csr(keys, payload, self.fact_count)
        return self._by_body

    # -- boundary decoding -----------------------------------------------

    def decode_fact(self, fid: int) -> Fact:
        """The :class:`Fact` behind a fact id, decoded once and cached."""
        fact = self._decoded.get(fid)
        if fact is None:
            fact = Fact(self.fact_preds[fid], self.symbols.decode_row(self.fact_rows[fid]))
            self._decoded[fid] = fact
        return fact

    def find_fact_id(self, fact: Fact) -> Optional[int]:
        """The fact id of *fact*, or ``None`` when it never occurs in
        the grounding (unknown constants short-circuit)."""
        ids = self.symbols.get_row(fact.args)
        if ids is None:
            return None
        return self._fact_ids.get(fact.predicate, {}).get(ids)

    @property
    def idb_facts(self) -> FrozenSet[Fact]:
        return frozenset(self.decode_fact(fid) for fid in self.idb_fact_ids())

    def _decode_rule(self, position: int) -> GroundRule:
        decode = self.decode_fact
        idb = tuple(
            decode(fid)
            for fid in self.idb_flat[
                self.idb_indptr[position] : self.idb_indptr[position + 1]
            ]
        )
        edb = tuple(
            decode(fid)
            for fid in self.edb_flat[
                self.edb_indptr[position] : self.edb_indptr[position + 1]
            ]
        )
        return GroundRule(decode(self.rule_head[position]), idb, edb, self.rule_no[position])

    def rule_keys(self) -> FrozenSet[Tuple]:
        """Same order-independent identity as
        :meth:`GroundProgram.rule_keys`, so the engine/strategy
        equivalence tests compare tuple and columnar groundings
        directly."""
        return frozenset(
            (rule.rule_index, rule.head, rule.idb_body, rule.edb_body)
            for rule in (self._decode_rule(position) for position in range(len(self)))
        )

    def to_ground_program(self) -> GroundProgram:
        """Decode the whole grounding into the tuple form (boundary
        use: feeding tuple-space strategies or legacy consumers)."""
        return GroundProgram(
            self.program, [self._decode_rule(position) for position in range(len(self))]
        )

    @classmethod
    def from_ground_program(
        cls, ground: GroundProgram, symbols: Optional[SymbolTable] = None
    ) -> "ColumnarGroundProgram":
        """Lower a tuple-space grounding into id space.

        Lets the columnar fixpoint run on groundings produced by the
        tuple engines or precomputed by callers.  Interns into a
        private table by default: the lowering is self-contained, so
        it must not grow the shared default table.
        """
        symbols = SymbolTable() if symbols is None else symbols
        out = cls(ground.program, symbols)
        intern_row = symbols.intern_row
        fact_id = out.fact_id
        for rule in ground.rules:
            out.append_rule(
                rule.rule_index,
                fact_id(rule.head.predicate, intern_row(rule.head.args)),
                [fact_id(f.predicate, intern_row(f.args)) for f in rule.idb_body],
                [fact_id(f.predicate, intern_row(f.args)) for f in rule.edb_body],
            )
        return out

    def __repr__(self) -> str:
        return (
            f"ColumnarGroundProgram(rules={len(self)}, facts={self.fact_count}, "
            f"size={self.size})"
        )


Row = Tuple[Hashable, ...]


class _FactIndex:
    """Per-predicate fact store with pattern-keyed hash indexes.

    Two access paths share one store:

    * :meth:`lookup` (indexed engine) -- given an atom and a partial
      substitution, the set of *bound* argument positions and their
      values form a pattern key; a hash index for that position tuple
      is built lazily (one pass over the relation, amortized across
      all later lookups) and the candidate set is a single dict
      lookup returning only rows that agree on **every** bound
      position.
    * :meth:`candidates` (naive engine) -- the historical heuristic:
      pick the narrowest *single*-position index among the bound
      positions, or scan the whole relation when nothing is bound.
      Rows still need a full :func:`_match` because only one position
      was used for filtering.

    Pattern indexes are maintained incrementally by :meth:`insert`, so
    lazily built indexes stay correct as derived IDB facts stream in
    during the semi-naive grounding pass.
    """

    def __init__(self) -> None:
        self._tuples: Dict[str, List[Row]] = {}
        self._seen: Dict[str, Set[Row]] = {}
        # (predicate, bound-position tuple) → {pattern key → rows}
        self._patterns: Dict[Tuple[str, Tuple[int, ...]], Dict[Tuple, List[Row]]] = {}
        # predicate → position tuples with a built pattern index
        self._built: Dict[str, List[Tuple[int, ...]]] = {}

    def insert(self, fact: Fact) -> bool:
        seen = self._seen.setdefault(fact.predicate, set())
        if fact.args in seen:
            return False
        seen.add(fact.args)
        self._tuples.setdefault(fact.predicate, []).append(fact.args)
        for positions in self._built.get(fact.predicate, ()):
            if len(fact.args) <= max(positions):
                continue  # too short for this pattern (mixed-arity input)
            key = tuple(fact.args[i] for i in positions)
            self._patterns[(fact.predicate, positions)].setdefault(key, []).append(fact.args)
        return True

    def size(self, predicate: str) -> int:
        return len(self._tuples.get(predicate, ()))

    def contains(self, fact: Fact) -> bool:
        return fact.args in self._seen.get(fact.predicate, ())

    def _pattern(self, predicate: str, positions: Tuple[int, ...]) -> Dict[Tuple, List[Row]]:
        key = (predicate, positions)
        table = self._patterns.get(key)
        if table is None:
            table = {}
            width = max(positions) + 1
            for row in self._tuples.get(predicate, ()):
                # Rows too short for the pattern (mixed-arity inputs)
                # cannot match any atom presenting these positions.
                if len(row) >= width:
                    table.setdefault(tuple(row[i] for i in positions), []).append(row)
            self._patterns[key] = table
            self._built.setdefault(predicate, []).append(positions)
        return table

    def _bound_pattern(
        self, atom: Atom, theta: Mapping[Variable, Constant]
    ) -> Tuple[Tuple[int, ...], Tuple[Hashable, ...]]:
        positions: List[int] = []
        values: List[Hashable] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                positions.append(position)
                values.append(term.value)
            elif term in theta:
                positions.append(position)
                values.append(theta[term].value)
        return tuple(positions), tuple(values)

    def lookup(self, atom: Atom, theta: Mapping[Variable, Constant]) -> Sequence[Row]:
        """Rows agreeing with *atom* on every bound position: O(1) + output."""
        positions, values = self._bound_pattern(atom, theta)
        if not positions:
            return self._tuples.get(atom.predicate, ())
        return self._pattern(atom.predicate, positions).get(values, ())

    def candidates(self, atom: Atom, theta: Mapping[Variable, Constant]) -> Sequence[Row]:
        """Naive-engine candidates: narrowest single-position index, else scan."""
        best: Optional[Sequence[Row]] = None
        for position, term in enumerate(atom.terms):
            value: Optional[Hashable] = None
            if isinstance(term, Constant):
                value = term.value
            elif term in theta:
                value = theta[term].value
            if value is not None:
                rows = self._pattern(atom.predicate, (position,)).get((value,), ())
                if best is None or len(rows) < len(best):
                    best = rows
        if best is None:
            best = self._tuples.get(atom.predicate, ())
        return best


def _match(
    atom: Atom, row: Row, theta: Dict[Variable, Constant]
) -> Optional[Dict[Variable, Constant]]:
    """Try to extend *theta* so that atom θ = row; None on clash.

    A row of the wrong arity can never match: inputs may hold one
    predicate at several arities even though programs cannot, and
    without this check ``zip`` would silently truncate (a 3-tuple
    "matching" a binary atom, or a short row leaving variables
    unbound).
    """
    if len(row) != atom.arity:
        return None
    extension = dict(theta)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extension.get(term)
            if bound is None:
                extension[term] = Constant(value)
            elif bound.value != value:
                return None
    return extension


# ---------------------------------------------------------------------------
# Naive reference engine: single-position candidates, no reordering.
# ---------------------------------------------------------------------------


def _join(
    body: Sequence[Atom], index: _FactIndex, theta: Dict[Variable, Constant]
) -> Iterator[Dict[Variable, Constant]]:
    """All substitutions grounding *body* against *index* (backtracking).

    Atoms are joined in the order given; each candidate row scanned
    counts one probe in :data:`GROUNDING_STATS`.
    """
    if not body:
        yield theta
        return
    stats = _stats()
    first, rest = body[0], body[1:]
    for row in index.candidates(first, theta):
        stats.probes += 1
        extended = _match(first, row, theta)
        if extended is not None:
            stats.matches += 1
            yield from _join(rest, index, extended)


# ---------------------------------------------------------------------------
# Indexed engine: selectivity ordering + exact-pattern lookups.
# ---------------------------------------------------------------------------


def _order_body(
    body: Sequence[Atom], index: _FactIndex, bound: Set[Variable]
) -> List[Atom]:
    """Greedy selectivity order: most bound terms first, smallest relation
    breaks ties (DESIGN.md §5).

    ``bound`` seeds the set of already-bound variables (e.g. the
    variables of a delta atom joined first); after picking an atom its
    variables count as bound for the rest of the body.  ``O(k²)`` in
    the body length ``k`` -- negligible next to the join itself.
    """
    remaining = list(body)
    ordered: List[Atom] = []
    bound = set(bound)
    while remaining:
        best_at = 0
        best_key: Optional[Tuple[int, int]] = None
        for at, atom in enumerate(remaining):
            bound_terms = sum(
                1 for t in atom.terms if isinstance(t, Constant) or t in bound
            )
            key = (-bound_terms, index.size(atom.predicate))
            if best_key is None or key < best_key:
                best_at, best_key = at, key
        atom = remaining.pop(best_at)
        ordered.append(atom)
        bound.update(atom.variables)
    return ordered


def _join_indexed(
    body: Sequence[Atom], index: _FactIndex, theta: Dict[Variable, Constant]
) -> Iterator[Dict[Variable, Constant]]:
    """Backtracking join over exact-pattern lookups.

    *body* must already be selectivity-ordered; every row returned by
    :meth:`_FactIndex.lookup` agrees with the atom on all bound
    positions, so probes are spent only on rows that can fail through
    repeated variables within the atom.
    """
    if not body:
        yield theta
        return
    stats = _stats()
    first, rest = body[0], body[1:]
    for row in index.lookup(first, theta):
        stats.probes += 1
        extended = _match(first, row, theta)
        if extended is not None:
            stats.matches += 1
            yield from _join_indexed(rest, index, extended)


class _SeminaiveGrounder:
    """The fused pass: Boolean fixpoint and ground-rule emission in one
    delta-driven sweep (DESIGN.md §5).

    Round 0 joins every rule in full against the input database (IDB
    relations are usually empty, so recursive rules fail fast after a
    0-row index lookup).  Round ``t ≥ 1`` re-joins only rules with a
    body atom over a delta predicate, seeding the join with a delta
    fact in each IDB position in turn; the remaining atoms are
    selectivity-ordered and joined against the full index.  Only facts
    *new to the index* enter the delta (a derived head that was
    already resident as an input-database fact seeds nothing), so a
    ground instance is discovered exactly in the round after its last
    body fact entered the index and never in two different rounds; a
    per-round substitution key (constants only, cleared every round)
    removes the within-round duplicates that arise when two body facts
    are both in the delta.

    This replaces the naive engine's two passes (Boolean fixpoint,
    then a from-scratch re-join of every rule) and its global
    ``(rule, head, idb_body, edb_body)`` dedup tuples.
    """

    def __init__(self, program: Program, database: Database, collect_rules: bool):
        self.program = program
        self.collect_rules = collect_rules
        self.idbs = program.idb_predicates
        self.index = _FactIndex()
        for fact in database.facts():
            self.index.insert(fact)
        # Per-rule variable order for the dedup key, and body splits in
        # original atom order (GroundRule bodies keep rule order).
        self.var_order: List[Tuple[Variable, ...]] = [
            tuple(sorted(rule.variables, key=lambda v: v.name)) for rule in program.rules
        ]
        self.ground_rules: List[GroundRule] = []
        self.derived: Set[Fact] = set()
        self.iterations = 0
        self.stats = _stats()

    def _emit(
        self,
        rule_index: int,
        rule: Rule,
        theta: Mapping[Variable, Constant],
        round_seen: Set[Tuple],
    ) -> Optional[Fact]:
        key = (rule_index, *[theta[v].value for v in self.var_order[rule_index]])
        if key in round_seen:
            return None
        round_seen.add(key)
        head = rule.head.substitute(theta).to_fact()
        if self.collect_rules:
            idb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate in self.idbs
            )
            edb_body = tuple(
                a.substitute(theta).to_fact()
                for a in rule.body
                if a.predicate not in self.idbs
            )
            self.ground_rules.append(GroundRule(head, idb_body, edb_body, rule_index))
            self.stats.ground_rules += 1
        return head

    def run(self) -> "_SeminaiveGrounder":
        index = self.index
        derived = self.derived
        stats = self.stats
        fresh: Set[Fact] = set()
        round_seen: Set[Tuple] = set()

        # Round 0: full (selectivity-ordered) join of every rule.
        for rule_index, rule in enumerate(self.program.rules):
            ordered = _order_body(rule.body, index, set())
            for theta in _join_indexed(ordered, index, {}):
                head = self._emit(rule_index, rule, theta, round_seen)
                if head is not None and head not in derived:
                    fresh.add(head)
        self.iterations = 1

        while fresh:
            self.iterations += 1
            delta_by_pred: Dict[str, List[Fact]] = {}
            for fact in sorted(fresh, key=repr):
                derived.add(fact)
                # Only facts NEW to the index seed delta joins: a head
                # that was already resident (an IDB-predicate fact in
                # the input database) had all its instances discovered
                # in round 0, and re-seeding would re-emit them.
                if index.insert(fact):
                    delta_by_pred.setdefault(fact.predicate, []).append(fact)
            fresh = set()
            round_seen.clear()
            for rule_index, rule in enumerate(self.program.rules):
                for position, atom in enumerate(rule.body):
                    delta_facts = delta_by_pred.get(atom.predicate)
                    if not delta_facts:
                        continue
                    rest = [a for at, a in enumerate(rule.body) if at != position]
                    # Order once per (rule, delta position): the bound set
                    # is the delta atom's variables whichever fact seeds it,
                    # and index sizes are stable within a round.
                    ordered = _order_body(rest, index, set(atom.variables))
                    for delta_fact in delta_facts:
                        stats.probes += 1
                        seed = _match(atom, delta_fact.args, {})
                        if seed is None:
                            continue
                        stats.matches += 1
                        for theta in _join_indexed(ordered, index, seed):
                            head = self._emit(rule_index, rule, theta, round_seen)
                            if head is not None and head not in derived:
                                fresh.add(head)
        return self


# ---------------------------------------------------------------------------
# Columnar engine: interned id-space joins over the array-backed store.
# ---------------------------------------------------------------------------


class _CompiledAtom:
    """An atom lowered to id space against one symbol table.

    ``terms`` mirrors the atom's term tuple with every
    :class:`Constant` replaced by its interned id (ints and
    :class:`Variable` objects never collide, so the entry type is the
    discriminant).  ``const_items``/``var_items`` pre-split the
    positions so the join's bound-pattern computation and the matcher
    never re-inspect term types.

    *intern* must be True only for atoms that are **instantiated**
    (rule heads): their constants become store rows, so they need real
    ids.  Lookup-side atoms (rule bodies, EDB joins) use the
    non-inserting :meth:`~repro.datalog.store.SymbolTable.get` -- a
    constant the table has never seen can match no row, now or in any
    later round (every id a derived fact can carry was interned from
    the EDB or from a head compiled before any join runs), so the atom
    is marked :attr:`impossible` instead of growing the shared table.
    """

    __slots__ = ("predicate", "terms", "const_items", "var_items", "variables", "impossible")

    def __init__(self, atom: Atom, symbols, intern: bool = False) -> None:
        self.predicate = atom.predicate
        self.impossible = False
        entries: List[object] = []
        const_items: List[Tuple[int, int]] = []
        var_items: List[Tuple[int, Variable]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                sid = symbols.intern(term.value) if intern else symbols.get(term.value)
                if sid is None:
                    self.impossible = True
                entries.append(sid)
                const_items.append((position, sid))
            else:
                entries.append(term)
                var_items.append((position, term))
        self.terms = tuple(entries)
        self.const_items = tuple(const_items)
        self.var_items = tuple(var_items)
        self.variables = tuple(dict.fromkeys(v for _, v in var_items))


def _bound_pattern_ids(
    catom: _CompiledAtom, theta: Mapping[Variable, int]
) -> Tuple[Tuple[int, ...], object]:
    """Bound positions and their index key (id space).

    Returns ``(positions, key)`` where *key* is a bare id for a single
    bound position (the contiguous ``array('q')`` index path of
    :mod:`repro.datalog.store`) and a tuple of ids otherwise.
    """
    items = list(catom.const_items)
    for position, var in catom.var_items:
        sid = theta.get(var)
        if sid is not None:
            items.append((position, sid))
    if not items:
        return (), ()
    items.sort()
    positions = tuple(p for p, _ in items)
    if len(items) == 1:
        return positions, items[0][1]
    return positions, tuple(v for _, v in items)


def _match_ids(
    catom: _CompiledAtom, row: Tuple[int, ...], theta: Dict[Variable, int]
) -> Optional[Dict[Variable, int]]:
    """Id-space twin of :func:`_match`: extend *theta* so catom θ = row."""
    for position, sid in catom.const_items:
        if row[position] != sid:
            return None
    extended = dict(theta)
    for position, var in catom.var_items:
        sid = row[position]
        bound = extended.get(var)
        if bound is None:
            extended[var] = sid
        elif bound != sid:
            return None
    return extended


def _order_catoms(
    catoms: Sequence[_CompiledAtom], store, bound: Set[Variable]
) -> List[_CompiledAtom]:
    """Greedy selectivity order for compiled atoms; same heuristic as
    :func:`_order_body` (most bound term positions first, smallest
    relation breaks ties)."""
    remaining = list(catoms)
    ordered: List[_CompiledAtom] = []
    bound = set(bound)
    while remaining:
        best_at = 0
        best_key: Optional[Tuple[int, int]] = None
        for at, catom in enumerate(remaining):
            bound_terms = len(catom.const_items) + sum(
                1 for _, v in catom.var_items if v in bound
            )
            key = (-bound_terms, store.size(catom.predicate, len(catom.terms)))
            if best_key is None or key < best_key:
                best_at, best_key = at, key
        catom = remaining.pop(best_at)
        ordered.append(catom)
        bound.update(catom.variables)
    return ordered


def _join_columnar(
    body: Sequence[_CompiledAtom], store, theta: Dict[Variable, int]
) -> Iterator[Dict[Variable, int]]:
    """Backtracking id-space join over bisect-range lookups.

    *body* must already be selectivity-ordered.  A candidate fetch is
    one binary search on the bound pattern's sorted-id index
    (:meth:`~repro.datalog.store.ColumnarRelation.lookup`); every row
    it returns agrees with the atom on all bound positions, so -- as
    with the indexed engine -- probes are spent only on rows that can
    still fail through repeated variables within the atom.
    """
    if not body:
        yield theta
        return
    stats = _stats()
    first, rest = body[0], body[1:]
    if first.impossible:  # a constant the store has never interned
        return
    relation = store.relation(first.predicate, len(first.terms))
    if relation is None:
        return
    positions, key = _bound_pattern_ids(first, theta)
    for row_index in relation.lookup(positions, key):
        stats.probes += 1
        extended = _match_ids(first, relation.row(row_index), theta)
        if extended is not None:
            stats.matches += 1
            yield from _join_columnar(rest, store, extended)


class _ColumnarGrounder:
    """The fused semi-naive pass of :class:`_SeminaiveGrounder`, run
    entirely in id space over a :class:`~repro.datalog.store.ColumnarStore`.

    The database's lazily materialized store is :meth:`copied
    <repro.datalog.store.ColumnarStore.copy>` (block array copies, no
    re-interning) so derived facts can be appended without mutating
    the shared EDB snapshot.  Rule atoms are lowered once per run
    (:class:`_CompiledAtom`), substitutions map variables to ids, the
    per-round dedup key is a tuple of ints, and the round-``t`` delta
    is read back as :class:`~repro.datalog.store.DeltaView` windows
    between two store watermarks -- duplicates never enter a delta
    because the store's append log is a set.  Facts are decoded (and
    cached) only at emission, so a ground rule's constants are
    re-materialized once per distinct fact, not once per probe.
    """

    def __init__(self, program: Program, database: Database, collect_rules: bool):
        self.program = program
        self.collect_rules = collect_rules
        idbs = program.idb_predicates
        self.store = database.columnar_store().copy()
        self.symbols = self.store.symbols
        symbols = self.symbols
        # Heads are compiled first, with interning: every id a derived
        # fact can carry afterwards comes from the EDB snapshot or a
        # head constant, which is what lets body atoms use the
        # non-inserting lookup (see _CompiledAtom).
        self.compiled_heads = [
            _CompiledAtom(rule.head, symbols, intern=True) for rule in program.rules
        ]
        self.compiled_bodies = [
            tuple(_CompiledAtom(atom, symbols) for atom in rule.body)
            for rule in program.rules
        ]
        self.idb_flags = [
            tuple(atom.predicate in idbs for atom in rule.body) for rule in program.rules
        ]
        self.var_order: List[Tuple[Variable, ...]] = [
            tuple(sorted(rule.variables, key=lambda v: v.name)) for rule in program.rules
        ]
        self.ground_rules: List[GroundRule] = []
        self.derived: Set[Tuple[str, Tuple[int, ...]]] = set()
        self.iterations = 0
        self.stats = _stats()
        self._fact_cache: Dict[Tuple[str, Tuple[int, ...]], Fact] = {}

    def _fact(self, predicate: str, ids: Tuple[int, ...]) -> Fact:
        """Decode an id row to a :class:`Fact`, once per distinct fact."""
        key = (predicate, ids)
        fact = self._fact_cache.get(key)
        if fact is None:
            fact = Fact(predicate, self.symbols.decode_row(ids))
            self._fact_cache[key] = fact
        return fact

    @staticmethod
    def _instantiate(terms: Tuple, theta: Mapping[Variable, int]) -> Tuple[int, ...]:
        return tuple(t if isinstance(t, int) else theta[t] for t in terms)

    def derived_facts(self) -> FrozenSet[Fact]:
        return frozenset(self._fact(pred, ids) for pred, ids in self.derived)

    def _emit(
        self,
        rule_index: int,
        theta: Mapping[Variable, int],
        round_seen: Set[Tuple],
    ) -> Optional[Tuple[str, Tuple[int, ...]]]:
        key = (rule_index, *[theta[v] for v in self.var_order[rule_index]])
        if key in round_seen:
            return None
        round_seen.add(key)
        head = self.compiled_heads[rule_index]
        head_ids = self._instantiate(head.terms, theta)
        if self.collect_rules:
            idb_body: List[Fact] = []
            edb_body: List[Fact] = []
            for catom, is_idb in zip(
                self.compiled_bodies[rule_index], self.idb_flags[rule_index]
            ):
                fact = self._fact(catom.predicate, self._instantiate(catom.terms, theta))
                (idb_body if is_idb else edb_body).append(fact)
            self.ground_rules.append(
                GroundRule(
                    self._fact(head.predicate, head_ids),
                    tuple(idb_body),
                    tuple(edb_body),
                    rule_index,
                )
            )
            self.stats.ground_rules += 1
        return (head.predicate, head_ids)

    def run(self) -> "_ColumnarGrounder":
        store = self.store
        derived = self.derived
        stats = self.stats
        fresh: Set[Tuple[str, Tuple[int, ...]]] = set()
        round_seen: Set[Tuple] = set()

        # Round 0: full (selectivity-ordered) join of every rule.
        for rule_index, body in enumerate(self.compiled_bodies):
            ordered = _order_catoms(body, store, set())
            for theta in _join_columnar(ordered, store, {}):
                head = self._emit(rule_index, theta, round_seen)
                if head is not None and head not in derived:
                    fresh.add(head)
        self.iterations = 1

        while fresh:
            self.iterations += 1
            mark = store.watermark()
            # Deterministic insertion order: ids are dense ints, so the
            # (predicate, id row) sort mirrors the other engines'
            # repr-sorted insertion without decoding anything.
            for predicate, ids in sorted(fresh):
                derived.add((predicate, ids))
                store.insert_ids(predicate, ids)
            # Rows appended above are exactly the facts new to the
            # store: re-derived duplicates (e.g. IDB facts resident in
            # the input database) deduplicate inside the append log and
            # therefore seed nothing, matching _SeminaiveGrounder.
            deltas = store.deltas_since(mark)
            fresh = set()
            round_seen.clear()
            for rule_index, body in enumerate(self.compiled_bodies):
                for position, catom in enumerate(body):
                    view = deltas.get((catom.predicate, len(catom.terms)))
                    if view is None:
                        continue
                    rest = [c for at, c in enumerate(body) if at != position]
                    ordered = _order_catoms(rest, store, set(catom.variables))
                    for row in view.id_rows():
                        stats.probes += 1
                        seed = _match_ids(catom, row, {})
                        if seed is None:
                            continue
                        stats.matches += 1
                        for theta in _join_columnar(ordered, store, seed):
                            head = self._emit(rule_index, theta, round_seen)
                            if head is not None and head not in derived:
                                fresh.add(head)
        return self


# ---------------------------------------------------------------------------
# Public strategies.
# ---------------------------------------------------------------------------


def derivable_facts(
    program: Program,
    database: Database,
    engine: Optional[str] = None,
    ground: Optional["ColumnarGroundProgram"] = None,
    config: ConfigLike = None,
) -> Tuple[FrozenSet[Fact], int]:
    """Boolean fixpoint: ``(derivable IDB facts, iterations)``.

    The iteration count is the number of rounds until no new fact
    appears -- the Boolean fixpoint iteration of Definition 4.1 used
    by the empirical boundedness probe; it is identical under every
    engine.  The indexed and columnar engines run their fused
    semi-naive pass without emitting ground rules; the naive engine is
    the historical loop re-joining every rule each round.

    A precomputed :class:`ColumnarGroundProgram` (from
    :func:`columnar_grounding`, which records its pass's round count)
    already carries both answers; pass it as *ground* to skip the
    closure entirely.  A grounding with no recorded round count (e.g.
    one lowered via
    :meth:`ColumnarGroundProgram.from_ground_program`) is rejected
    rather than silently recomputed against the live database.
    """
    if ground is not None:
        if ground.iterations is None:
            raise ValueError(
                "ground carries no Boolean round count (only "
                "columnar_grounding results do); drop the argument to "
                "recompute the closure from the database"
            )
        return ground.idb_facts, ground.iterations
    config = merge_legacy_knobs("derivable_facts", config, engine=("engine", engine))
    engine = _resolve_engine(config.engine)
    if engine == "naive":
        return _derivable_facts_naive(program, database)
    if engine == "columnar":
        grounder = _ColumnarGrounder(program, database, collect_rules=False).run()
        return grounder.derived_facts(), grounder.iterations
    grounder = _SeminaiveGrounder(program, database, collect_rules=False).run()
    return frozenset(grounder.derived), grounder.iterations


def _derivable_facts_naive(
    program: Program, database: Database
) -> Tuple[FrozenSet[Fact], int]:
    """Reference Boolean fixpoint: full re-join each round (naive engine)."""
    idbs = program.idb_predicates
    index = _FactIndex()
    for fact in database.facts():
        index.insert(fact)

    derived: Set[Fact] = set()
    delta: Set[Fact] = set()
    iterations = 0
    # Round 0: fire every rule against EDB-only bindings (plus any IDBs
    # derived so far); iterate to fixpoint with delta-driven rounds.
    while True:
        fresh: Set[Fact] = set()
        for rule in program.rules:
            requires_delta = iterations > 0
            idb_atoms = rule.idb_atoms(idbs)
            if requires_delta and idb_atoms:
                # Only re-derive when at least one IDB atom can bind a delta
                # fact; cheap filter on predicates.
                if not any(a.predicate in {f.predicate for f in delta} for a in idb_atoms):
                    continue
            for theta in _join(rule.body, index, {}):
                head = rule.head.substitute(theta).to_fact()
                if head not in derived and head not in fresh:
                    # Semi-naive soundness check: after round 0, require a
                    # delta fact in the body to avoid re-deriving.
                    if requires_delta and idb_atoms:
                        body_facts = {a.substitute(theta).to_fact() for a in idb_atoms}
                        if not body_facts & delta:
                            continue
                    fresh.add(head)
        iterations += 1
        if not fresh:
            break
        for fact in fresh:
            derived.add(fact)
            index.insert(fact)
        delta = fresh
    return frozenset(derived), iterations


def relevant_grounding(
    program: Program,
    database: Database,
    engine: Optional[str] = None,
    config: ConfigLike = None,
) -> GroundProgram:
    """Ground rules whose body facts are all derivable (see module doc).

    *engine* selects the join engine (default
    :data:`DEFAULT_GROUNDING_ENGINE`):

    * ``"indexed"`` -- one fused semi-naive pass; cost proportional to
      the bindings enumerated, with dict-lookup index probes.
    * ``"columnar"`` -- the same fused pass in interned id space over
      the array-backed store (:mod:`repro.datalog.store`), with
      bisect-range index probes and delta-view rounds.
    * ``"naive"`` -- Boolean fixpoint then a from-scratch re-join of
      every rule; ``O(rounds × Σ candidate rows scanned)``.

    All return the same set of ground rules (the equivalence is
    property-tested); only probe counts and rule order differ.

    ``engine=`` is the deprecated spelling of
    ``config=ExecutionConfig(engine=...)`` (the :mod:`repro.api`
    facade, DESIGN.md §10); it still works but warns.
    """
    config = merge_legacy_knobs("relevant_grounding", config, engine=("engine", engine))
    engine = _resolve_engine(config.engine)
    if engine == "naive":
        return _relevant_grounding_naive(program, database)
    if engine == "columnar":
        grounder = _ColumnarGrounder(program, database, collect_rules=True).run()
        return GroundProgram(program, grounder.ground_rules)
    grounder = _SeminaiveGrounder(program, database, collect_rules=True).run()
    return GroundProgram(program, grounder.ground_rules)


class _SlotAtom:
    """An atom lowered to id space with *rule-local variable slots*.

    The slot representation is what lets the fused
    :class:`_ColumnarProgramGrounder` join without substitution
    dicts: a rule's variables are numbered ``0..k-1`` (sorted by name,
    so the slot vector doubles as the per-round dedup key), and an
    atom's ``terms`` encode constants as their non-negative interned
    id and variable slot ``s`` as ``-(s + 1)`` -- one int tuple per
    atom, instantiated against a flat ``theta`` list by sign check.

    ``const_items``/``var_items`` pre-split the positions exactly like
    :class:`_CompiledAtom`; *intern* follows the same head/body rule
    (heads intern their constants, body lookups use the non-inserting
    probe and mark the atom :attr:`impossible` on a miss).
    """

    __slots__ = ("predicate", "arity", "terms", "const_items", "var_items", "slots", "impossible")

    def __init__(self, atom: Atom, symbols, slot_of: Dict[Variable, int], intern: bool = False):
        self.predicate = atom.predicate
        self.arity = atom.arity
        self.impossible = False
        entries: List[int] = []
        const_items: List[Tuple[int, int]] = []
        var_items: List[Tuple[int, int]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                sid = symbols.intern(term.value) if intern else symbols.get(term.value)
                if sid is None:
                    self.impossible = True
                    sid = 0  # placeholder; the atom can never match
                entries.append(sid)
                const_items.append((position, sid))
            else:
                slot = slot_of[term]
                entries.append(-(slot + 1))
                var_items.append((position, slot))
        self.terms = tuple(entries)
        self.const_items = tuple(const_items)
        self.var_items = tuple(var_items)
        self.slots = tuple(dict.fromkeys(slot for _, slot in var_items))


def _row_builder(terms: Tuple[int, ...]):
    """A ``theta -> id row`` callable for one slot-encoded atom.

    The all-variable case (every ground atom of a constant-free rule)
    compiles to :func:`operator.itemgetter` -- one C call per emitted
    atom instead of a Python-level loop; atoms mentioning constants
    take the generic sign-check path, and nullary (propositional)
    atoms have the one constant row.
    """
    if not terms:
        return lambda theta: ()
    if all(t < 0 for t in terms):
        slots = tuple(-1 - t for t in terms)
        if len(slots) == 1:
            only = slots[0]
            return lambda theta: (theta[only],)
        return itemgetter(*slots)

    def build(theta, terms=terms):
        return tuple([t if t >= 0 else theta[-1 - t] for t in terms])

    return build


def _order_slot_atoms(
    atoms: Sequence[_SlotAtom], store, bound: Set[int]
) -> List[_SlotAtom]:
    """Greedy selectivity order over slot atoms; the same heuristic as
    :func:`_order_body` / :func:`_order_catoms` (most bound term
    positions first, smallest relation breaks ties)."""
    remaining = list(atoms)
    ordered: List[_SlotAtom] = []
    bound = set(bound)
    while remaining:
        best_at = 0
        best_key: Optional[Tuple[int, int]] = None
        for at, atom in enumerate(remaining):
            bound_terms = len(atom.const_items) + sum(
                1 for _, slot in atom.var_items if slot in bound
            )
            key = (-bound_terms, store.size(atom.predicate, atom.arity))
            if best_key is None or key < best_key:
                best_at, best_key = at, key
        atom = remaining.pop(best_at)
        ordered.append(atom)
        bound.update(atom.slots)
    return ordered


def _compile_slot_plan(
    ordered: Sequence[_SlotAtom], bound: Set[int]
) -> Tuple[Tuple, ...]:
    """Freeze an ordered body into per-atom join steps.

    Which slots are bound when each atom's turn comes is fully
    determined by the order, so the bound-pattern computation that the
    dict-based joins redo per candidate binding happens **once** here:
    each step carries its lookup position tuple, a key template
    (constant id, or slot to read from ``theta``), and the runtime
    bind-or-check items for still-unbound slots.  Compiled plans are
    cached per ``(rule, delta position)`` across rounds.
    """
    plan: List[Tuple] = []
    bound = set(bound)
    for atom in ordered:
        items: List[Tuple[int, bool, int]] = [
            (position, False, sid) for position, sid in atom.const_items
        ]
        runtime: List[Tuple[int, int]] = []
        for position, slot in atom.var_items:
            if slot in bound:
                items.append((position, True, slot))
            else:
                runtime.append((position, slot))
        items.sort()
        plan.append(
            (
                atom.predicate,
                atom.arity,
                tuple(position for position, _, _ in items),
                tuple(is_slot for _, is_slot, _ in items),
                tuple(value for _, _, value in items),
                tuple(runtime),
                atom.impossible,
            )
        )
        bound.update(atom.slots)
    return tuple(plan)


def _enum_slot_plan(
    plan: Sequence[Tuple], at: int, store, theta: List[int], stats: GroundingStats
) -> Iterator[None]:
    """Backtracking join over a compiled slot plan.

    Yields once per complete binding; *theta* is mutated in place
    (read it at the yield point) and restored via an undo trail on
    backtrack -- no per-match dict copies.  Candidate cells are read
    straight out of the relation's columns, so no row tuple is built
    per probe either.  Probe/match accounting matches the dict-based
    joins: one probe per candidate row, one match per row that extends
    the binding.
    """
    if at == len(plan):
        yield None
        return
    predicate, arity, positions, key_is_slot, key_vals, runtime, impossible = plan[at]
    if impossible:
        return
    relation = store.relation(predicate, arity)
    if relation is None:
        return
    if positions:
        if len(key_vals) == 1:
            key = theta[key_vals[0]] if key_is_slot[0] else key_vals[0]
        else:
            key = tuple(
                theta[value] if is_slot else value
                for is_slot, value in zip(key_is_slot, key_vals)
            )
        rows = relation.index_for(positions).lookup(key)
    else:
        rows = range(len(relation))
    columns = relation.columns
    rest = at + 1
    for row_index in rows:
        stats.probes += 1
        ok = True
        trail: List[int] = []
        for position, slot in runtime:
            sid = columns[position][row_index]
            bound_sid = theta[slot]
            if bound_sid < 0:
                theta[slot] = sid
                trail.append(slot)
            elif bound_sid != sid:
                ok = False
                break
        if ok:
            stats.matches += 1
            yield from _enum_slot_plan(plan, rest, store, theta, stats)
        for slot in trail:
            theta[slot] = -1


class _ColumnarProgramGrounder:
    """The fused semi-naive pass emitting a
    :class:`ColumnarGroundProgram` -- id space end to end.

    The third grounder, behind :func:`columnar_grounding`: the same
    delta-driven round structure as :class:`_ColumnarGrounder` (store
    copy, watermark/:class:`~repro.datalog.store.DeltaView` rounds,
    only facts new to the store seed joins), but

    * rules are slot-compiled once (:class:`_SlotAtom`): substitutions
      are flat int lists indexed by slot, extended/rolled back through
      an undo trail instead of being copied dicts;
    * join steps are precompiled (:func:`_compile_slot_plan`), cached
      per ``(rule, delta position)`` across rounds, and read candidate
      cells directly from the store's columns;
    * emission appends plain ints to the ground program's parallel
      arrays through per-predicate interning closures -- no
      :class:`Fact` object, no constant decoding, anywhere.
    """

    def __init__(
        self,
        program: Program,
        database: Optional[Database],
        store: Optional["ColumnarStore"] = None,
        shard: Optional[Tuple[int, int]] = None,
    ):
        self.program = program
        idbs = program.idb_predicates
        # A shard worker receives the base store directly (unpickled in
        # the worker, or handed over by the serial fallback); either
        # way the grounder works on a private copy.
        self.store = (store if store is not None else database.columnar_store()).copy()
        #: ``(index, count)`` restricts *emission* to ground rules
        #: whose head hashes to this shard (:func:`shard_of_fact`); the
        #: derivation fixpoint itself stays global so every shard sees
        #: the same rounds and the union of shards is exactly the
        #: serial grounding.
        self.shard = shard
        symbols = self.store.symbols
        self.cground = ColumnarGroundProgram(program, symbols)
        self.slot_counts: List[int] = []
        self.bodies: List[Tuple[_SlotAtom, ...]] = []
        self.emit_plans: List[Tuple] = []
        for rule in program.rules:
            slot_of = {
                var: slot
                for slot, var in enumerate(sorted(rule.variables, key=lambda v: v.name))
            }
            self.slot_counts.append(len(slot_of))
            # Heads first, with interning (see _CompiledAtom on why
            # body atoms may use the non-inserting probe).
            head = _SlotAtom(rule.head, symbols, slot_of, intern=True)
            body = tuple(_SlotAtom(atom, symbols, slot_of) for atom in rule.body)
            self.bodies.append(body)
            self.emit_plans.append(
                (
                    head.predicate,
                    _row_builder(head.terms),
                    self.cground.interner(head.predicate),
                    tuple(
                        (
                            _row_builder(atom.terms),
                            atom.predicate in idbs,
                            self.cground.interner(atom.predicate),
                        )
                        for atom in body
                    ),
                )
            )
        self.derived: Set[Tuple[str, Tuple[int, ...]]] = set()
        self.iterations = 0
        self.stats = _stats()
        # Emission writes the ground program's parallel arrays through
        # bound methods: ColumnarGroundProgram.append_rule's per-call
        # cache invalidation is pointless mid-build (the lazy CSR /
        # id-set caches are first read after the run), and the bound
        # appends shave a call per rule off the hottest emit path.
        cground = self.cground
        self._idb_flat = cground.idb_flat
        self._edb_flat = cground.edb_flat
        self._append_head = cground.rule_head.append
        self._append_no = cground.rule_no.append
        self._append_idb_ptr = cground.idb_indptr.append
        self._append_edb_ptr = cground.edb_indptr.append

    def _emit(
        self, rule_index: int, theta: List[int], round_seen: Set[Tuple]
    ) -> Optional[Tuple[str, Tuple[int, ...]]]:
        key = (rule_index, *theta)
        if key in round_seen:
            return None
        round_seen.add(key)
        head_pred, head_build, head_intern, body_plan = self.emit_plans[rule_index]
        head_ids = head_build(theta)
        if self.shard is not None:
            index, count = self.shard
            if shard_of_fact(head_pred, head_ids, count) != index:
                # Foreign shard: skip the emission (another worker owns
                # this head) but still report the head so the global
                # derivation fixpoint advances identically everywhere.
                return (head_pred, head_ids)
        idb_flat, edb_flat = self._idb_flat, self._edb_flat
        for build, is_idb, intern in body_plan:
            fid = intern(build(theta))
            (idb_flat if is_idb else edb_flat).append(fid)
        self._append_head(head_intern(head_ids))
        self._append_no(rule_index)
        self._append_idb_ptr(len(idb_flat))
        self._append_edb_ptr(len(edb_flat))
        return (head_pred, head_ids)

    def run(self) -> "_ColumnarProgramGrounder":
        store = self.store
        stats = self.stats
        derived = self.derived
        emit = self._emit
        fresh: Set[Tuple[str, Tuple[int, ...]]] = set()
        round_seen: Set[Tuple] = set()

        # Round 0: full join of every rule, selectivity-ordered.
        for rule_index, body in enumerate(self.bodies):
            plan = _compile_slot_plan(_order_slot_atoms(body, store, set()), set())
            theta = [-1] * self.slot_counts[rule_index]
            for _ in _enum_slot_plan(plan, 0, store, theta, stats):
                head = emit(rule_index, theta, round_seen)
                if head is not None and head not in derived:
                    fresh.add(head)
        self.iterations = 1

        # Delta plans are compiled on first need and reused across
        # rounds: the bound-slot set depends only on (rule, position),
        # and freezing the atom order at first compilation keeps later
        # rounds free of the O(k²) ordering pass.
        delta_plans: Dict[Tuple[int, int], Tuple] = {}
        while fresh:
            self.iterations += 1
            mark = store.watermark()
            for predicate, ids in sorted(fresh):
                derived.add((predicate, ids))
                store.insert_ids(predicate, ids)
            deltas = store.deltas_since(mark)
            fresh = set()
            round_seen.clear()
            for rule_index, body in enumerate(self.bodies):
                nslots = self.slot_counts[rule_index]
                for position, atom in enumerate(body):
                    view = deltas.get((atom.predicate, atom.arity))
                    if view is None or atom.impossible:
                        continue
                    plan_key = (rule_index, position)
                    plan = delta_plans.get(plan_key)
                    if plan is None:
                        rest = [a for at, a in enumerate(body) if at != position]
                        bound = set(atom.slots)
                        plan = _compile_slot_plan(
                            _order_slot_atoms(rest, store, bound), bound
                        )
                        delta_plans[plan_key] = plan
                    const_items = atom.const_items
                    var_items = atom.var_items
                    for row in view.id_rows():
                        stats.probes += 1
                        ok = True
                        for pos, sid in const_items:
                            if row[pos] != sid:
                                ok = False
                                break
                        if not ok:
                            continue
                        theta = [-1] * nslots
                        for pos, slot in var_items:
                            sid = row[pos]
                            bound_sid = theta[slot]
                            if bound_sid < 0:
                                theta[slot] = sid
                            elif bound_sid != sid:
                                ok = False
                                break
                        if not ok:
                            continue
                        stats.matches += 1
                        for _ in _enum_slot_plan(plan, 0, store, theta, stats):
                            head = emit(rule_index, theta, round_seen)
                            if head is not None and head not in derived:
                                fresh.add(head)
        stats.ground_rules += len(self.cground)
        return self


def columnar_grounding(
    program: Program, database: Database, workers: Optional[int] = None
) -> ColumnarGroundProgram:
    """Relevant grounding straight into id space (DESIGN.md §9).

    Runs the same fused delta-driven pass as
    ``relevant_grounding(engine="columnar")`` but emits a
    :class:`ColumnarGroundProgram` -- ground rules as parallel int
    arrays over interned fact ids -- instead of decoding every ground
    rule back into :class:`Fact` tuples.  The ``strategy="columnar"``
    fixpoint (:mod:`repro.datalog.seminaive`) and the circuit
    constructions consume it directly; its
    :meth:`~ColumnarGroundProgram.to_ground_program` /
    :meth:`~ColumnarGroundProgram.rule_keys` recover the tuple form at
    the boundary.  The result's ``iterations`` records the Boolean
    fixpoint rounds of the pass (the :func:`derivable_facts` count).

    ``workers > 1`` shards the pass by hash of head fact across a
    ``multiprocessing`` pool and merges the per-shard programs
    deterministically (DESIGN.md §13): same ``rule_keys()`` and
    ``iterations`` as the serial pass, rule *order* grouped by shard.
    """
    if workers is not None and workers > 1:
        from ..backends.sharding import sharded_columnar_grounding

        return sharded_columnar_grounding(program, database, workers)
    grounder = _ColumnarProgramGrounder(program, database).run()
    cground = grounder.cground
    cground.iterations = grounder.iterations
    return cground


def _relevant_grounding_naive(program: Program, database: Database) -> GroundProgram:
    """Reference implementation: fixpoint, then re-join every rule."""
    derived, _ = _derivable_facts_naive(program, database)
    idbs = program.idb_predicates
    index = _FactIndex()
    for fact in database.facts():
        index.insert(fact)
    for fact in derived:
        index.insert(fact)

    ground_rules: List[GroundRule] = []
    seen: Set[Tuple] = set()
    stats = _stats()
    for rule_index, rule in enumerate(program.rules):
        for theta in _join(rule.body, index, {}):
            head = rule.head.substitute(theta).to_fact()
            idb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate in idbs
            )
            edb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate not in idbs
            )
            key = (rule_index, head, idb_body, edb_body)
            if key not in seen:
                seen.add(key)
                ground_rules.append(GroundRule(head, idb_body, edb_body, rule_index))
                stats.ground_rules += 1
    return GroundProgram(program, ground_rules)


def full_grounding(
    program: Program,
    database: Database,
    max_instantiations: int = 2_000_000,
    engine: Optional[str] = None,
    config: ConfigLike = None,
) -> GroundProgram:
    """All groundings over the active domain with EDB body atoms present.

    Ground rules whose EDB atoms are absent from the input are dropped
    (their value is identically ``0``); IDB body facts are kept
    unconstrained, exactly as in the paper's grounded program.

    With the ``"naive"`` engine, a rule whose ``|Dom(I)|^{#vars}``
    cross product exceeds *max_instantiations* raises
    :class:`DatalogError` up front (the cross product is what that
    engine enumerates).  The ``"indexed"`` and ``"columnar"`` engines
    instead join the EDB atoms first and only enumerate the remaining
    free variables over the domain, so their guard counts the
    instantiations that would actually be emitted -- a join-cost
    counting pass per rule, before any ground rule is materialized.

    ``engine=`` is the deprecated spelling of
    ``config=ExecutionConfig(engine=...)``; it still works but warns.
    """
    config = merge_legacy_knobs("full_grounding", config, engine=("engine", engine))
    engine = _resolve_engine(config.engine)
    if engine == "naive":
        return _full_grounding_naive(program, database, max_instantiations)
    if engine == "columnar":
        return _full_grounding_columnar(program, database, max_instantiations)
    return _full_grounding_indexed(program, database, max_instantiations)


def _full_grounding_joined(
    program: Program,
    database: Database,
    max_instantiations: int,
    make_bindings,
) -> GroundProgram:
    """Shared join-then-enumerate skeleton for the indexed and
    columnar full groundings.

    *make_bindings(edb_atoms)* returns ``(count_bindings,
    iter_bindings)``: a zero-argument callable counting the rule's EDB
    join bindings (the guard pass needs nothing but the count, so the
    columnar engine can count in id space without decoding anything)
    and one producing a fresh iterator of EDB substitutions
    (``Variable -> Constant``) for emission.  The guard pass runs
    before anything is materialized, so an exploding rule is rejected
    at join cost, not at the cost (and memory) of building millions of
    GroundRules first.
    """
    domain = sorted(database.active_domain(), key=repr)
    idbs = program.idb_predicates
    ground_rules: List[GroundRule] = []
    stats = _stats()
    for rule_index, rule in enumerate(program.rules):
        edb_atoms = [a for a in rule.body if a.predicate not in idbs]
        count_bindings, bindings = make_bindings(edb_atoms)
        # The EDB join binds exactly the EDB atoms' variables, so the
        # free set is rule-invariant.
        edb_vars = {v for a in edb_atoms for v in a.variables}
        free = [v for v in sorted(rule.variables, key=lambda v: v.name) if v not in edb_vars]
        per_binding = len(domain) ** len(free)
        total = per_binding * count_bindings()
        if total > max_instantiations:
            raise DatalogError(
                f"full grounding of rule {rule} would create {total} "
                f"instantiations (> {max_instantiations}); "
                "use relevant_grounding instead"
            )
        for edb_theta in bindings():
            for values in product(domain, repeat=len(free)):
                stats.probes += 1
                theta = dict(edb_theta)
                theta.update(zip(free, map(Constant, values)))
                head = rule.head.substitute(theta).to_fact()
                idb_body = tuple(
                    a.substitute(theta).to_fact() for a in rule.body if a.predicate in idbs
                )
                edb_body = tuple(
                    a.substitute(theta).to_fact()
                    for a in rule.body
                    if a.predicate not in idbs
                )
                ground_rules.append(GroundRule(head, idb_body, edb_body, rule_index))
                stats.ground_rules += 1
    return GroundProgram(program, ground_rules)


def _full_grounding_indexed(
    program: Program, database: Database, max_instantiations: int
) -> GroundProgram:
    index = _FactIndex()
    for fact in database.facts():
        index.insert(fact)

    def make_bindings(edb_atoms):
        ordered = _order_body(edb_atoms, index, set())

        def count():
            return sum(1 for _ in _join_indexed(ordered, index, {}))

        def run():
            return _join_indexed(ordered, index, {})

        return count, run

    return _full_grounding_joined(program, database, max_instantiations, make_bindings)


def _full_grounding_columnar(
    program: Program, database: Database, max_instantiations: int
) -> GroundProgram:
    """Columnar variant: the EDB join runs in id space over the shared
    store snapshot (no derived facts are appended, so no copy is
    taken) and each binding is decoded once before the free variables
    are enumerated over the domain."""
    store = database.columnar_store()
    symbols = store.symbols

    def make_bindings(edb_atoms):
        ordered = _order_catoms(
            [_CompiledAtom(atom, symbols) for atom in edb_atoms], store, set()
        )

        def count():
            # Guard pass stays in id space: no Constant/dict decoding
            # for bindings that are only being counted.
            return sum(1 for _ in _join_columnar(ordered, store, {}))

        def run():
            for theta_ids in _join_columnar(ordered, store, {}):
                yield {var: Constant(symbols.decode(sid)) for var, sid in theta_ids.items()}

        return count, run

    return _full_grounding_joined(program, database, max_instantiations, make_bindings)


def _full_grounding_naive(
    program: Program, database: Database, max_instantiations: int
) -> GroundProgram:
    """Reference implementation: enumerate the whole cross product."""
    domain = sorted(database.active_domain(), key=repr)
    idbs = program.idb_predicates
    ground_rules: List[GroundRule] = []
    seen: Set[Tuple] = set()
    stats = _stats()
    for rule_index, rule in enumerate(program.rules):
        rule_vars = sorted(rule.variables, key=lambda v: v.name)
        total = len(domain) ** len(rule_vars)
        if total > max_instantiations:
            raise DatalogError(
                f"full grounding would create {total} instantiations; "
                "use relevant_grounding instead"
            )
        assignments: List[Dict[Variable, Constant]] = [{}]
        for var in rule_vars:
            assignments = [
                {**theta, var: Constant(value)} for theta in assignments for value in domain
            ]
        for theta in assignments:
            stats.probes += 1
            edb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate not in idbs
            )
            if any(fact not in database for fact in edb_body):
                continue
            head = rule.head.substitute(theta).to_fact()
            idb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate in idbs
            )
            key = (rule_index, head, idb_body, edb_body)
            if key not in seen:
                seen.add(key)
                ground_rules.append(GroundRule(head, idb_body, edb_body, rule_index))
                stats.ground_rules += 1
    return GroundProgram(program, ground_rules)
