"""Grounding of Datalog programs (Section 2.1).

A *grounding* of a rule instantiates its variables with active-domain
constants.  Two strategies are provided:

* :func:`full_grounding` -- all ``|Dom(I)|^{#vars}`` instantiations
  whose EDB body atoms hold in the input.  This is the paper's
  definition; exponential in rule width, usable only on tiny inputs.

* :func:`relevant_grounding` -- only ground rules all of whose body
  facts are actually derivable.  First the set of derivable IDB facts
  is computed by semi-naive Boolean evaluation, then each rule is
  joined against (EDB ∪ derivable IDB) facts.  Omitted ground rules
  would contribute ``0`` to every ICO sum, so provenance polynomials
  (and therefore all circuits built from the grounding) are unchanged;
  this is what makes the Theorem 3.1/6.2 constructions practical
  (DESIGN.md §6).

Joins are performed by backtracking over body atoms with first-bound-
argument indexing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .ast import Atom, Constant, DatalogError, Fact, Program, Variable
from .database import Database

__all__ = ["GroundRule", "GroundProgram", "full_grounding", "relevant_grounding", "derivable_facts"]


@dataclass(frozen=True)
class GroundRule:
    """A grounded rule, body split into IDB and EDB facts.

    The grounded head is derived from ``idb_body ∪ edb_body`` by the
    originating rule; ``rule_index`` back-references the program rule.
    """

    head: Fact
    idb_body: Tuple[Fact, ...]
    edb_body: Tuple[Fact, ...]
    rule_index: int = -1

    @property
    def body(self) -> Tuple[Fact, ...]:
        return self.idb_body + self.edb_body

    def __repr__(self) -> str:
        body = " ∧ ".join(map(repr, self.body))
        return f"{self.head} :- {body}"


@dataclass
class GroundProgram:
    """The grounded program: ground rules indexed by head fact.

    Besides ``by_head`` (head fact → ground rules), two derived
    integer indexes are built once on first use and cached; they are
    the backbone of the semi-naive engine
    (:mod:`repro.datalog.seminaive`):

    * :attr:`rules_by_idb_body` -- IDB fact → indices of the ground
      rules whose **body** mentions it.  When a fact's value changes,
      exactly these rules can produce a different term.
    * :attr:`rule_indices_by_head` -- head fact → indices of the rules
      deriving it, used to re-fold a head's ``⊕``-sum from cached
      per-rule terms.
    """

    program: Program
    rules: List[GroundRule]
    by_head: Dict[Fact, List[GroundRule]] = field(default_factory=dict)
    _rules_by_idb_body: Optional[Dict[Fact, Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _rule_indices_by_head: Optional[Dict[Fact, Tuple[int, ...]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.by_head:
            for rule in self.rules:
                self.by_head.setdefault(rule.head, []).append(rule)

    @property
    def rules_by_idb_body(self) -> Mapping[Fact, Tuple[int, ...]]:
        """IDB fact → indices of ground rules with that fact in the body."""
        if self._rules_by_idb_body is None:
            index: Dict[Fact, List[int]] = {}
            for position, rule in enumerate(self.rules):
                for fact in set(rule.idb_body):
                    index.setdefault(fact, []).append(position)
            self._rules_by_idb_body = {
                fact: tuple(positions) for fact, positions in index.items()
            }
        return self._rules_by_idb_body

    @property
    def rule_indices_by_head(self) -> Mapping[Fact, Tuple[int, ...]]:
        """Head fact → indices of the ground rules deriving it."""
        if self._rule_indices_by_head is None:
            index: Dict[Fact, List[int]] = {}
            for position, rule in enumerate(self.rules):
                index.setdefault(rule.head, []).append(position)
            self._rule_indices_by_head = {
                fact: tuple(positions) for fact, positions in index.items()
            }
        return self._rule_indices_by_head

    @property
    def idb_facts(self) -> FrozenSet[Fact]:
        return frozenset(self.by_head)

    @property
    def size(self) -> int:
        """``M`` of Theorem 4.3: total atoms over all ground rules."""
        return sum(1 + len(rule.body) for rule in self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def rules_for(self, fact: Fact) -> Sequence[GroundRule]:
        return self.by_head.get(fact, ())

    def target_facts(self) -> List[Fact]:
        return sorted(
            (f for f in self.by_head if f.predicate == self.program.target), key=repr
        )

    def max_body_idbs(self) -> int:
        return max((len(r.idb_body) for r in self.rules), default=0)

    def __repr__(self) -> str:
        return (
            f"GroundProgram(rules={len(self.rules)}, idb_facts={len(self.by_head)}, "
            f"size={self.size})"
        )


class _FactIndex:
    """Per-predicate index: tuples, plus (position, value) → tuples."""

    def __init__(self) -> None:
        self._tuples: Dict[str, List[Tuple[Hashable, ...]]] = {}
        self._by_arg: Dict[Tuple[str, int, Hashable], List[Tuple[Hashable, ...]]] = {}
        self._seen: Dict[str, set] = {}

    def insert(self, fact: Fact) -> bool:
        if fact.args in self._seen.setdefault(fact.predicate, set()):
            return False
        self._seen[fact.predicate].add(fact.args)
        self._tuples.setdefault(fact.predicate, []).append(fact.args)
        for position, value in enumerate(fact.args):
            self._by_arg.setdefault((fact.predicate, position, value), []).append(fact.args)
        return True

    def candidates(self, atom: Atom, theta: Mapping[Variable, Constant]) -> Sequence[Tuple]:
        """Rows possibly matching *atom* under *theta* (narrowest index)."""
        best: Optional[Sequence[Tuple]] = None
        for position, term in enumerate(atom.terms):
            value: Optional[Hashable] = None
            if isinstance(term, Constant):
                value = term.value
            elif term in theta:
                value = theta[term].value
            if value is not None:
                rows = self._by_arg.get((atom.predicate, position, value), ())
                if best is None or len(rows) < len(best):
                    best = rows
        if best is None:
            best = self._tuples.get(atom.predicate, ())
        return best

    def contains(self, fact: Fact) -> bool:
        return fact.args in self._seen.get(fact.predicate, ())


def _match(
    atom: Atom, row: Tuple[Hashable, ...], theta: Dict[Variable, Constant]
) -> Optional[Dict[Variable, Constant]]:
    """Try to extend *theta* so that atom θ = row; None on clash."""
    extension = dict(theta)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extension.get(term)
            if bound is None:
                extension[term] = Constant(value)
            elif bound.value != value:
                return None
    return extension


def _join(
    body: Sequence[Atom], index: _FactIndex, theta: Dict[Variable, Constant]
) -> Iterator[Dict[Variable, Constant]]:
    """All substitutions grounding *body* against *index* (backtracking)."""
    if not body:
        yield theta
        return
    first, rest = body[0], body[1:]
    for row in index.candidates(first, theta):
        extended = _match(first, row, theta)
        if extended is not None:
            yield from _join(rest, index, extended)


def derivable_facts(program: Program, database: Database) -> Tuple[FrozenSet[Fact], int]:
    """Semi-naive Boolean evaluation: (derivable IDB facts, iterations).

    The iteration count is the number of rounds until no new fact
    appears -- the Boolean fixpoint iteration of Definition 4.1 used
    by the empirical boundedness probe.
    """
    idbs = program.idb_predicates
    index = _FactIndex()
    for fact in database.facts():
        index.insert(fact)

    derived: set[Fact] = set()
    delta: set[Fact] = set()
    iterations = 0
    # Round 0: fire every rule against EDB-only bindings (plus any IDBs
    # derived so far); iterate to fixpoint with delta-driven rounds.
    while True:
        fresh: set[Fact] = set()
        for rule in program.rules:
            requires_delta = iterations > 0
            idb_atoms = rule.idb_atoms(idbs)
            if requires_delta and idb_atoms:
                # Only re-derive when at least one IDB atom can bind a delta
                # fact; cheap filter on predicates.
                if not any(a.predicate in {f.predicate for f in delta} for a in idb_atoms):
                    continue
            for theta in _join(rule.body, index, {}):
                head = rule.head.substitute(theta).to_fact()
                if head not in derived and head not in fresh:
                    # Semi-naive soundness check: after round 0, require a
                    # delta fact in the body to avoid re-deriving.
                    if requires_delta and idb_atoms:
                        body_facts = {a.substitute(theta).to_fact() for a in idb_atoms}
                        if not body_facts & delta:
                            continue
                    fresh.add(head)
        iterations += 1
        if not fresh:
            break
        for fact in fresh:
            derived.add(fact)
            index.insert(fact)
        delta = fresh
    return frozenset(derived), iterations


def relevant_grounding(program: Program, database: Database) -> GroundProgram:
    """Ground rules whose body facts are all derivable (see module doc)."""
    derived, _ = derivable_facts(program, database)
    idbs = program.idb_predicates
    index = _FactIndex()
    for fact in database.facts():
        index.insert(fact)
    for fact in derived:
        index.insert(fact)

    ground_rules: List[GroundRule] = []
    seen: set[Tuple] = set()
    for rule_index, rule in enumerate(program.rules):
        for theta in _join(rule.body, index, {}):
            head = rule.head.substitute(theta).to_fact()
            idb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate in idbs
            )
            edb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate not in idbs
            )
            key = (rule_index, head, idb_body, edb_body)
            if key not in seen:
                seen.add(key)
                ground_rules.append(GroundRule(head, idb_body, edb_body, rule_index))
    return GroundProgram(program, ground_rules)


def full_grounding(program: Program, database: Database, max_instantiations: int = 2_000_000) -> GroundProgram:
    """All groundings over the active domain with EDB body atoms present.

    Ground rules whose EDB atoms are absent from the input are dropped
    (their value is identically ``0``); IDB body facts are kept
    unconstrained, exactly as in the paper's grounded program.
    """
    domain = sorted(database.active_domain(), key=repr)
    idbs = program.idb_predicates
    ground_rules: List[GroundRule] = []
    seen: set[Tuple] = set()
    for rule_index, rule in enumerate(program.rules):
        rule_vars = sorted(rule.variables, key=lambda v: v.name)
        total = len(domain) ** len(rule_vars)
        if total > max_instantiations:
            raise DatalogError(
                f"full grounding would create {total} instantiations; "
                "use relevant_grounding instead"
            )
        assignments: List[Dict[Variable, Constant]] = [{}]
        for var in rule_vars:
            assignments = [
                {**theta, var: Constant(value)} for theta in assignments for value in domain
            ]
        for theta in assignments:
            edb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate not in idbs
            )
            if any(fact not in database for fact in edb_body):
                continue
            head = rule.head.substitute(theta).to_fact()
            idb_body = tuple(
                a.substitute(theta).to_fact() for a in rule.body if a.predicate in idbs
            )
            key = (rule_index, head, idb_body, edb_body)
            if key not in seen:
                seen.add(key)
                ground_rules.append(GroundRule(head, idb_body, edb_body, rule_index))
    return GroundProgram(program, ground_rules)
