"""Differential maintenance of the columnar fixpoint (DESIGN.md §11).

The batch pipeline is ground → fixpoint → (optionally) circuit; any
:class:`~repro.datalog.database.Database` mutation used to invalidate
all of it.  :class:`MaintainedFixpoint` keeps the id-space artifacts
of one program/database pair alive across single-fact deltas:

* the :class:`~repro.datalog.grounding.ColumnarGroundProgram` is
  *regrounded incrementally* -- an inserted EDB fact seeds the same
  slot-compiled delta joins the columnar grounder runs
  (:func:`~repro.datalog.grounding._enum_slot_plan` over per
  ``(rule, position)`` cached plans), so only ground-rule instances
  that mention the delta are enumerated;
* per-fact *support* (the live ground rules deriving each IDB fact,
  the counting part of counting/DRed maintenance) is kept as
  adjacency dicts over fact ids, and retraction runs DRed proper:
  overdelete the downstream cone, rederive cone facts that keep an
  alternative derivation, prune the ground rules that died;
* per-semiring dense value arrays (the fixpoint state) are repaired
  by a restricted chaotic iteration over the dirty cone -- monotone
  ascent from the old fixpoint for inserts, zero-the-cone +
  recompute-with-fixed-boundary for retractions and reweights.  Both
  converge to exactly the from-scratch least fixpoint because the
  cone is downstream-closed: no clean fact reads a dirty one.

Exactness is testable, not aspirational: :meth:`MaintainedFixpoint.
result` reruns the exec-generated kernel over the *maintained*
grounding, and the Jacobi round structure depends only on the ground
rule **set**, so values, ``iterations``, ``converged`` and
``rule_evaluations`` coincide with a recompute-from-scratch -- the
invariant the stateful stream suite in
``tests/datalog/test_incremental.py`` drives.

A maintainer attaches to its database as an observer: plain
``db.add_fact`` / ``db.retract_fact`` / ``db.set_weight`` calls are
routed here after the database's own caches have been patched
delta-aware (see :meth:`Database._invalidate`), so every existing
entry point -- including :class:`repro.api.Session` and the serving
layer's ``/circuits/<key>/facts`` route -- observes maintained state.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..semirings.base import Semiring
from .ast import DatalogError, Fact, Program
from .database import Database
from .evaluation import DivergenceError, EvaluationResult
from .grounding import (
    ColumnarGroundProgram,
    _compile_slot_plan,
    _enum_slot_plan,
    _order_slot_atoms,
    _row_builder,
    _SlotAtom,
    _stats,
    columnar_grounding,
)
from .seminaive import COLUMNAR, _columnar_fixpoint

__all__ = ["MaintainedFixpoint", "MaintenanceBudgetExceeded", "MaintenancePolicy"]


class MaintenanceBudgetExceeded(DatalogError):
    """A maintenance pass ran past its :class:`MaintenancePolicy` budget.

    Raised by the watchdogs on :meth:`MaintainedFixpoint._propagate` /
    :meth:`MaintainedFixpoint._refresh`; callers that serve live
    traffic (:class:`repro.api.StreamSession`) treat it as a degrade
    signal -- detach the maintainer, fall back to full recompute --
    rather than an error to surface (DESIGN.md §12).
    """

    def __init__(self, site: str, detail: str):
        super().__init__(f"maintenance budget exceeded at {site}: {detail}")
        self.site = site


@dataclass(frozen=True)
class MaintenancePolicy:
    """Watchdog budgets for a :class:`MaintainedFixpoint`.

    ``None`` disables the corresponding guard (the default: batch
    workloads should not pay watchdog overhead).  A serving stack
    passes finite budgets so a poisoned update -- a delta whose dirty
    cone is pathologically large, or a semiring oscillating inside it
    -- trips :class:`MaintenanceBudgetExceeded` instead of wedging the
    event loop.

    *fault_hook*, when set, is called with a site name at every
    watchdog tick (``"propagate.round"``, ``"refresh"``,
    ``"reground.round"``); the fault-injection harness
    (:mod:`repro.testing.faults`) uses it to crash the maintainer
    mid-stream deterministically.  Whatever the hook raises propagates
    exactly like a budget trip.
    """

    #: Wall-clock budget for one delta's restricted propagation.
    max_propagate_seconds: Optional[float] = None
    #: Round cap for one delta's restricted propagation (tighter than
    #: the divergence self-heal cap, which *refreshes* instead of
    #: raising).
    max_propagate_rounds: Optional[int] = None
    #: Wall-clock budget for one full-kernel refresh (checked after
    #: the kernel run -- the exec-generated loop is uninterruptible --
    #: so a too-slow refresh degrades the *next* maintenance step).
    max_refresh_seconds: Optional[float] = None
    #: Wall-clock budget for one delta's incremental regrounding.
    max_reground_seconds: Optional[float] = None
    #: Fault-injection tap; called at every watchdog tick.
    fault_hook: Optional[Callable[[str], None]] = None

    def tick(self, site: str, started: float, budget: Optional[float]) -> None:
        """One watchdog check: fault tap first, then the clock."""
        if self.fault_hook is not None:
            self.fault_hook(site)
        if budget is not None and time.monotonic() - started > budget:
            raise MaintenanceBudgetExceeded(
                site, f"exceeded {budget:.3f}s wall-clock budget"
            )


def _coerce_fact(fact, args: Tuple) -> Fact:
    if isinstance(fact, Fact):
        if args:
            raise TypeError("pass either a Fact or predicate + args, not both")
        return fact
    return Fact(fact, tuple(args))


class _Tracked:
    """Maintained fixpoint state for one semiring: the dense value
    array (indexed by fact id, exactly :func:`_columnar_fixpoint`'s
    layout) and the per-live-rule cached ⊗-terms the restricted
    iteration refolds heads from."""

    __slots__ = ("semiring", "value", "rule_term", "converged")

    def __init__(self, semiring: Semiring):
        self.semiring = semiring
        self.value: List[object] = []
        self.rule_term: List[object] = []
        self.converged = True


class MaintainedFixpoint:
    """Live ground program + fixpoint state under fact insert/retract.

    Construct once over a program/database pair; the instance attaches
    itself to the database and from then on absorbs single-fact
    mutations differentially::

        m = MaintainedFixpoint(program, db, semirings=(TROPICAL,))
        m.insert("E", 2, 7, weight=1.5)   # delta-joins new ground rules
        m.value(Fact("T", (0, 7)), TROPICAL)
        m.retract("E", 2, 7)              # DRed overdelete/rederive

    ``insert``/``retract`` here are conveniences that route through
    ``db.add_fact`` / ``db.retract_fact``; mutating the database
    directly is equivalent.  Mutating the program's *IDB* predicates
    is rejected -- derived relations are maintained, not stored.

    Fast reads (:meth:`value`, :meth:`values`) come straight from the
    maintained arrays; :meth:`result` reruns the batch kernel over the
    maintained grounding and reproduces a from-scratch
    :class:`~repro.datalog.evaluation.EvaluationResult` bit for bit
    (same values, iterations, converged flag and rule-evaluation
    count).  If a delta propagation ever hits the iteration cap (a
    non-stable semiring diverging inside the cone), the maintainer
    falls back to one full kernel run for that semiring, so its state
    still matches the batch engine's capped state exactly.
    """

    def __init__(
        self,
        program: Program,
        database: Database,
        semirings: Iterable[Semiring] = (),
        attach: bool = True,
        policy: Optional[MaintenancePolicy] = None,
    ):
        self.program = program
        self.database = database
        self.policy = policy if policy is not None else MaintenancePolicy()
        self._idbs = program.idb_predicates
        #: The live id-space grounding; starts as the batch grounder's
        #: output and is appended to / pruned in place from then on.
        self.cground: ColumnarGroundProgram = columnar_grounding(program, database)
        self.iterations = self.cground.iterations
        symbols = self.cground.symbols
        # Private working store: EDB snapshot plus every currently
        # derived IDB fact, the join input for future delta rounds.
        self.store = database.columnar_store().copy()
        self._derived: Set[Tuple[str, Tuple[int, ...]]] = set()
        preds, rows = self.cground.fact_preds, self.cground.fact_rows
        for fid in self.cground.idb_fact_ids():
            key = (preds[fid], rows[fid])
            self._derived.add(key)
            self.store.insert_ids(*key)
        # Slot-compiled rules for delta joins.  Unlike the batch
        # grounder, body constants are interned (intern=True): a body
        # constant unseen today may arrive with a future insert, so
        # the "impossible atom" shortcut must not be frozen in.
        self._slot_counts: List[int] = []
        self._bodies: List[Tuple[_SlotAtom, ...]] = []
        self._emit_plans: List[Tuple] = []
        for rule in program.rules:
            slot_of = {
                var: slot
                for slot, var in enumerate(sorted(rule.variables, key=lambda v: v.name))
            }
            self._slot_counts.append(len(slot_of))
            head = _SlotAtom(rule.head, symbols, slot_of, intern=True)
            body = tuple(
                _SlotAtom(atom, symbols, slot_of, intern=True) for atom in rule.body
            )
            self._bodies.append(body)
            self._emit_plans.append(
                (
                    head.predicate,
                    _row_builder(head.terms),
                    self.cground.interner(head.predicate),
                    tuple(
                        (
                            _row_builder(atom.terms),
                            atom.predicate in self._idbs,
                            self.cground.interner(atom.predicate),
                        )
                        for atom in body
                    ),
                )
            )
        self._delta_plans: Dict[Tuple[int, int], Tuple] = {}
        # Support/derivation bookkeeping over the live rules.
        self._rule_tags: List[Tuple] = []
        self._rule_seen: Set[Tuple] = set()
        self._head_rules: Dict[int, List[int]] = {}
        self._body_rules: Dict[int, List[int]] = {}
        self._edb_rules: Dict[int, List[int]] = {}
        self._rebuild_adjacency()
        self._tracked: Dict[int, _Tracked] = {}
        self._results: Dict[int, Tuple[Semiring, EvaluationResult]] = {}
        self._listeners: List[Callable[[str, Fact, object], None]] = []
        for semiring in semirings:
            self.track(semiring)
        if attach:
            database._attach_maintainer(self)

    # -- public API ------------------------------------------------------

    def insert(self, fact, *args, weight: object = None) -> bool:
        """Insert an EDB fact (and maintain); True iff it was new."""
        fact = _coerce_fact(fact, args)
        self._guard_edb(fact)
        new = fact not in self.database
        self.database.add_fact(fact, weight)
        return new

    def retract(self, fact, *args) -> Fact:
        """Retract an EDB fact (and maintain); KeyError if absent."""
        fact = _coerce_fact(fact, args)
        self._guard_edb(fact)
        return self.database.retract_fact(fact)

    def track(self, semiring: Semiring) -> None:
        """Start maintaining dense fixpoint state for *semiring*."""
        key = id(semiring)
        tracked = self._tracked.get(key)
        if tracked is None:
            tracked = _Tracked(semiring)
            self._refresh(tracked)
            self._tracked[key] = tracked

    def value(self, fact: Fact, semiring: Semiring):
        """Maintained least-fixpoint value of one IDB fact (O(1))."""
        tracked = self._tracked_for(semiring)
        fid = self.cground.find_fact_id(fact)
        if fid is None or not self._head_rules.get(fid):
            return semiring.zero
        return tracked.value[fid]

    def values(self, semiring: Semiring) -> Dict[Fact, object]:
        """Maintained values of every derivable IDB fact."""
        tracked = self._tracked_for(semiring)
        decode = self.cground.decode_fact
        value = tracked.value
        return {decode(fid): value[fid] for fid in self.cground.idb_fact_ids()}

    def result(
        self,
        semiring: Semiring,
        max_iterations: Optional[int] = None,
        raise_on_divergence: bool = False,
    ) -> EvaluationResult:
        """A from-scratch-equivalent :class:`EvaluationResult`.

        Runs the batch columnar kernel over the *maintained* ground
        program.  The Jacobi rounds depend only on the ground-rule
        set, which incremental regrounding + DRed pruning keep equal
        to a fresh grounding's, so every field of the result -- not
        just the values -- matches recompute-from-scratch.  Cached
        until the next mutation.
        """
        key = id(semiring)
        if max_iterations is None:
            cached = self._results.get(key)
            if cached is not None and cached[0] is semiring:
                return cached[1]
        cground = self.cground
        head_fids = cground.idb_fact_ids()
        cap = max(len(head_fids), 1) + 2 if max_iterations is None else max_iterations
        value, iterations, converged, rule_evaluations = _columnar_fixpoint(
            cground, semiring, self._edb_valuation(semiring), cap
        )
        if not converged and raise_on_divergence:
            raise DivergenceError(
                f"maintained evaluation over {semiring.name} did not "
                f"converge in {cap} iterations"
            )
        decode = cground.decode_fact
        result = EvaluationResult(
            semiring,
            {decode(fid): value[fid] for fid in head_fids},
            iterations,
            converged,
            strategy=COLUMNAR,
            rule_evaluations=rule_evaluations,
        )
        if max_iterations is None:
            self._results[key] = (semiring, result)
        return result

    def support_count(self, fact: Fact) -> int:
        """Number of live ground rules deriving *fact* (its support)."""
        fid = self.cground.find_fact_id(fact)
        return 0 if fid is None else len(self._head_rules.get(fid, ()))

    def rule_keys(self):
        """Order-independent identity of the live ground rules."""
        return self.cground.rule_keys()

    def is_converged(self, semiring: Semiring) -> bool:
        return self._tracked_for(semiring).converged

    def add_listener(self, listener: Callable[[str, Fact, object], None]) -> None:
        """Subscribe to applied deltas: ``listener(kind, fact, weight)``
        with kind one of ``"insert"`` | ``"retract"`` | ``"weight"``,
        fired after maintenance for that delta completes."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def detach(self) -> None:
        """Stop observing the database (state freezes as-is)."""
        self.database._detach_maintainer(self)

    def __repr__(self) -> str:
        return (
            f"MaintainedFixpoint(rules={len(self.cground)}, "
            f"idb={len(self._head_rules)}, semirings={len(self._tracked)})"
        )

    # -- database observer hooks -----------------------------------------

    def _apply_insert(self, fact: Fact, weight: object) -> None:
        self._guard_edb(fact)
        self._results.clear()
        store = self.store
        mark = store.watermark()
        ids = store.symbols.intern_row(fact.args)
        if not store.insert_ids(fact.predicate, ids):
            # Already resident here (duplicate notification): at most
            # the annotation changed.
            if weight is not None:
                self._apply_weight(fact, weight)
            return
        new_positions: List[int] = []
        self._reground(mark, new_positions)
        fid = self.cground.find_fact_id(fact)
        for tracked in self._tracked.values():
            self._after_insert(tracked, fid, new_positions)
        self._notify("insert", fact, weight)

    def _apply_retract(self, fact: Fact) -> None:
        self._guard_edb(fact)
        self._results.clear()
        store = self.store
        store.remove_fact(fact)
        cground = self.cground
        fid = cground.find_fact_id(fact)
        if fid is None or not self._edb_rules.get(fid):
            # Never referenced by a live ground rule: no IDB fact can
            # change.  (The fact id, if any, keeps a zero slot.)
            for tracked in self._tracked.values():
                if fid is not None and fid < len(tracked.value):
                    tracked.value[fid] = tracked.semiring.zero
            self._notify("retract", fact, None)
            return
        # DRed overdelete: everything downstream of the retracted fact
        # is suspect; rules directly consuming it are dead outright.
        cone = self._downstream(fid)
        dead_rules: Set[int] = set(self._edb_rules.get(fid, ()))
        # Rederive: a cone fact survives iff some non-dead rule derives
        # it from facts outside the cone or themselves rederived.
        alive: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for head in cone:
                if head in alive:
                    continue
                for position in self._head_rules.get(head, ()):
                    if position in dead_rules:
                        continue
                    if all(
                        b not in cone or b in alive for b in self._idb_body(position)
                    ):
                        alive.add(head)
                        changed = True
                        break
        dead_facts = cone - alive
        for dfid in dead_facts:
            dead_rules.update(self._body_rules.get(dfid, ()))
        if dead_rules:
            self._prune_rules(dead_rules)
        preds, rows = cground.fact_preds, cground.fact_rows
        for dfid in dead_facts:
            key = (preds[dfid], rows[dfid])
            self._derived.discard(key)
            store.remove_ids(*key)
        for tracked in self._tracked.values():
            if not tracked.converged:
                self._refresh(tracked)
                continue
            zero = tracked.semiring.zero
            value = tracked.value
            value[fid] = zero
            dirty: Set[int] = set()
            for cfid in cone:
                value[cfid] = zero
                dirty.update(self._head_rules.get(cfid, ()))
            self._propagate(tracked, dirty)
        self._notify("retract", fact, None)

    def _apply_weight(self, fact: Fact, weight: object) -> None:
        self._guard_edb(fact)
        self._results.clear()
        fid = self.cground.find_fact_id(fact)
        if fid is None or not self._edb_rules.get(fid):
            self._notify("weight", fact, weight)
            return
        cone = self._downstream(fid)
        for tracked in self._tracked.values():
            if not tracked.converged:
                self._refresh(tracked)
                continue
            semiring = tracked.semiring
            value = tracked.value
            value[fid] = semiring.one if weight is None else weight
            zero = semiring.zero
            dirty: Set[int] = set(self._edb_rules.get(fid, ()))
            for cfid in cone:
                value[cfid] = zero
                dirty.update(self._head_rules.get(cfid, ()))
            self._propagate(tracked, dirty)
        self._notify("weight", fact, weight)

    # -- incremental regrounding -----------------------------------------

    def _reground(self, mark: Dict, new_positions: List[int]) -> None:
        """Delta-driven grounding rounds seeded by rows appended to the
        working store after *mark* -- the batch grounder's loop, but
        emitting only globally-new ground rules and running until no
        fresh IDB fact appears."""
        store = self.store
        stats = _stats()
        derived = self._derived
        policy = self.policy
        started = time.monotonic()
        while True:
            policy.tick("reground.round", started, policy.max_reground_seconds)
            deltas = store.deltas_since(mark)
            if not deltas:
                return
            mark = store.watermark()
            fresh: Set[Tuple[str, Tuple[int, ...]]] = set()
            for rule_index, body in enumerate(self._bodies):
                nslots = self._slot_counts[rule_index]
                for position, atom in enumerate(body):
                    view = deltas.get((atom.predicate, atom.arity))
                    if view is None:
                        continue
                    plan = self._delta_plans.get((rule_index, position))
                    if plan is None:
                        rest = [a for at, a in enumerate(body) if at != position]
                        bound = set(atom.slots)
                        plan = _compile_slot_plan(
                            _order_slot_atoms(rest, store, bound), bound
                        )
                        self._delta_plans[(rule_index, position)] = plan
                    const_items = atom.const_items
                    var_items = atom.var_items
                    for row in view.id_rows():
                        stats.probes += 1
                        ok = True
                        for pos, sid in const_items:
                            if row[pos] != sid:
                                ok = False
                                break
                        if not ok:
                            continue
                        theta = [-1] * nslots
                        for pos, slot in var_items:
                            sid = row[pos]
                            bound_sid = theta[slot]
                            if bound_sid < 0:
                                theta[slot] = sid
                            elif bound_sid != sid:
                                ok = False
                                break
                        if not ok:
                            continue
                        stats.matches += 1
                        for _ in _enum_slot_plan(plan, 0, store, theta, stats):
                            head = self._emit(rule_index, theta, new_positions)
                            if head is not None and head not in derived:
                                fresh.add(head)
            for predicate, ids in sorted(fresh):
                derived.add((predicate, ids))
                store.insert_ids(predicate, ids)

    def _emit(
        self, rule_index: int, theta: List[int], new_positions: List[int]
    ) -> Optional[Tuple[str, Tuple[int, ...]]]:
        head_pred, head_build, head_intern, body_plan = self._emit_plans[rule_index]
        head_ids = head_build(theta)
        head_fid = head_intern(head_ids)
        idb_row: List[int] = []
        edb_row: List[int] = []
        for build, is_idb, intern in body_plan:
            (idb_row if is_idb else edb_row).append(intern(build(theta)))
        tag = (rule_index, head_fid, tuple(idb_row), tuple(edb_row))
        if tag in self._rule_seen:
            return None
        self._rule_seen.add(tag)
        position = len(self.cground)
        self.cground.append_rule(rule_index, head_fid, idb_row, edb_row)
        self._rule_tags.append(tag)
        self._head_rules.setdefault(head_fid, []).append(position)
        for fid in dict.fromkeys(idb_row):
            self._body_rules.setdefault(fid, []).append(position)
        for fid in dict.fromkeys(edb_row):
            self._edb_rules.setdefault(fid, []).append(position)
        new_positions.append(position)
        return (head_pred, head_ids)

    # -- value maintenance -----------------------------------------------

    def _after_insert(
        self, tracked: _Tracked, fid: Optional[int], new_positions: List[int]
    ) -> None:
        semiring = tracked.semiring
        value, rule_term = tracked.value, tracked.rule_term
        cground = self.cground
        zero, one = semiring.zero, semiring.one
        preds = cground.fact_preds
        weight_of = self.database.weight
        old_len = len(value)
        for new_fid in range(old_len, cground.fact_count):
            if preds[new_fid] in self._idbs:
                value.append(zero)
            else:
                weight = weight_of(cground.decode_fact(new_fid))
                value.append(one if weight is None else weight)
        if fid is not None and fid < old_len:
            # Re-inserted fact whose id predates this delta: its slot
            # was zeroed by the retraction.
            weight = weight_of(cground.decode_fact(fid))
            value[fid] = one if weight is None else weight
        while len(rule_term) < len(cground):
            rule_term.append(zero)
        if not tracked.converged:
            # The stored state is the batch engine's *capped* state,
            # not a fixpoint -- incremental ascent from it is unsound.
            self._refresh(tracked)
            return
        self._propagate(tracked, new_positions)

    def _propagate(self, tracked: _Tracked, dirty_positions) -> None:
        """Restricted chaotic iteration: recompute ⊗-terms of dirty
        rules, refold their heads, cascade along the body adjacency.
        Sound because every dirty head is in the downstream-closed
        cone (retract/weight) or ascent starts from the old fixpoint
        (insert); exact on convergence.  Hitting the round cap means
        the semiring diverges on this program -- fall back to one full
        kernel run so the maintained state equals the batch engine's
        capped state."""
        semiring = tracked.semiring
        value, rule_term = tracked.value, tracked.rule_term
        mul, add, eq = semiring.mul, semiring.add, semiring.eq
        zero, one = semiring.zero, semiring.one
        cground = self.cground
        idb_indptr, idb_flat = cground.idb_indptr, cground.idb_flat
        edb_indptr, edb_flat = cground.edb_indptr, cground.edb_flat
        rule_head = cground.rule_head
        head_rules, body_rules = self._head_rules, self._body_rules
        cap = self._round_cap()
        policy = self.policy
        round_cap = policy.max_propagate_rounds
        started = time.monotonic()
        dirty = set(dirty_positions)
        rounds = 0
        while dirty:
            if rounds >= cap:
                self._refresh(tracked)
                return
            policy.tick("propagate.round", started, policy.max_propagate_seconds)
            if round_cap is not None and rounds >= round_cap:
                raise MaintenanceBudgetExceeded(
                    "propagate.round", f"exceeded {round_cap} round budget"
                )
            rounds += 1
            heads = set()
            for position in dirty:
                term = one
                for fid in edb_flat[edb_indptr[position] : edb_indptr[position + 1]]:
                    term = mul(term, value[fid])
                for fid in idb_flat[idb_indptr[position] : idb_indptr[position + 1]]:
                    term = mul(term, value[fid])
                rule_term[position] = term
                heads.add(rule_head[position])
            dirty = set()
            for head in heads:
                total = zero
                for position in head_rules.get(head, ()):
                    total = add(total, rule_term[position])
                if not eq(total, value[head]):
                    value[head] = total
                    dirty.update(body_rules.get(head, ()))
        tracked.converged = True

    def _refresh(self, tracked: _Tracked) -> None:
        """Rebuild one semiring's state with a full kernel run over the
        maintained grounding (initial tracking + divergence fallback).

        The watchdog tick runs *before and after* the kernel: the
        exec-generated loop itself is uninterruptible, so the wall
        clock check after it catches a refresh that blew its budget
        and raises before the (consistent) state is used to serve."""
        policy = self.policy
        started = time.monotonic()
        policy.tick("refresh", started, policy.max_refresh_seconds)
        semiring = tracked.semiring
        cground = self.cground
        value, _, converged, _ = _columnar_fixpoint(
            cground, semiring, self._edb_valuation(semiring), self._round_cap()
        )
        policy.tick("refresh", started, policy.max_refresh_seconds)
        tracked.value = value
        tracked.converged = converged
        mul, one = semiring.mul, semiring.one
        idb_indptr, idb_flat = cground.idb_indptr, cground.idb_flat
        edb_indptr, edb_flat = cground.edb_indptr, cground.edb_flat
        rule_term: List[object] = []
        for position in range(len(cground)):
            term = one
            for fid in edb_flat[edb_indptr[position] : edb_indptr[position + 1]]:
                term = mul(term, value[fid])
            for fid in idb_flat[idb_indptr[position] : idb_indptr[position + 1]]:
                term = mul(term, value[fid])
            rule_term.append(term)
        tracked.rule_term = rule_term

    # -- structural bookkeeping ------------------------------------------

    def _rebuild_adjacency(self) -> None:
        cground = self.cground
        idb_indptr, idb_flat = cground.idb_indptr, cground.idb_flat
        edb_indptr, edb_flat = cground.edb_indptr, cground.edb_flat
        tags: List[Tuple] = []
        seen: Set[Tuple] = set()
        head_rules: Dict[int, List[int]] = {}
        body_rules: Dict[int, List[int]] = {}
        edb_rules: Dict[int, List[int]] = {}
        for position in range(len(cground)):
            head = cground.rule_head[position]
            idb_row = tuple(idb_flat[idb_indptr[position] : idb_indptr[position + 1]])
            edb_row = tuple(edb_flat[edb_indptr[position] : edb_indptr[position + 1]])
            tag = (cground.rule_no[position], head, idb_row, edb_row)
            tags.append(tag)
            seen.add(tag)
            head_rules.setdefault(head, []).append(position)
            for fid in dict.fromkeys(idb_row):
                body_rules.setdefault(fid, []).append(position)
            for fid in dict.fromkeys(edb_row):
                edb_rules.setdefault(fid, []).append(position)
        self._rule_tags = tags
        self._rule_seen = seen
        self._head_rules = head_rules
        self._body_rules = body_rules
        self._edb_rules = edb_rules

    def _prune_rules(self, dead: Set[int]) -> None:
        """Compact the ground program's parallel arrays, dropping the
        rule positions in *dead*; per-semiring cached terms compact in
        lockstep and the adjacency dicts are rebuilt over the new
        positions.  Fact ids are stable -- only rule positions move."""
        cground = self.cground
        keep = [p for p in range(len(cground)) if p not in dead]
        idb_indptr, idb_flat = cground.idb_indptr, cground.idb_flat
        edb_indptr, edb_flat = cground.edb_indptr, cground.edb_flat
        new_head, new_no = array("q"), array("q")
        new_idb_ptr, new_idb = array("q", (0,)), array("q")
        new_edb_ptr, new_edb = array("q", (0,)), array("q")
        for position in keep:
            new_head.append(cground.rule_head[position])
            new_no.append(cground.rule_no[position])
            new_idb.extend(idb_flat[idb_indptr[position] : idb_indptr[position + 1]])
            new_idb_ptr.append(len(new_idb))
            new_edb.extend(edb_flat[edb_indptr[position] : edb_indptr[position + 1]])
            new_edb_ptr.append(len(new_edb))
        cground.rule_head, cground.rule_no = new_head, new_no
        cground.idb_indptr, cground.idb_flat = new_idb_ptr, new_idb
        cground.edb_indptr, cground.edb_flat = new_edb_ptr, new_edb
        cground._by_head = cground._by_body = None
        cground._idb_fids = cground._edb_fids = None
        for tracked in self._tracked.values():
            tracked.rule_term = [tracked.rule_term[position] for position in keep]
        self._rebuild_adjacency()

    def _downstream(self, fid: int) -> Set[int]:
        """All IDB fact ids whose value (transitively) reads *fid* --
        the downstream-closed dirty cone of a delta at that fact."""
        body_rules, edb_rules = self._body_rules, self._edb_rules
        rule_head = self.cground.rule_head
        cone: Set[int] = set()
        seen = {fid}
        frontier = [fid]
        while frontier:
            fact = frontier.pop()
            for position in edb_rules.get(fact, ()):
                head = rule_head[position]
                if head not in seen:
                    seen.add(head)
                    cone.add(head)
                    frontier.append(head)
            for position in body_rules.get(fact, ()):
                head = rule_head[position]
                if head not in seen:
                    seen.add(head)
                    cone.add(head)
                    frontier.append(head)
        return cone

    # -- small helpers ---------------------------------------------------

    def _guard_edb(self, fact: Fact) -> None:
        if fact.predicate in self._idbs:
            raise DatalogError(
                f"cannot mutate {fact}: {fact.predicate!r} is an IDB predicate "
                f"of the maintained program (derived relations are maintained, "
                f"not stored)"
            )

    def _tracked_for(self, semiring: Semiring) -> _Tracked:
        self.track(semiring)
        return self._tracked[id(semiring)]

    def _idb_body(self, position: int) -> Sequence[int]:
        cground = self.cground
        return cground.idb_flat[
            cground.idb_indptr[position] : cground.idb_indptr[position + 1]
        ]

    def _edb_valuation(self, semiring: Semiring) -> Dict[Fact, object]:
        """EDB fact → value for exactly the facts the live grounding
        references (a KeyError here would mean a live rule references
        a fact no longer in the database -- the pruning invariant)."""
        cground = self.cground
        weight_of = self.database.weight
        one = semiring.one
        out: Dict[Fact, object] = {}
        for fid in cground.edb_fact_ids():
            fact = cground.decode_fact(fid)
            weight = weight_of(fact)
            out[fact] = one if weight is None else weight
        return out

    def _round_cap(self) -> int:
        """The engines' default divergence guard over the live IDB."""
        return max(len(self._head_rules), 1) + 2

    def _notify(self, kind: str, fact: Fact, weight: object) -> None:
        for listener in tuple(self._listeners):
            listener(kind, fact, weight)
