"""The paper's example programs, ready-made.

Each function returns a fresh :class:`~repro.datalog.ast.Program`:

* :func:`transitive_closure` -- the TC program of Example 2.1 (linear
  left-linear chain; the central object of Sections 3 and 5).
* :func:`transitive_closure_nonlinear` -- TC via ``T(x,y) :- T(x,z) ∧
  T(z,y)``; non-linear but with the polynomial fringe property.
* :func:`reachability` -- the monadic program ``U`` of Example 2.1.
* :func:`bounded_example` -- Example 4.2, bounded over any absorptive
  semiring (equivalent to a UCQ).
* :func:`dyck1` -- Example 6.4, Dyck-1 (matched parentheses)
  reachability; non-linear, infinite grammar, polynomial fringe.
* :func:`same_generation` -- the classic linear same-generation
  program (up/flat/down), a non-chain linear example.
* :func:`rpq_program` lives in :mod:`repro.grammars.chain` (it needs
  the grammar machinery).
"""

from __future__ import annotations

from .ast import Atom, Program, Rule, Variable

__all__ = [
    "transitive_closure",
    "transitive_closure_nonlinear",
    "reachability",
    "bounded_example",
    "dyck1",
    "same_generation",
]

_X, _Y, _Z, _W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


def transitive_closure(edge: str = "E", target: str = "T") -> Program:
    """``T(x,y) :- E(x,y).  T(x,y) :- T(x,z) ∧ E(z,y).``"""
    return Program(
        [
            Rule(Atom(target, (_X, _Y)), [Atom(edge, (_X, _Y))]),
            Rule(Atom(target, (_X, _Y)), [Atom(target, (_X, _Z)), Atom(edge, (_Z, _Y))]),
        ],
        target,
    )


def transitive_closure_nonlinear(edge: str = "E", target: str = "D") -> Program:
    """``D(x,y) :- E(x,y).  D(x,y) :- D(x,z) ∧ D(z,y).``

    Same language as TC but non-linear; a chain program whose grammar
    ``D ← DD | E`` is infinite, used to exercise the polynomial-fringe
    construction on a non-linear input.
    """
    return Program(
        [
            Rule(Atom(target, (_X, _Y)), [Atom(edge, (_X, _Y))]),
            Rule(Atom(target, (_X, _Y)), [Atom(target, (_X, _Z)), Atom(target, (_Z, _Y))]),
        ],
        target,
    )


def reachability(source: str = "A", edge: str = "E", target: str = "U") -> Program:
    """Example 2.1's monadic program:
    ``U(x) :- A(x).  U(x) :- U(y) ∧ E(x,y).``"""
    return Program(
        [
            Rule(Atom(target, (_X,)), [Atom(source, (_X,))]),
            Rule(Atom(target, (_X,)), [Atom(target, (_Y,)), Atom(edge, (_X, _Y))]),
        ],
        target,
    )


def bounded_example(flag: str = "A", edge: str = "E", target: str = "T") -> Program:
    """Example 4.2: ``T(x,y) :- E(x,y).  T(x,y) :- A(x) ∧ T(z,y).``

    Bounded over any absorptive semiring -- the recursive rule is
    equivalent to ``T(x,y) :- A(x) ∧ E(z,y)`` after one unfolding.
    """
    return Program(
        [
            Rule(Atom(target, (_X, _Y)), [Atom(edge, (_X, _Y))]),
            Rule(Atom(target, (_X, _Y)), [Atom(flag, (_X,)), Atom(target, (_Z, _Y))]),
        ],
        target,
    )


def dyck1(open_label: str = "L", close_label: str = "R", target: str = "S") -> Program:
    """Example 6.4: Dyck-1 reachability, grammar ``S ← () | (S) | SS``::

        S(x,y) :- L(x,z) ∧ R(z,y)
        S(x,y) :- L(x,w) ∧ S(w,z) ∧ R(z,y)
        S(x,y) :- S(x,z) ∧ S(z,y)
    """
    return Program(
        [
            Rule(Atom(target, (_X, _Y)), [Atom(open_label, (_X, _Z)), Atom(close_label, (_Z, _Y))]),
            Rule(
                Atom(target, (_X, _Y)),
                [
                    Atom(open_label, (_X, _W)),
                    Atom(target, (_W, _Z)),
                    Atom(close_label, (_Z, _Y)),
                ],
            ),
            Rule(Atom(target, (_X, _Y)), [Atom(target, (_X, _Z)), Atom(target, (_Z, _Y))]),
        ],
        target,
    )


def same_generation(
    up: str = "Up", flat: str = "Flat", down: str = "Down", target: str = "SG"
) -> Program:
    """Linear same-generation:
    ``SG(x,y) :- Flat(x,y).  SG(x,y) :- Up(x,z) ∧ SG(z,w) ∧ Down(w,y).``

    Linear, connected, binary IDB, *not* a chain program (the paper's
    Theorem 6.2 still applies via the polynomial fringe property of
    linear programs).
    """
    return Program(
        [
            Rule(Atom(target, (_X, _Y)), [Atom(flat, (_X, _Y))]),
            Rule(
                Atom(target, (_X, _Y)),
                [Atom(up, (_X, _Z)), Atom(target, (_Z, _W)), Atom(down, (_W, _Y))],
            ),
        ],
        target,
    )
