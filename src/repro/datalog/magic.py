"""Magic-set specialization for left-linear chain programs (Thm 5.8).

The proof of Theorem 5.8 observes that for a fact ``T(s, t)`` of a
left-linear chain program, a magic-set rewriting yields an equivalent
program with **unary** IDBs: the source constant ``s`` replaces the
leftmost variable of every IDB, so the grounding has size only
``O(m)`` and a constant number of ICO layers gives the linear-size,
logarithmic-depth circuit.

:func:`magic_specialize` performs exactly that rewriting:

* initialization rule ``P(x, y) :- A₁(x, z₁) ∧ ... ∧ Aₖ(zₖ₋₁, y)``
  becomes ``P_s(y) :- A₁(s, z₁) ∧ ... ∧ Aₖ(zₖ₋₁, y)``;
* recursive rule ``P(x, y) :- Q(x, z) ∧ R₁(z, z₁) ∧ ...`` (IDB
  leftmost) becomes ``P_s(y) :- Q_s(z) ∧ R₁(z, z₁) ∧ ...``.

The right-linear mirror (IDB rightmost, sink constant bound) is
provided by :func:`magic_specialize_sink`.

Specialization is a pure program rewrite; its payoff is realized at
grounding time, where the bound constant turns every IDB join into a
selective lookup (the specialized program grounds in ``O(m)`` instead
of ``Θ(n·m)``, DESIGN.md §2).  :func:`magic_grounding` packages the
two steps -- rewrite, then ground with a selectable join engine -- so
callers and benchmarks can measure the combination directly.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Union

from ..config import ConfigLike, merge_legacy_knobs
from .ast import Atom, Constant, DatalogError, Fact, Program, Rule
from .database import Database
from .grounding import (
    ColumnarGroundProgram,
    GroundProgram,
    columnar_grounding,
    relevant_grounding,
)

__all__ = [
    "magic_specialize",
    "magic_specialize_sink",
    "magic_grounding",
    "specialized_fact",
]


def _specialized_name(predicate: str, constant: Hashable) -> str:
    return f"{predicate}@{constant}"


def magic_specialize(program: Program, source: Hashable) -> Program:
    """Bind the left argument of every IDB to the constant *source*.

    Requires a left-linear basic chain program (raises
    :class:`DatalogError` otherwise).  The result is a monadic program
    whose fact ``P@s(t)`` has exactly the provenance of ``P(s, t)``
    (rule-for-rule identical derivations).
    """
    if not program.is_left_linear_chain():
        raise DatalogError(
            "magic specialization on the source needs a left-linear chain program"
        )
    return _specialize(program, source, bind_left=True)


def magic_specialize_sink(program: Program, sink: Hashable) -> Program:
    """Mirror of :func:`magic_specialize` for right-linear programs:
    bind the right argument of every IDB to *sink* (``P@t(x) ≙ P(x, t)``)."""
    if not program.is_right_linear_chain():
        raise DatalogError(
            "magic specialization on the sink needs a right-linear chain program"
        )
    return _specialize(program, sink, bind_left=False)


def _specialize(program: Program, constant: Hashable, bind_left: bool) -> Program:
    idbs = program.idb_predicates
    bound = Constant(constant)
    rules: List[Rule] = []
    for rule in program.rules:
        head_x, head_y = rule.head.terms
        bound_var, free_var = (head_x, head_y) if bind_left else (head_y, head_x)
        theta = {bound_var: bound}
        new_head = Atom(_specialized_name(rule.head.predicate, constant), (free_var,))
        body: List[Atom] = []
        for atom in rule.body:
            substituted = atom.substitute(theta)
            if atom.predicate in idbs:
                a_left, a_right = substituted.terms
                kept = a_right if bind_left else a_left
                body.append(Atom(_specialized_name(atom.predicate, constant), (kept,)))
            else:
                body.append(substituted)
        rules.append(Rule(new_head, body))
    return Program(rules, _specialized_name(program.target, constant))


def magic_grounding(
    program: Program,
    source: Hashable,
    database: Database,
    engine: Optional[str] = None,
    columnar: bool = False,
    config: ConfigLike = None,
) -> Union[GroundProgram, ColumnarGroundProgram]:
    """Specialize *program* on *source* and ground the result.

    Equivalent to ``relevant_grounding(magic_specialize(program,
    source), database, config=config)``; ``config.engine`` selects the
    join engine (``"indexed"`` | ``"naive"`` | ``"columnar"``, default
    indexed -- see
    :func:`~repro.datalog.grounding.relevant_grounding`).  The
    returned grounding has ``O(m)`` rules for a left-linear chain
    program on an ``m``-edge input, versus ``Θ(n·m)`` without
    specialization -- the separation
    ``benchmarks/bench_ablation_grounding.py`` measures.

    With ``config.strategy == "columnar"`` the rewrite composes with
    :func:`~repro.datalog.grounding.columnar_grounding` instead: the
    result is an id-space
    :class:`~repro.datalog.grounding.ColumnarGroundProgram` (same rule
    set -- ``rule_keys()`` matches the tuple form) ready for the
    ``strategy="columnar"`` fixpoint, and the join-engine knob is
    ignored.  ``columnar=True`` is the deprecated spelling of exactly
    that (``config=ExecutionConfig(strategy="columnar")``), and
    ``engine=`` of ``config=ExecutionConfig(engine=...)``; both still
    work but warn.
    """
    config = merge_legacy_knobs(
        "magic_grounding",
        config,
        engine=("engine", engine),
        strategy=("columnar", "columnar" if columnar else None),
    )
    specialized = magic_specialize(program, source)
    if config.strategy == "columnar":
        return columnar_grounding(specialized, database)
    return relevant_grounding(specialized, database, config=config)


def specialized_fact(program: Program, source: Hashable, other: Hashable) -> Fact:
    """The specialized fact corresponding to ``target(source, other)``."""
    return Fact(_specialized_name(program.target, source), (other,))
