"""A small Datalog surface-syntax parser.

Grammar (one statement per rule, ``%`` or ``#`` line comments)::

    rule  ::= atom ":-" atom (("," | "∧") atom)* "."
    atom  ::= IDENT "(" term ("," term)* ")"
    term  ::= VARIABLE | CONSTANT

``∧`` is accepted as a body-atom separator so that ``repr(rule)`` --
which prints conjunction as ``∧`` -- round-trips through the parser
(the serving wire format sends programs as rule text).

Identifiers starting with an uppercase letter or ``_`` are variables
(``X``, ``Y``, ``Z1``); lowercase identifiers, integers and quoted
strings are constants.  Predicate names are taken verbatim, so both
``T(X,Y) :- E(X,Y).`` and ``path(X,Y) :- edge(X,Y).`` work.

Example::

    >>> parse_program('''
    ...     T(X, Y) :- E(X, Y).
    ...     T(X, Y) :- T(X, Z), E(Z, Y).
    ... ''')
    Program(target='T')
      T(X, Y) :- E(X, Y)
      T(X, Y) :- T(X, Z) ∧ E(Z, Y)
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple

from .ast import Atom, Constant, DatalogError, Program, Rule, Term, Variable

__all__ = ["parse_program", "parse_rule", "parse_atom", "ParseError"]


class ParseError(DatalogError):
    """Raised on malformed Datalog source, with position information."""


_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"[%#][^\n]*"),
    ("IMPLIES", r":-"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("AND", r"∧"),
    ("DOT", r"\."),
    ("STRING", r"\"[^\"]*\"|'[^']*'"),
    ("NUMBER", r"-?\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


def _tokenize(text: str) -> Iterator[Tuple[str, str, int]]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at offset {position}")
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        yield kind, value, match.start()
    yield "EOF", "", len(text)


class _Parser:
    def __init__(self, text: str):
        self._tokens: List[Tuple[str, str, int]] = list(_tokenize(text))
        self._index = 0

    def _peek(self) -> Tuple[str, str, int]:
        return self._tokens[self._index]

    def _advance(self) -> Tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> str:
        actual_kind, value, offset = self._peek()
        if actual_kind != kind:
            raise ParseError(f"expected {kind} at offset {offset}, found {actual_kind} {value!r}")
        self._advance()
        return value

    def parse_term(self) -> Term:
        kind, value, offset = self._advance()
        if kind == "IDENT":
            if value[0].isupper() or value[0] == "_":
                return Variable(value)
            return Constant(value)
        if kind == "NUMBER":
            return Constant(int(value))
        if kind == "STRING":
            return Constant(value[1:-1])
        raise ParseError(f"expected a term at offset {offset}, found {kind} {value!r}")

    def parse_atom(self) -> Atom:
        predicate = self._expect("IDENT")
        self._expect("LPAREN")
        terms = [self.parse_term()]
        while self._peek()[0] == "COMMA":
            self._advance()
            terms.append(self.parse_term())
        self._expect("RPAREN")
        return Atom(predicate, terms)

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        self._expect("IMPLIES")
        body = [self.parse_atom()]
        while self._peek()[0] in ("COMMA", "AND"):
            self._advance()
            body.append(self.parse_atom())
        self._expect("DOT")
        return Rule(head, body)

    def parse_rules(self) -> List[Rule]:
        rules = []
        while self._peek()[0] != "EOF":
            rules.append(self.parse_rule())
        return rules


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"T(X, Y)"``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if parser._peek()[0] != "EOF":
        raise ParseError(f"trailing input after atom: {text!r}")
    return atom


def parse_rule(text: str) -> Rule:
    """Parse a single rule, e.g. ``"T(X,Y) :- T(X,Z), E(Z,Y)."``."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if parser._peek()[0] != "EOF":
        raise ParseError(f"trailing input after rule: {text!r}")
    return rule


def parse_program(text: str, target: Optional[str] = None) -> Program:
    """Parse a whole program; *target* defaults to the first rule's head."""
    rules = _Parser(text).parse_rules()
    if not rules:
        raise ParseError("no rules found")
    return Program(rules, target)
