"""A small Datalog surface-syntax parser.

Grammar (one statement per rule, ``%`` or ``#`` line comments)::

    rule  ::= atom ":-" atom (("," | "∧") atom)* "."
    atom  ::= IDENT "(" term ("," term)* ")"
    term  ::= VARIABLE | CONSTANT

``∧`` is accepted as a body-atom separator so that ``repr(rule)`` --
which prints conjunction as ``∧`` -- round-trips through the parser
(the serving wire format sends programs as rule text).

Identifiers starting with an uppercase letter or ``_`` are variables
(``X``, ``Y``, ``Z1``); lowercase identifiers, integers and quoted
strings are constants.  Predicate names are taken verbatim, so both
``T(X,Y) :- E(X,Y).`` and ``path(X,Y) :- edge(X,Y).`` work.

Diagnostics: every :class:`ParseError` carries 1-based ``line`` and
``column`` (plus the raw byte ``offset`` and the offending
``source_line``) so front ends -- the ``python -m repro.lint`` CLI and
the server's ``/lint`` route -- can point at the exact spot.  Parsed
atoms and rules keep a :class:`~repro.datalog.ast.SourceSpan` on their
``span`` attribute for the static analyzer
(:mod:`repro.datalog.analysis`) to report against.

Example::

    >>> parse_program('''
    ...     T(X, Y) :- E(X, Y).
    ...     T(X, Y) :- T(X, Z), E(Z, Y).
    ... ''')
    Program(target='T')
      T(X, Y) :- E(X, Y)
      T(X, Y) :- T(X, Z) ∧ E(Z, Y)
"""

from __future__ import annotations

import bisect
import re
from typing import Iterator, List, Optional, Tuple

from .ast import Atom, Constant, DatalogError, Program, Rule, SourceSpan, Term, Variable

__all__ = ["parse_program", "parse_rule", "parse_atom", "ParseError"]


class ParseError(DatalogError):
    """Malformed Datalog source, with position information.

    ``line``/``column`` are 1-based; ``offset`` is the 0-based
    character offset into the source; ``source_line`` is the text of
    the offending line (no trailing newline).  The message embeds the
    position so plain ``str(exc)`` is already actionable.
    """

    def __init__(
        self,
        message: str,
        offset: int = 0,
        line: int = 1,
        column: int = 1,
        source_line: str = "",
    ):
        super().__init__(f"{message} (line {line}, column {column})")
        self.offset = offset
        self.line = line
        self.column = column
        self.source_line = source_line


class _SourceMap:
    """Offset → (line, column) translation plus line-text extraction."""

    def __init__(self, text: str):
        self.text = text
        self.line_starts = [0]
        for match in re.finditer(r"\n", text):
            self.line_starts.append(match.end())

    def position(self, offset: int) -> Tuple[int, int]:
        index = bisect.bisect_right(self.line_starts, offset) - 1
        return index + 1, offset - self.line_starts[index] + 1

    def line_text(self, line: int) -> str:
        start = self.line_starts[line - 1]
        end = self.text.find("\n", start)
        return self.text[start:] if end < 0 else self.text[start:end]

    def error(self, message: str, offset: int) -> ParseError:
        line, column = self.position(offset)
        return ParseError(message, offset, line, column, self.line_text(line))

    def span(self, start: int, end: int) -> SourceSpan:
        line, column = self.position(start)
        end_line, end_column = self.position(max(start, end - 1))
        return SourceSpan(line, column, end_line, end_column + 1, self.line_text(line))


_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"[%#][^\n]*"),
    ("IMPLIES", r":-"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("AND", r"∧"),
    ("DOT", r"\."),
    ("STRING", r"\"[^\"]*\"|'[^']*'"),
    ("NUMBER", r"-?\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


def _tokenize(text: str, source: _SourceMap) -> Iterator[Tuple[str, str, int]]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise source.error(f"unexpected character {text[position]!r}", position)
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        yield kind, value, match.start()
    yield "EOF", "", len(text)


class _Parser:
    def __init__(self, text: str):
        self._source = _SourceMap(text)
        self._tokens: List[Tuple[str, str, int]] = list(_tokenize(text, self._source))
        self._index = 0

    def _peek(self) -> Tuple[str, str, int]:
        return self._tokens[self._index]

    def _advance(self) -> Tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> Tuple[str, int]:
        actual_kind, value, offset = self._peek()
        if actual_kind != kind:
            raise self._source.error(f"expected {kind}, found {actual_kind} {value!r}", offset)
        self._advance()
        return value, offset

    def _error(self, message: str, offset: int) -> ParseError:
        return self._source.error(message, offset)

    def parse_term(self) -> Term:
        kind, value, offset = self._advance()
        if kind == "IDENT":
            if value[0].isupper() or value[0] == "_":
                return Variable(value)
            return Constant(value)
        if kind == "NUMBER":
            return Constant(int(value))
        if kind == "STRING":
            return Constant(value[1:-1])
        raise self._error(f"expected a term, found {kind} {value!r}", offset)

    def parse_atom(self) -> Atom:
        predicate, start = self._expect("IDENT")
        self._expect("LPAREN")
        terms = [self.parse_term()]
        while self._peek()[0] == "COMMA":
            self._advance()
            terms.append(self.parse_term())
        _, rparen = self._expect("RPAREN")
        return Atom(predicate, terms, span=self._source.span(start, rparen + 1))

    def parse_rule(self) -> Rule:
        start = self._peek()[2]
        head = self.parse_atom()
        self._expect("IMPLIES")
        body = [self.parse_atom()]
        while self._peek()[0] in ("COMMA", "AND"):
            self._advance()
            body.append(self.parse_atom())
        _, dot = self._expect("DOT")
        return Rule(head, body, span=self._source.span(start, dot + 1))

    def parse_rules(self) -> List[Rule]:
        rules = []
        while self._peek()[0] != "EOF":
            rules.append(self.parse_rule())
        return rules


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"T(X, Y)"``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    kind, value, offset = parser._peek()
    if kind != "EOF":
        raise parser._error(f"trailing input after atom: found {kind} {value!r}", offset)
    return atom


def parse_rule(text: str) -> Rule:
    """Parse a single rule, e.g. ``"T(X,Y) :- T(X,Z), E(Z,Y)."``."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    kind, value, offset = parser._peek()
    if kind != "EOF":
        raise parser._error(f"trailing input after rule: found {kind} {value!r}", offset)
    return rule


def parse_program(text: str, target: Optional[str] = None, validate: bool = True) -> Program:
    """Parse a whole program; *target* defaults to the first rule's head.

    ``validate=False`` skips the construction-time safety/arity checks
    (the static analyzer's escape hatch: ``python -m repro.lint`` parses
    broken programs unvalidated so it can *report* DL001/DL002 instead
    of crashing on them).
    """
    rules = _Parser(text).parse_rules()
    if not rules:
        raise ParseError("no rules found")
    return Program(rules, target, validate=validate)
