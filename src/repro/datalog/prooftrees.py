"""Proof trees and tree-based provenance (Definitions 2.2, Prop 2.4).

A proof tree of an IDB fact records one derivation: internal nodes are
grounded-rule applications, leaves are EDB facts.  A tree is *tight*
when no root-to-leaf path repeats an IDB fact; Proposition 2.4 shows
that over absorptive semirings the provenance polynomial may be summed
over tight trees only (non-tight monomials are absorbed).

Enumeration is exponential in general; these functions are reference
implementations used to validate the circuit constructions on small
inputs, plus probes for the polynomial fringe property (Definition
6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Tuple

from ..semirings.polynomial import Monomial, Polynomial
from .ast import Fact, Program
from .database import Database
from .grounding import GroundProgram, GroundRule, relevant_grounding

__all__ = [
    "ProofTree",
    "enumerate_tight_proof_trees",
    "enumerate_proof_trees",
    "provenance_by_proof_trees",
    "count_tight_proof_trees",
    "max_tight_fringe",
]


@dataclass(frozen=True)
class ProofTree:
    """A proof tree: *fact* derived by *rule* from IDB subtrees.

    ``rule is None`` marks an EDB leaf.  The EDB facts of an internal
    node's rule are its leaf children; IDB subgoals are full subtrees.
    """

    fact: Fact
    rule: Optional[GroundRule]
    children: Tuple["ProofTree", ...] = ()

    @property
    def is_leaf(self) -> bool:
        return self.rule is None

    def leaves(self) -> List[Fact]:
        """The fringe: EDB facts at the leaves, with multiplicity."""
        if self.is_leaf:
            return [self.fact]
        out: List[Fact] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    @property
    def fringe_size(self) -> int:
        return len(self.leaves())

    def height(self) -> int:
        if self.is_leaf:
            return 0
        return 1 + max((child.height() for child in self.children), default=0)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def monomial(self) -> Monomial:
        """``⊗`` of the leaf variables (Section 2.4)."""
        exponents: dict = {}
        for leaf in self.leaves():
            exponents[leaf] = exponents.get(leaf, 0) + 1
        return Monomial(exponents)

    def is_tight(self) -> bool:
        """No repeated IDB fact on any root-to-leaf path (Section 2.1)."""

        def walk(node: "ProofTree", path: FrozenSet[Fact]) -> bool:
            if node.is_leaf:
                return True
            if node.fact in path:
                return False
            extended = path | {node.fact}
            return all(walk(child, extended) for child in node.children)

        return walk(self, frozenset())

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}{self.fact}  [EDB]"
        lines = [f"{pad}{self.fact}"]
        for leaf in self.rule.edb_body:
            lines.append(f"{pad}  {leaf}  [EDB]")
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ProofTree({self.fact}, height={self.height()}, fringe={self.fringe_size})"


def enumerate_tight_proof_trees(
    ground: GroundProgram,
    fact: Fact,
    limit: Optional[int] = None,
) -> Iterator[ProofTree]:
    """Yield every tight proof tree of *fact* (finitely many).

    Tightness is enforced during the search: an IDB fact already on
    the current root-to-node path is never re-derived below itself.
    *limit* caps the number of yielded trees.
    """
    budget = [limit if limit is not None else -1]

    def derive(goal: Fact, path: FrozenSet[Fact]) -> Iterator[ProofTree]:
        if goal in path:
            return
        extended = path | {goal}
        for rule in ground.rules_for(goal):
            yield from expand(rule, 0, extended, ())

    def expand(
        rule: GroundRule,
        position: int,
        path: FrozenSet[Fact],
        chosen: Tuple[ProofTree, ...],
    ) -> Iterator[ProofTree]:
        if position == len(rule.idb_body):
            leaf_children = tuple(ProofTree(f, None) for f in rule.edb_body)
            yield ProofTree(rule.head, rule, chosen + leaf_children)
            return
        subgoal = rule.idb_body[position]
        for subtree in derive(subgoal, path):
            yield from expand(rule, position + 1, path, chosen + (subtree,))

    for tree in derive(fact, frozenset()):
        if budget[0] == 0:
            return
        if budget[0] > 0:
            budget[0] -= 1
        yield tree


def enumerate_proof_trees(
    ground: GroundProgram,
    fact: Fact,
    max_height: int,
    limit: Optional[int] = None,
) -> Iterator[ProofTree]:
    """Yield all (not necessarily tight) proof trees up to *max_height*."""
    count = [0]

    def derive(goal: Fact, height_budget: int) -> Iterator[ProofTree]:
        if height_budget <= 0:
            return
        for rule in ground.rules_for(goal):
            yield from expand(rule, 0, height_budget, ())

    def expand(
        rule: GroundRule,
        position: int,
        height_budget: int,
        chosen: Tuple[ProofTree, ...],
    ) -> Iterator[ProofTree]:
        if position == len(rule.idb_body):
            leaf_children = tuple(ProofTree(f, None) for f in rule.edb_body)
            yield ProofTree(rule.head, rule, chosen + leaf_children)
            return
        for subtree in derive(rule.idb_body[position], height_budget - 1):
            yield from expand(rule, position + 1, height_budget, chosen + (subtree,))

    for tree in derive(fact, max_height):
        if limit is not None and count[0] >= limit:
            return
        count[0] += 1
        yield tree


def provenance_by_proof_trees(
    program: Program,
    database: Database,
    fact: Fact,
    idempotent_mul: bool = False,
    ground: Optional[GroundProgram] = None,
    limit: Optional[int] = None,
) -> Polynomial:
    """``p_Π^I(α)``: the provenance polynomial via tight-tree enumeration.

    The reference implementation of Section 2.4 -- exact but
    exponential; circuits must agree with it on small inputs.
    """
    if ground is None:
        ground = relevant_grounding(program, database)
    monomials = (
        tree.monomial() for tree in enumerate_tight_proof_trees(ground, fact, limit)
    )
    return Polynomial(monomials, idempotent_mul=idempotent_mul)


def count_tight_proof_trees(ground: GroundProgram, fact: Fact, limit: int = 1_000_000) -> int:
    """Number of tight proof trees of *fact* (capped by *limit*)."""
    count = 0
    for _ in enumerate_tight_proof_trees(ground, fact, limit=limit):
        count += 1
    return count


def max_tight_fringe(ground: GroundProgram, fact: Fact, limit: Optional[int] = 10_000) -> int:
    """Largest fringe over tight proof trees of *fact* (Definition 6.1
    probe: a program has the polynomial fringe property when this stays
    polynomial in the input size)."""
    best = 0
    for tree in enumerate_tight_proof_trees(ground, fact, limit=limit):
        best = max(best, tree.fringe_size)
    return best
