"""Semi-naive evaluation with indexed deltas, and the FixpointEngine API.

:func:`repro.datalog.evaluation.naive_evaluation` implements the
paper's Section 2.3 fixpoint literally: every round re-multiplies every
ground rule and re-folds every head, so a run costs
``O(iterations × |ground rules|)`` rule evaluations even when almost
nothing changed between rounds.  This module provides the *semi-naive*
alternative and the common :class:`FixpointEngine` front-end through
which both strategies are selected.

Semi-naive evaluation (round ``t``):

1. **Delta set** -- the IDB facts whose value changed in round
   ``t − 1``.
2. **Dirty rules** -- via :attr:`GroundProgram.rules_by_idb_body`,
   exactly the ground rules with a delta fact in their body; only
   their ``⊗``-terms are recomputed (every other rule's cached term is
   still current because none of its body values moved).
3. **Dirty heads** -- heads of dirty rules are re-folded with
   ``semiring.add`` over the cached per-rule terms
   (:attr:`GroundProgram.rule_indices_by_head`); a head whose new
   value differs (``semiring.eq``) enters the next delta set.
4. **Convergence** is certified by an empty delta set -- no full
   ``eq`` sweep over all facts is ever needed.

Rounds are Jacobi-style (all round-``t`` terms read round-``t − 1``
values), so the per-round value maps -- and therefore the fixpoint,
the iteration count, the ``converged`` flag and the divergence
behaviour on non-stable semirings -- coincide *exactly* with naive
evaluation; only the number of rule evaluations shrinks.  The
equivalence tests in ``tests/datalog/test_seminaive.py`` pin this.

Trade-off: semi-naive pays ``O(size of grounding)`` once to build the
body index and keeps one cached term per ground rule; naive keeps
nothing.  On groundings that converge in ≤ 2 rounds the two do the
same work; everywhere else semi-naive wins (``benchmarks/
bench_seminaive.py`` measures 2–10× fewer rule evaluations on the
Bellman–Ford and CFG workloads).  Deltas are also the unit any future
incremental or parallel backend consumes, which is why the engine --
not the naive loop -- is the default backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..semirings.base import Semiring
from .ast import Fact, Program
from .database import Database
from .evaluation import DivergenceError, EvaluationResult, _naive_fixpoint
from .grounding import (
    GroundProgram,
    _resolve_engine,
    derivable_facts,
    relevant_grounding,
)

__all__ = [
    "NAIVE",
    "SEMINAIVE",
    "STRATEGIES",
    "DEFAULT_STRATEGY",
    "FixpointEngine",
    "seminaive_evaluation",
]

NAIVE = "naive"
SEMINAIVE = "seminaive"
STRATEGIES = (NAIVE, SEMINAIVE)

#: Strategy used when callers do not pick one explicitly.  Semi-naive
#: computes the identical fixpoint with strictly fewer rule
#: evaluations, so it is the default backend for the whole repo.
DEFAULT_STRATEGY = SEMINAIVE


@dataclass(frozen=True)
class FixpointEngine:
    """Datalog fixpoint computation with a selectable strategy.

    ``FixpointEngine()`` uses :data:`DEFAULT_STRATEGY`;
    ``FixpointEngine("naive")`` forces the literal Section 2.3 loop
    (the reference implementation the equivalence tests compare
    against).  ``strategy=None`` also resolves to the default, so
    callers can thread an optional user-facing knob straight through.

    ``grounding_engine`` independently selects the join engine used
    when the engine has to ground the program itself
    (``"indexed"`` | ``"naive"`` | ``"columnar"``, default
    :data:`~repro.datalog.grounding.DEFAULT_GROUNDING_ENGINE`; see
    :func:`~repro.datalog.grounding.relevant_grounding`).  The two
    knobs compose freely: strategy picks how the fixpoint iterates
    over a grounding, grounding_engine picks how that grounding is
    joined together.

    The engine is stateless and cheap to construct; all per-run state
    (grounding, caches, deltas) lives inside :meth:`evaluate`.
    """

    strategy: str = DEFAULT_STRATEGY
    grounding_engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.strategy is None:
            object.__setattr__(self, "strategy", DEFAULT_STRATEGY)
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown fixpoint strategy {self.strategy!r}; expected one of {STRATEGIES}"
            )
        _resolve_engine(self.grounding_engine)  # validate eagerly

    def evaluate(
        self,
        program: Program,
        database: Database,
        semiring: Semiring,
        weights: Optional[Mapping[Fact, object]] = None,
        ground: Optional[GroundProgram] = None,
        max_iterations: Optional[int] = None,
        raise_on_divergence: bool = False,
    ) -> EvaluationResult:
        """Least fixpoint of *program* on *database* over *semiring*.

        Same contract as
        :func:`repro.datalog.evaluation.naive_evaluation` (which now
        delegates here): *weights* overrides stored annotations,
        *ground* reuses a precomputed grounding, ``max_iterations``
        defaults to ``max(#IDB facts, 1) + 2`` and guards non-stable
        semirings.
        """
        if ground is None:
            ground = relevant_grounding(program, database, engine=self.grounding_engine)
        edb_value = dict(database.valuation(semiring))
        if weights:
            edb_value.update(weights)
        idb_facts = sorted(ground.idb_facts, key=repr)
        if max_iterations is None:
            max_iterations = max(len(idb_facts), 1) + 2

        if self.strategy == NAIVE:
            values, iterations, converged, rule_evaluations = _naive_fixpoint(
                ground, semiring, edb_value, idb_facts, max_iterations
            )
        else:
            values, iterations, converged, rule_evaluations = _seminaive_fixpoint(
                ground, semiring, edb_value, idb_facts, max_iterations
            )
        if not converged and raise_on_divergence:
            raise DivergenceError(
                f"{self.strategy} evaluation over {semiring.name} did not "
                f"converge in {max_iterations} iterations"
            )
        return EvaluationResult(
            semiring,
            values,
            iterations,
            converged,
            strategy=self.strategy,
            rule_evaluations=rule_evaluations,
        )

    def evaluate_fact(
        self,
        program: Program,
        database: Database,
        semiring: Semiring,
        fact: Fact,
        weights: Optional[Mapping[Fact, object]] = None,
    ):
        """Least-fixpoint value of one IDB *fact* (``0`` if underivable)."""
        return self.evaluate(program, database, semiring, weights).value(fact)

    def boolean_iterations(self, program: Program, database: Database) -> int:
        """Rounds until the Boolean fixpoint (Definition 4.1 probe).

        Uses the set-based semi-naive Boolean closure of
        :func:`repro.datalog.grounding.derivable_facts` regardless of
        strategy -- both strategies take the identical number of
        rounds, and the set-based closure avoids grounding entirely.
        The configured ``grounding_engine`` picks the join engine;
        the round count is engine-independent.
        """
        _, iterations = derivable_facts(program, database, engine=self.grounding_engine)
        return iterations


def seminaive_evaluation(
    program: Program,
    database: Database,
    semiring: Semiring,
    weights: Optional[Mapping[Fact, object]] = None,
    ground: Optional[GroundProgram] = None,
    max_iterations: Optional[int] = None,
    raise_on_divergence: bool = False,
    grounding_engine: Optional[str] = None,
) -> EvaluationResult:
    """Explicitly semi-naive evaluation; signature mirrors
    :func:`repro.datalog.evaluation.naive_evaluation`."""
    return FixpointEngine(SEMINAIVE, grounding_engine).evaluate(
        program,
        database,
        semiring,
        weights=weights,
        ground=ground,
        max_iterations=max_iterations,
        raise_on_divergence=raise_on_divergence,
    )


def _seminaive_fixpoint(
    ground: GroundProgram,
    semiring: Semiring,
    edb_value: Mapping[Fact, object],
    idb_facts: List[Fact],
    max_iterations: int,
) -> Tuple[Dict[Fact, object], int, bool, int]:
    """The delta-driven loop; see the module docstring for the scheme.

    Returns ``(values, iterations, converged, rule_evaluations)`` where
    ``rule_evaluations`` counts ``⊗``-term recomputations -- the cost
    metric compared against naive in ``benchmarks/bench_seminaive.py``.
    """
    rules = ground.rules
    by_body = ground.rules_by_idb_body
    by_head = ground.rule_indices_by_head
    mul, add, eq, zero = semiring.mul, semiring.add, semiring.eq, semiring.zero

    # Stage-invariant EDB products, exactly as in the naive loop.
    edb_product = [
        semiring.mul_all(edb_value[fact] for fact in rule.edb_body) for rule in rules
    ]
    # Cached ⊗-term of every ground rule at the values it last saw;
    # round 1 marks every rule dirty, so all entries are filled before
    # the first re-fold reads them.
    rule_term: List[object] = [zero] * len(rules)

    values: Dict[Fact, object] = {fact: zero for fact in idb_facts}
    dirty_rules: Iterable[int] = range(len(rules))
    iterations = 0
    converged = False
    rule_evaluations = 0
    while iterations < max_iterations:
        dirty_heads: Set[Fact] = set()
        for position in dirty_rules:
            rule = rules[position]
            term = edb_product[position]
            for body_fact in rule.idb_body:
                term = mul(term, values[body_fact])
            rule_term[position] = term
            rule_evaluations += 1
            dirty_heads.add(rule.head)
        # Re-fold dirty heads from cached terms; batch the updates so
        # every term in this round read the previous round's values
        # (Jacobi order, matching naive evaluation round for round).
        delta: Dict[Fact, object] = {}
        for head in dirty_heads:
            total = zero
            for position in by_head[head]:
                total = add(total, rule_term[position])
            if not eq(total, values[head]):
                delta[head] = total
        iterations += 1
        if not delta:
            converged = True
            break
        values.update(delta)
        next_dirty: Set[int] = set()
        for fact in delta:
            next_dirty.update(by_body.get(fact, ()))
        dirty_rules = sorted(next_dirty)
    return values, iterations, converged, rule_evaluations
