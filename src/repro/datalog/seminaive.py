"""Semi-naive evaluation with indexed deltas, and the FixpointEngine API.

:func:`repro.datalog.evaluation.naive_evaluation` implements the
paper's Section 2.3 fixpoint literally: every round re-multiplies every
ground rule and re-folds every head, so a run costs
``O(iterations × |ground rules|)`` rule evaluations even when almost
nothing changed between rounds.  This module provides the *semi-naive*
alternative and the common :class:`FixpointEngine` front-end through
which both strategies are selected.

Semi-naive evaluation (round ``t``):

1. **Delta set** -- the IDB facts whose value changed in round
   ``t − 1``.
2. **Dirty rules** -- via :attr:`GroundProgram.rules_by_idb_body`,
   exactly the ground rules with a delta fact in their body; only
   their ``⊗``-terms are recomputed (every other rule's cached term is
   still current because none of its body values moved).
3. **Dirty heads** -- heads of dirty rules are re-folded with
   ``semiring.add`` over the cached per-rule terms
   (:attr:`GroundProgram.rule_indices_by_head`); a head whose new
   value differs (``semiring.eq``) enters the next delta set.
4. **Convergence** is certified by an empty delta set -- no full
   ``eq`` sweep over all facts is ever needed.

Rounds are Jacobi-style (all round-``t`` terms read round-``t − 1``
values), so the per-round value maps -- and therefore the fixpoint,
the iteration count, the ``converged`` flag and the divergence
behaviour on non-stable semirings -- coincide *exactly* with naive
evaluation; only the number of rule evaluations shrinks.  The
equivalence tests in ``tests/datalog/test_seminaive.py`` pin this.

Trade-off: semi-naive pays ``O(size of grounding)`` once to build the
body index and keeps one cached term per ground rule; naive keeps
nothing.  On groundings that converge in ≤ 2 rounds the two do the
same work; everywhere else semi-naive wins (``benchmarks/
bench_seminaive.py`` measures 2–10× fewer rule evaluations on the
Bellman–Ford and CFG workloads).  Deltas are also the unit any future
incremental or parallel backend consumes, which is why the engine --
not the naive loop -- is the default backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..backends import resolve_backend
from ..config import (
    DEFAULT_FIXPOINT_STRATEGY,
    FIXPOINT_STRATEGIES,
    ConfigLike,
    ExecutionConfig,
    coerce_config,
    merge_legacy_knobs,
)
from ..semirings.base import Semiring
from .analysis import prune_unreachable, require_valid
from .ast import Fact, Program
from .database import Database
from .evaluation import DivergenceError, EvaluationResult, _naive_fixpoint
from .grounding import (
    ColumnarGroundProgram,
    GroundProgram,
    _resolve_engine,
    columnar_grounding,
    derivable_facts,
    relevant_grounding,
)

__all__ = [
    "NAIVE",
    "SEMINAIVE",
    "COLUMNAR",
    "STRATEGIES",
    "DEFAULT_STRATEGY",
    "FixpointEngine",
    "seminaive_evaluation",
]

NAIVE = "naive"
SEMINAIVE = "seminaive"
COLUMNAR = "columnar"
#: The strategy vocabulary and its default live in repro.config (the
#: shared knob module, DESIGN.md §10); the historical names are kept
#: as re-exports because this layer defined them first.  Semi-naive
#: computes the identical fixpoint with strictly fewer rule
#: evaluations, so it is the default backend for the whole repo.
STRATEGIES = FIXPOINT_STRATEGIES
DEFAULT_STRATEGY = DEFAULT_FIXPOINT_STRATEGY


@dataclass(frozen=True)
class FixpointEngine:
    """Datalog fixpoint computation with a selectable strategy.

    ``FixpointEngine()`` uses :data:`DEFAULT_STRATEGY`;
    ``FixpointEngine("naive")`` forces the literal Section 2.3 loop
    (the reference implementation the equivalence tests compare
    against).  ``strategy=None`` also resolves to the default, so
    callers can thread an optional user-facing knob straight through.

    ``grounding_engine`` independently selects the join engine used
    when the engine has to ground the program itself
    (``"indexed"`` | ``"naive"`` | ``"columnar"``, default
    :data:`~repro.datalog.grounding.DEFAULT_GROUNDING_ENGINE`; see
    :func:`~repro.datalog.grounding.relevant_grounding`).  The two
    knobs compose freely: strategy picks how the fixpoint iterates
    over a grounding, grounding_engine picks how that grounding is
    joined together.

    ``config`` is the :mod:`repro.api` facade's spelling of the same
    two knobs: ``FixpointEngine(config=ExecutionConfig(engine=...,
    strategy=...))`` is equivalent to passing them positionally, and
    the engine normalizes either form into both attributes.  A
    ``strategy``/``grounding_engine`` argument that contradicts a
    non-``None`` config field raises :class:`ValueError`.

    The engine is stateless and cheap to construct; all per-run state
    (grounding, caches, deltas) lives inside :meth:`evaluate`.
    """

    strategy: Optional[str] = None
    grounding_engine: Optional[str] = None
    config: Optional[ExecutionConfig] = None

    def __post_init__(self) -> None:
        cfg = coerce_config(self.config)
        for field, knob in (("strategy", self.strategy), ("engine", self.grounding_engine)):
            configured = getattr(cfg, field)
            if knob is not None:
                if configured is not None and configured != knob:
                    raise ValueError(
                        f"FixpointEngine: {field}={knob!r} conflicts with config.{field}={configured!r}"
                    )
                cfg = cfg.evolve(**{field: knob})
        if cfg.strategy is None:
            cfg = cfg.evolve(strategy=DEFAULT_STRATEGY)
        if cfg.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown fixpoint strategy {cfg.strategy!r}; expected one of {STRATEGIES}"
            )
        _resolve_engine(cfg.engine)  # validate eagerly
        object.__setattr__(self, "strategy", cfg.strategy)
        object.__setattr__(self, "grounding_engine", cfg.engine)
        object.__setattr__(self, "config", cfg)

    def evaluate(
        self,
        program: Program,
        database: Database,
        semiring: Semiring,
        weights: Optional[Mapping[Fact, object]] = None,
        ground: Optional[GroundProgram] = None,
        max_iterations: Optional[int] = None,
        raise_on_divergence: bool = False,
        validate: bool = True,
    ) -> EvaluationResult:
        """Least fixpoint of *program* on *database* over *semiring*.

        Same contract as
        :func:`repro.datalog.evaluation.naive_evaluation` (which now
        delegates here): *weights* overrides stored annotations,
        *ground* reuses a precomputed grounding (tuple-space
        :class:`~repro.datalog.grounding.GroundProgram` or id-space
        :class:`~repro.datalog.grounding.ColumnarGroundProgram` --
        each strategy lowers or decodes the other form at the
        boundary), ``max_iterations`` defaults to
        ``max(#IDB facts, 1) + 2`` and guards non-stable semirings.

        ``validate=True`` (the default) re-runs the DL001/DL002 checks
        of :func:`repro.datalog.analysis.require_valid` before any
        grounding, so an unsafe or arity-inconsistent program --
        constructed with ``validate=False`` or mutated after the fact
        -- fails with a :class:`~repro.datalog.analysis
        .ProgramValidationError` instead of a late KeyError or a
        silently wrong answer; ``validate=False`` is the escape hatch.
        With ``config.prune`` set and no precomputed *ground*, rules
        unreachable from the target are dropped
        (:func:`repro.datalog.analysis.prune_unreachable`) before
        grounding; values of reachable facts are preserved exactly.
        """
        if validate:
            require_valid(program)
        if self.config.prune and ground is None:
            program = prune_unreachable(program)
        if self.strategy == COLUMNAR:
            return self._evaluate_columnar(
                program,
                database,
                semiring,
                weights,
                ground,
                max_iterations,
                raise_on_divergence,
            )
        if isinstance(ground, ColumnarGroundProgram):
            ground = ground.to_ground_program()
        if ground is None:
            ground = relevant_grounding(program, database, config=self.config)
        edb_value = dict(database.valuation(semiring))
        if weights:
            edb_value.update(weights)
        idb_facts = sorted(ground.idb_facts, key=repr)
        if max_iterations is None:
            max_iterations = max(len(idb_facts), 1) + 2

        if self.strategy == NAIVE:
            values, iterations, converged, rule_evaluations = _naive_fixpoint(
                ground, semiring, edb_value, idb_facts, max_iterations
            )
        else:
            values, iterations, converged, rule_evaluations = _seminaive_fixpoint(
                ground, semiring, edb_value, idb_facts, max_iterations
            )
        if not converged and raise_on_divergence:
            raise DivergenceError(
                f"{self.strategy} evaluation over {semiring.name} did not "
                f"converge in {max_iterations} iterations"
            )
        return EvaluationResult(
            semiring,
            values,
            iterations,
            converged,
            strategy=self.strategy,
            rule_evaluations=rule_evaluations,
        )

    def _evaluate_columnar(
        self,
        program: Program,
        database: Database,
        semiring: Semiring,
        weights: Optional[Mapping[Fact, object]],
        ground,
        max_iterations: Optional[int],
        raise_on_divergence: bool,
    ) -> EvaluationResult:
        """The id-space fixpoint: ground (or lower) into a
        :class:`~repro.datalog.grounding.ColumnarGroundProgram`, run
        :func:`_columnar_fixpoint` on dense arrays, decode only the
        result values."""
        if ground is None:
            engine = _resolve_engine(self.grounding_engine)
            if engine == "columnar":
                cground = columnar_grounding(program, database)
            else:
                cground = ColumnarGroundProgram.from_ground_program(
                    relevant_grounding(program, database, config=self.config)
                )
        elif isinstance(ground, ColumnarGroundProgram):
            cground = ground
        else:
            cground = ColumnarGroundProgram.from_ground_program(ground)
        edb_value = database.valuation(semiring)  # already a fresh copy
        if weights:
            edb_value.update(weights)
        head_fids = cground.idb_fact_ids()
        if max_iterations is None:
            max_iterations = max(len(head_fids), 1) + 2
        # Backend dispatch (DESIGN.md §13): the vectorized kernel may
        # decline (returns None) whenever bit-exact parity with the
        # Python loop is not provable; both are deterministic, so the
        # from-scratch fallback is exact.
        result = None
        if resolve_backend(self.config.backend) == "vectorized":
            from ..backends.vectorized import vectorized_columnar_fixpoint

            result = vectorized_columnar_fixpoint(cground, semiring, edb_value, max_iterations)
        if result is None:
            result = _columnar_fixpoint(cground, semiring, edb_value, max_iterations)
        value, iterations, converged, rule_evaluations = result
        if not converged and raise_on_divergence:
            raise DivergenceError(
                f"{self.strategy} evaluation over {semiring.name} did not "
                f"converge in {max_iterations} iterations"
            )
        decode = cground.decode_fact
        values = {decode(fid): value[fid] for fid in head_fids}
        return EvaluationResult(
            semiring,
            values,
            iterations,
            converged,
            strategy=COLUMNAR,
            rule_evaluations=rule_evaluations,
        )

    def evaluate_fact(
        self,
        program: Program,
        database: Database,
        semiring: Semiring,
        fact: Fact,
        weights: Optional[Mapping[Fact, object]] = None,
    ):
        """Least-fixpoint value of one IDB *fact* (``0`` if underivable)."""
        return self.evaluate(program, database, semiring, weights).value(fact)

    def boolean_iterations(self, program: Program, database: Database) -> int:
        """Rounds until the Boolean fixpoint (Definition 4.1 probe).

        Uses the set-based semi-naive Boolean closure of
        :func:`repro.datalog.grounding.derivable_facts` regardless of
        strategy -- both strategies take the identical number of
        rounds, and the set-based closure avoids grounding entirely.
        The configured ``grounding_engine`` picks the join engine;
        the round count is engine-independent.
        """
        _, iterations = derivable_facts(program, database, config=self.config)
        return iterations


def seminaive_evaluation(
    program: Program,
    database: Database,
    semiring: Semiring,
    weights: Optional[Mapping[Fact, object]] = None,
    ground: Optional[GroundProgram] = None,
    max_iterations: Optional[int] = None,
    raise_on_divergence: bool = False,
    grounding_engine: Optional[str] = None,
    config: ConfigLike = None,
    validate: bool = True,
) -> EvaluationResult:
    """Explicitly semi-naive evaluation; signature mirrors
    :func:`repro.datalog.evaluation.naive_evaluation`.

    ``grounding_engine=`` is the deprecated spelling of
    ``config=ExecutionConfig(engine=...)``; it still works but warns.
    """
    config = merge_legacy_knobs(
        "seminaive_evaluation", config, engine=("grounding_engine", grounding_engine)
    )
    if config.strategy is not None and config.strategy != SEMINAIVE:
        raise ValueError(
            f"seminaive_evaluation: config.strategy={config.strategy!r} contradicts the "
            "function; use repro.api.solve for a configurable strategy"
        )
    return FixpointEngine(config=config.evolve(strategy=SEMINAIVE)).evaluate(
        program,
        database,
        semiring,
        weights=weights,
        ground=ground,
        max_iterations=max_iterations,
        raise_on_divergence=raise_on_divergence,
        validate=validate,
    )


def _seminaive_fixpoint(
    ground: GroundProgram,
    semiring: Semiring,
    edb_value: Mapping[Fact, object],
    idb_facts: List[Fact],
    max_iterations: int,
) -> Tuple[Dict[Fact, object], int, bool, int]:
    """The delta-driven loop; see the module docstring for the scheme.

    Returns ``(values, iterations, converged, rule_evaluations)`` where
    ``rule_evaluations`` counts ``⊗``-term recomputations -- the cost
    metric compared against naive in ``benchmarks/bench_seminaive.py``.
    """
    rules = ground.rules
    by_body = ground.rules_by_idb_body
    by_head = ground.rule_indices_by_head
    mul, add, eq, zero = semiring.mul, semiring.add, semiring.eq, semiring.zero

    # Stage-invariant EDB products, exactly as in the naive loop.
    edb_product = [
        semiring.mul_all(edb_value[fact] for fact in rule.edb_body) for rule in rules
    ]
    # Cached ⊗-term of every ground rule at the values it last saw;
    # round 1 marks every rule dirty, so all entries are filled before
    # the first re-fold reads them.
    rule_term: List[object] = [zero] * len(rules)

    values: Dict[Fact, object] = {fact: zero for fact in idb_facts}
    dirty_rules: Iterable[int] = range(len(rules))
    iterations = 0
    converged = False
    rule_evaluations = 0
    while iterations < max_iterations:
        dirty_heads: Set[Fact] = set()
        for position in dirty_rules:
            rule = rules[position]
            term = edb_product[position]
            for body_fact in rule.idb_body:
                term = mul(term, values[body_fact])
            rule_term[position] = term
            rule_evaluations += 1
            dirty_heads.add(rule.head)
        # Re-fold dirty heads from cached terms; batch the updates so
        # every term in this round read the previous round's values
        # (Jacobi order, matching naive evaluation round for round).
        delta: Dict[Fact, object] = {}
        for head in dirty_heads:
            total = zero
            for position in by_head[head]:
                total = add(total, rule_term[position])
            if not eq(total, values[head]):
                delta[head] = total
        iterations += 1
        if not delta:
            converged = True
            break
        values.update(delta)
        next_dirty: Set[int] = set()
        for fact in delta:
            next_dirty.update(by_body.get(fact, ()))
        dirty_rules = sorted(next_dirty)
    return values, iterations, converged, rule_evaluations


#: Compiled fixpoint kernels keyed by ``(add, mul)`` expression
#: templates (shared across semiring instances with equal templates).
_FIXPOINT_KERNELS: Dict[Tuple[str, str], object] = {}

#: The delta loop of :func:`_columnar_fixpoint` with the two semiring
#: operations spliced in as expressions (no method call per ⊗/⊕) --
#: the same closure-compiler technique as the circuit runtime's
#: kernels (DESIGN.md §7).  ``eq`` stays a bound-method call: the
#: expression templates only promise ``add``/``mul`` equivalence, and
#: a semiring may override equality independently.
_KERNEL_SOURCE = """\
def _kernel(value, idb_rows, edb_rows, rule_head,
            by_head_ptr, by_head_rules, by_body_ptr, by_body_rules,
            nfacts, nrules, max_iterations, zero, one, eq):
    edb_product = []
    append_product = edb_product.append
    for position in range(nrules):
        term = one
        for fid in edb_rows[position]:
            other = value[fid]
            term = {mul_expr}
        append_product(term)
    rule_term = [zero] * nrules
    head_mark = bytearray(nfacts)
    dirty_rules = range(nrules)
    iterations = 0
    converged = False
    rule_evaluations = 0
    while iterations < max_iterations:
        dirty_heads = []
        for position in dirty_rules:
            term = edb_product[position]
            for fid in idb_rows[position]:
                other = value[fid]
                term = {mul_expr}
            rule_term[position] = term
            head = rule_head[position]
            if not head_mark[head]:
                head_mark[head] = 1
                dirty_heads.append(head)
        rule_evaluations += len(dirty_rules)
        delta_fids = []
        delta_values = []
        for head in dirty_heads:
            head_mark[head] = 0
            total = zero
            for at in range(by_head_ptr[head], by_head_ptr[head + 1]):
                other = rule_term[by_head_rules[at]]
                total = {add_expr}
            if not eq(total, value[head]):
                delta_fids.append(head)
                delta_values.append(total)
        iterations += 1
        if not delta_fids:
            converged = True
            break
        for at in range(len(delta_fids)):
            value[delta_fids[at]] = delta_values[at]
        rule_mark = bytearray(nrules)
        next_dirty = []
        for head in delta_fids:
            for at in range(by_body_ptr[head], by_body_ptr[head + 1]):
                position = by_body_rules[at]
                if not rule_mark[position]:
                    rule_mark[position] = 1
                    next_dirty.append(position)
        next_dirty.sort()
        dirty_rules = next_dirty
    return iterations, converged, rule_evaluations
"""


def _fixpoint_kernel(add_template: str, mul_template: str):
    """The compiled delta-loop kernel for one pair of operation
    templates, generated once and cached."""
    key = (add_template, mul_template)
    kernel = _FIXPOINT_KERNELS.get(key)
    if kernel is None:
        source = _KERNEL_SOURCE.format(
            add_expr=add_template.format(a="total", b="other"),
            mul_expr=mul_template.format(a="term", b="other"),
        )
        namespace: Dict[str, object] = {}
        exec(source, namespace)  # noqa: S102 - closure compiler, pure templates
        kernel = namespace["_kernel"]
        _FIXPOINT_KERNELS[key] = kernel
    return kernel


def _columnar_fixpoint(
    cground: ColumnarGroundProgram,
    semiring: Semiring,
    edb_value: Mapping[Fact, object],
    max_iterations: int,
) -> Tuple[List[object], int, bool, int]:
    """The delta-driven loop of :func:`_seminaive_fixpoint`, run on the
    id-space grounding (DESIGN.md §9).

    Identical round structure (Jacobi: every round-``t`` ⊗-term reads
    round-``t − 1`` values, updates land after all dirty heads are
    re-folded), so values, iteration counts, the ``converged`` flag
    and divergence behaviour coincide with both tuple strategies.
    The representation differs: values live in one dense list indexed
    by fact id (EDB slots filled once from *edb_value*, IDB slots
    starting at ``0``), per-rule cached ⊗-terms in a parallel list,
    and the dirty sets are flat int lists deduplicated through
    ``bytearray`` marks over the CSR adjacency
    (:meth:`~repro.datalog.grounding.ColumnarGroundProgram.by_body_csr`
    /
    :meth:`~repro.datalog.grounding.ColumnarGroundProgram.by_head_csr`)
    -- no :class:`Fact` is hashed or decoded anywhere in the loop.
    Semiring ``⊗``/``⊕`` folds stay object-space calls on the dense
    arrays, so every existing semiring works unchanged (the hybrid
    mode).

    Returns ``(value, iterations, converged, rule_evaluations)`` with
    *value* indexed by fact id; the caller decodes the IDB slots.
    """
    nrules = len(cground)
    nfacts = cground.fact_count
    idb_indptr, idb_flat = cground.idb_indptr, cground.idb_flat
    edb_indptr, edb_flat = cground.edb_indptr, cground.edb_flat
    rule_head = cground.rule_head
    by_head_ptr, by_head_rules = cground.by_head_csr()
    by_body_ptr, by_body_rules = cground.by_body_csr()
    mul, add, eq, zero = semiring.mul, semiring.add, semiring.eq, semiring.zero

    # Dense valuation: EDB slots are decoded once per distinct EDB
    # fact; IDB slots start at 0 exactly like the tuple strategies.
    value: List[object] = [zero] * nfacts
    decode = cground.decode_fact
    for fid in cground.edb_fact_ids():
        value[fid] = edb_value[decode(fid)]

    # Per-rule body rows as small tuples: the ⊗-recomputation re-reads
    # the IDB rows every round a rule is dirty, so one flattening pass
    # beats per-eval CSR range arithmetic.
    idb_rows: List[Tuple[int, ...]] = [
        tuple(idb_flat[idb_indptr[position] : idb_indptr[position + 1]])
        for position in range(nrules)
    ]
    edb_rows: List[Tuple[int, ...]] = [
        tuple(edb_flat[edb_indptr[position] : edb_indptr[position + 1]])
        for position in range(nrules)
    ]
    one = semiring.one

    # Semirings that declare closure-compiler templates (DESIGN.md §7)
    # run the exec-generated kernel -- the identical loop (including
    # the stage-invariant EDB-product pass) with ⊗/⊕ inlined as
    # expressions; everything else takes the generic bound-method loop
    # below.  Both are Jacobi round-for-round.
    if semiring.compiled_add_expr and semiring.compiled_mul_expr:
        kernel = _fixpoint_kernel(semiring.compiled_add_expr, semiring.compiled_mul_expr)
        iterations, converged, rule_evaluations = kernel(
            value,
            idb_rows,
            edb_rows,
            rule_head,
            by_head_ptr,
            by_head_rules,
            by_body_ptr,
            by_body_rules,
            nfacts,
            nrules,
            max_iterations,
            zero,
            one,
            eq,
        )
        return value, iterations, converged, rule_evaluations

    # Stage-invariant EDB products and the per-rule cached term slots.
    edb_product: List[object] = []
    append_product = edb_product.append
    for position in range(nrules):
        term = one
        for fid in edb_rows[position]:
            term = mul(term, value[fid])
        append_product(term)
    rule_term: List[object] = [zero] * nrules

    head_mark = bytearray(nfacts)
    dirty_rules: Iterable[int] = range(nrules)
    iterations = 0
    converged = False
    rule_evaluations = 0
    while iterations < max_iterations:
        dirty_heads: List[int] = []
        for position in dirty_rules:
            term = edb_product[position]
            for fid in idb_rows[position]:
                term = mul(term, value[fid])
            rule_term[position] = term
            rule_evaluations += 1
            head = rule_head[position]
            if not head_mark[head]:
                head_mark[head] = 1
                dirty_heads.append(head)
        # Re-fold dirty heads from cached terms; batch the updates so
        # every term in this round read the previous round's values.
        delta_fids: List[int] = []
        delta_values: List[object] = []
        for head in dirty_heads:
            head_mark[head] = 0
            total = zero
            for at in range(by_head_ptr[head], by_head_ptr[head + 1]):
                total = add(total, rule_term[by_head_rules[at]])
            if not eq(total, value[head]):
                delta_fids.append(head)
                delta_values.append(total)
        iterations += 1
        if not delta_fids:
            converged = True
            break
        for head, total in zip(delta_fids, delta_values):
            value[head] = total
        rule_mark = bytearray(nrules)
        next_dirty: List[int] = []
        for head in delta_fids:
            for at in range(by_body_ptr[head], by_body_ptr[head + 1]):
                position = by_body_rules[at]
                if not rule_mark[position]:
                    rule_mark[position] = 1
                    next_dirty.append(position)
        next_dirty.sort()
        dirty_rules = next_dirty
    return value, iterations, converged, rule_evaluations
