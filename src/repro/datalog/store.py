"""Interned columnar fact storage (DESIGN.md §8).

Every other layer of the engine -- grounding joins, semi-naive deltas,
circuit construction -- ultimately reads tuples out of a fact store.
The historical stores (`Database`'s per-predicate Python ``set``s and
the grounding engines' dict-of-rows indexes) pay per-tuple object
overhead on every probe: each row is a tuple of arbitrary Python
constants, each index probe hashes those constants again, and each
relation scan chases one pointer per cell.

This module is the columnar alternative, the standard layout of
high-performance Datalog engines:

* :class:`SymbolTable` -- constants are *interned* once into dense
  integer ids (``Hashable -> int``); every downstream comparison,
  hash and index key is then machine-int work.  One process-wide
  table (:data:`GLOBAL_SYMBOLS`) is shared by default so ids are
  stable across relations, stores and engine runs -- exactly the
  property a partitioned / multi-process fixpoint needs to exchange
  rows without re-encoding them.  The shared table is append-only
  while ids are live, so long-lived processes scope interning per
  workload with :func:`scoped_symbols` (or tear it down with
  :meth:`SymbolTable.clear` between workloads).
* :class:`ColumnarRelation` -- each relation is a struct-of-arrays:
  one append-only ``array('q')`` per argument position, plus a
  row-key dict for O(1) dedup/membership.  The writer is
  arity-checked; rows are integers end to end.
* :class:`_PatternIndex` -- pattern-keyed indexes stored as
  *contiguous sorted-id arrays*: for a tuple of bound argument
  positions, the row ids are kept sorted by their key, and a lookup
  is **one binary search per bound pattern** (``bisect`` range over
  the sorted keys) instead of one dict probe per candidate tuple.
  Rows appended after an index is built land in a small pending tail
  (a dict) that is merged back into the sorted arrays geometrically
  (amortized ``O(1)`` maintenance per appended row), so lookups stay
  ``O(log n)`` while derived facts stream in during semi-naive
  grounding.
* :class:`DeltaView` -- a zero-copy half-open window over a
  relation's append log.  Because relations are append-only,
  ``store.watermark()`` before a round and ``store.deltas_since()``
  after it give the per-relation delta sets semi-naive iteration
  consumes, without ever materializing a second fact set.

Decoding back to Python constants happens only at the boundary
(:meth:`SymbolTable.decode_row`, :meth:`ColumnarStore.facts`);
:class:`~repro.datalog.database.Database` stays the user-facing façade
and materializes a shared :class:`ColumnarStore` lazily.  The
``engine="columnar"`` join engine in :mod:`repro.datalog.grounding`
runs entirely in id space on top of these primitives.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .ast import DatalogError, Fact

__all__ = [
    "SymbolTable",
    "GLOBAL_SYMBOLS",
    "default_symbols",
    "scoped_symbols",
    "ColumnarRelation",
    "ColumnarStore",
    "DeltaView",
]

#: Index key: a bare id for single-position patterns (kept in a
#: contiguous ``array('q')``), a tuple of ids otherwise.
PatternKey = Union[int, Tuple[int, ...]]

IdRow = Tuple[int, ...]


class SymbolTable:
    """Bidirectional ``Hashable constant <-> dense int id`` interning.

    Ids are assigned densely in first-intern order, so they double as
    indices into the reverse table (:meth:`decode` is a list index).
    Interning is idempotent; :meth:`get` is the non-inserting probe
    used on lookup paths, where an unknown constant means "no row can
    possibly match" and must not grow the table.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._values: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def intern(self, value: Hashable) -> int:
        """The id of *value*, assigning the next dense id on first use."""
        sid = self._ids.get(value)
        if sid is None:
            sid = len(self._values)
            self._ids[value] = sid
            self._values.append(value)
        return sid

    def intern_row(self, values: Iterable[Hashable]) -> IdRow:
        intern = self.intern
        return tuple(intern(v) for v in values)

    def get(self, value: Hashable) -> Optional[int]:
        """The id of *value*, or ``None`` if it was never interned."""
        return self._ids.get(value)

    def get_row(self, values: Iterable[Hashable]) -> Optional[IdRow]:
        """Ids of *values*, or ``None`` as soon as any constant is unknown."""
        ids = self._ids
        out: List[int] = []
        for value in values:
            sid = ids.get(value)
            if sid is None:
                return None
            out.append(sid)
        return tuple(out)

    def decode(self, symbol: int) -> Hashable:
        return self._values[symbol]

    def decode_row(self, symbols: Iterable[int]) -> Tuple[Hashable, ...]:
        values = self._values
        return tuple(values[s] for s in symbols)

    def clear(self) -> None:
        """Forget every interning, in place (the table object survives).

        Ids are dense first-intern ordinals, so clearing re-assigns
        them from 0: every id handed out before the clear is invalid
        afterwards.  Only call when no live :class:`ColumnarStore`,
        cached :meth:`~repro.datalog.database.Database.columnar_store`
        snapshot or :class:`ColumnarGroundProgram` still references
        this table -- e.g. between workloads in a long-lived process,
        after the previous workload's databases are discarded.  For
        isolation *without* a teardown obligation, prefer
        :func:`scoped_symbols`.
        """
        self._ids.clear()
        self._values.clear()

    # -- pickling (shard-worker payloads, DESIGN.md §13) -----------------

    def __getstate__(self) -> List[Hashable]:
        # Ids are dense first-intern ordinals, so the value list alone
        # determines the whole table; the forward dict rebuilds on
        # unpickle, halving the worker payload.
        return self._values

    def __setstate__(self, values: List[Hashable]) -> None:
        self._values = list(values)
        self._ids = {value: sid for sid, value in enumerate(self._values)}


#: The process-wide default table: every constant is interned once,
#: whichever database, store or engine run encounters it first.
#:
#: Process-lifetime contract: the table is append-only while anything
#: references its ids, so a long-lived process that churns through
#: many short-lived databases with unique constants grows it without
#: bound.  Such processes should either scope interning per workload
#: (:func:`scoped_symbols`, which tests and benchmarks here use by
#: default) or :meth:`~SymbolTable.clear` it at a point where no store
#: built on it survives.
GLOBAL_SYMBOLS = SymbolTable()

#: Context-local override of the default interning table; ``None``
#: selects :data:`GLOBAL_SYMBOLS`.  Set via :func:`scoped_symbols`.
_SCOPED_SYMBOLS: ContextVar[Optional[SymbolTable]] = ContextVar(
    "repro_scoped_symbols", default=None
)


def default_symbols() -> SymbolTable:
    """The table stores intern into when none is passed explicitly:
    the innermost :func:`scoped_symbols` table, else
    :data:`GLOBAL_SYMBOLS`."""
    table = _SCOPED_SYMBOLS.get()
    return GLOBAL_SYMBOLS if table is None else table


@contextmanager
def scoped_symbols(table: Optional[SymbolTable] = None):
    """Run a block against a private default symbol table.

    Inside the ``with`` block, every store, database materialization
    or grounding run that would have interned into
    :data:`GLOBAL_SYMBOLS` interns into *table* (a fresh
    :class:`SymbolTable` by default) instead, so transient constants
    are reclaimed with the table when the block's objects die -- the
    process-wide table never sees them.  Scopes nest; the previous
    default is restored on exit.  The binding is context-local
    (:mod:`contextvars`), so concurrent tasks cannot leak scopes into
    each other.

    Stores built inside the scope keep their table reference and stay
    fully usable after exit; only *new* default-table lookups revert.
    """
    if table is None:
        table = SymbolTable()
    token = _SCOPED_SYMBOLS.set(table)
    try:
        yield table
    finally:
        _SCOPED_SYMBOLS.reset(token)


class _PatternIndex:
    """Sorted-id index for one tuple of bound argument positions.

    The committed part is a pair of parallel sequences sorted by key:
    ``_keys`` (an ``array('q')`` of ids for single-position patterns,
    a list of id tuples otherwise) and ``_rows`` (``array('q')`` of
    row indices).  A lookup is a ``bisect_left``/``bisect_right``
    range -- one binary search per bound pattern -- plus a dict probe
    on the pending tail of rows appended since the last merge.  The
    tail is merged back (one two-pointer pass over both sorted runs)
    whenever it outgrows a fixed fraction of the committed part, so
    maintenance costs amortized ``O(1)`` comparisons per appended row
    while lookups stay ``O(log n)``.
    """

    __slots__ = ("positions", "_single", "_keys", "_rows", "_tail", "_tail_rows")

    #: Merge the pending tail once it exceeds committed/_MERGE_FRACTION.
    _MERGE_FRACTION = 8

    def __init__(self, relation: "ColumnarRelation", positions: Tuple[int, ...]):
        self.positions = positions
        self._single = len(positions) == 1
        if self._single:
            column = relation.columns[positions[0]]
            order = sorted(range(len(column)), key=column.__getitem__)
            self._keys: Union[array, List[Tuple[int, ...]]] = array(
                "q", (column[i] for i in order)
            )
        else:
            columns = [relation.columns[p] for p in positions]
            keys = [tuple(col[i] for col in columns) for i in range(len(relation))]
            order = sorted(range(len(keys)), key=keys.__getitem__)
            self._keys = [keys[i] for i in order]
        self._rows = array("q", order)
        self._tail: Dict[PatternKey, List[int]] = {}
        self._tail_rows = 0

    def add(self, key: PatternKey, row: int) -> None:
        """Register a freshly appended *row* under *key*."""
        self._tail.setdefault(key, []).append(row)
        self._tail_rows += 1
        if self._tail_rows * self._MERGE_FRACTION > len(self._rows):
            self._merge_tail()

    def _merge_tail(self) -> None:
        if not self._tail:
            return
        pending = sorted(
            (key, row) for key, rows in self._tail.items() for row in rows
        )
        # Two-pointer merge of the committed run with the sorted tail:
        # O(committed + tail) total, and the trigger fires only after
        # committed/_MERGE_FRACTION appends, so maintenance is
        # amortized O(1) comparisons per appended row.
        keys, rows = self._keys, self._rows
        merged: List[Tuple[PatternKey, int]] = []
        at, committed = 0, len(rows)
        for key, row in pending:
            while at < committed and keys[at] <= key:
                merged.append((keys[at], rows[at]))
                at += 1
            merged.append((key, row))
        while at < committed:
            merged.append((keys[at], rows[at]))
            at += 1
        if self._single:
            self._keys = array("q", (k for k, _ in merged))
        else:
            self._keys = [k for k, _ in merged]
        self._rows = array("q", (r for _, r in merged))
        self._tail.clear()
        self._tail_rows = 0

    def lookup(self, key: PatternKey) -> List[int]:
        """Row indices whose key equals *key* (bisect range + tail probe)."""
        keys = self._keys
        lo = bisect_left(keys, key)
        hi = bisect_right(keys, key, lo)
        out = list(self._rows[lo:hi])
        if self._tail_rows:
            out.extend(self._tail.get(key, ()))
        return out


class ColumnarRelation:
    """One relation as parallel append-only ``array('q')`` columns.

    The writer (:meth:`append`) is arity-checked and deduplicating:
    the row-key dict maps each id row to its row index, giving O(1)
    membership (:meth:`__contains__`, :meth:`row_index`) and making
    the append log a set.  Pattern indexes are built lazily per
    position tuple (:meth:`index_for`) and maintained incrementally as
    rows are appended.
    """

    __slots__ = ("predicate", "arity", "columns", "_row_index", "_indexes")

    def __init__(self, predicate: str, arity: int):
        self.predicate = predicate
        self.arity = arity
        self.columns: Tuple[array, ...] = tuple(array("q") for _ in range(arity))
        self._row_index: Dict[IdRow, int] = {}
        self._indexes: Dict[Tuple[int, ...], _PatternIndex] = {}

    def __len__(self) -> int:
        return len(self._row_index)

    def __contains__(self, ids: IdRow) -> bool:
        return ids in self._row_index

    def row_index(self, ids: IdRow) -> Optional[int]:
        return self._row_index.get(ids)

    def append(self, ids: IdRow) -> Optional[int]:
        """Append an id row; its new row index, or ``None`` if resident."""
        if len(ids) != self.arity:
            raise DatalogError(
                f"arity clash on {self.predicate!r}: got {len(ids)} ids, "
                f"relation has arity {self.arity}"
            )
        if ids in self._row_index:
            return None
        row = len(self._row_index)
        self._row_index[ids] = row
        for column, sid in zip(self.columns, ids):
            column.append(sid)
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                index.add(ids[positions[0]], row)
            else:
                index.add(tuple(ids[p] for p in positions), row)
        return row

    def row(self, index: int) -> IdRow:
        return tuple(column[index] for column in self.columns)

    def id_rows(self, start: int = 0, stop: Optional[int] = None) -> Iterator[IdRow]:
        """Iterate id rows ``[start, stop)`` in append order."""
        if stop is None:
            stop = len(self)
        columns = self.columns
        for i in range(start, stop):
            yield tuple(column[i] for column in columns)

    def index_for(self, positions: Tuple[int, ...]) -> _PatternIndex:
        """The sorted-id index for *positions*, built lazily once."""
        index = self._indexes.get(positions)
        if index is None:
            index = _PatternIndex(self, positions)
            self._indexes[positions] = index
        return index

    def lookup(self, positions: Tuple[int, ...], key: PatternKey) -> Sequence[int]:
        """Row indices agreeing with *key* on *positions*.

        An empty *positions* means a full scan (all row indices).
        """
        if not positions:
            return range(len(self))
        return self.index_for(positions).lookup(key)

    def remove(self, ids: IdRow) -> bool:
        """Remove one id row; ``True`` iff it was resident.

        Removal is swap-with-last: the final row moves into the freed
        slot so the columns stay dense, which renumbers that one row.
        Pattern indexes (and their pending tails) are dropped and
        rebuild lazily, and any outstanding :class:`DeltaView` windows
        or :meth:`ColumnarStore.watermark` marks are invalidated --
        the maintenance layer (:mod:`repro.datalog.incremental`) only
        removes rows *between* delta passes for exactly this reason.
        """
        row = self._row_index.pop(ids, None)
        if row is None:
            return False
        last = len(self._row_index)
        if row != last:
            moved = tuple(column[last] for column in self.columns)
            for column in self.columns:
                column[row] = column[last]
            self._row_index[moved] = row
        for column in self.columns:
            column.pop()
        self._indexes.clear()
        return True

    def copy(self) -> "ColumnarRelation":
        """Independent copy of the columns and row keys.

        Pattern indexes are *not* copied -- they rebuild lazily on
        first use, which keeps copies (taken by every grounder run
        before it appends derived facts) proportional to the data,
        not to the index footprint.
        """
        clone = ColumnarRelation(self.predicate, self.arity)
        clone.columns = tuple(array("q", column) for column in self.columns)
        clone._row_index = dict(self._row_index)
        return clone

    def __getstate__(self) -> Tuple:
        # Columns are the ground truth; the row-key dict rebuilds on
        # unpickle and pattern indexes rebuild lazily on first use.
        # The explicit row count disambiguates the nullary relation
        # (whose single row has no columns to witness it).
        return (self.predicate, self.arity, self.columns, len(self._row_index))

    def __setstate__(self, state: Tuple) -> None:
        self.predicate, self.arity, self.columns, count = state
        if self.arity:
            self._row_index = {row: at for at, row in enumerate(zip(*self.columns))}
        else:
            self._row_index = {(): 0} if count else {}
        self._indexes = {}


@dataclass(frozen=True)
class DeltaView:
    """Half-open window ``[start, stop)`` over a relation's append log.

    The unit of semi-naive iteration: because relations are
    append-only and deduplicating, the rows appended between two
    watermarks are exactly the facts *new to the store* in that round
    -- re-derived duplicates never enter a delta.  The view is
    zero-copy; :meth:`id_rows` reads straight from the columns.
    """

    relation: ColumnarRelation
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def predicate(self) -> str:
        return self.relation.predicate

    def id_rows(self) -> Iterator[IdRow]:
        return self.relation.id_rows(self.start, self.stop)

    def facts(self, symbols: SymbolTable) -> Iterator[Fact]:
        predicate = self.relation.predicate
        for ids in self.id_rows():
            yield Fact(predicate, symbols.decode_row(ids))


class ColumnarStore:
    """A set of :class:`ColumnarRelation`\\ s over one symbol table.

    The id-space backend behind ``engine="columnar"``: facts go in
    through the interning writers (:meth:`insert_fact`,
    :meth:`insert_ids`), joins read row indices out of the bisect
    indexes (:meth:`ColumnarRelation.lookup`), and semi-naive rounds
    consume :class:`DeltaView` windows between :meth:`watermark`
    calls.  Decoding happens only at the boundary (:meth:`facts`).

    Relations are keyed by ``(predicate, arity)``: a
    :class:`Database` may hold one predicate at several arities
    (programs forbid it, inputs do not), and wrong-arity tuples must
    simply never match an atom -- exactly the behaviour of the
    tuple-based engines -- rather than clash in one fixed-arity
    column set.
    """

    __slots__ = ("symbols", "_relations")

    def __init__(self, symbols: Optional[SymbolTable] = None):
        self.symbols = default_symbols() if symbols is None else symbols
        self._relations: Dict[Tuple[str, int], ColumnarRelation] = {}

    @classmethod
    def from_facts(
        cls, facts: Iterable[Fact], symbols: Optional[SymbolTable] = None
    ) -> "ColumnarStore":
        store = cls(symbols)
        for fact in facts:
            store.insert_fact(fact)
        return store

    # -- writers ---------------------------------------------------------

    def relation(self, predicate: str, arity: Optional[int] = None) -> Optional[ColumnarRelation]:
        """The relation for ``predicate/arity``.

        With ``arity=None``, the relation is returned only when the
        predicate occurs at exactly one arity (the common case and the
        convenient form for direct store users); joins always pass the
        atom's arity explicitly.
        """
        if arity is not None:
            return self._relations.get((predicate, arity))
        found = [rel for (pred, _), rel in self._relations.items() if pred == predicate]
        return found[0] if len(found) == 1 else None

    def insert_ids(self, predicate: str, ids: IdRow) -> bool:
        """Append an already-interned row; True iff it was new."""
        key = (predicate, len(ids))
        relation = self._relations.get(key)
        if relation is None:
            relation = ColumnarRelation(predicate, len(ids))
            self._relations[key] = relation
        return relation.append(ids) is not None

    def insert_fact(self, fact: Fact) -> bool:
        """Intern and append one fact; True iff it was new."""
        return self.insert_ids(fact.predicate, self.symbols.intern_row(fact.args))

    def remove_ids(self, predicate: str, ids: IdRow) -> bool:
        """Remove one interned row; True iff it was resident.

        See :meth:`ColumnarRelation.remove` for the swap-with-last
        semantics and the delta-window caveat.
        """
        relation = self._relations.get((predicate, len(ids)))
        return relation is not None and relation.remove(ids)

    def remove_fact(self, fact: Fact) -> bool:
        """Remove one fact if its constants are known; True iff removed.

        Symbol interning is append-only, so removal never shrinks the
        symbol table -- only the relation columns.
        """
        ids = self.symbols.get_row(fact.args)
        return ids is not None and self.remove_ids(fact.predicate, ids)

    # -- readers ---------------------------------------------------------

    def predicates(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(pred for pred, _ in self._relations))

    def size(self, predicate: str, arity: Optional[int] = None) -> int:
        if arity is not None:
            relation = self._relations.get((predicate, arity))
            return 0 if relation is None else len(relation)
        return sum(
            len(rel) for (pred, _), rel in self._relations.items() if pred == predicate
        )

    def __len__(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    def contains_fact(self, fact: Fact) -> bool:
        relation = self._relations.get((fact.predicate, fact.arity))
        if relation is None:
            return False
        ids = self.symbols.get_row(fact.args)
        return ids is not None and ids in relation

    def facts(self, predicate: Optional[str] = None) -> Iterator[Fact]:
        """Decode back to :class:`Fact` objects (boundary use only)."""
        decode_row = self.symbols.decode_row
        for pred, arity in sorted(self._relations):
            if predicate is not None and pred != predicate:
                continue
            for ids in self._relations[(pred, arity)].id_rows():
                yield Fact(pred, decode_row(ids))

    # -- deltas ----------------------------------------------------------

    def watermark(self) -> Dict[Tuple[str, int], int]:
        """Per-relation row counts; pair with :meth:`deltas_since`."""
        return {key: len(rel) for key, rel in self._relations.items()}

    def deltas_since(
        self, watermark: Dict[Tuple[str, int], int]
    ) -> Dict[Tuple[str, int], DeltaView]:
        """Non-empty :class:`DeltaView`\\ s of rows appended after *watermark*,
        keyed by ``(predicate, arity)``."""
        out: Dict[Tuple[str, int], DeltaView] = {}
        for key, relation in self._relations.items():
            start = watermark.get(key, 0)
            stop = len(relation)
            if stop > start:
                out[key] = DeltaView(relation, start, stop)
        return out

    # -- lifecycle -------------------------------------------------------

    def copy(self) -> "ColumnarStore":
        """Independent store sharing the symbol table.

        The cheap way for a grounder to get a mutable store seeded
        with a database's EDB: columns are block-copied arrays, no
        re-interning, no re-hashing of Python constants.
        """
        clone = ColumnarStore(self.symbols)
        clone._relations = {
            pred: relation.copy() for pred, relation in self._relations.items()
        }
        return clone

    def __getstate__(self) -> Tuple:
        # Pickling detaches the store from the process-wide symbol
        # scope: the unpickled twin (a shard-worker payload) owns a
        # private SymbolTable with identical dense ids, which is
        # exactly what makes cross-process shard hashes stable.
        return (self.symbols, self._relations)

    def __setstate__(self, state: Tuple) -> None:
        self.symbols, self._relations = state

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{pred}/{arity}:{len(rel)}"
            for (pred, arity), rel in sorted(self._relations.items())
        )
        return f"ColumnarStore({parts or 'empty'}, symbols={len(self.symbols)})"
