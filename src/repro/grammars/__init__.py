"""Grammar and automata substrate for basic chain Datalog (Section 5).

CFGs with finiteness decision and constructive pumping; regexes, NFAs
and DFAs with minimization and regular pumping witnesses; the chain
Datalog ⟷ grammar correspondence of Proposition 5.2; semiring-weighted
CFL-reachability and RPQ evaluation via the product construction.
"""

from .cfg import CFG, GrammarError, Production, PumpingDecomposition, pumping_decomposition
from .cflr import cfl_reachability, cfl_reachable_pairs, chain_program_for
from .chain import (
    cfg_to_chain_program,
    chain_program_to_cfg,
    dfa_to_chain_program,
    rpq_program,
)
from .regular import (
    DFA,
    NFA,
    ConcatRegex,
    EmptyRegex,
    EpsilonRegex,
    Regex,
    RegularPumpingWitness,
    StarRegex,
    SymbolRegex,
    UnionRegex,
    parse_regex,
    regular_pumping_witness,
)
from .rpq import ProductGraph, product_graph, rpq_pairs, solve_rpq

__all__ = [
    "CFG",
    "Production",
    "GrammarError",
    "PumpingDecomposition",
    "pumping_decomposition",
    "Regex",
    "EmptyRegex",
    "EpsilonRegex",
    "SymbolRegex",
    "ConcatRegex",
    "UnionRegex",
    "StarRegex",
    "parse_regex",
    "NFA",
    "DFA",
    "RegularPumpingWitness",
    "regular_pumping_witness",
    "chain_program_to_cfg",
    "cfg_to_chain_program",
    "dfa_to_chain_program",
    "rpq_program",
    "cfl_reachability",
    "cfl_reachable_pairs",
    "chain_program_for",
    "ProductGraph",
    "product_graph",
    "solve_rpq",
    "rpq_pairs",
]
