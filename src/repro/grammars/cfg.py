"""Context-free grammars: normalization, finiteness, pumping.

Basic chain Datalog programs correspond to CFGs (Proposition 5.2);
their boundedness is exactly the *finiteness* of the grammar's
language (Proposition 5.5), and the lower-bound reduction of Theorem
5.11 needs an explicit *pumping decomposition* ``u v w x y`` with
``A ⇒⁺ vAx``.  This module supplies all three ingredients:

* cleaning: ε-elimination, unit-elimination, removal of useless
  symbols (:meth:`CFG.trim`, :meth:`CFG.normalized`);
* :meth:`CFG.is_finite` -- acyclicity of the nonterminal dependency
  graph of the normalized grammar (decidable in polynomial time, as
  used by the paper to decide chain-program boundedness);
* :func:`pumping_decomposition` -- a constructive witness
  ``(u, v, w, x, y)`` with ``|vx| ≥ 1`` and ``uvⁱwxⁱy ∈ L`` for all i;
* word generation and CYK membership for cross-validation.

Symbols are plain strings; terminals and nonterminals are explicit
disjoint sets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Production", "CFG", "GrammarError", "PumpingDecomposition", "pumping_decomposition"]

Word = Tuple[str, ...]


class GrammarError(ValueError):
    """Malformed grammar or unsupported operation."""


@dataclass(frozen=True)
class Production:
    """``lhs → rhs`` with ``rhs`` a (possibly empty) symbol tuple."""

    lhs: str
    rhs: Tuple[str, ...]

    def __init__(self, lhs: str, rhs: Iterable[str]):
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", tuple(rhs))

    def __repr__(self) -> str:
        return f"{self.lhs} → {' '.join(self.rhs) or 'ε'}"


class CFG:
    """An explicit context-free grammar."""

    def __init__(
        self,
        nonterminals: Iterable[str],
        terminals: Iterable[str],
        productions: Iterable[Production | Tuple[str, Iterable[str]]],
        start: str,
    ):
        self.nonterminals = frozenset(nonterminals)
        self.terminals = frozenset(terminals)
        if self.nonterminals & self.terminals:
            raise GrammarError(
                f"symbols both terminal and nonterminal: {self.nonterminals & self.terminals}"
            )
        self.start = start
        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} is not a nonterminal")
        normalized: List[Production] = []
        for item in productions:
            production = item if isinstance(item, Production) else Production(*item)
            if production.lhs not in self.nonterminals:
                raise GrammarError(f"production head {production.lhs!r} not a nonterminal")
            for symbol in production.rhs:
                if symbol not in self.nonterminals and symbol not in self.terminals:
                    raise GrammarError(f"unknown symbol {symbol!r} in {production}")
            normalized.append(production)
        self.productions: Tuple[Production, ...] = tuple(dict.fromkeys(normalized))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rules(cls, rules: str, start: Optional[str] = None) -> "CFG":
        """Parse a compact notation, e.g. ``"S -> a S b | a b"``.

        Lines hold ``LHS -> alt₁ | alt₂``; symbols are whitespace-
        separated; ``eps`` denotes the empty word.  Uppercase-initial
        symbols on some left-hand side are nonterminals; everything
        else is a terminal.
        """
        productions: List[Tuple[str, Tuple[str, ...]]] = []
        heads: Set[str] = set()
        for line in rules.strip().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            lhs, _, rest = line.partition("->")
            lhs = lhs.strip()
            heads.add(lhs)
            for alternative in rest.split("|"):
                symbols = tuple(s for s in alternative.split() if s != "eps")
                productions.append((lhs, symbols))
        symbols_used: Set[str] = set()
        for _, rhs in productions:
            symbols_used.update(rhs)
        terminals = symbols_used - heads
        return cls(heads, terminals, productions, start or next(iter(heads & {productions[0][0]})))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def productions_for(self, nonterminal: str) -> Tuple[Production, ...]:
        return tuple(p for p in self.productions if p.lhs == nonterminal)

    def generating_symbols(self) -> FrozenSet[str]:
        """Symbols deriving some terminal word (terminals included)."""
        generating: Set[str] = set(self.terminals)
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                if production.lhs not in generating and all(
                    s in generating for s in production.rhs
                ):
                    generating.add(production.lhs)
                    changed = True
        return frozenset(generating)

    def reachable_symbols(self) -> FrozenSet[str]:
        """Symbols reachable from the start symbol."""
        reachable: Set[str] = {self.start}
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                if production.lhs in reachable:
                    for symbol in production.rhs:
                        if symbol not in reachable:
                            reachable.add(symbol)
                            changed = True
        return frozenset(reachable)

    def useful_nonterminals(self) -> FrozenSet[str]:
        return (self.generating_symbols() & self.reachable_symbols()) & self.nonterminals

    def is_empty(self) -> bool:
        """``L(G) = ∅`` iff the start symbol is not generating."""
        return self.start not in self.generating_symbols()

    def trim(self) -> "CFG":
        """Keep only useful symbols (preserves the language)."""
        if self.is_empty():
            return CFG({self.start}, (), (), self.start)
        generating = self.generating_symbols()
        kept = [
            p
            for p in self.productions
            if p.lhs in generating and all(s in generating for s in p.rhs)
        ]
        reachable: Set[str] = {self.start}
        changed = True
        while changed:
            changed = False
            for production in kept:
                if production.lhs in reachable:
                    for symbol in production.rhs:
                        if symbol not in reachable:
                            reachable.add(symbol)
                            changed = True
        productions = [
            p
            for p in kept
            if p.lhs in reachable and all(s in reachable for s in p.rhs)
        ]
        nonterminals = {self.start} | {p.lhs for p in productions}
        terminals = {
            s for p in productions for s in p.rhs if s in self.terminals
        }
        return CFG(nonterminals, terminals, productions, self.start)

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------

    def nullable_nonterminals(self) -> FrozenSet[str]:
        nullable: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                if production.lhs not in nullable and all(
                    s in nullable for s in production.rhs
                ):
                    nullable.add(production.lhs)
                    changed = True
        return frozenset(nullable)

    def remove_epsilon(self) -> "CFG":
        """Eliminate ε-productions (language loses ε if it had it)."""
        nullable = self.nullable_nonterminals()
        productions: Set[Production] = set()
        for production in self.productions:
            optional_positions = [
                i for i, s in enumerate(production.rhs) if s in nullable
            ]
            for mask in itertools.product((False, True), repeat=len(optional_positions)):
                dropped = {
                    position
                    for position, drop in zip(optional_positions, mask)
                    if drop
                }
                rhs = tuple(
                    s for i, s in enumerate(production.rhs) if i not in dropped
                )
                if rhs:
                    productions.add(Production(production.lhs, rhs))
        return CFG(self.nonterminals, self.terminals, sorted(productions, key=repr), self.start)

    def remove_units(self) -> "CFG":
        """Eliminate unit productions ``A → B``."""
        unit_pairs: Set[Tuple[str, str]] = {(n, n) for n in self.nonterminals}
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                if len(production.rhs) == 1 and production.rhs[0] in self.nonterminals:
                    for a, b in list(unit_pairs):
                        if b == production.lhs and (a, production.rhs[0]) not in unit_pairs:
                            unit_pairs.add((a, production.rhs[0]))
                            changed = True
        productions: Set[Production] = set()
        for a, b in unit_pairs:
            for production in self.productions_for(b):
                is_unit = (
                    len(production.rhs) == 1 and production.rhs[0] in self.nonterminals
                )
                if not is_unit:
                    productions.add(Production(a, production.rhs))
        return CFG(self.nonterminals, self.terminals, sorted(productions, key=repr), self.start)

    def normalized(self) -> "CFG":
        """ε-free, unit-free, trimmed (standard cleaning pipeline)."""
        return self.remove_epsilon().remove_units().trim()

    def binarized(self) -> "CFG":
        """Split bodies longer than 2 with fresh nonterminals.

        Needed by the CFL-reachability solver, which works on (≤2)-ary
        productions.  Applied after :meth:`normalized`.
        """
        grammar = self.normalized()
        productions: List[Production] = []
        nonterminals = set(grammar.nonterminals)
        counter = itertools.count()
        for production in grammar.productions:
            rhs = production.rhs
            lhs = production.lhs
            while len(rhs) > 2:
                fresh = f"_B{next(counter)}"
                while fresh in nonterminals or fresh in grammar.terminals:
                    fresh = f"_B{next(counter)}"
                nonterminals.add(fresh)
                productions.append(Production(lhs, (rhs[0], fresh)))
                lhs, rhs = fresh, rhs[1:]
            productions.append(Production(lhs, rhs))
        return CFG(nonterminals, grammar.terminals, productions, grammar.start)

    def to_cnf(self) -> "CFG":
        """Chomsky normal form of the ε-free language.

        TERM (alias terminals in long bodies) then BIN, after the
        :meth:`normalized` cleaning.  Needed by CYK membership.
        """
        grammar = self.normalized()
        alias: Dict[str, str] = {}
        nonterminals = set(grammar.nonterminals)
        productions: List[Production] = []
        for production in grammar.productions:
            if len(production.rhs) <= 1:
                productions.append(production)
                continue
            rhs: List[str] = []
            for symbol in production.rhs:
                if symbol in grammar.terminals:
                    if symbol not in alias:
                        fresh = f"_T_{symbol}"
                        while fresh in nonterminals or fresh in grammar.terminals:
                            fresh += "_"
                        alias[symbol] = fresh
                        nonterminals.add(fresh)
                    rhs.append(alias[symbol])
                else:
                    rhs.append(symbol)
            productions.append(Production(production.lhs, rhs))
        for symbol, fresh in alias.items():
            productions.append(Production(fresh, (symbol,)))
        termed = CFG(nonterminals, grammar.terminals, productions, grammar.start)
        # BIN: reuse the splitting loop of binarized() on the TERMed grammar.
        out: List[Production] = []
        counter = itertools.count()
        for production in termed.productions:
            rhs = production.rhs
            lhs = production.lhs
            while len(rhs) > 2:
                fresh = f"_C{next(counter)}"
                while fresh in nonterminals or fresh in termed.terminals:
                    fresh = f"_C{next(counter)}"
                nonterminals.add(fresh)
                out.append(Production(lhs, (rhs[0], fresh)))
                lhs, rhs = fresh, rhs[1:]
            out.append(Production(lhs, rhs))
        return CFG(nonterminals, termed.terminals, out, termed.start)

    # ------------------------------------------------------------------
    # Finiteness (Proposition 5.5's decision procedure)
    # ------------------------------------------------------------------

    def _dependency_edges(self) -> Dict[str, Set[str]]:
        edges: Dict[str, Set[str]] = {n: set() for n in self.nonterminals}
        for production in self.productions:
            for symbol in production.rhs:
                if symbol in self.nonterminals:
                    edges[production.lhs].add(symbol)
        return edges

    def is_finite(self) -> bool:
        """``|L(G)| < ∞`` iff the normalized dependency graph is acyclic.

        After ε/unit elimination and trimming, a cycle ``A ⇒⁺ ... A
        ...`` pumps a nonempty context, so the language is infinite;
        conversely an acyclic graph bounds derivation height and hence
        word length.
        """
        grammar = self.normalized()
        if grammar.start not in {p.lhs for p in grammar.productions} and not any(
            p.lhs == grammar.start for p in grammar.productions
        ):
            return True  # empty or {ε}: finite
        edges = grammar._dependency_edges()
        # Cycle detection (iterative DFS with colors).
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in edges}
        for root in edges:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [(root, iter(edges[root]))]
            color[root] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == GRAY:
                        return False
                    if color[child] == WHITE:
                        color[child] = GRAY
                        stack.append((child, iter(edges[child])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    # ------------------------------------------------------------------
    # Word generation and membership
    # ------------------------------------------------------------------

    def shortest_terminal_words(self) -> Dict[str, Word]:
        """Shortest word derivable from each symbol (terminals: itself)."""
        best: Dict[str, Word] = {t: (t,) for t in self.terminals}
        changed = True
        while changed:
            changed = False
            for production in self.productions:
                if all(s in best for s in production.rhs):
                    candidate: Word = tuple(
                        itertools.chain.from_iterable(best[s] for s in production.rhs)
                    )
                    current = best.get(production.lhs)
                    if current is None or len(candidate) < len(current):
                        best[production.lhs] = candidate
                        changed = True
        return best

    def generate_words(self, max_length: int, limit: int = 500_000) -> Set[Word]:
        """All words of length ≤ *max_length*.

        Works on the normalized (ε-free, unit-free, trimmed) grammar,
        where every symbol derives at least one terminal -- so any
        sentential form longer than *max_length* can be pruned and the
        search space is finite.  ε is re-added when the start symbol
        is nullable in the original grammar.
        """
        words: Set[Word] = set()
        if self.start in self.nullable_nonterminals() and max_length >= 0:
            words.add(())
        grammar = self.normalized()
        if grammar.is_empty():
            return words
        seen: Set[Tuple[str, ...]] = {(grammar.start,)}
        frontier: List[Tuple[str, ...]] = [(grammar.start,)]
        steps = 0
        while frontier and steps < limit:
            form = frontier.pop()
            steps += 1
            first_nt = next(
                (i for i, s in enumerate(form) if s in grammar.nonterminals), None
            )
            if first_nt is None:
                words.add(form)
                continue
            for production in grammar.productions_for(form[first_nt]):
                expanded = form[:first_nt] + production.rhs + form[first_nt + 1 :]
                # ε/unit-freeness: every symbol yields ≥ 1 terminal, so
                # longer forms can never shrink under max_length again.
                if len(expanded) <= max_length and expanded not in seen:
                    seen.add(expanded)
                    frontier.append(expanded)
        return words

    def accepts(self, word: Sequence[str]) -> bool:
        """CYK membership on the binarized grammar; ε via nullability."""
        word = tuple(word)
        if not word:
            return self.start in self.nullable_nonterminals()
        grammar = self.to_cnf()
        n = len(word)
        # table[i][j] = nonterminals deriving word[i:i+j+1]
        table: List[List[Set[str]]] = [[set() for _ in range(n)] for _ in range(n)]
        for i, symbol in enumerate(word):
            for production in grammar.productions:
                if production.rhs == (symbol,):
                    table[i][0].add(production.lhs)
        for span in range(2, n + 1):
            for i in range(n - span + 1):
                cell = table[i][span - 1]
                for split in range(1, span):
                    left = table[i][split - 1]
                    right = table[i + split][span - split - 1]
                    if not left or not right:
                        continue
                    for production in grammar.productions:
                        if len(production.rhs) == 2:
                            b, c = production.rhs
                            if b in left and c in right:
                                cell.add(production.lhs)
        return self.start in table[0][n - 1]

    def __repr__(self) -> str:
        lines = [f"CFG(start={self.start!r})"]
        lines.extend(f"  {p}" for p in self.productions)
        return "\n".join(lines)


@dataclass(frozen=True)
class PumpingDecomposition:
    """A constructive CFG pumping witness: ``S ⇒* u A y``, ``A ⇒⁺ v A x``,
    ``A ⇒* w``; hence ``u vⁱ w xⁱ y ∈ L`` for every ``i ≥ 0``.

    This is the object Theorem 5.11's reduction consumes (its
    ``u, v, w, x, y``).  Guarantees ``|vx| ≥ 1``.
    """

    u: Word
    v: Word
    w: Word
    x: Word
    y: Word
    pivot: str

    def pumped(self, i: int) -> Word:
        return self.u + self.v * i + self.w + self.x * i + self.y

    def __repr__(self) -> str:
        def fmt(word: Word) -> str:
            return "".join(word) or "ε"

        return (
            f"PumpingDecomposition(u={fmt(self.u)}, v={fmt(self.v)}, w={fmt(self.w)}, "
            f"x={fmt(self.x)}, y={fmt(self.y)}, pivot={self.pivot})"
        )


def pumping_decomposition(grammar: CFG) -> Optional[PumpingDecomposition]:
    """Find a pumping witness; ``None`` when the language is finite.

    Works on the normalized grammar: a cycle ``A₀ → A₁ → ... → A₀`` in
    the dependency graph is unrolled, expanding the context symbols of
    each step to shortest terminal words; ε/unit-freeness guarantees
    the pumped context ``v·x`` is nonempty.
    """
    normalized = grammar.normalized()
    if normalized.is_finite():
        return None
    edges = normalized._dependency_edges()
    shortest = normalized.shortest_terminal_words()

    # Locate a cycle via DFS.
    def find_cycle() -> List[str]:
        WHITE, GRAY = 0, 1
        color: Dict[str, int] = {n: WHITE for n in edges}
        parent: Dict[str, str] = {}
        for root in edges:
            if color[root] != WHITE:
                continue
            stack = [(root, iter(edges[root]))]
            color[root] = GRAY
            path = [root]
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == GRAY and child in path:
                        return path[path.index(child) :]
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, iter(edges[child])))
                        path.append(child)
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    path.pop()
        raise GrammarError("infinite grammar without a cycle (internal error)")

    cycle = find_cycle()
    pivot = cycle[0]

    # Unroll the cycle once: pivot ⇒+ v pivot x.  Among the candidate
    # productions/occurrences, prefer one with a nonempty left context
    # so that |v| ≥ 1 whenever the grammar allows it -- the Theorem 5.11
    # reduction expands each edge into the word v and needs it nonempty.
    v: List[str] = []
    x: List[str] = []
    current = pivot
    for next_nt in cycle[1:] + [pivot]:
        candidates = [
            (p, i)
            for p in normalized.productions_for(current)
            for i, symbol in enumerate(p.rhs)
            if symbol == next_nt
        ]
        candidates.sort(key=lambda pair: pair[1] == 0)  # prefix-first
        production, position = candidates[0]
        for symbol in production.rhs[:position]:
            v.extend(shortest[symbol])
        suffix: List[str] = []
        for symbol in production.rhs[position + 1 :]:
            suffix.extend(shortest[symbol])
        x[:0] = suffix  # prepend: inner contexts nest inside outer ones
        current = next_nt

    w = shortest[pivot]

    # Derive S ⇒* u pivot y: BFS over "contains" edges recording the
    # production and position used.
    parents: Dict[str, Tuple[str, Production, int]] = {}
    frontier = [normalized.start]
    seen = {normalized.start}
    while frontier:
        node = frontier.pop(0)
        if node == pivot:
            break
        for production in normalized.productions_for(node):
            for position, symbol in enumerate(production.rhs):
                if symbol in normalized.nonterminals and symbol not in seen:
                    seen.add(symbol)
                    parents[symbol] = (node, production, position)
                    frontier.append(symbol)
    u: List[str] = []
    y: List[str] = []
    node = pivot
    while node != normalized.start:
        origin, production, position = parents[node]
        prefix: List[str] = []
        for symbol in production.rhs[:position]:
            prefix.extend(shortest[symbol])
        suffix = []
        for symbol in production.rhs[position + 1 :]:
            suffix.extend(shortest[symbol])
        u[:0] = prefix
        y.extend(suffix)
        node = origin

    decomposition = PumpingDecomposition(
        tuple(u), tuple(v), tuple(w), tuple(x), tuple(y), pivot
    )
    if not decomposition.v and not decomposition.x:
        raise GrammarError("pumping produced an empty context (internal error)")
    return decomposition
