"""Context-free reachability over semirings (Definition 5.1).

Given an edge-labeled graph and a CFG ``L``, CFL-reachability asks for
all pairs ``(s, t)`` connected by a path whose label word lies in
``L``.  Over a semiring it returns, per pair, the provenance value --
the ``⊕``-sum over such paths of the ``⊗``-product of edge tags.

The solver reuses the Datalog engine: the (binarized) grammar becomes
a chain program (Proposition 5.2) which is handed to the
:class:`~repro.datalog.seminaive.FixpointEngine` (semi-naive by
default; pass ``strategy="naive"`` to force the reference loop).  This
keeps a single trusted fixpoint engine for Datalog, RPQs and
CFL-reachability alike.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from ..config import ConfigLike, merge_legacy_knobs
from ..datalog.ast import Fact, Program
from ..datalog.database import Database
from ..datalog.evaluation import EvaluationResult, naive_evaluation
from ..semirings.base import Semiring
from .cfg import CFG
from .chain import cfg_to_chain_program

__all__ = ["cfl_reachability", "cfl_reachable_pairs", "chain_program_for"]

Vertex = Hashable
Edge = Tuple[Vertex, str, Vertex]


def chain_program_for(grammar: CFG) -> Program:
    """The chain Datalog program of the binarized grammar."""
    return cfg_to_chain_program(grammar.binarized())


def cfl_reachability(
    grammar: CFG,
    edges: Iterable[Edge] | Database,
    semiring: Semiring,
    weights: Optional[Mapping[Fact, object]] = None,
    max_iterations: Optional[int] = None,
    strategy: Optional[str] = None,
    config: ConfigLike = None,
) -> Dict[Tuple[Vertex, Vertex], object]:
    """Solve weighted CFL-reachability.

    *edges* is an iterable of ``(u, label, v)`` triples (labels must
    be the grammar's terminals) or a pre-built labeled
    :class:`Database`.  Returns ``(s, t) → value`` for every pair
    whose value is nonzero, where the value is the semiring provenance
    of the start nonterminal.

    ε ∈ L(grammar) would demand ``(v, v)`` pairs with value ``1`` for
    every vertex; the chain encoding cannot express it, so it is
    reported by raising ``ValueError`` (callers of the paper's
    constructions never need ε).
    """
    if () in {p.rhs for p in grammar.productions} and grammar.start in grammar.nullable_nonterminals():
        raise ValueError("ε ∈ L(grammar); CFL-reachability over chain rules excludes ε")
    config = merge_legacy_knobs("cfl_reachability", config, strategy=("strategy", strategy))
    database = edges if isinstance(edges, Database) else Database.from_labeled_edges(edges)
    program = chain_program_for(grammar)
    result: EvaluationResult = naive_evaluation(
        program,
        database,
        semiring,
        weights=weights,
        max_iterations=max_iterations,
        config=config,
    )
    output: Dict[Tuple[Vertex, Vertex], object] = {}
    for fact, value in result.values.items():
        if fact.predicate == program.target and not semiring.is_zero(value):
            output[(fact.args[0], fact.args[1])] = value
    return output


def cfl_reachable_pairs(
    grammar: CFG, edges: Iterable[Edge] | Database
) -> frozenset:
    """Boolean CFL-reachability: the set of connected pairs."""
    from ..semirings.numeric import BOOLEAN

    return frozenset(cfl_reachability(grammar, edges, BOOLEAN))
