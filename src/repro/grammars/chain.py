"""Chain Datalog ⟷ grammars (Proposition 5.2).

A basic chain Datalog program corresponds to a CFG: IDBs are
nonterminals, EDBs terminals, the target IDB the start symbol, rules
the productions with variables erased.  Conversely an ε-free CFG
becomes a chain program whose rule bodies thread ``x → z₁ → ... → y``.

For *regular* languages, :func:`dfa_to_chain_program` builds the
left-linear chain program of an RPQ from its DFA (the shape Theorem
5.8's magic-set argument starts from).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..datalog.ast import Atom, DatalogError, Program, Rule, Variable
from .cfg import CFG, GrammarError, Production
from .regular import DFA

__all__ = [
    "chain_program_to_cfg",
    "cfg_to_chain_program",
    "dfa_to_chain_program",
    "rpq_program",
]


def chain_program_to_cfg(program: Program) -> CFG:
    """Erase variables: IDB → nonterminal, EDB → terminal (Prop 5.2)."""
    if not program.is_basic_chain():
        raise DatalogError("program is not basic chain; no corresponding CFG")
    productions = [
        Production(rule.head.predicate, tuple(a.predicate for a in rule.body))
        for rule in program.rules
    ]
    return CFG(
        program.idb_predicates,
        program.edb_predicates,
        productions,
        program.target,
    )


def cfg_to_chain_program(grammar: CFG, target: Optional[str] = None) -> Program:
    """Each production ``A → X₁...Xₖ`` becomes the chain rule
    ``A(x, y) :- X₁(x, z₁) ∧ ... ∧ Xₖ(zₖ₋₁, y)``.

    ε-productions are not expressible as (safe) chain rules; clean the
    grammar with :meth:`CFG.remove_epsilon` first.
    """
    rules: List[Rule] = []
    x, y = Variable("X"), Variable("Y")
    for production in grammar.productions:
        if not production.rhs:
            raise GrammarError(
                f"ε-production {production} has no chain-rule equivalent; "
                "remove ε first"
            )
        variables = [x] + [Variable(f"Z{i}") for i in range(1, len(production.rhs))] + [y]
        body = [
            Atom(symbol, (variables[i], variables[i + 1]))
            for i, symbol in enumerate(production.rhs)
        ]
        rules.append(Rule(Atom(production.lhs, (x, y)), body))
    return Program(rules, target or grammar.start)


def dfa_to_chain_program(
    dfa: DFA, target: str = "S", state_prefix: str = "Q"
) -> Tuple[Program, bool]:
    """Right-linear chain program of ``L(dfa) \\ {ε}`` from a DFA.

    Nonterminal ``Qᵢ`` derives the words taking state ``i`` to an
    accept state: ``Qᵢ → a Qⱼ`` for each transition ``δ(i, a) = j``
    and ``Qᵢ → a`` when ``j`` accepts.  The start symbol is aliased to
    *target*.  Returns ``(program, accepts_epsilon)``; chain Datalog
    cannot express the ε-word (a fact ``T(x, x)``), so callers must
    handle ``accepts_epsilon`` separately.
    """
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    rules: List[Rule] = []
    name: Dict[int, str] = {state: f"{state_prefix}{state}" for state in range(dfa.num_states)}
    name[dfa.start] = target
    has_outgoing = {state for (state, _symbol) in dfa.transitions}
    for (state, symbol), nxt in sorted(dfa.transitions.items(), key=repr):
        label = str(symbol)
        if nxt in has_outgoing:
            # A recursive rule into a dead-end state would reference an
            # IDB with no rules (semantically vacuous, and it would turn
            # the corresponding grammar nonterminal into a spurious
            # terminal); emit it only when the state can continue.
            rules.append(
                Rule(Atom(name[state], (x, y)), [Atom(label, (x, z)), Atom(name[nxt], (z, y))])
            )
        if nxt in dfa.accepts:
            rules.append(Rule(Atom(name[state], (x, y)), [Atom(label, (x, y))]))
    if not rules:
        raise GrammarError("DFA accepts at most ε; no chain program exists")
    program = Program(rules, target)
    return program, dfa.start in dfa.accepts


def rpq_program(regex_or_dfa, target: str = "S") -> Tuple[Program, bool]:
    """Chain program of an RPQ given a regex (str/:class:`Regex`) or DFA."""
    from .regular import Regex, parse_regex

    if isinstance(regex_or_dfa, str):
        dfa = parse_regex(regex_or_dfa).to_dfa()
    elif isinstance(regex_or_dfa, Regex):
        dfa = regex_or_dfa.to_dfa()
    elif isinstance(regex_or_dfa, DFA):
        dfa = regex_or_dfa.minimized()
    else:
        raise TypeError(f"expected regex or DFA, got {type(regex_or_dfa).__name__}")
    return dfa_to_chain_program(dfa, target)
