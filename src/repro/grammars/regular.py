"""Regular languages: regexes, NFAs, DFAs, finiteness, pumping.

Regular Path Queries (Section 5) are basic chain Datalog programs
whose grammar is regular.  The dichotomy of Theorem 5.3 hinges on the
finiteness of the language (decidable on the DFA), and the reduction
of Theorem 5.9 needs a regular pumping witness ``x y z`` with
``x yⁱ z ∈ L`` for all ``i``; both are implemented here, along with
Thompson construction, subset construction and Moore minimization.

Symbols are arbitrary hashable objects (edge labels); the regex parser
works on single-character symbols for convenience, while programmatic
regexes (:class:`Regex` combinators) accept any symbols.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Regex",
    "EmptyRegex",
    "EpsilonRegex",
    "SymbolRegex",
    "ConcatRegex",
    "UnionRegex",
    "StarRegex",
    "parse_regex",
    "NFA",
    "DFA",
    "RegularPumpingWitness",
    "regular_pumping_witness",
]

Symbol = Hashable
Word = Tuple[Symbol, ...]


# ----------------------------------------------------------------------
# Regex AST
# ----------------------------------------------------------------------


class Regex:
    """Base class; build with ``|``, ``+`` (concat) and ``.star()``."""

    def __or__(self, other: "Regex") -> "Regex":
        return UnionRegex(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return ConcatRegex(self, other)

    def star(self) -> "Regex":
        return StarRegex(self)

    def plus(self) -> "Regex":
        return ConcatRegex(self, StarRegex(self))

    def optional(self) -> "Regex":
        return UnionRegex(self, EpsilonRegex())

    def to_nfa(self) -> "NFA":
        return _thompson(self)

    def to_dfa(self) -> "DFA":
        return self.to_nfa().to_dfa().minimized()


@dataclass(frozen=True)
class EmptyRegex(Regex):
    def __repr__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class EpsilonRegex(Regex):
    def __repr__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class SymbolRegex(Regex):
    symbol: Symbol

    def __repr__(self) -> str:
        return str(self.symbol)


@dataclass(frozen=True)
class ConcatRegex(Regex):
    left: Regex
    right: Regex

    def __repr__(self) -> str:
        return f"({self.left!r}{self.right!r})"


@dataclass(frozen=True)
class UnionRegex(Regex):
    left: Regex
    right: Regex

    def __repr__(self) -> str:
        return f"({self.left!r}|{self.right!r})"


@dataclass(frozen=True)
class StarRegex(Regex):
    inner: Regex

    def __repr__(self) -> str:
        return f"({self.inner!r})*"


def parse_regex(text: str) -> Regex:
    """Parse single-character-symbol regexes: ``a(b|c)*d``, ``+``, ``?``.

    Grammar: union (``|``) < concat < postfix (``*``, ``+``, ``?``) <
    atoms (symbol chars, parenthesized groups).  Whitespace ignored.
    """
    tokens = [c for c in text if not c.isspace()]
    position = [0]

    def peek() -> Optional[str]:
        return tokens[position[0]] if position[0] < len(tokens) else None

    def advance() -> str:
        char = tokens[position[0]]
        position[0] += 1
        return char

    def parse_union() -> Regex:
        node = parse_concat()
        while peek() == "|":
            advance()
            node = UnionRegex(node, parse_concat())
        return node

    def parse_concat() -> Regex:
        parts: List[Regex] = []
        while peek() is not None and peek() not in ")|":
            parts.append(parse_postfix())
        if not parts:
            return EpsilonRegex()
        node = parts[0]
        for part in parts[1:]:
            node = ConcatRegex(node, part)
        return node

    def parse_postfix() -> Regex:
        node = parse_atom()
        while peek() in ("*", "+", "?"):
            operator = advance()
            if operator == "*":
                node = StarRegex(node)
            elif operator == "+":
                node = node.plus()
            else:
                node = node.optional()
        return node

    def parse_atom() -> Regex:
        char = peek()
        if char == "(":
            advance()
            node = parse_union()
            if peek() != ")":
                raise ValueError(f"unbalanced parentheses in regex {text!r}")
            advance()
            return node
        if char is None or char in ")|*+?":
            raise ValueError(f"unexpected {char!r} in regex {text!r}")
        return SymbolRegex(advance())

    node = parse_union()
    if position[0] != len(tokens):
        raise ValueError(f"trailing input in regex {text!r}")
    return node


# ----------------------------------------------------------------------
# NFA (Thompson construction)
# ----------------------------------------------------------------------

_EPS = None  # epsilon label in NFA transition dicts


@dataclass
class NFA:
    """An NFA with ε-moves; states are integers."""

    num_states: int
    transitions: Dict[Tuple[int, Optional[Symbol]], Set[int]]
    start: int
    accepts: FrozenSet[int]
    alphabet: FrozenSet[Symbol] = field(default_factory=frozenset)

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.transitions.get((state, _EPS), ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def accepts_word(self, word: Sequence[Symbol]) -> bool:
        current = self.epsilon_closure({self.start})
        for symbol in word:
            moved: Set[int] = set()
            for state in current:
                moved |= self.transitions.get((state, symbol), set())
            current = self.epsilon_closure(moved)
            if not current:
                return False
        return bool(current & self.accepts)

    def to_dfa(self) -> "DFA":
        """Subset construction (unreachable subsets never materialized)."""
        alphabet = sorted(self.alphabet, key=repr)
        start = self.epsilon_closure({self.start})
        index: Dict[FrozenSet[int], int] = {start: 0}
        order: List[FrozenSet[int]] = [start]
        transitions: Dict[Tuple[int, Symbol], int] = {}
        frontier = [start]
        while frontier:
            subset = frontier.pop()
            source = index[subset]
            for symbol in alphabet:
                moved: Set[int] = set()
                for state in subset:
                    moved |= self.transitions.get((state, symbol), set())
                if not moved:
                    continue
                closure = self.epsilon_closure(moved)
                if closure not in index:
                    index[closure] = len(order)
                    order.append(closure)
                    frontier.append(closure)
                transitions[(source, symbol)] = index[closure]
        accepts = frozenset(
            index[subset] for subset in order if subset & self.accepts
        )
        return DFA(len(order), dict(transitions), 0, accepts, frozenset(alphabet))


def _thompson(regex: Regex) -> NFA:
    transitions: Dict[Tuple[int, Optional[Symbol]], Set[int]] = {}
    alphabet: Set[Symbol] = set()
    counter = itertools.count()

    def fresh() -> int:
        return next(counter)

    def connect(src: int, label: Optional[Symbol], dst: int) -> None:
        transitions.setdefault((src, label), set()).add(dst)

    def build(node: Regex) -> Tuple[int, int]:
        start, end = fresh(), fresh()
        if isinstance(node, EmptyRegex):
            pass
        elif isinstance(node, EpsilonRegex):
            connect(start, _EPS, end)
        elif isinstance(node, SymbolRegex):
            alphabet.add(node.symbol)
            connect(start, node.symbol, end)
        elif isinstance(node, ConcatRegex):
            ls, le = build(node.left)
            rs, re_ = build(node.right)
            connect(start, _EPS, ls)
            connect(le, _EPS, rs)
            connect(re_, _EPS, end)
        elif isinstance(node, UnionRegex):
            ls, le = build(node.left)
            rs, re_ = build(node.right)
            connect(start, _EPS, ls)
            connect(start, _EPS, rs)
            connect(le, _EPS, end)
            connect(re_, _EPS, end)
        elif isinstance(node, StarRegex):
            inner_start, inner_end = build(node.inner)
            connect(start, _EPS, end)
            connect(start, _EPS, inner_start)
            connect(inner_end, _EPS, inner_start)
            connect(inner_end, _EPS, end)
        else:  # pragma: no cover - closed hierarchy
            raise TypeError(f"unknown regex node {node!r}")
        return start, end

    start, end = build(regex)
    return NFA(next(counter), transitions, start, frozenset({end}), frozenset(alphabet))


# ----------------------------------------------------------------------
# DFA
# ----------------------------------------------------------------------


@dataclass
class DFA:
    """A (partial) deterministic automaton; missing edges reject."""

    num_states: int
    transitions: Dict[Tuple[int, Symbol], int]
    start: int
    accepts: FrozenSet[int]
    alphabet: FrozenSet[Symbol]

    def step(self, state: int, symbol: Symbol) -> Optional[int]:
        return self.transitions.get((state, symbol))

    def accepts_word(self, word: Sequence[Symbol]) -> bool:
        state: Optional[int] = self.start
        for symbol in word:
            state = self.step(state, symbol)
            if state is None:
                return False
        return state in self.accepts

    # -- reachability ---------------------------------------------------

    def reachable_states(self) -> FrozenSet[int]:
        seen = {self.start}
        stack = [self.start]
        while stack:
            state = stack.pop()
            for symbol in self.alphabet:
                nxt = self.step(state, symbol)
                if nxt is not None and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def coaccessible_states(self) -> FrozenSet[int]:
        """States from which some accept state is reachable."""
        reverse: Dict[int, Set[int]] = {}
        for (src, _symbol), dst in self.transitions.items():
            reverse.setdefault(dst, set()).add(src)
        seen = set(self.accepts)
        stack = list(self.accepts)
        while stack:
            state = stack.pop()
            for prev in reverse.get(state, ()):
                if prev not in seen:
                    seen.add(prev)
                    stack.append(prev)
        return frozenset(seen)

    def trim_states(self) -> FrozenSet[int]:
        return self.reachable_states() & self.coaccessible_states()

    # -- minimization (Moore partition refinement) ------------------------

    def minimized(self) -> "DFA":
        """Moore refinement on the trimmed automaton (partial DFA kept
        partial: a dead sink is never introduced)."""
        live = self.trim_states()
        if self.start not in live:
            return DFA(1, {}, 0, frozenset(), self.alphabet)
        alphabet = sorted(self.alphabet, key=repr)
        partition: Dict[int, int] = {
            state: (1 if state in self.accepts else 0) for state in live
        }
        while True:
            signatures: Dict[int, Tuple] = {}
            for state in live:
                row = tuple(
                    partition.get(self.step(state, symbol), -1)
                    if self.step(state, symbol) in live
                    else -1
                    for symbol in alphabet
                )
                signatures[state] = (partition[state], row)
            blocks: Dict[Tuple, int] = {}
            fresh: Dict[int, int] = {}
            for state in sorted(live):
                block = blocks.setdefault(signatures[state], len(blocks))
                fresh[state] = block
            # Moore refinement only splits blocks, so an unchanged block
            # count means the partition is stable.
            stable = len(set(fresh.values())) == len(set(partition.values()))
            partition = fresh
            if stable:
                break
        block_count = len(set(partition.values()))
        transitions: Dict[Tuple[int, Symbol], int] = {}
        for state in live:
            for symbol in alphabet:
                nxt = self.step(state, symbol)
                if nxt is not None and nxt in live:
                    transitions[(partition[state], symbol)] = partition[nxt]
        accepts = frozenset(partition[s] for s in self.accepts if s in live)
        return DFA(block_count, transitions, partition[self.start], accepts, self.alphabet)

    # -- language properties ----------------------------------------------

    def is_empty(self) -> bool:
        return not (self.reachable_states() & self.accepts)

    def is_finite(self) -> bool:
        """Finite iff no trim state lies on a cycle (Theorem 5.3's
        decidable dichotomy test for RPQs)."""
        live = self.trim_states()
        edges: Dict[int, Set[int]] = {s: set() for s in live}
        for (src, _symbol), dst in self.transitions.items():
            if src in live and dst in live:
                edges[src].add(dst)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {s: WHITE for s in live}
        for root in live:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[int, Iterable[int]]] = [(root, iter(edges[root]))]
            color[root] = GRAY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == GRAY:
                        return False
                    if color[child] == WHITE:
                        color[child] = GRAY
                        stack.append((child, iter(edges[child])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return True

    def enumerate_words(self, max_length: int) -> Set[Word]:
        """All accepted words of length ≤ *max_length* (test oracle)."""
        words: Set[Word] = set()
        frontier: List[Tuple[int, Word]] = [(self.start, ())]
        while frontier:
            state, word = frontier.pop()
            if state in self.accepts:
                words.add(word)
            if len(word) == max_length:
                continue
            for symbol in sorted(self.alphabet, key=repr):
                nxt = self.step(state, symbol)
                if nxt is not None:
                    frontier.append((nxt, word + (symbol,)))
        return words

    def longest_word_length(self, cap: int = 10_000) -> int:
        """Length of the longest accepted word of a *finite* language."""
        if not self.is_finite():
            raise ValueError("language is infinite")
        live = self.trim_states()
        # Longest path in the trim DAG.
        order: List[int] = []
        seen: Set[int] = set()

        def visit(state: int) -> None:
            if state in seen:
                return
            seen.add(state)
            for symbol in self.alphabet:
                nxt = self.step(state, symbol)
                if nxt is not None and nxt in live:
                    visit(nxt)
            order.append(state)

        if self.start in live:
            visit(self.start)
        longest: Dict[int, int] = {}
        for state in order:
            best = 0 if state in self.accepts else -1
            for symbol in self.alphabet:
                nxt = self.step(state, symbol)
                if nxt is not None and nxt in live and longest.get(nxt, -1) >= 0:
                    best = max(best, 1 + longest[nxt])
            longest[state] = best
        return max(longest.get(self.start, 0), 0)


@dataclass(frozen=True)
class RegularPumpingWitness:
    """A regular pumping witness: ``x yⁱ z ∈ L`` for all ``i ≥ 0``,
    with ``|y| ≥ 1`` (the input to Theorem 5.9's reduction)."""

    x: Word
    y: Word
    z: Word

    def pumped(self, i: int) -> Word:
        return self.x + self.y * i + self.z

    def __repr__(self) -> str:
        def fmt(word: Word) -> str:
            return "".join(map(str, word)) or "ε"

        return f"RegularPumpingWitness(x={fmt(self.x)}, y={fmt(self.y)}, z={fmt(self.z)})"


def regular_pumping_witness(dfa: DFA) -> Optional[RegularPumpingWitness]:
    """Find ``(x, y, z)`` with ``x yⁱ z`` accepted for all ``i``;
    ``None`` iff the language is finite.

    Constructive: pick a trim state on a cycle; ``x`` is a shortest
    path from the start to it, ``y`` a shortest cycle through it,
    ``z`` a shortest path to an accept state.
    """
    if dfa.is_finite():
        return None
    live = dfa.trim_states()
    alphabet = sorted(dfa.alphabet, key=repr)

    def bfs_path(sources: Iterable[int], goal_test) -> Optional[Tuple[int, Word]]:
        frontier: List[Tuple[int, Word]] = [(s, ()) for s in sources]
        seen = {s for s, _ in frontier}
        while frontier:
            state, word = frontier.pop(0)
            if goal_test(state, word):
                return state, word
            for symbol in alphabet:
                nxt = dfa.step(state, symbol)
                if nxt is not None and nxt in live and nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, word + (symbol,)))
        return None

    # A live state lying on a cycle, with its shortest cycle word.
    best: Optional[Tuple[int, Word, Word]] = None
    for state in sorted(live):
        # shortest non-empty word from state back to itself
        frontier: List[Tuple[int, Word]] = []
        for symbol in alphabet:
            nxt = dfa.step(state, symbol)
            if nxt is not None and nxt in live:
                frontier.append((nxt, (symbol,)))
        seen = {s for s, _ in frontier}
        cycle: Optional[Word] = None
        while frontier:
            current, word = frontier.pop(0)
            if current == state:
                cycle = word
                break
            for symbol in alphabet:
                nxt = dfa.step(current, symbol)
                if nxt is not None and nxt in live and nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, word + (symbol,)))
        if cycle:
            prefix = bfs_path([dfa.start], lambda s, _w, target=state: s == target)
            if prefix is None:
                continue
            if best is None or len(prefix[1]) + len(cycle) < len(best[1]) + len(best[2]):
                best = (state, prefix[1], cycle)
    if best is None:
        return None
    pivot, x, y = best
    suffix = bfs_path([pivot], lambda s, _w: s in dfa.accepts)
    if suffix is None:  # pragma: no cover - pivot is co-accessible
        return None
    return RegularPumpingWitness(x, y, suffix[1])
