"""Regular Path Queries: product construction and evaluation.

An RPQ over a labeled graph is CFL-reachability with a regular ``L``
(Section 5).  The *product graph* of the input with the DFA of ``L``
is the device of Theorem 5.9's second reduction: a path in the product
from ``(u, q₀)`` to ``(v, f)`` with ``f`` accepting corresponds to a
path ``u → v`` whose labels spell a word of ``L``; provenance-wise,
each product edge inherits the tag of its underlying graph edge.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from ..config import ConfigLike, merge_legacy_knobs
from ..datalog.ast import Fact
from ..datalog.database import Database
from ..datalog.evaluation import naive_evaluation
from ..datalog.library import transitive_closure
from ..semirings.base import Semiring
from .regular import DFA

__all__ = ["ProductGraph", "product_graph", "solve_rpq", "rpq_pairs"]

Vertex = Hashable
Edge = Tuple[Vertex, str, Vertex]


class ProductGraph:
    """The product of a labeled graph with a DFA.

    * ``database`` -- unlabeled digraph over vertices ``(v, q)`` with
      edge predicate ``E``.
    * ``edge_origin`` -- product-edge fact → original labeled-edge
      fact, the wiring map used when a TC circuit on the product is
      re-tagged into an RPQ circuit (Theorem 5.9, second direction).
    """

    def __init__(
        self,
        database: Database,
        edge_origin: Dict[Fact, Fact],
        dfa: DFA,
        vertices: frozenset,
    ):
        self.database = database
        self.edge_origin = edge_origin
        self.dfa = dfa
        self.vertices = vertices

    def source_node(self, vertex: Vertex) -> Tuple[Vertex, int]:
        return (vertex, self.dfa.start)

    def accept_nodes(self, vertex: Vertex) -> list:
        return [(vertex, q) for q in sorted(self.dfa.accepts)]

    @property
    def size(self) -> int:
        return len(self.database)


def product_graph(
    edges: Iterable[Edge],
    dfa: DFA,
    edge_predicate: str = "E",
) -> ProductGraph:
    """Build the product: edge ``(u, a, v)`` × transition ``q -a→ q'``
    yields product edge ``(u, q) → (v, q')`` tagged by the original
    edge fact.  Size is ``O(m · |δ|)`` = ``O(m)`` for a fixed DFA."""
    database = Database()
    edge_origin: Dict[Fact, Fact] = {}
    vertices: set = set()
    edge_list = list(edges)
    for u, label, v in edge_list:
        vertices.add(u)
        vertices.add(v)
    for u, label, v in edge_list:
        original = Fact(str(label), (u, v))
        for (state, symbol), nxt in dfa.transitions.items():
            if symbol == label:
                product_fact = database.add(edge_predicate, (u, state), (v, nxt))
                edge_origin[product_fact] = original
    return ProductGraph(database, edge_origin, dfa, frozenset(vertices))


def solve_rpq(
    edges: Iterable[Edge],
    dfa: DFA,
    semiring: Semiring,
    weights: Optional[Mapping[Fact, object]] = None,
    max_iterations: Optional[int] = None,
    strategy: Optional[str] = None,
    config: ConfigLike = None,
) -> Dict[Tuple[Vertex, Vertex], object]:
    """Evaluate the RPQ over *semiring* via TC on the product graph.

    *weights* annotates the **original** labeled-edge facts
    ``Fact(label, (u, v))``; they are transported onto product edges.
    Returns ``(u, v) → ⊕_{accepting f} TC((u,q₀),(v,f))`` restricted
    to nonzero entries.  Words of length 0 (ε ∈ L) are excluded, as in
    the chain-Datalog encoding.
    """
    config = merge_legacy_knobs("solve_rpq", config, strategy=("strategy", strategy))
    product = product_graph(edges, dfa)
    weights = weights or {}
    product_weights = {
        fact: weights.get(origin, semiring.one)
        for fact, origin in product.edge_origin.items()
    }
    tc = transitive_closure(edge="E", target="PT")
    result = naive_evaluation(
        tc,
        product.database,
        semiring,
        weights=product_weights,
        max_iterations=max_iterations,
        config=config,
    )
    output: Dict[Tuple[Vertex, Vertex], object] = {}
    for fact, value in result.values.items():
        if semiring.is_zero(value):
            continue
        (u, state_u), (v, state_v) = fact.args
        if state_u == product.dfa.start and state_v in product.dfa.accepts:
            key = (u, v)
            output[key] = semiring.add(output.get(key, semiring.zero), value)
    return output


def rpq_pairs(edges: Iterable[Edge], dfa: DFA) -> frozenset:
    """Boolean RPQ answer: pairs connected by an ``L``-labeled path."""
    from ..semirings.numeric import BOOLEAN

    return frozenset(solve_rpq(edges, dfa, BOOLEAN))
