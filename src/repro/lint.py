"""``python -m repro.lint``: the static program analyzer as a CLI.

Lint Datalog program files (the surface syntax of
:mod:`repro.datalog.parser`) with the full pass battery of
:mod:`repro.datalog.analysis` -- safety, arity consistency, SCC /
stratification report, dead-rule detection, and (with ``--semiring``)
divergence prediction::

    python -m repro.lint examples/programs/transitive_closure.dl
    python -m repro.lint --semiring counting --json path/to/program.dl
    python -m repro.lint --self-check

Exit status: ``0`` when no file has an error-severity diagnostic
(``--strict`` promotes warnings to failures too), ``1`` otherwise;
parse errors count as errors and are reported with line/column and the
offending source line.  ``--self-check`` lints every program in
:mod:`repro.datalog.library` and every ``examples/programs/*.dl`` file
and fails on *any* error or warning -- the CI lint job runs it as the
shipped-programs-are-clean gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from .datalog import library
from .datalog.analysis import AnalysisReport, analyze_program
from .datalog.ast import Program
from .datalog.parser import ParseError, parse_program
from .semirings import (
    ARCTIC,
    BOOLEAN,
    COUNTING,
    COUNTING_CAP,
    FUZZY,
    LUKASIEWICZ,
    TROPICAL,
    TROPICAL_INT,
    VITERBI,
)

__all__ = ["main", "lint_text", "self_check_programs", "LINT_SEMIRINGS"]

#: CLI name → semiring singleton (same vocabulary as the serving wire).
LINT_SEMIRINGS = {
    "boolean": BOOLEAN,
    "counting": COUNTING,
    "counting_cap": COUNTING_CAP,
    "tropical": TROPICAL,
    "tropical_int": TROPICAL_INT,
    "viterbi": VITERBI,
    "fuzzy": FUZZY,
    "lukasiewicz": LUKASIEWICZ,
    "arctic": ARCTIC,
}

#: The library's program constructors, linted by ``--self-check``.
_LIBRARY_PROGRAMS = (
    "transitive_closure",
    "transitive_closure_nonlinear",
    "reachability",
    "bounded_example",
    "dyck1",
    "same_generation",
)


def _examples_dir() -> Path:
    """``examples/programs`` relative to the repo checkout (may be absent)."""
    return Path(__file__).resolve().parents[2] / "examples" / "programs"


def lint_text(
    text: str,
    name: str = "<program>",
    target: Optional[str] = None,
    semiring_name: Optional[str] = None,
) -> Tuple[Optional[AnalysisReport], dict]:
    """Analyze one program source; returns ``(report, json_payload)``.

    *report* is ``None`` when the source does not parse; the payload is
    then an ``ok: false`` object with a ``parse_error`` field, matching
    the server's ``/lint`` wire shape.
    """
    semiring = LINT_SEMIRINGS[semiring_name] if semiring_name else None
    try:
        program = parse_program(text, target=target, validate=False)
    except ParseError as exc:
        return None, {
            "file": name,
            "ok": False,
            "diagnostics": [],
            "parse_error": {
                "message": str(exc),
                "line": exc.line,
                "column": exc.column,
                "source_line": exc.source_line,
            },
        }
    report = analyze_program(program, semiring=semiring)
    payload = report.to_json()
    payload["file"] = name
    return report, payload


def _lint_program(program: Program, name: str) -> Tuple[AnalysisReport, dict]:
    report = analyze_program(program)
    payload = report.to_json()
    payload["file"] = name
    return report, payload


def self_check_programs() -> List[Tuple[str, Optional[Program], str]]:
    """Everything ``--self-check`` lints: ``(name, program | None, text)``.

    Library programs arrive constructed (no source text); example
    files arrive as text so parse errors are caught too.
    """
    items: List[Tuple[str, Optional[Program], str]] = []
    for constructor in _LIBRARY_PROGRAMS:
        items.append((f"library:{constructor}", getattr(library, constructor)(), ""))
    examples = _examples_dir()
    if examples.is_dir():
        for path in sorted(examples.glob("*.dl")):
            items.append((str(path), None, path.read_text()))
    return items


def _print_report(payload: dict, report: Optional[AnalysisReport], args) -> None:
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    name = payload["file"]
    if report is None:
        err = payload["parse_error"]
        print(f"{name}:{err['line']}:{err['column']}: parse error: {err['message']}")
        if err["source_line"]:
            print(f"    {err['source_line']}")
            print(f"    {' ' * (err['column'] - 1)}^")
        return
    shown = list(report.errors()) + list(report.warnings())
    if args.verbose:
        shown += list(report.infos())
    for diagnostic in shown:
        print(diagnostic.format(name))
    summary = "clean" if report.ok else f"{len(report.errors())} error(s)"
    if report.warnings():
        summary += f", {len(report.warnings())} warning(s)"
    print(f"{name}: {summary}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically analyze Datalog program files (DL001-DL009 diagnostics).",
    )
    parser.add_argument("files", nargs="*", help="program files to lint (surface syntax)")
    parser.add_argument("--target", help="target predicate (default: first rule's head)")
    parser.add_argument(
        "--semiring",
        choices=sorted(LINT_SEMIRINGS),
        help="arm semiring-aware divergence prediction (DL006)",
    )
    parser.add_argument("--json", action="store_true", help="emit one JSON report per program")
    parser.add_argument(
        "--strict", action="store_true", help="warnings fail the lint too (exit 1)"
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true", help="also print info-level diagnostics"
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="lint the shipped library and examples/programs/*.dl; any error or warning fails",
    )
    args = parser.parse_args(argv)
    if not args.files and not args.self_check:
        parser.error("give program files to lint, or --self-check")

    failed = False
    if args.self_check:
        for name, program, text in self_check_programs():
            if program is not None:
                report, payload = _lint_program(program, name)
            else:
                report, payload = lint_text(
                    text, name, target=args.target, semiring_name=args.semiring
                )
            _print_report(payload, report, args)
            if report is None or not report.ok or report.warnings():
                failed = True

    for name in args.files:
        path = Path(name)
        if not path.is_file():
            print(f"{name}: no such file", file=sys.stderr)
            failed = True
            continue
        report, payload = lint_text(
            path.read_text(), name, target=args.target, semiring_name=args.semiring
        )
        _print_report(payload, report, args)
        if report is None or not report.ok or (args.strict and report.warnings()):
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
