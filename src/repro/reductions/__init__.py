"""The paper's lower-bound reductions, as executable circuit rewrites.

Lower bounds cannot be "run", but their reductions can: each module
builds the instance transformation of a hardness proof and the
size/depth-preserving circuit transfer that makes it a circuit
reduction (see DESIGN.md §3 for the substitution rationale).

* :mod:`~repro.reductions.tc_to_rpq` -- Theorem 5.9 (TC is as easy as
  any infinite RPQ): regular pumping + edge expansion + input rewiring.
* :mod:`~repro.reductions.rpq_to_tc` -- Theorem 5.9 converse (any RPQ
  is as easy as TC): DFA product + per-accept-state TC + rewiring.
* :mod:`~repro.reductions.tc_to_cfg` -- Theorem 5.11 (unbounded chain
  programs are TC-hard): CFG pumping on layered graphs.
* :mod:`~repro.reductions.monadic` -- Theorem 6.8 (unbounded monadic
  linear connected programs are TC-hard): canonical databases of
  pumpable expansion segments glued along a layered graph.
"""

from .monadic import (
    MonadicReductionInstance,
    MonadicSegment,
    MonadicWitness,
    find_monadic_witness,
    monadic_reduction_instance,
    transfer_monadic_circuit_to_tc,
    unfold_segment,
)
from .rpq_to_tc import rpq_circuit_via_tc
from .tc_to_cfg import TCToCFGInstance, tc_to_cfg_instance, transfer_cfg_circuit_to_tc
from .tc_to_rpq import TCToRPQInstance, tc_to_rpq_instance, transfer_rpq_circuit_to_tc
from .transfer import rewire_circuit

__all__ = [
    "rewire_circuit",
    "TCToRPQInstance",
    "tc_to_rpq_instance",
    "transfer_rpq_circuit_to_tc",
    "rpq_circuit_via_tc",
    "TCToCFGInstance",
    "tc_to_cfg_instance",
    "transfer_cfg_circuit_to_tc",
    "MonadicSegment",
    "MonadicWitness",
    "unfold_segment",
    "find_monadic_witness",
    "MonadicReductionInstance",
    "monadic_reduction_instance",
    "transfer_monadic_circuit_to_tc",
]
