"""TC → monadic linear connected Datalog (Theorem 6.8's machinery).

Theorem 6.8 lower-bounds unbounded monadic linear connected programs
by encoding each edge of a layered graph as the *canonical database*
of a pumpable expansion segment, instead of as a labeled path (the
chain-program trick of Theorem 5.9 is unavailable because the EDBs
need not be binary path relations).

The executable content implemented here:

* :func:`unfold_segment` -- materialize the CQ of a word of recursive
  rules, exposing its *interface* variables (the monadic goal variable
  entering and leaving the segment);
* :func:`find_monadic_witness` -- search for a decomposition
  ``x · y · zu`` of expansion words whose middle segment ``y`` is
  pumpable (its interface endpoints are distinct variables and pumping
  it yields expansions not subsumed by shorter ones -- the
  ``notaccept`` prefix condition of the CGKV characterization,
  checked by homomorphism tests on small pump counts);
* :func:`monadic_reduction_instance` -- glue canonical databases of
  ``C_x``, per-edge copies of ``C_y``, and ``C_zu`` along a layered
  graph, returning the database, the query fact and the circuit wire
  map;
* :func:`transfer_monadic_circuit_to_tc` -- the usual size/depth-
  preserving input rewiring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..circuits.circuit import Circuit
from ..datalog.ast import Atom, Constant, DatalogError, Fact, Program, Variable
from ..datalog.database import Database
from ..datalog.expansions import ConjunctiveQuery, expansion_of_word, expansion_words, unify_atoms
from ..boundedness.homomorphism import has_homomorphism
from .transfer import rewire_circuit

__all__ = [
    "MonadicSegment",
    "MonadicWitness",
    "unfold_segment",
    "find_monadic_witness",
    "monadic_reduction_instance",
    "transfer_monadic_circuit_to_tc",
]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


@dataclass(frozen=True)
class MonadicSegment:
    """A partially unfolded expansion: EDB atoms plus interface vars.

    ``entry`` is the monadic head/goal variable at the top of the
    segment; ``exit`` the pending goal variable below it (``None``
    when the segment is closed by an initialization rule).
    """

    atoms: Tuple[Atom, ...]
    entry: Variable
    exit: Optional[Variable]
    goal_predicate: Optional[str]


def _resolve(term, theta):
    while isinstance(term, Variable) and term in theta:
        term = theta[term]
    return term


def unfold_segment(
    program: Program,
    word: Tuple[int, ...],
    start_predicate: Optional[str] = None,
    fresh_prefix: str = "seg",
) -> MonadicSegment:
    """Unfold the rule-index *word* from goal ``P(V₀)``.

    Non-final positions must be recursive (monadic linear) rules; a
    final initialization rule closes the segment.
    """
    if not (program.is_monadic() and program.is_linear()):
        raise DatalogError("segment unfolding requires a monadic linear program")
    idbs = program.idb_predicates
    predicate = start_predicate or program.target
    entry = Variable(f"{fresh_prefix}_V0")
    goal: Optional[Atom] = Atom(predicate, (entry,))
    atoms: List[Atom] = []
    theta: Dict[Variable, object] = {}
    for step, rule_index in enumerate(word):
        if goal is None:
            raise DatalogError("segment continues past an initialization rule")
        rule = program.rules[rule_index].rename(f"_{fresh_prefix}{step}")
        unifier = unify_atoms(rule.head, goal, theta)
        if unifier is None:
            raise DatalogError(
                f"rule {rule_index} head does not unify with goal {goal}"
            )
        theta = unifier
        idb_subgoals = [a for a in rule.body if a.predicate in idbs]
        atoms.extend(a for a in rule.body if a.predicate not in idbs)
        if idb_subgoals:
            if len(idb_subgoals) != 1:
                raise DatalogError("monadic linear rule with several IDB atoms")
            goal = idb_subgoals[0]
        else:
            goal = None

    def fully(atom: Atom) -> Atom:
        return Atom(atom.predicate, tuple(_resolve(t, theta) for t in atom.terms))

    resolved_atoms = tuple(fully(a) for a in atoms)
    resolved_entry = _resolve(entry, theta)
    if not isinstance(resolved_entry, Variable):
        raise DatalogError("segment entry variable collapsed to a constant")
    if goal is None:
        return MonadicSegment(resolved_atoms, resolved_entry, None, None)
    resolved_goal = fully(goal)
    exit_term = resolved_goal.terms[0]
    if not isinstance(exit_term, Variable):
        raise DatalogError("segment exit variable collapsed to a constant")
    return MonadicSegment(resolved_atoms, resolved_entry, exit_term, resolved_goal.predicate)


@dataclass(frozen=True)
class MonadicWitness:
    """A decomposition ``x · y · zu`` of expansion words (rule indices)."""

    x_word: Tuple[int, ...]
    y_word: Tuple[int, ...]
    zu_word: Tuple[int, ...]

    def pumped_word(self, i: int) -> Tuple[int, ...]:
        return self.x_word + self.y_word * i + self.zu_word


def find_monadic_witness(
    program: Program,
    max_prefix: int = 2,
    max_pump: int = 2,
    pump_checks: Tuple[int, ...] = (1, 2, 3),
) -> Optional[MonadicWitness]:
    """Search for a pumpable decomposition witnessing unboundedness.

    Conditions checked (the operational core of Theorem 6.6/6.8):

    1. the words ``x yⁱ zu`` are valid expansions for each probed i;
    2. the ``y`` segment's interface variables are distinct (so its
       canonical database really connects two endpoints);
    3. pumping escapes subsumption: the expansion of ``x yⁱ⁺¹ zu`` has
       no homomorphism from any expansion with fewer recursive steps
       (for the probed ``i``) -- the finite check of the
       ``notaccept``-prefix condition.
    """
    if not (program.is_monadic() and program.is_linear() and program.is_connected()):
        return None
    # All expansions with ≤ K steps, for subsumption checks.
    probe_depth = max_prefix + max_pump * (max(pump_checks) + 1) + 1
    expansion_pool: Dict[int, List[ConjunctiveQuery]] = {}
    for steps in range(probe_depth + 1):
        expansion_pool[steps] = [
            expansion_of_word(program, w) for w in expansion_words(program, steps)
        ]

    def subsumed_by_shorter(cq: ConjunctiveQuery, steps: int) -> bool:
        for fewer in range(steps):
            for early in expansion_pool.get(fewer, ()):
                if has_homomorphism(early, cq):
                    return True
        return False

    for x_len in range(max_prefix + 1):
        for y_len in range(1, max_pump + 1):
            for x_word in _words_of_length(program, program.target, x_len):
                x_segment = (
                    unfold_segment(program, x_word) if x_word else None
                )
                after_x = x_segment.goal_predicate if x_segment else program.target
                if after_x is None:
                    continue
                for y_word in _words_of_length(program, after_x, y_len, recursive_only=True):
                    y_segment = unfold_segment(program, y_word, after_x)
                    if y_segment.exit is None or y_segment.entry == y_segment.exit:
                        continue
                    if y_segment.goal_predicate != after_x:
                        continue  # y must be pumpable in place
                    # Closing word: shortest expansion suffix.
                    zu_word = _closing_word(program, after_x, probe_depth)
                    if zu_word is None:
                        continue
                    witness = MonadicWitness(tuple(x_word), tuple(y_word), tuple(zu_word))
                    ok = True
                    for i in pump_checks:
                        word = witness.pumped_word(i)
                        steps = len(word) - 1  # last index is the init rule
                        try:
                            cq = expansion_of_word(program, word)
                        except DatalogError:
                            ok = False
                            break
                        if subsumed_by_shorter(cq, steps):
                            ok = False
                            break
                    if ok:
                        return witness
    return None


def _words_of_length(
    program: Program, predicate: str, length: int, recursive_only: bool = True
) -> Iterable[Tuple[int, ...]]:
    idbs = program.idb_predicates
    if length == 0:
        yield ()
        return
    candidates = [
        (i, r)
        for i, r in enumerate(program.rules)
        if (not recursive_only or not r.is_initialization(idbs))
    ]

    def walk(pred: str, remaining: int) -> Iterable[Tuple[int, ...]]:
        if remaining == 0:
            yield ()
            return
        for index, rule in candidates:
            if rule.head.predicate != pred or rule.is_initialization(idbs):
                continue
            subgoal = rule.idb_atoms(idbs)[0]
            for rest in walk(subgoal.predicate, remaining - 1):
                yield (index, *rest)

    yield from walk(predicate, length)


def _closing_word(program: Program, predicate: str, cap: int) -> Optional[Tuple[int, ...]]:
    """Shortest word from *predicate* down to an initialization rule."""
    idbs = program.idb_predicates
    frontier: List[Tuple[str, Tuple[int, ...]]] = [(predicate, ())]
    seen = {predicate}
    while frontier:
        pred, word = frontier.pop(0)
        if len(word) > cap:
            return None
        for index, rule in enumerate(program.rules):
            if rule.head.predicate != pred:
                continue
            if rule.is_initialization(idbs):
                return word + (index,)
            subgoal = rule.idb_atoms(idbs)[0].predicate
            if subgoal not in seen:
                seen.add(subgoal)
                frontier.append((subgoal, word + (index,)))
    return None


@dataclass
class MonadicReductionInstance:
    """Constructed input database, query fact and circuit wire map."""

    database: Database
    query: Fact
    witness: MonadicWitness
    wire_map: Dict[Fact, Optional[Fact]] = field(default_factory=dict)


def monadic_reduction_instance(
    program: Program,
    witness: MonadicWitness,
    edges: Iterable[Edge],
    source: Vertex,
    sink: Vertex,
    edge_predicate: str = "E",
) -> MonadicReductionInstance:
    """Glue canonical databases along the graph (Theorem 6.8's step).

    * one copy of ``C_x`` from a fresh query constant onto *source*;
    * one copy of ``C_y`` per graph edge ``(a, b)``, its interface
      identified with ``a`` and ``b`` (all other constants fresh);
    * one copy of ``C_zu`` hanging off *sink*.

    The query fact ``target(q)`` is derivable over ``B`` iff *sink* is
    reachable from *source*.  The wire map tags, per edge copy, the
    first atom's fact with the TC edge variable; everything else reads
    ``1``.
    """
    database = Database()
    wire_map: Dict[Fact, Optional[Fact]] = {}
    counter = itertools.count()

    def instantiate(
        segment: MonadicSegment,
        entry_value: Hashable,
        exit_value: Optional[Hashable],
        origin: Optional[Fact],
    ) -> None:
        copy_id = next(counter)
        mapping: Dict[Variable, Hashable] = {segment.entry: entry_value}
        if segment.exit is not None and exit_value is not None:
            mapping[segment.exit] = exit_value
        for position, atom in enumerate(segment.atoms):
            args = []
            for term in atom.terms:
                if isinstance(term, Constant):
                    args.append(term.value)
                else:
                    if term not in mapping:
                        mapping[term] = f"#f{copy_id}_{term.name}"
                    args.append(mapping[term])
            fact = database.add(atom.predicate, *args)
            wire_map.setdefault(fact, origin if position == 0 else None)

    # C_x: query constant → source.
    if witness.x_word:
        x_segment = unfold_segment(program, witness.x_word, fresh_prefix="x")
        query_value: Hashable = "#query"
        instantiate(x_segment, query_value, source, None)
        middle_predicate = x_segment.goal_predicate
    else:
        query_value = source
        middle_predicate = program.target

    # C_y per edge.
    y_segment = unfold_segment(program, witness.y_word, middle_predicate, fresh_prefix="y")
    for a, b in edges:
        origin = Fact(edge_predicate, (a, b))
        instantiate(y_segment, a, b, origin)

    # C_zu at the sink.
    zu_segment = unfold_segment(program, witness.zu_word, middle_predicate, fresh_prefix="z")
    instantiate(zu_segment, sink, None, None)

    query = Fact(program.target, (query_value,))
    return MonadicReductionInstance(database, query, witness, wire_map)


def transfer_monadic_circuit_to_tc(
    instance: MonadicReductionInstance, circuit: Circuit
) -> Circuit:
    """Rewire a provenance circuit for the constructed instance into a
    TC circuit (size- and depth-preserving)."""
    return rewire_circuit(circuit, instance.wire_map)
