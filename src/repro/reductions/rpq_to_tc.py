"""RPQ → TC reduction (Theorem 5.9, second direction).

An RPQ over a labeled graph reduces to ``K`` runs of TC over the
product of the graph with the DFA of ``L`` (one per accept state),
``⊕``-summed.  Circuit-wise: build any TC circuit on the product
graph per accept state, rewire each product-edge input to the original
labeled-edge variable (its projection to ``G``), and sum the outputs.
Size and depth are preserved up to the final ``O(log K)`` sum, which
is how TC's upper bounds (Theorems 5.6/5.7) extend to every infinite
RPQ -- completing the "RPQ ≡ TC" dichotomy.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Tuple

from ..circuits.circuit import Circuit, CircuitBuilder
from ..constructions.bellman_ford import bellman_ford_circuit
from ..datalog.database import Database
from ..grammars.regular import DFA
from ..grammars.rpq import product_graph
from .transfer import rewire_circuit

__all__ = ["rpq_circuit_via_tc"]

Vertex = Hashable
LabeledEdge = Tuple[Vertex, str, Vertex]

TCBuilder = Callable[[Database, Vertex, Vertex], Circuit]


def rpq_circuit_via_tc(
    edges: Iterable[LabeledEdge],
    dfa: DFA,
    source: Vertex,
    sink: Vertex,
    tc_builder: TCBuilder = bellman_ford_circuit,
) -> Circuit:
    """Build an RPQ provenance circuit from a TC construction.

    *tc_builder* is any ``(database, s, t) → Circuit`` TC construction
    (Bellman–Ford by default; pass
    :func:`repro.constructions.squaring_circuit` for the
    depth-optimal variant).  The result computes the provenance of the
    RPQ fact ``(source, sink)``: the sum over accept states of TC on
    the product graph, with product edges re-tagged by their original
    labeled edges.

    ε ∈ L is excluded as usual.  ``source == sink`` is rejected when
    the underlying TC construction rejects it.
    """
    edge_list = list(edges)
    product = product_graph(edge_list, dfa)
    start_node = (source, dfa.start)

    wire_map = {fact: origin for fact, origin in product.edge_origin.items()}

    builder = CircuitBuilder(share=True)
    accept_outputs: List[int] = []
    for accept_state in sorted(dfa.accepts):
        end_node = (sink, accept_state)
        if end_node == start_node:
            # Would be the ε-path; chain-Datalog semantics exclude it.
            continue
        tc_circuit = tc_builder(product.database, start_node, end_node)
        rewired = rewire_circuit(tc_circuit, wire_map, strict=False)
        remap = builder.splice(rewired)
        accept_outputs.append(remap[rewired.outputs[0]])
    output = builder.add_all(accept_outputs)
    return builder.build(output, prune=True)
