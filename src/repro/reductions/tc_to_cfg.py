"""TC → unbounded chain Datalog reduction (Theorem 5.11).

For an *infinite* CFG ``L``, the CFG pumping lemma yields ``u v w x y``
with ``|vx| ≥ 1`` and ``u vⁱ w xⁱ y ∈ L`` for all ``i``.  A layered TC
instance in which every ``s–t`` path has exactly ``ℓ`` edges becomes a
CFL-reachability instance:

1. a fresh prefix path spelling ``u`` into ``s``;
2. every graph edge expands into a fresh path spelling ``v``;
3. a fresh suffix path spelling ``w·xˡ·y`` out of ``t``.

An ``s–t`` path then spells ``u vˡ w xˡ y ∈ L``, so the constructed
fact holds iff ``T(s, t)`` does; conversely, layering forces every
``s₀ → t_end`` walk through exactly ``ℓ`` expanded edges, so no other
label word can arise.  (This is precisely why the lower-bound input
family of Theorem 3.4 is layered.)

The construction needs ``|v| ≥ 1``; the pumping extractor guarantees
``|vx| ≥ 1`` and the paper argues ``|v| ≥ 1`` w.l.o.g. (when ``v = ε``
and ``w = x = ε`` the grammar degenerates to the regular case of
Theorem 5.9; when only ``v = ε``, mirror the graph).  We surface the
rare mirror case as an error rather than silently mis-reducing.

The transfer step is the same wire rewiring as Theorem 5.9: first edge
of each ``v``-expansion reads the original edge variable, all padding
reads ``1``; size and depth are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..circuits.circuit import Circuit
from ..datalog.ast import Fact
from ..grammars.cfg import CFG, PumpingDecomposition, pumping_decomposition
from .transfer import rewire_circuit

__all__ = ["TCToCFGInstance", "tc_to_cfg_instance", "transfer_cfg_circuit_to_tc"]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]
LabeledEdge = Tuple[Vertex, str, Vertex]


@dataclass
class TCToCFGInstance:
    """The constructed CFL-reachability instance plus the wire map."""

    labeled_edges: List[LabeledEdge]
    source: Vertex
    sink: Vertex
    decomposition: PumpingDecomposition
    wire_map: Dict[Fact, Optional[Fact]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.labeled_edges)


def tc_to_cfg_instance(
    edges: Iterable[Edge],
    source: Vertex,
    sink: Vertex,
    grammar: CFG,
    path_length: int,
    edge_predicate: str = "E",
) -> TCToCFGInstance:
    """Build the Theorem 5.11 instance.

    *path_length* is the exact number of edges on every ``source →
    sink`` path of the layered input graph.  *grammar* must be
    infinite (raises ``ValueError`` otherwise).
    """
    decomposition = pumping_decomposition(grammar)
    if decomposition is None:
        raise ValueError("the CFG is finite; Theorem 5.11 needs an unbounded program")
    u, v, w, x, y = (
        decomposition.u,
        decomposition.v,
        decomposition.w,
        decomposition.x,
        decomposition.y,
    )
    if not v:
        raise ValueError(
            "pumping context has v = ε (pumps only on the right); mirror the "
            "input graph and reverse the grammar to apply the reduction"
        )
    if path_length < 1:
        raise ValueError("path_length must be ≥ 1")

    labeled: List[LabeledEdge] = []
    wire_map: Dict[Fact, Optional[Fact]] = {}

    def emit(a: Vertex, label: str, b: Vertex, origin: Optional[Fact]) -> None:
        labeled.append((a, str(label), b))
        wire_map[Fact(str(label), (a, b))] = origin

    # 1. Prefix spelling u.
    previous: Vertex = ("#pre", 0)
    start_vertex: Vertex = previous if u else source
    for i, symbol in enumerate(u):
        nxt: Vertex = source if i == len(u) - 1 else ("#pre", i + 1)
        emit(previous, symbol, nxt, None)
        previous = nxt

    # 2. Each edge expands to a path spelling v (first edge tagged).
    for a, b in edges:
        origin = Fact(edge_predicate, (a, b))
        current = a
        for i, symbol in enumerate(v):
            nxt = b if i == len(v) - 1 else ("#mid", a, b, i + 1)
            emit(current, symbol, nxt, origin if i == 0 else None)
            current = nxt

    # 3. Suffix spelling w · x^path_length · y.
    suffix_word = w + x * path_length + y
    current = sink
    for i, symbol in enumerate(suffix_word):
        nxt = ("#suf", i + 1)
        emit(current, symbol, nxt, None)
        current = nxt
    end_vertex = current

    return TCToCFGInstance(labeled, start_vertex, end_vertex, decomposition, wire_map)


def transfer_cfg_circuit_to_tc(
    instance: TCToCFGInstance, cfg_circuit: Circuit
) -> Circuit:
    """Rewire a CFL-reachability circuit for *instance* into a TC
    circuit (size- and depth-preserving)."""
    return rewire_circuit(cfg_circuit, instance.wire_map)
