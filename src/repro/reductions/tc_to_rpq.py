"""TC → infinite RPQ reduction (Theorem 5.9, first direction).

Given an infinite regular language ``L``, the pumping lemma yields
``x y z`` with ``|y| ≥ 1`` and ``x yⁱ z ∈ L`` for all ``i``.  A TC
instance ``(G, s, t)`` becomes an RPQ instance by

1. a fresh path spelling ``x`` into ``s``;
2. expanding **every** edge of ``G`` into a fresh path spelling ``y``;
3. a fresh path spelling ``z`` out of ``t``;

so ``s–t`` paths of ``G`` with ``i`` edges become ``x yⁱ z``-labeled
paths, and the RPQ fact ``(s₀, t_{|z|})`` holds iff ``T(s, t)`` does.

The transfer step rewires an RPQ circuit for the constructed instance
into a TC circuit: the *first* edge of each ``y``-expansion reads the
original edge variable ``x_{(u,v)}``, every other fresh edge reads the
constant ``1``.  Size and depth are preserved, which "pulls back" any
RPQ upper bound to TC -- the content of Theorem 5.9's hardness half.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..circuits.circuit import Circuit
from ..datalog.ast import Fact
from ..grammars.regular import DFA, RegularPumpingWitness, regular_pumping_witness
from .transfer import rewire_circuit

__all__ = ["TCToRPQInstance", "tc_to_rpq_instance", "transfer_rpq_circuit_to_tc"]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]
LabeledEdge = Tuple[Vertex, str, Vertex]


@dataclass
class TCToRPQInstance:
    """The constructed RPQ instance plus the circuit wire map.

    ``wire_map`` sends each labeled-edge fact of the instance to the
    original TC edge fact it represents, or ``None`` for the padding
    edges that must read ``1``.
    """

    labeled_edges: List[LabeledEdge]
    source: Vertex
    sink: Vertex
    witness: RegularPumpingWitness
    wire_map: Dict[Fact, Optional[Fact]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.labeled_edges)


def tc_to_rpq_instance(
    edges: Iterable[Edge],
    source: Vertex,
    sink: Vertex,
    dfa: DFA,
    edge_predicate: str = "E",
) -> TCToRPQInstance:
    """Build the Theorem 5.9 instance for TC input ``(edges, s, t)``.

    *dfa* must recognize an infinite language (its pumping witness
    drives the construction).  Fresh vertices are tuples tagged with
    ``"#pre"``/``"#mid"``/``"#suf"`` so they never collide with graph
    vertices.
    """
    witness = regular_pumping_witness(dfa)
    if witness is None:
        raise ValueError("the RPQ language is finite; Theorem 5.9 needs an infinite one")
    x, y, z = witness.x, witness.y, witness.z

    labeled: List[LabeledEdge] = []
    wire_map: Dict[Fact, Optional[Fact]] = {}

    def emit(u: Vertex, label: str, v: Vertex, origin: Optional[Fact]) -> None:
        labeled.append((u, str(label), v))
        fact = Fact(str(label), (u, v))
        # Parallel edges with equal labels collapse to one fact; the
        # construction never creates them with conflicting origins.
        wire_map[fact] = origin

    # 1. Prefix path spelling x, ending at the original source.
    previous: Vertex = ("#pre", 0)
    start_vertex: Vertex = previous if x else source
    for i, symbol in enumerate(x):
        nxt: Vertex = source if i == len(x) - 1 else ("#pre", i + 1)
        emit(previous, symbol, nxt, None)
        previous = nxt

    # 2. Each original edge becomes a path spelling y; the first edge
    #    carries the original provenance variable.
    for u, v in edges:
        origin = Fact(edge_predicate, (u, v))
        current = u
        for i, symbol in enumerate(y):
            nxt = v if i == len(y) - 1 else ("#mid", u, v, i + 1)
            emit(current, symbol, nxt, origin if i == 0 else None)
            current = nxt

    # 3. Suffix path spelling z, starting at the original sink.
    current = sink
    for i, symbol in enumerate(z):
        nxt = ("#suf", i + 1)
        emit(current, symbol, nxt, None)
        current = nxt
    end_vertex = current

    return TCToRPQInstance(labeled, start_vertex, end_vertex, witness, wire_map)


def transfer_rpq_circuit_to_tc(
    instance: TCToRPQInstance, rpq_circuit: Circuit
) -> Circuit:
    """Rewire an RPQ circuit for *instance* into a TC circuit.

    Depth is preserved exactly; every padding input becomes the
    constant ``1`` (which is why, as the paper remarks, this is a
    circuit reduction but **not** a formula reduction: the constant is
    reused Θ(m) times)."""
    return rewire_circuit(rpq_circuit, instance.wire_map)
