"""Circuit input rewiring: the transfer step of the reductions.

Every lower-bound reduction in the paper (Theorems 5.9, 5.11, 6.8)
ends the same way: take a circuit for the *constructed* instance and
turn it into a circuit for the *original* problem by reconnecting each
input gate either to an original input variable or to the constant
``1 ∈ S``, keeping all internal gates and wires intact.  This
preserves size and depth exactly -- which is what makes the instance-
level reductions depth-preserving circuit reductions.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

from ..circuits.circuit import Circuit, CircuitBuilder

__all__ = ["rewire_circuit"]


def rewire_circuit(
    circuit: Circuit,
    wire_map: Mapping[Hashable, Optional[Hashable]],
    strict: bool = True,
) -> Circuit:
    """Rewire the inputs of *circuit* through *wire_map*.

    ``wire_map[label]`` is either a new variable label (the original
    problem's input this gate should read) or ``None`` for the
    constant ``1``.  With ``strict=True`` every input label must be
    mapped; otherwise unmapped labels pass through unchanged.

    The internal gate structure is copied verbatim (no sharing beyond
    the input layer is introduced or removed), so size changes only by
    the collapsed input gates and depth never increases.
    """
    builder = CircuitBuilder(share=False)
    one_node: Optional[int] = None
    fresh_vars: Dict[Hashable, int] = {}

    def one() -> int:
        nonlocal one_node
        if one_node is None:
            one_node = builder.const1()
        return one_node

    input_map: Dict[Hashable, int] = {}
    for label in circuit.variables():
        if label in wire_map:
            replacement = wire_map[label]
            if replacement is None:
                input_map[label] = one()
            else:
                if replacement not in fresh_vars:
                    fresh_vars[replacement] = builder.var(replacement)
                input_map[label] = fresh_vars[replacement]
        elif strict:
            raise KeyError(f"input label {label!r} missing from wire map")
    remap = builder.splice(circuit, input_map)
    outputs = [remap[out] for out in circuit.outputs]
    return builder.build(outputs)
