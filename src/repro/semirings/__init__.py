"""Semirings for Datalog provenance (Section 2.2 of the paper).

Public surface:

* :class:`Semiring` -- the abstract interface.
* Concrete numeric semirings: Boolean, Counting, Tropical (ℕ and ℤ
  variants), Viterbi, Fuzzy/Gödel, Łukasiewicz, Arctic.
* Lattice semirings (the class ``Chom`` = bounded distributive
  lattices): subset, divisibility, chain, generic finite.
* Free polynomial semirings: ``ℕ[X]`` and the absorptive ``Sorp(X)``
  used as the canonical provenance domain.
* Property checking and homomorphisms (incl. the positivity map of
  Proposition 3.6 and Sorp-evaluation by initiality).
"""

from .base import Semiring, StarDivergenceError
from .homomorphism import (
    SemiringHomomorphism,
    boolean_embedding,
    evaluation_homomorphism,
    formal_evaluation_homomorphism,
    positivity_homomorphism,
)
from .lattice import (
    ChainLatticeSemiring,
    DivisibilityLatticeSemiring,
    FiniteLatticeSemiring,
    SubsetLatticeSemiring,
)
from .numeric import (
    ARCTIC,
    BOOLEAN,
    COUNTING,
    COUNTING_CAP,
    FUZZY,
    LUKASIEWICZ,
    TROPICAL,
    TROPICAL_INT,
    VITERBI,
    ArcticSemiring,
    BooleanSemiring,
    CappedCountingSemiring,
    CountingSemiring,
    FuzzySemiring,
    LukasiewiczSemiring,
    TropicalIntegerSemiring,
    TropicalSemiring,
    ViterbiSemiring,
)
from .polynomial import (
    NATURAL_POLY,
    SORP,
    SORP_IDEMPOTENT,
    FormalPolynomial,
    Monomial,
    NaturalPolynomialSemiring,
    Polynomial,
    SorpSemiring,
)
from .stable import KTropicalSemiring
from .properties import PropertyReport, check_semiring, is_p_stable_on, stability_bound

__all__ = [
    "Semiring",
    "StarDivergenceError",
    "BooleanSemiring",
    "CountingSemiring",
    "CappedCountingSemiring",
    "TropicalSemiring",
    "TropicalIntegerSemiring",
    "ViterbiSemiring",
    "FuzzySemiring",
    "LukasiewiczSemiring",
    "ArcticSemiring",
    "BOOLEAN",
    "COUNTING",
    "COUNTING_CAP",
    "TROPICAL",
    "TROPICAL_INT",
    "VITERBI",
    "FUZZY",
    "LUKASIEWICZ",
    "ARCTIC",
    "SubsetLatticeSemiring",
    "DivisibilityLatticeSemiring",
    "ChainLatticeSemiring",
    "FiniteLatticeSemiring",
    "Monomial",
    "Polynomial",
    "SorpSemiring",
    "FormalPolynomial",
    "NaturalPolynomialSemiring",
    "SORP",
    "SORP_IDEMPOTENT",
    "NATURAL_POLY",
    "KTropicalSemiring",
    "PropertyReport",
    "check_semiring",
    "stability_bound",
    "is_p_stable_on",
    "SemiringHomomorphism",
    "positivity_homomorphism",
    "evaluation_homomorphism",
    "formal_evaluation_homomorphism",
    "boolean_embedding",
]

#: All built-in absorptive semiring singletons (used by parametrized tests).
ABSORPTIVE_SEMIRINGS = (BOOLEAN, TROPICAL, VITERBI, FUZZY, LUKASIEWICZ)

#: Built-in members of the class ``Chom`` (absorptive + ⊗-idempotent).
CHOM_SEMIRINGS = (BOOLEAN, FUZZY)
