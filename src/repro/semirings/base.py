"""Abstract semiring interface.

A (commutative) semiring is an algebraic structure ``(D, ⊕, ⊗, 0, 1)``
where ``(D, ⊕, 0)`` and ``(D, ⊗, 1)`` are commutative monoids, ``⊗``
distributes over ``⊕`` and ``0`` annihilates ``⊗`` (Section 2.2 of the
paper).  Concrete semirings subclass :class:`Semiring` and provide the
two operations plus the two constants; everything else (n-ary folds,
natural order, closure/star, powers) is derived here.

The boolean *property flags* (``idempotent_add``, ``absorptive``, ...)
are declarations by the implementer; :mod:`repro.semirings.properties`
verifies them empirically on samples.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Generic, Iterable, TypeVar

T = TypeVar("T")

__all__ = ["Semiring", "StarDivergenceError"]


class StarDivergenceError(RuntimeError):
    """Raised when the Kleene star iteration does not stabilize.

    Over a non-stable semiring (e.g. the counting semiring) the infinite
    sum ``1 ⊕ u ⊕ u² ⊕ ...`` has no finite value; :meth:`Semiring.star`
    raises this error after exhausting its iteration budget.
    """


class Semiring(ABC, Generic[T]):
    """A commutative semiring ``(D, ⊕, ⊗, 0, 1)``.

    Subclasses must implement :attr:`zero`, :attr:`one`, :meth:`add`
    and :meth:`mul`, and should declare the class-level property flags.

    The flags mirror the definitions of Section 2.2:

    * ``idempotent_add`` -- ``x ⊕ x = x``.
    * ``idempotent_mul`` -- ``x ⊗ x = x`` (the class ``Chom`` of the
      paper consists of absorptive ⊗-idempotent semirings).
    * ``absorptive`` -- ``1 ⊕ x = 1`` (equivalently, the semiring is
      0-stable).  Absorptive implies ``idempotent_add``.
    * ``naturally_ordered`` -- ``x ≤ y ⟺ ∃z. x ⊕ z = y`` is a partial
      order.
    * ``positive`` -- the map to the Boolean semiring sending 0 to
      False and everything else to True is a homomorphism.
    """

    name: str = "semiring"
    idempotent_add: bool = False
    idempotent_mul: bool = False
    absorptive: bool = False
    naturally_ordered: bool = True
    positive: bool = True

    #: Optional closure-compiler specializations (DESIGN.md §7): pure
    #: Python expression templates over the placeholders ``{a}`` and
    #: ``{b}`` that are semantically identical to :meth:`add` /
    #: :meth:`mul`.  When both are set, the circuit evaluation runtime
    #: (:mod:`repro.circuits.runtime`) ``exec``-generates a kernel
    #: with the two operations fused into local-variable expressions
    #: -- no method call per gate.  Templates must be side-effect-free
    #: and closed (no references to ``self``); a placeholder may be
    #: substituted more than once.  ``None`` (the default) selects the
    #: generic kernel, which calls the bound methods.
    compiled_add_expr: str | None = None
    compiled_mul_expr: str | None = None

    #: Optional vectorized-backend specializations (DESIGN.md §13):
    #: names of NumPy *binary ufuncs* (looked up as ``getattr(numpy,
    #: name)``) that compute ``⊕`` / ``⊗`` elementwise over arrays of
    #: ``vector_dtype``, with semantics identical to :meth:`add` /
    #: :meth:`mul` on every representable input -- including values
    #: outside the semiring's nominal domain, since the backend mirrors
    #: the pure-Python fold orders exactly rather than normalizing.
    #: ``vector_eq_tols`` is an ``(rel_tol, abs_tol)`` pair for
    #: semirings whose :meth:`eq` is ``math.isclose``-based; ``None``
    #: means exact ``==`` convergence.  Leaving the ufunc names ``None``
    #: (the default) opts the semiring out of the vectorized backend:
    #: :mod:`repro.backends.vectorized` then returns ``None`` and the
    #: caller falls back to the pure-Python kernels.
    vector_add_expr: str | None = None
    vector_mul_expr: str | None = None
    vector_dtype: str | None = None
    vector_eq_tols: tuple[float, float] | None = None

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def zero(self) -> T:
        """The additive identity (annihilator of ``⊗``)."""

    @property
    @abstractmethod
    def one(self) -> T:
        """The multiplicative identity."""

    @abstractmethod
    def add(self, a: T, b: T) -> T:
        """Return ``a ⊕ b``."""

    @abstractmethod
    def mul(self, a: T, b: T) -> T:
        """Return ``a ⊗ b``."""

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------

    def eq(self, a: T, b: T) -> bool:
        """Semiring-element equality (override for approximate domains)."""
        return a == b

    def is_zero(self, a: T) -> bool:
        return self.eq(a, self.zero)

    def is_one(self, a: T) -> bool:
        return self.eq(a, self.one)

    def add_all(self, values: Iterable[T]) -> T:
        """Fold ``⊕`` over *values*; the empty sum is ``0``."""
        result = self.zero
        for value in values:
            result = self.add(result, value)
        return result

    def mul_all(self, values: Iterable[T]) -> T:
        """Fold ``⊗`` over *values*; the empty product is ``1``."""
        result = self.one
        for value in values:
            result = self.mul(result, value)
        return result

    def power(self, a: T, exponent: int) -> T:
        """Return ``a ⊗ a ⊗ ... ⊗ a`` (*exponent* times, ``a⁰ = 1``)."""
        if exponent < 0:
            raise ValueError("semiring powers require a non-negative exponent")
        result = self.one
        base = a
        n = exponent
        while n:
            if n & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            n >>= 1
        return result

    def leq(self, a: T, b: T) -> bool:
        """The natural order ``a ≤ b ⟺ ∃z. a ⊕ z = b``.

        For ⊕-idempotent semirings this simplifies to ``a ⊕ b = b``,
        which is the default implementation.  Non-idempotent semirings
        must override (e.g. the counting semiring uses ``<=`` on ℕ).
        """
        return self.eq(self.add(a, b), b)

    def star(self, a: T, max_iterations: int = 64) -> T:
        """The Kleene star ``a* = 1 ⊕ a ⊕ a² ⊕ ...``.

        For an absorptive semiring ``a* = 1`` identically (0-stability).
        Otherwise we iterate the partial sums until they stabilize and
        raise :class:`StarDivergenceError` after *max_iterations*.
        """
        if self.absorptive:
            return self.one
        partial = self.one
        power = self.one
        for _ in range(max_iterations):
            power = self.mul(power, a)
            nxt = self.add(partial, power)
            if self.eq(nxt, partial):
                return partial
            partial = nxt
        raise StarDivergenceError(
            f"star of {a!r} over {self.name} did not stabilize in "
            f"{max_iterations} iterations"
        )

    def stability_index(self, a: T, max_iterations: int = 64) -> int:
        """Smallest ``p`` with ``1 ⊕ a ⊕ ... ⊕ a^p = 1 ⊕ ... ⊕ a^(p+1)``.

        A semiring is *p-stable* when every element has stability index
        at most ``p``; absorptive semirings are exactly the 0-stable
        ones (Section 2.3).
        """
        partial = self.one
        power = self.one
        for p in range(max_iterations):
            power = self.mul(power, a)
            nxt = self.add(partial, power)
            if self.eq(nxt, partial):
                return p
            partial = nxt
        raise StarDivergenceError(
            f"element {a!r} of {self.name} is not p-stable for p < {max_iterations}"
        )

    def from_bool(self, flag: bool) -> T:
        """Map a Boolean to ``1``/``0`` (the unique hom from ``B``)."""
        return self.one if flag else self.zero

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def sum_of_products(self, monomials: Iterable[Iterable[T]]) -> T:
        """Evaluate a DNF ``⊕ᵢ ⊗ⱼ vᵢⱼ`` directly."""
        return self.add_all(self.mul_all(m) for m in monomials)

    def pairwise_distinct(self, values: Iterable[T]) -> list[T]:
        """De-duplicate *values* under :meth:`eq` (quadratic; test helper)."""
        distinct: list[T] = []
        for value in values:
            if not any(self.eq(value, seen) for seen in distinct):
                distinct.append(value)
        return distinct

    def close_under_ops(self, seeds: Iterable[T], rounds: int = 2) -> list[T]:
        """Close *seeds* under ``⊕``/``⊗`` for a few rounds (test helper)."""
        elements = self.pairwise_distinct(itertools.chain([self.zero, self.one], seeds))
        for _ in range(rounds):
            fresh: list[T] = []
            for a, b in itertools.combinations_with_replacement(elements, 2):
                for candidate in (self.add(a, b), self.mul(a, b)):
                    if not any(self.eq(candidate, e) for e in elements) and not any(
                        self.eq(candidate, f) for f in fresh
                    ):
                        fresh.append(candidate)
            if not fresh:
                break
            elements.extend(fresh)
        return elements

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

    def describe(self) -> dict[str, Any]:
        """A dictionary of the declared algebraic property flags."""
        return {
            "name": self.name,
            "idempotent_add": self.idempotent_add,
            "idempotent_mul": self.idempotent_mul,
            "absorptive": self.absorptive,
            "naturally_ordered": self.naturally_ordered,
            "positive": self.positive,
        }
