"""Semiring homomorphisms.

A homomorphism ``h : S → R`` respects ``⊕``, ``⊗`` and maps ``0 ↦ 0``,
``1 ↦ 1``.  Homomorphisms are the engine behind two results we use
throughout:

* Proposition 3.6 ("transfer"): a positive semiring ``S`` admits the
  support homomorphism ``S → B`` (:func:`positivity_homomorphism`), so
  circuit upper bounds over ``S`` transfer down to ``B`` and Boolean
  lower bounds transfer up to ``S``.
* Initiality of ``Sorp(X)``: an assignment ``X → S`` into an
  absorptive ``S`` extends to ``Sorp(X) → S``
  (:func:`evaluation_homomorphism`), which is how a canonical
  polynomial certifies a circuit over *every* absorptive semiring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .base import Semiring
from .numeric import BOOLEAN
from .polynomial import FormalPolynomial, Polynomial, SorpSemiring

__all__ = [
    "SemiringHomomorphism",
    "positivity_homomorphism",
    "evaluation_homomorphism",
    "formal_evaluation_homomorphism",
    "boolean_embedding",
]


@dataclass(frozen=True)
class SemiringHomomorphism:
    """A function between semirings claimed to be a homomorphism.

    :meth:`verify` checks the homomorphism laws on samples; a failure
    is a definite refutation.
    """

    source: Semiring
    target: Semiring
    mapping: Callable[[object], object]
    name: str = "hom"

    def __call__(self, value):
        return self.mapping(value)

    def verify(self, samples: Sequence) -> list[str]:
        """Return the list of violated identities on *samples* (empty = ok)."""
        failures: list[str] = []
        src, dst, h = self.source, self.target, self.mapping
        if not dst.eq(h(src.zero), dst.zero):
            failures.append("h(0) ≠ 0")
        if not dst.eq(h(src.one), dst.one):
            failures.append("h(1) ≠ 1")
        for a, b in itertools.product(samples, repeat=2):
            if not dst.eq(h(src.add(a, b)), dst.add(h(a), h(b))):
                failures.append(f"h({a!r} ⊕ {b!r}) ≠ h({a!r}) ⊕ h({b!r})")
            if not dst.eq(h(src.mul(a, b)), dst.mul(h(a), h(b))):
                failures.append(f"h({a!r} ⊗ {b!r}) ≠ h({a!r}) ⊗ h({b!r})")
        return failures


def positivity_homomorphism(semiring: Semiring) -> SemiringHomomorphism:
    """The support map ``h : S → B`` with ``h(x) = (x ≠ 0)``.

    This is a homomorphism exactly when ``S`` is positive; it is the
    mechanism of Proposition 3.6 for transferring bounds between ``S``
    and the Boolean semiring.
    """
    return SemiringHomomorphism(
        source=semiring,
        target=BOOLEAN,
        mapping=lambda value: not semiring.is_zero(value),
        name=f"support:{semiring.name}→boolean",
    )


def evaluation_homomorphism(
    sorp: SorpSemiring, target: Semiring, assignment: Mapping
) -> SemiringHomomorphism:
    """The unique extension of ``assignment : X → S`` to ``Sorp(X) → S``.

    Well-defined (respects absorption) only when *target* is
    absorptive; a non-absorptive target raises ``ValueError``.
    """
    if not target.absorptive:
        raise ValueError(
            f"Sorp(X) evaluation into non-absorptive {target.name} is unsound: "
            "absorption identities need not hold there"
        )

    def mapping(poly: Polynomial):
        return poly.evaluate(target, assignment)

    return SemiringHomomorphism(
        source=sorp, target=target, mapping=mapping, name=f"eval:sorp→{target.name}"
    )


def formal_evaluation_homomorphism(
    source: Semiring, target: Semiring, assignment: Mapping
) -> SemiringHomomorphism:
    """Extension of ``X → S`` to ``ℕ[X] → S`` (any commutative semiring)."""

    def mapping(poly: FormalPolynomial):
        return poly.evaluate(target, assignment)

    return SemiringHomomorphism(
        source=source, target=target, mapping=mapping, name=f"eval:ℕ[X]→{target.name}"
    )


def boolean_embedding(target: Semiring) -> SemiringHomomorphism:
    """The unique homomorphism ``B → S`` (False ↦ 0, True ↦ 1)."""
    return SemiringHomomorphism(
        source=BOOLEAN,
        target=target,
        mapping=target.from_bool,
        name=f"embed:boolean→{target.name}",
    )
