"""Bounded distributive lattices as semirings (the class ``Chom``).

Naaf (Prop. 3.1.8, cited in Section 4 of the paper) shows that the
absorptive ⊗-idempotent semirings -- the class ``Chom`` for which the
paper proves its strongest boundedness characterizations -- are exactly
the bounded distributive lattices with ``⊕ = join`` and ``⊗ = meet``.

This module provides three concrete families plus a generic finite
lattice driven by an explicit partial order:

* :class:`SubsetLatticeSemiring` -- ``(2^U, ∪, ∩, ∅, U)``.
* :class:`DivisibilityLatticeSemiring` -- divisors of a squarefree
  ``n`` under ``lcm``/``gcd``.
* :class:`ChainLatticeSemiring` -- a finite total order ``0 < 1 < ...``
  under ``max``/``min``.
* :class:`FiniteLatticeSemiring` -- any finite bounded distributive
  lattice given by its Hasse data (joins/meets computed by search).
"""

from __future__ import annotations

import math
from typing import FrozenSet, Hashable, Iterable, Mapping, Sequence

from .base import Semiring

__all__ = [
    "SubsetLatticeSemiring",
    "DivisibilityLatticeSemiring",
    "ChainLatticeSemiring",
    "FiniteLatticeSemiring",
]


class SubsetLatticeSemiring(Semiring[FrozenSet[Hashable]]):
    """The powerset lattice ``(2^U, ∪, ∩, ∅, U)`` of a finite universe.

    ``⊕`` is union (join) and ``⊗`` is intersection (meet).  Absorptive
    because ``U ∪ X = U``, and ⊗-idempotent because ``X ∩ X = X``.
    """

    name = "subset-lattice"
    idempotent_add = True
    idempotent_mul = True
    absorptive = True

    def __init__(self, universe: Iterable[Hashable]):
        self._universe = frozenset(universe)

    @property
    def universe(self) -> FrozenSet[Hashable]:
        return self._universe

    @property
    def zero(self) -> FrozenSet[Hashable]:
        return frozenset()

    @property
    def one(self) -> FrozenSet[Hashable]:
        return self._universe

    def add(self, a: FrozenSet[Hashable], b: FrozenSet[Hashable]) -> FrozenSet[Hashable]:
        return a | b

    def mul(self, a: FrozenSet[Hashable], b: FrozenSet[Hashable]) -> FrozenSet[Hashable]:
        return a & b

    def element(self, *members: Hashable) -> FrozenSet[Hashable]:
        """Build a lattice element, validating membership in ``U``."""
        value = frozenset(members)
        if not value <= self._universe:
            raise ValueError(f"{value - self._universe} not in lattice universe")
        return value


class DivisibilityLatticeSemiring(Semiring[int]):
    """Divisors of a squarefree ``n`` under ``(lcm, gcd, 1, n)``.

    Squarefreeness makes the divisor lattice distributive (it is then
    isomorphic to the subset lattice of the prime factors).
    """

    name = "divisibility-lattice"
    idempotent_add = True
    idempotent_mul = True
    absorptive = True

    def __init__(self, modulus: int):
        if modulus < 1:
            raise ValueError("modulus must be a positive integer")
        if not self._is_squarefree(modulus):
            raise ValueError(f"{modulus} is not squarefree; lattice not distributive")
        self._modulus = modulus

    @staticmethod
    def _is_squarefree(n: int) -> bool:
        d = 2
        while d * d <= n:
            if n % (d * d) == 0:
                return False
            if n % d == 0:
                n //= d
            else:
                d += 1
        return True

    @property
    def modulus(self) -> int:
        return self._modulus

    @property
    def zero(self) -> int:
        return 1

    @property
    def one(self) -> int:
        return self._modulus

    def add(self, a: int, b: int) -> int:
        return a * b // math.gcd(a, b)

    def mul(self, a: int, b: int) -> int:
        return math.gcd(a, b)

    def element(self, value: int) -> int:
        if self._modulus % value != 0:
            raise ValueError(f"{value} does not divide {self._modulus}")
        return value


class ChainLatticeSemiring(Semiring[int]):
    """A finite chain ``{0 < 1 < ... < top}`` under ``(max, min, 0, top)``.

    The simplest nontrivial member of ``Chom``; a discrete analogue of
    the fuzzy semiring.
    """

    name = "chain-lattice"
    idempotent_add = True
    idempotent_mul = True
    absorptive = True

    def __init__(self, top: int):
        if top < 0:
            raise ValueError("top must be non-negative")
        self._top = top

    @property
    def top(self) -> int:
        return self._top

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return self._top

    def add(self, a: int, b: int) -> int:
        return a if a >= b else b

    def mul(self, a: int, b: int) -> int:
        return a if a <= b else b

    def element(self, value: int) -> int:
        if not 0 <= value <= self._top:
            raise ValueError(f"{value} outside chain [0, {self._top}]")
        return value


class FiniteLatticeSemiring(Semiring[Hashable]):
    """A finite bounded lattice given by an explicit ``leq`` relation.

    *order* maps each element to the set of elements **greater than or
    equal to** it (its up-set, including itself).  Joins and meets are
    computed as least upper / greatest lower bounds; a ``ValueError``
    at construction time signals a non-lattice order.  Distributivity
    is the caller's responsibility (checkable with
    :func:`repro.semirings.properties.check_semiring`).
    """

    name = "finite-lattice"
    idempotent_add = True
    idempotent_mul = True
    absorptive = True

    def __init__(self, order: Mapping[Hashable, Iterable[Hashable]]):
        self._upsets = {x: frozenset(ups) | {x} for x, ups in order.items()}
        self._elements: Sequence[Hashable] = tuple(self._upsets)
        self._downsets = {
            x: frozenset(y for y in self._elements if x in self._upsets[y])
            for x in self._elements
        }
        self._bottom = self._unique_extreme(is_bottom=True)
        self._top = self._unique_extreme(is_bottom=False)
        self._join_table: dict[tuple[Hashable, Hashable], Hashable] = {}
        self._meet_table: dict[tuple[Hashable, Hashable], Hashable] = {}
        for a in self._elements:
            for b in self._elements:
                self._join_table[(a, b)] = self._bound(a, b, join=True)
                self._meet_table[(a, b)] = self._bound(a, b, join=False)

    def _unique_extreme(self, is_bottom: bool) -> Hashable:
        if is_bottom:
            candidates = [x for x in self._elements if self._downsets[x] == frozenset({x})]
            kind = "bottom"
        else:
            candidates = [x for x in self._elements if self._upsets[x] == frozenset({x})]
            kind = "top"
        if len(candidates) != 1:
            raise ValueError(f"order does not have a unique {kind}: {candidates}")
        return candidates[0]

    def _bound(self, a: Hashable, b: Hashable, join: bool) -> Hashable:
        if join:
            common = self._upsets[a] & self._upsets[b]
            minimal = [x for x in common if not any(y != x and x in self._upsets[y] for y in common)]
        else:
            common = self._downsets[a] & self._downsets[b]
            minimal = [x for x in common if not any(y != x and x in self._downsets[y] for y in common)]
        if len(minimal) != 1:
            raise ValueError(f"no unique {'join' if join else 'meet'} for {a!r}, {b!r}")
        return minimal[0]

    @property
    def elements(self) -> Sequence[Hashable]:
        return self._elements

    @property
    def zero(self) -> Hashable:
        return self._bottom

    @property
    def one(self) -> Hashable:
        return self._top

    def add(self, a: Hashable, b: Hashable) -> Hashable:
        return self._join_table[(a, b)]

    def mul(self, a: Hashable, b: Hashable) -> Hashable:
        return self._meet_table[(a, b)]
