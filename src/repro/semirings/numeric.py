"""Concrete numeric semirings from Section 2.2 of the paper.

* :class:`BooleanSemiring` -- ``({False, True}, ∨, ∧)``; absorptive.
* :class:`CountingSemiring` -- ``(ℕ, +, ·)``; positive, naturally
  ordered, *not* idempotent (naive Datalog evaluation may diverge).
* :class:`CappedCountingSemiring` -- ``({0..q}, ⊕, ⊗)`` with
  saturating ops; the ``q``-stable quotient of counting on which
  fixpoints converge even on cycles.
* :class:`TropicalSemiring` -- ``(ℕ ∪ {∞}, min, +)``; absorptive.
  Provenance of transitive closure over it is shortest-path weight.
* :class:`TropicalIntegerSemiring` -- ``(ℤ ∪ {∞}, min, +)`` (the
  paper's ``T⁻``); idempotent but **not** absorptive because negative
  weights defeat ``1 ⊕ x = 1``.
* :class:`ViterbiSemiring` -- ``([0, 1], max, ·)``; absorptive.
* :class:`FuzzySemiring` -- ``([0, 1], max, min)`` (Gödel); absorptive
  and ⊗-idempotent, hence in the class ``Chom``.
* :class:`LukasiewiczSemiring` -- ``([0, 1], max, a ⊗ b = max(0, a+b-1))``;
  absorptive but not ⊗-idempotent.
* :class:`ArcticSemiring` -- ``(ℕ ∪ {-∞}, max, +)``; naturally ordered
  but not absorptive (longest-path provenance diverges on cycles).
"""

from __future__ import annotations

import math

from .base import Semiring

__all__ = [
    "BooleanSemiring",
    "CountingSemiring",
    "CappedCountingSemiring",
    "TropicalSemiring",
    "TropicalIntegerSemiring",
    "ViterbiSemiring",
    "FuzzySemiring",
    "LukasiewiczSemiring",
    "ArcticSemiring",
    "BOOLEAN",
    "COUNTING",
    "COUNTING_CAP",
    "TROPICAL",
    "TROPICAL_INT",
    "VITERBI",
    "FUZZY",
    "LUKASIEWICZ",
    "ARCTIC",
]

_INF = math.inf


class BooleanSemiring(Semiring[bool]):
    """The Boolean semiring ``B = ({False, True}, ∨, ∧, False, True)``."""

    name = "boolean"
    idempotent_add = True
    idempotent_mul = True
    absorptive = True
    compiled_add_expr = "({a} or {b})"
    compiled_mul_expr = "({a} and {b})"
    vector_add_expr = "logical_or"
    vector_mul_expr = "logical_and"
    vector_dtype = "bool"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b


class CountingSemiring(Semiring[int]):
    """The counting semiring ``C = (ℕ, +, ·, 0, 1)``.

    Counts the number of derivations; it is positive and naturally
    ordered but not idempotent, so recursive programs with cycles have
    no finite fixpoint over it.
    """

    name = "counting"
    idempotent_add = False
    idempotent_mul = False
    absorptive = False
    compiled_add_expr = "({a} + {b})"
    compiled_mul_expr = "({a} * {b})"
    # int64 columns; repro.backends.vectorized guards against overflow
    # and bails back to Python bigints when counts approach 2**62.
    vector_add_expr = "add"
    vector_mul_expr = "multiply"
    vector_dtype = "int64"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def leq(self, a: int, b: int) -> bool:
        return a <= b


class CappedCountingSemiring(Semiring[int]):
    """The truncated counting semiring ``C_q = ({0, …, q}, ⊕, ⊗, 0, 1)``
    with saturating ``a ⊕ b = min(q, a + b)`` and ``a ⊗ b = min(q, a·b)``.

    The quotient of ``(ℕ, +, ·)`` identifying every count ≥ ``q``
    ("q-or-more derivations"); truncation ``ℕ → C_q`` is a semiring
    homomorphism.  Unlike the counting semiring it is ``q``-stable, so
    fixpoint evaluation converges even on cyclic inputs -- the
    non-idempotent, non-absorptive convergent case in the
    naive/semi-naive equivalence tests.
    """

    idempotent_add = False
    idempotent_mul = False
    absorptive = False

    def __init__(self, cap: int = 1024) -> None:
        if cap < 1:
            raise ValueError("cap must be at least 1")
        self.cap = cap
        self.name = f"counting-cap{cap}"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        total = a + b
        return total if total < self.cap else self.cap

    def mul(self, a: int, b: int) -> int:
        product = a * b
        return product if product < self.cap else self.cap

    def leq(self, a: int, b: int) -> bool:
        return a <= b


class TropicalSemiring(Semiring[float]):
    """The tropical semiring ``T = (ℕ ∪ {+∞}, min, +, +∞, 0)``.

    The domain is represented with ``float`` so that ``math.inf`` can
    stand for the additive identity; any non-negative weights are
    accepted.  Provenance of TC over ``T`` is shortest-path weight.
    """

    name = "tropical"
    idempotent_add = True
    idempotent_mul = False
    absorptive = True
    compiled_add_expr = "({a} if {a} <= {b} else {b})"
    compiled_mul_expr = "({a} + {b})"
    vector_add_expr = "minimum"
    vector_mul_expr = "add"
    vector_dtype = "float64"

    @property
    def zero(self) -> float:
        return _INF

    @property
    def one(self) -> float:
        return 0.0

    def add(self, a: float, b: float) -> float:
        return a if a <= b else b

    def mul(self, a: float, b: float) -> float:
        return a + b

    def leq(self, a: float, b: float) -> bool:
        # Natural order of (min, +): a ≤_S b iff min(a, b) = b iff b <= a.
        return b <= a


class TropicalIntegerSemiring(TropicalSemiring):
    """``T⁻ = (ℤ ∪ {+∞}, min, +, +∞, 0)``: idempotent, not absorptive.

    With negative weights ``1 ⊕ x = min(0, x)`` can be negative, so the
    absorption law fails; this is the paper's running example of an
    idempotent non-absorptive semiring.
    """

    name = "tropical-int"
    absorptive = False


class ViterbiSemiring(Semiring[float]):
    """The Viterbi semiring ``V = ([0, 1], max, ·, 0, 1)``; absorptive."""

    name = "viterbi"
    idempotent_add = True
    idempotent_mul = False
    absorptive = True
    compiled_add_expr = "({a} if {a} >= {b} else {b})"
    compiled_mul_expr = "({a} * {b})"
    vector_add_expr = "maximum"
    vector_mul_expr = "multiply"
    vector_dtype = "float64"
    vector_eq_tols = (1e-12, 1e-15)

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return a if a >= b else b

    def mul(self, a: float, b: float) -> float:
        return a * b

    def eq(self, a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-15)


class FuzzySemiring(Semiring[float]):
    """The fuzzy (Gödel) semiring ``([0, 1], max, min, 0, 1)``.

    Absorptive *and* ⊗-idempotent, hence a member of the class ``Chom``
    (a bounded distributive lattice, in fact a chain).
    """

    name = "fuzzy"
    idempotent_add = True
    idempotent_mul = True
    absorptive = True
    compiled_add_expr = "({a} if {a} >= {b} else {b})"
    compiled_mul_expr = "({a} if {a} <= {b} else {b})"
    vector_add_expr = "maximum"
    vector_mul_expr = "minimum"
    vector_dtype = "float64"

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return a if a >= b else b

    def mul(self, a: float, b: float) -> float:
        return a if a <= b else b


class LukasiewiczSemiring(Semiring[float]):
    """The Łukasiewicz semiring ``([0, 1], max, max(0, a + b - 1), 0, 1)``.

    Absorptive (``max(1, x) = 1``) but not ⊗-idempotent, so it lies in
    the absorptive class but outside ``Chom``.  It is also **not**
    positive (``0.5 ⊗ 0.5 = 0`` is a zero divisor), making it a useful
    control for the Proposition 3.6 transfer arguments, which require
    positivity.
    """

    name = "lukasiewicz"
    idempotent_add = True
    idempotent_mul = False
    absorptive = True
    positive = False
    compiled_add_expr = "({a} if {a} >= {b} else {b})"
    compiled_mul_expr = "(({a} + {b} - 1.0) if ({a} + {b}) > 1.0 else 0.0)"

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return a if a >= b else b

    def mul(self, a: float, b: float) -> float:
        value = a + b - 1.0
        return value if value > 0.0 else 0.0

    def eq(self, a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-15)


class ArcticSemiring(Semiring[float]):
    """The arctic semiring ``(ℕ ∪ {-∞}, max, +, -∞, 0)``.

    Longest-path provenance; *not* absorptive (``max(0, x) ≠ 0`` for
    ``x > 0``), so TC over it diverges on cyclic inputs.  Included as a
    negative control for the absorptive-only theorems.
    """

    name = "arctic"
    idempotent_add = True
    idempotent_mul = False
    absorptive = False
    compiled_add_expr = "({a} if {a} >= {b} else {b})"
    compiled_mul_expr = "({a} + {b})"
    vector_add_expr = "maximum"
    vector_mul_expr = "add"
    vector_dtype = "float64"

    @property
    def zero(self) -> float:
        return -_INF

    @property
    def one(self) -> float:
        return 0.0

    def add(self, a: float, b: float) -> float:
        return a if a >= b else b

    def mul(self, a: float, b: float) -> float:
        return a + b


BOOLEAN = BooleanSemiring()
COUNTING = CountingSemiring()
COUNTING_CAP = CappedCountingSemiring()
TROPICAL = TropicalSemiring()
TROPICAL_INT = TropicalIntegerSemiring()
VITERBI = ViterbiSemiring()
FUZZY = FuzzySemiring()
LUKASIEWICZ = LukasiewiczSemiring()
ARCTIC = ArcticSemiring()
