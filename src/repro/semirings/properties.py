"""Empirical verification of semiring axioms and the paper's properties.

The property flags on :class:`~repro.semirings.base.Semiring` are
declarations; this module checks them on concrete sample elements:
all semiring axioms (Section 2.2), ⊕/⊗-idempotency, absorption,
p-stability (Section 2.3) and positivity, plus whether the natural
order behaves as a partial order on the samples.

These checks are sound refuters (a failure is a real counterexample)
and heuristic verifiers (passing on samples is evidence, not proof) --
except on finite semirings where exhaustive samples make them proofs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .base import Semiring, StarDivergenceError

__all__ = ["PropertyReport", "check_semiring", "stability_bound", "is_p_stable_on"]


@dataclass
class PropertyReport:
    """Outcome of :func:`check_semiring` on one semiring + sample set."""

    semiring_name: str
    samples_checked: int
    is_commutative_add: bool = True
    is_commutative_mul: bool = True
    is_associative_add: bool = True
    is_associative_mul: bool = True
    has_add_identity: bool = True
    has_mul_identity: bool = True
    is_distributive: bool = True
    zero_annihilates: bool = True
    is_idempotent_add: bool = True
    is_idempotent_mul: bool = True
    is_absorptive: bool = True
    natural_order_antisymmetric: bool = True
    is_positive: bool = True
    counterexamples: list[str] = field(default_factory=list)

    @property
    def is_semiring(self) -> bool:
        """All core semiring axioms hold on the samples."""
        return (
            self.is_commutative_add
            and self.is_commutative_mul
            and self.is_associative_add
            and self.is_associative_mul
            and self.has_add_identity
            and self.has_mul_identity
            and self.is_distributive
            and self.zero_annihilates
        )

    @property
    def in_chom(self) -> bool:
        """Membership in the class ``Chom``: absorptive + ⊗-idempotent."""
        return self.is_absorptive and self.is_idempotent_mul

    def matches_declared(self, semiring: Semiring) -> list[str]:
        """Return mismatches between declared flags and observations.

        Observation can only *refute* a declared True; a declared False
        that happens to hold on samples is not a mismatch (the law may
        fail elsewhere in the domain).
        """
        issues = []
        if semiring.idempotent_add and not self.is_idempotent_add:
            issues.append("declared ⊕-idempotent but a counterexample was found")
        if semiring.idempotent_mul and not self.is_idempotent_mul:
            issues.append("declared ⊗-idempotent but a counterexample was found")
        if semiring.absorptive and not self.is_absorptive:
            issues.append("declared absorptive but a counterexample was found")
        if semiring.positive and not self.is_positive:
            issues.append("declared positive but a counterexample was found")
        return issues


def _record(report: PropertyReport, attribute: str, message: str) -> None:
    setattr(report, attribute, False)
    if len(report.counterexamples) < 20:
        report.counterexamples.append(message)


def check_semiring(semiring: Semiring, samples: Sequence) -> PropertyReport:
    """Check every axiom and paper property of *semiring* on *samples*.

    *samples* should include a few "generic" elements; ``0`` and ``1``
    are always added.  Triple-wise laws (associativity, distributivity)
    are checked on all ordered triples, so keep samples small (≤ ~12).
    """
    elements = semiring.pairwise_distinct(
        itertools.chain([semiring.zero, semiring.one], samples)
    )
    report = PropertyReport(semiring_name=semiring.name, samples_checked=len(elements))
    eq, add, mul = semiring.eq, semiring.add, semiring.mul
    zero, one = semiring.zero, semiring.one

    for a in elements:
        if not eq(add(a, zero), a):
            _record(report, "has_add_identity", f"{a!r} ⊕ 0 ≠ {a!r}")
        if not eq(mul(a, one), a):
            _record(report, "has_mul_identity", f"{a!r} ⊗ 1 ≠ {a!r}")
        if not eq(mul(a, zero), zero):
            _record(report, "zero_annihilates", f"{a!r} ⊗ 0 ≠ 0")
        if not eq(add(a, a), a):
            _record(report, "is_idempotent_add", f"{a!r} ⊕ {a!r} ≠ {a!r}")
        if not eq(mul(a, a), a):
            _record(report, "is_idempotent_mul", f"{a!r} ⊗ {a!r} ≠ {a!r}")
        if not eq(add(one, a), one):
            _record(report, "is_absorptive", f"1 ⊕ {a!r} ≠ 1")

    for a, b in itertools.product(elements, repeat=2):
        if not eq(add(a, b), add(b, a)):
            _record(report, "is_commutative_add", f"{a!r} ⊕ {b!r} not commutative")
        if not eq(mul(a, b), mul(b, a)):
            _record(report, "is_commutative_mul", f"{a!r} ⊗ {b!r} not commutative")
        # Positivity: x ⊗ y = 0 ⇒ x = 0 or y = 0; x ⊕ y = 0 ⇒ x = y = 0.
        if eq(mul(a, b), zero) and not (eq(a, zero) or eq(b, zero)):
            _record(report, "is_positive", f"zero divisors: {a!r} ⊗ {b!r} = 0")
        if eq(add(a, b), zero) and not (eq(a, zero) and eq(b, zero)):
            _record(report, "is_positive", f"0 is a non-trivial sum: {a!r} ⊕ {b!r}")
        # Antisymmetry of the natural order on the samples.
        if semiring.leq(a, b) and semiring.leq(b, a) and not eq(a, b):
            _record(
                report,
                "natural_order_antisymmetric",
                f"{a!r} ≤ {b!r} ≤ {a!r} but {a!r} ≠ {b!r}",
            )

    for a, b, c in itertools.product(elements, repeat=3):
        if not eq(add(add(a, b), c), add(a, add(b, c))):
            _record(report, "is_associative_add", f"⊕ not associative on {a!r},{b!r},{c!r}")
        if not eq(mul(mul(a, b), c), mul(a, mul(b, c))):
            _record(report, "is_associative_mul", f"⊗ not associative on {a!r},{b!r},{c!r}")
        if not eq(mul(a, add(b, c)), add(mul(a, b), mul(a, c))):
            _record(report, "is_distributive", f"distributivity fails on {a!r},{b!r},{c!r}")

    return report


def stability_bound(semiring: Semiring, samples: Sequence, max_iterations: int = 64) -> Optional[int]:
    """Max stability index over *samples*, or ``None`` if some diverges.

    A return of ``p`` certifies the samples are p-stable; an absorptive
    semiring returns 0 on every sample (Section 2.3: absorptive =
    0-stable).
    """
    worst = 0
    for a in samples:
        try:
            worst = max(worst, semiring.stability_index(a, max_iterations))
        except StarDivergenceError:
            return None
    return worst


def is_p_stable_on(semiring: Semiring, samples: Sequence, p: int) -> bool:
    """Check ``1 ⊕ a ⊕ ... ⊕ a^p = 1 ⊕ ... ⊕ a^(p+1)`` for each sample."""
    for a in samples:
        lhs = semiring.add_all(semiring.power(a, i) for i in range(p + 1))
        rhs = semiring.add(lhs, semiring.power(a, p + 1))
        if not semiring.eq(lhs, rhs):
            return False
    return True
