"""p-stable semirings beyond the absorptive (0-stable) class.

Section 2.3: naive evaluation converges whenever the semiring is
p-stable for some finite ``p`` (``1 ⊕ u ⊕ ... ⊕ uᵖ = 1 ⊕ ... ⊕ uᵖ⁺¹``);
absorptive semirings are exactly the 0-stable ones.  The footnote of
the introduction points to semirings with bounded representations
beyond the absorptive class -- the canonical family is implemented
here:

:class:`KTropicalSemiring` (``Trop_k``, Khamis et al. [20]): elements
are the multisets of the ``k`` smallest values; ``⊕`` merges and keeps
the ``k`` smallest, ``⊗`` sums pairwise and keeps the ``k`` smallest.
``Trop_1`` is the tropical semiring; ``Trop_k`` computes
**k-shortest-walk** provenance and is ``(k-1)``-stable but not
absorptive for ``k ≥ 2`` -- making it the test bed for which paper
results do and do not survive outside the absorptive class.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Tuple

from .base import Semiring

__all__ = ["KTropicalSemiring"]

Element = Tuple[float, ...]  # sorted, length ≤ k


class KTropicalSemiring(Semiring[Element]):
    """``Trop_k``: k smallest walk weights (min-plus on k-multisets).

    * ``0`` is the empty tuple (no walk), ``1`` is ``(0,)``.
    * ``a ⊕ b``: merge-sort, truncate to ``k``.
    * ``a ⊗ b``: all pairwise sums, ``k`` smallest.

    ``(k−1)``-stable: after ``k−1`` powers the partial sums
    ``1 ⊕ u ⊕ u² ⊕ ...`` stop changing (each extra power only adds
    larger walk weights that fall off the truncated multiset).
    """

    idempotent_add = False
    idempotent_mul = False
    absorptive = False  # true only for k = 1

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be ≥ 1")
        self.k = k
        self.name = f"trop_{k}"
        if k == 1:
            self.absorptive = True
            self.idempotent_add = True

    @property
    def zero(self) -> Element:
        return ()

    @property
    def one(self) -> Element:
        return (0.0,)

    def element(self, *values: float) -> Element:
        """Normalize raw values into a ``Trop_k`` element."""
        return tuple(sorted(values))[: self.k]

    def add(self, a: Element, b: Element) -> Element:
        return tuple(heapq.merge(a, b))[: self.k]

    def mul(self, a: Element, b: Element) -> Element:
        if not a or not b:
            return ()
        sums = sorted(x + y for x, y in itertools.product(a, b))
        return tuple(sums[: self.k])

    def leq(self, a: Element, b: Element) -> bool:
        # Sound under-approximation of the natural order (a ⊕ b = b ⟹
        # ∃c. a ⊕ c = b, but not conversely for truncated multisets);
        # sufficient for the antisymmetry checks and fixpoint monotone
        # reasoning used here.
        return self.add(a, b) == b

    def expected_stability(self) -> int:
        """The stability index ``p = k − 1`` (checked in tests)."""
        return self.k - 1
