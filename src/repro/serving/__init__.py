"""Serving layer: long-lived circuit evaluation over asyncio (DESIGN.md §10).

The paper's compile-once/evaluate-many contract becomes a network
service here:

* :class:`~repro.serving.batcher.LaneBatcher` -- the micro-batching
  queue that coalesces concurrent point queries into the 64-wide
  bitset lanes of ``evaluate_boolean_batch`` (flush on lane-full or a
  small timer);
* :class:`~repro.serving.server.CircuitServer` -- the asyncio HTTP
  server holding an LRU cache of compiled circuits keyed by
  ``(program fingerprint, database fingerprint, construction)``;
* :class:`~repro.serving.client.CircuitClient` -- a stdlib asyncio
  client speaking the same wire format, used by the tests and
  ``benchmarks/bench_serving.py``;
* :mod:`~repro.serving.resilience` -- the failure model (DESIGN.md
  §12): request deadlines, load shedding, idempotent mutation replay
  and the shed/timeout counters, configured by
  :class:`~repro.serving.resilience.ResilienceConfig` and paired on
  the client side by :class:`~repro.serving.client.RetryPolicy`.

Everything is standard library only: the HTTP/1.1 framing is
hand-rolled over ``asyncio`` streams, so the server runs wherever the
engine does.
"""

from .batcher import BatcherClosed, BatcherStats, LaneBatcher
from .client import CircuitClient, RetryPolicy, ServerError
from .resilience import (
    Deadline,
    DeadlineExceeded,
    IdempotencyCache,
    ResilienceConfig,
    ResilienceStats,
)
from .server import DEFAULT_MAINTENANCE_POLICY, CircuitServer, ServingError

__all__ = [
    "BatcherClosed",
    "BatcherStats",
    "LaneBatcher",
    "CircuitClient",
    "CircuitServer",
    "Deadline",
    "DeadlineExceeded",
    "DEFAULT_MAINTENANCE_POLICY",
    "IdempotencyCache",
    "ResilienceConfig",
    "ResilienceStats",
    "RetryPolicy",
    "ServerError",
    "ServingError",
]
