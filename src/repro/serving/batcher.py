"""Micro-batching queue: coalesce point queries into evaluation lanes.

``CompiledCircuit.evaluate_boolean_batch`` packs up to 64 Boolean
assignments into one integer bitmask per gate and evaluates them in a
single ``|``/``&`` pass -- but only if someone hands it 64 assignments
at once.  A serving workload arrives as independent point queries, so
the :class:`LaneBatcher` sits between the two: concurrent ``submit``
calls park on futures while their payloads accumulate, and the batch
is flushed through the (synchronous) kernel either when a full lane is
assembled or when the oldest queued item has waited ``max_delay``
seconds.  The same queue fronts ``evaluate_batch`` for numeric
semirings, where batching amortizes the kernel lookup and bind loop
rather than bit-level parallelism.

The flush callable runs on the event loop thread: circuit kernels are
pure compute with no awaits, and a 64-wide Boolean pass is far cheaper
than the socket round-trips it serves, so handing it to an executor
would cost more in handoff than it saves.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["BatcherClosed", "BatcherStats", "LaneBatcher"]


class BatcherClosed(RuntimeError):
    """Raised into futures still parked when the batcher closes."""


class BatcherStats:
    """Counters for one batcher: how full were the lanes we paid for?

    ``fill_ratio`` is the serving-efficiency headline: items divided by
    lane slots across all flushed batches.  1.0 means every bitset pass
    carried 64 queries; 1/64 ≈ 0.016 means the batcher degenerated to
    point evaluation.
    """

    __slots__ = ("lane_width", "batches", "items", "full_flushes", "timer_flushes", "errors")

    def __init__(self, lane_width: int):
        self.lane_width = lane_width
        self.batches = 0
        self.items = 0
        self.full_flushes = 0
        self.timer_flushes = 0
        self.errors = 0

    @property
    def fill_ratio(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.items / (self.batches * self.lane_width)

    def record(self, width: int, trigger: str) -> None:
        self.batches += 1
        self.items += width
        if trigger == "full":
            self.full_flushes += 1
        elif trigger == "timer":
            self.timer_flushes += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "lane_width": self.lane_width,
            "batches": self.batches,
            "items": self.items,
            "full_flushes": self.full_flushes,
            "timer_flushes": self.timer_flushes,
            "errors": self.errors,
            "fill_ratio": round(self.fill_ratio, 4),
        }


class LaneBatcher:
    """Coalesce awaited point submissions into fixed-width batches.

    *flush* is a synchronous callable ``items -> results`` (same
    length, same order).  ``submit`` enqueues one item and resolves to
    its result once the batch containing it runs.  Flush policy:

    * **lane-full** -- the moment ``lane_width`` items are queued, the
      batch runs immediately (no timer wait);
    * **timer** -- otherwise a flush fires ``max_delay`` seconds after
      the first item of the batch arrived, so a lone query never waits
      longer than the micro-batching window.

    A flush exception is fanned out to every future in that batch;
    later batches are unaffected.

    Lifecycle: every flush path -- lane-full, timer, :meth:`flush_now`
    and :meth:`close` -- cancels the armed timer before running, so a
    batch is never flushed twice and no stale ``call_later`` handle
    outlives its batch.  :meth:`close` additionally *fails* whatever
    is still parked with :class:`BatcherClosed` instead of leaving the
    futures pending forever: the server's graceful shutdown drains
    what it can first, then closes.
    """

    def __init__(
        self,
        flush: Callable[[List[Any]], Sequence[Any]],
        lane_width: int = 64,
        max_delay: float = 0.002,
    ):
        if lane_width < 1:
            raise ValueError("lane_width must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self._flush_fn = flush
        self.lane_width = lane_width
        self.max_delay = max_delay
        self._pending: List[tuple] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._closed = False
        self.stats = BatcherStats(lane_width)

    async def submit(self, item: Any) -> Any:
        if self._closed:
            raise BatcherClosed("batcher is closed; the server is shutting down")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((item, future))
        if len(self._pending) >= self.lane_width:
            self._flush("full")
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay, self._flush, "timer")
        return await future

    def flush_now(self) -> None:
        """Run whatever is queued immediately (shutdown/drain path)."""
        self._flush("drain")

    def close(self, exc: Optional[BaseException] = None) -> None:
        """Cancel the armed timer and fail every parked future.

        After close, :meth:`submit` raises immediately.  *exc* defaults
        to :class:`BatcherClosed`; the server's shutdown passes its own
        message so a waiter sees *why* its query died.
        """
        self._closed = True
        self._cancel_timer()
        pending, self._pending = self._pending, []
        error = exc if exc is not None else BatcherClosed("batcher closed with queries parked")
        for _, future in pending:
            if not future.done():
                future.set_exception(error)

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def timer_armed(self) -> bool:
        """True iff a ``call_later`` flush timer is currently live."""
        return self._timer is not None

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _flush(self, trigger: str) -> None:
        self._cancel_timer()
        pending, self._pending = self._pending, []
        if not pending:
            return
        self.stats.record(len(pending), trigger)
        try:
            results = self._flush_fn([item for item, _ in pending])
        except Exception as exc:  # fan the failure out to every waiter
            self.stats.errors += 1
            for _, future in pending:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(pending, results):
            if not future.done():
                future.set_result(result)
