"""CircuitClient: a stdlib asyncio client for :class:`CircuitServer`.

One client holds one keep-alive TCP connection; concurrent coroutines
sharing a client are serialized per request by an internal lock (HTTP
1.1 without pipelining), so load generators that want *server-side*
concurrency -- the thing the lane batcher coalesces -- should open one
client per worker coroutine, as ``benchmarks/bench_serving.py`` does.

Facts travel in either wire form; this client sends whatever it is
given, so callers may pass ``Fact`` objects (serialized via their
surface ``repr``), strings, or ``[pred, args]`` pairs.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..datalog.ast import Fact

__all__ = ["CircuitClient", "ServerError"]


class ServerError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def _wire_fact(fact: object) -> object:
    """Client-side fact encoding: ``Fact`` → surface string, else as-is."""
    if isinstance(fact, Fact):
        return repr(fact)
    return fact


def _wire_weights(weights: Optional[Mapping]) -> Optional[Dict[str, object]]:
    if weights is None:
        return None
    return {str(_wire_fact(fact)): value for fact, value in weights.items()}


class CircuitClient:
    """A persistent-connection JSON/HTTP client for the serving API."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    # -- connection lifecycle ------------------------------------------

    async def connect(self) -> "CircuitClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "CircuitClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- raw request ---------------------------------------------------

    async def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One HTTP round-trip; returns ``(status, parsed payload)``."""
        await self.connect()
        data = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: keep-alive\r\n"
            "\r\n"
        ).encode("latin-1")
        async with self._lock:
            assert self._writer is not None and self._reader is not None
            self._writer.write(head + data)
            await self._writer.drain()
            status_line = await self._reader.readline()
            if not status_line:
                raise ConnectionError("server closed the connection")
            status = int(status_line.split()[1])
            headers: Dict[str, str] = {}
            while True:
                line = await self._reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            raw = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(raw)

    async def _call(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        status, payload = await self.request(method, path, body)
        if status >= 400:
            raise ServerError(status, payload.get("error", "unknown error"))
        return payload

    # -- typed API -----------------------------------------------------

    async def healthz(self) -> dict:
        return await self._call("GET", "/healthz")

    async def stats(self) -> dict:
        return await self._call("GET", "/stats")

    async def register(
        self,
        program: object,
        facts: Iterable,
        output: object,
        *,
        target: Optional[str] = None,
        weights: Optional[Mapping] = None,
        construction: Optional[str] = None,
        engine: Optional[str] = None,
        strategy: Optional[str] = None,
    ) -> dict:
        """Register a circuit; returns the registration report (with ``key``)."""
        body: Dict[str, Any] = {
            "program": program if isinstance(program, (str, list)) else str(program),
            "facts": [_wire_fact(f) for f in facts],
            "output": _wire_fact(output),
        }
        if target is not None:
            body["target"] = target
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        if construction is not None:
            body["construction"] = construction
        if engine is not None:
            body["engine"] = engine
        if strategy is not None:
            body["strategy"] = strategy
        return await self._call("POST", "/circuits", body)

    async def boolean(self, key: str, true_facts: Iterable) -> bool:
        """One coalesced Boolean point query."""
        body = {"true_facts": [_wire_fact(f) for f in true_facts]}
        payload = await self._call("POST", f"/circuits/{key}/boolean", body)
        return payload["value"]

    async def boolean_batch(self, key: str, batches: Iterable[Iterable]) -> list:
        """A pre-assembled batch, evaluated directly (no coalescing)."""
        body = {"batches": [[_wire_fact(f) for f in batch] for batch in batches]}
        payload = await self._call("POST", f"/circuits/{key}/boolean", body)
        return payload["values"]

    async def evaluate(self, key: str, semiring: str, weights: Optional[Mapping] = None):
        """One numeric point valuation (batched server-side)."""
        body: Dict[str, Any] = {"semiring": semiring}
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        payload = await self._call("POST", f"/circuits/{key}/evaluate", body)
        return payload["value"]

    async def evaluate_batch(self, key: str, semiring: str, assignments: Iterable[Mapping]) -> list:
        body = {
            "semiring": semiring,
            "assignments": [_wire_weights(a) for a in assignments],
        }
        payload = await self._call("POST", f"/circuits/{key}/evaluate", body)
        return payload["values"]

    async def update(self, key: str, semiring: str, delta: Mapping) -> dict:
        """Apply a sparse weight delta to the incremental session."""
        body = {"semiring": semiring, "delta": _wire_weights(delta)}
        return await self._call("POST", f"/circuits/{key}/update", body)

    async def facts(
        self,
        key: str,
        *,
        insert: Iterable = (),
        retract: Iterable = (),
        weights: Optional[Mapping] = None,
    ) -> dict:
        """Stream a fact delta (inserts/retracts/reweights) into a circuit.

        ``insert`` items may be plain facts or ``(fact, weight)`` pairs;
        the server maintains its fixpoint differentially and recompiles
        the circuit only when an insert adds a leaf it has never seen.
        """
        wire_insert = []
        for item in insert:
            if isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], Fact):
                wire_insert.append({"fact": _wire_fact(item[0]), "weight": item[1]})
            else:
                wire_insert.append(_wire_fact(item))
        body: Dict[str, Any] = {
            "insert": wire_insert,
            "retract": [_wire_fact(f) for f in retract],
        }
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        return await self._call("POST", f"/circuits/{key}/facts", body)

    async def solve(
        self,
        program: object,
        facts: Iterable,
        semiring: str = "boolean",
        *,
        target: Optional[str] = None,
        weights: Optional[Mapping] = None,
        engine: Optional[str] = None,
        strategy: Optional[str] = None,
        max_iterations: Optional[int] = None,
    ) -> dict:
        body: Dict[str, Any] = {
            "program": program if isinstance(program, (str, list)) else str(program),
            "facts": [_wire_fact(f) for f in facts],
            "semiring": semiring,
        }
        if target is not None:
            body["target"] = target
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        if engine is not None:
            body["engine"] = engine
        if strategy is not None:
            body["strategy"] = strategy
        if max_iterations is not None:
            body["max_iterations"] = max_iterations
        return await self._call("POST", "/solve", body)
