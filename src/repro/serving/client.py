"""CircuitClient: a stdlib asyncio client for :class:`CircuitServer`.

One client holds one keep-alive TCP connection; concurrent coroutines
sharing a client are serialized per request by an internal lock (HTTP
1.1 without pipelining), so load generators that want *server-side*
concurrency -- the thing the lane batcher coalesces -- should open one
client per worker coroutine, as ``benchmarks/bench_serving.py`` does.

**Retries** (DESIGN.md §12): the client pairs the server's failure
model with a :class:`RetryPolicy` -- bounded exponential backoff with
jitter, spent from a token-bucket *retry budget* so a broken server
cannot trigger a retry storm.  What is retried follows idempotency:

* a 503 shed is retried for every route (the server sheds *before*
  applying anything), honoring its ``Retry-After`` hint;
* dropped connections and 504 deadline expiries are retried only for
  idempotent traffic -- reads, registration, circuit evaluation --
  because the original request may have been applied;
* ``/facts`` mutations become retry-safe by carrying an
  ``idempotency_key`` (auto-generated per logical delta): the server
  deduplicates on it, so a retry of a delta whose response was lost
  replays the recorded response instead of double-applying.

Facts travel in either wire form; this client sends whatever it is
given, so callers may pass ``Fact`` objects (serialized via their
surface ``repr``), strings, or ``[pred, args]`` pairs.
"""

from __future__ import annotations

import asyncio
import json
import random
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..datalog.ast import Fact

__all__ = ["CircuitClient", "RetryPolicy", "ServerError"]


class ServerError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered, budgeted retries (client side of §12).

    ``backoff(attempt)`` grows geometrically from ``base_delay`` by
    ``multiplier`` up to ``max_delay``, then subtracts up to
    ``jitter`` (a fraction) at random so synchronized clients do not
    retry in lockstep.  The *budget* is a token bucket shared by the
    whole client: every retry spends one token, every success refills
    ``refill`` tokens (capped at ``budget``), so sustained failure
    degrades to roughly one retry per ``1/refill`` successes instead
    of multiplying load on a struggling server.
    """

    max_attempts: int = 4
    base_delay: float = 0.02
    max_delay: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.5
    budget: float = 16.0
    refill: float = 0.1

    def backoff(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.max_delay, self.base_delay * (self.multiplier ** attempt))
        if self.jitter <= 0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


def _wire_fact(fact: object) -> object:
    """Client-side fact encoding: ``Fact`` → surface string, else as-is."""
    if isinstance(fact, Fact):
        return repr(fact)
    return fact


def _wire_weights(weights: Optional[Mapping]) -> Optional[Dict[str, object]]:
    if weights is None:
        return None
    return {str(_wire_fact(fact)): value for fact, value in weights.items()}


#: Exceptions that mean "the connection died under us" -- the request
#: may or may not have been applied, so these retry only idempotently.
_CONNECTION_ERRORS = (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError)


class CircuitClient:
    """A persistent-connection JSON/HTTP client for the serving API.

    *retry* defaults to :class:`RetryPolicy`; pass ``None`` to make
    every failure surface on the first attempt (the chaos suite uses
    both modes).  *retry_seed* pins the jitter stream for reproducible
    tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        retry: Optional[RetryPolicy] = RetryPolicy(),
        retry_seed: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self.retry = retry
        self._rng = random.Random(retry_seed)
        self._tokens = retry.budget if retry is not None else 0.0
        self.retries = 0
        self.retry_give_ups = 0
        self.last_headers: Dict[str, str] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    # -- connection lifecycle ------------------------------------------

    async def connect(self) -> "CircuitClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "CircuitClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- raw request ---------------------------------------------------

    async def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One HTTP round-trip, no retries; returns ``(status, payload)``.

        Response headers land in :attr:`last_headers` (the retry loop
        reads ``Retry-After`` from there).
        """
        await self.connect()
        data = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: keep-alive\r\n"
            "\r\n"
        ).encode("latin-1")
        async with self._lock:
            assert self._writer is not None and self._reader is not None
            self._writer.write(head + data)
            await self._writer.drain()
            status_line = await self._reader.readline()
            if not status_line:
                raise ConnectionError("server closed the connection")
            if not status_line.endswith(b"\n"):
                raise ConnectionError(f"torn response status line {status_line!r}")
            try:
                status = int(status_line.split()[1])
            except (IndexError, ValueError):
                raise ConnectionError(f"malformed status line {status_line!r}")
            headers: Dict[str, str] = {}
            terminated = False
            while True:
                line = await self._reader.readline()
                if line in (b"\r\n", b"\n"):
                    terminated = True
                    break
                if line == b"" or not line.endswith(b"\n"):
                    break  # connection died mid-headers
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            if not terminated:
                # A torn frame must never be mistaken for a complete
                # (empty) response -- surface it as a connection error
                # so the retry policy can decide.
                raise ConnectionError("connection closed mid-response headers")
            length = int(headers.get("content-length", "0"))
            raw = await self._reader.readexactly(length) if length else b"{}"
        self.last_headers = headers
        if headers.get("connection", "keep-alive").lower() == "close":
            await self.close()
        return status, json.loads(raw)

    # -- retry machinery -----------------------------------------------

    def _spend_retry_token(self) -> bool:
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.retries += 1
            return True
        self.retry_give_ups += 1
        return False

    def _refill_retry_tokens(self) -> None:
        if self.retry is not None:
            self._tokens = min(self.retry.budget, self._tokens + self.retry.refill)

    async def _pause(self, attempt: int, retry_after: Optional[float]) -> None:
        assert self.retry is not None
        delay = self.retry.backoff(attempt, self._rng)
        if retry_after is not None:
            delay = max(delay, retry_after)
        await asyncio.sleep(delay)

    def _retry_after_hint(self) -> Optional[float]:
        raw = self.last_headers.get("retry-after")
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return None

    async def _call(
        self, method: str, path: str, body: Optional[dict] = None, idempotent: Optional[bool] = None
    ) -> dict:
        """A request with the retry policy applied.

        *idempotent* defaults by route: everything but ``/facts`` is
        replay-safe; ``/facts`` becomes replay-safe when its body
        carries an ``idempotency_key``.
        """
        if idempotent is None:
            idempotent = method == "GET" or not path.endswith("/facts")
        replay_safe = idempotent or (
            isinstance(body, dict) and bool(body.get("idempotency_key"))
        )
        policy = self.retry
        attempt = 0
        while True:
            can_retry = (
                policy is not None and attempt + 1 < policy.max_attempts
            )
            try:
                status, payload = await self.request(method, path, body)
            except _CONNECTION_ERRORS:
                await self.close()
                if can_retry and replay_safe and self._spend_retry_token():
                    await self._pause(attempt, None)
                    attempt += 1
                    continue
                raise
            if status < 400:
                self._refill_retry_tokens()
                return payload
            # 503 sheds happen before anything is applied: retry-safe
            # for every route.  504 means the handler was cancelled
            # mid-flight: retry only replay-safe traffic.
            if (status == 503 or (status == 504 and replay_safe)) and can_retry:
                if self._spend_retry_token():
                    await self._pause(attempt, self._retry_after_hint())
                    attempt += 1
                    continue
            raise ServerError(status, payload.get("error", "unknown error"))

    def retry_snapshot(self) -> Dict[str, object]:
        return {
            "retries": self.retries,
            "give_ups": self.retry_give_ups,
            "tokens": round(self._tokens, 3),
        }

    # -- typed API -----------------------------------------------------

    async def healthz(self) -> dict:
        return await self._call("GET", "/healthz")

    async def readyz(self) -> dict:
        return await self._call("GET", "/readyz")

    async def stats(self) -> dict:
        return await self._call("GET", "/stats")

    async def register(
        self,
        program: object,
        facts: Iterable,
        output: object,
        *,
        target: Optional[str] = None,
        weights: Optional[Mapping] = None,
        construction: Optional[str] = None,
        engine: Optional[str] = None,
        strategy: Optional[str] = None,
    ) -> dict:
        """Register a circuit; returns the registration report (with ``key``)."""
        body: Dict[str, Any] = {
            "program": program if isinstance(program, (str, list)) else str(program),
            "facts": [_wire_fact(f) for f in facts],
            "output": _wire_fact(output),
        }
        if target is not None:
            body["target"] = target
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        if construction is not None:
            body["construction"] = construction
        if engine is not None:
            body["engine"] = engine
        if strategy is not None:
            body["strategy"] = strategy
        return await self._call("POST", "/circuits", body)

    async def boolean(self, key: str, true_facts: Iterable) -> bool:
        """One coalesced Boolean point query."""
        body = {"true_facts": [_wire_fact(f) for f in true_facts]}
        payload = await self._call("POST", f"/circuits/{key}/boolean", body)
        return payload["value"]

    async def boolean_batch(self, key: str, batches: Iterable[Iterable]) -> list:
        """A pre-assembled batch, evaluated directly (no coalescing)."""
        body = {"batches": [[_wire_fact(f) for f in batch] for batch in batches]}
        payload = await self._call("POST", f"/circuits/{key}/boolean", body)
        return payload["values"]

    async def evaluate(self, key: str, semiring: str, weights: Optional[Mapping] = None):
        """One numeric point valuation (batched server-side)."""
        body: Dict[str, Any] = {"semiring": semiring}
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        payload = await self._call("POST", f"/circuits/{key}/evaluate", body)
        return payload["value"]

    async def evaluate_batch(self, key: str, semiring: str, assignments: Iterable[Mapping]) -> list:
        body = {
            "semiring": semiring,
            "assignments": [_wire_weights(a) for a in assignments],
        }
        payload = await self._call("POST", f"/circuits/{key}/evaluate", body)
        return payload["values"]

    async def update(self, key: str, semiring: str, delta: Mapping) -> dict:
        """Apply a sparse weight delta to the incremental session.

        The delta carries *absolute* new values, so replaying it is
        idempotent -- the retry policy treats it as such.
        """
        body = {"semiring": semiring, "delta": _wire_weights(delta)}
        return await self._call("POST", f"/circuits/{key}/update", body)

    async def facts(
        self,
        key: str,
        *,
        insert: Iterable = (),
        retract: Iterable = (),
        weights: Optional[Mapping] = None,
        idempotency_key: Optional[str] = None,
    ) -> dict:
        """Stream a fact delta (inserts/retracts/reweights) into a circuit.

        ``insert`` items may be plain facts or ``(fact, weight)`` pairs;
        the server maintains its fixpoint differentially and recompiles
        the circuit only when an insert adds a leaf it has never seen.

        Each call mints an *idempotency_key* (unless one is supplied),
        making the mutation replay-safe: if the response is lost and
        the retry policy re-sends, the server deduplicates on the token
        and replays the recorded response (``"replayed": true``).
        """
        wire_insert = []
        for item in insert:
            if isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], Fact):
                wire_insert.append({"fact": _wire_fact(item[0]), "weight": item[1]})
            else:
                wire_insert.append(_wire_fact(item))
        body: Dict[str, Any] = {
            "insert": wire_insert,
            "retract": [_wire_fact(f) for f in retract],
        }
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        if idempotency_key is None and self.retry is not None:
            idempotency_key = uuid.uuid4().hex
        if idempotency_key:
            body["idempotency_key"] = idempotency_key
        return await self._call("POST", f"/circuits/{key}/facts", body)

    async def solve(
        self,
        program: object,
        facts: Iterable,
        semiring: str = "boolean",
        *,
        target: Optional[str] = None,
        weights: Optional[Mapping] = None,
        engine: Optional[str] = None,
        strategy: Optional[str] = None,
        max_iterations: Optional[int] = None,
    ) -> dict:
        body: Dict[str, Any] = {
            "program": program if isinstance(program, (str, list)) else str(program),
            "facts": [_wire_fact(f) for f in facts],
            "semiring": semiring,
        }
        if target is not None:
            body["target"] = target
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        if engine is not None:
            body["engine"] = engine
        if strategy is not None:
            body["strategy"] = strategy
        if max_iterations is not None:
            body["max_iterations"] = max_iterations
        return await self._call("POST", "/solve", body)

    async def lint(
        self,
        program: object,
        facts: Iterable = (),
        *,
        target: Optional[str] = None,
        weights: Optional[Mapping] = None,
        semiring: Optional[str] = None,
    ) -> dict:
        """Run the server-side static analyzer (``POST /lint``).

        Returns the analysis report JSON (``ok``, DL-coded
        ``diagnostics``, ``dependencies``, and -- when *semiring* is
        given -- ``divergence``); a syntactically broken program
        answers ``ok: false`` with a ``parse_error`` object instead of
        an HTTP error.
        """
        body: Dict[str, Any] = {
            "program": program if isinstance(program, (str, list)) else str(program),
        }
        wired = [_wire_fact(f) for f in facts]
        if wired:
            body["facts"] = wired
        if target is not None:
            body["target"] = target
        if weights is not None:
            body["weights"] = _wire_weights(weights)
        if semiring is not None:
            body["semiring"] = semiring
        return await self._call("POST", "/lint", body)
