"""Resilience primitives for the serving layer (DESIGN.md §12).

The server's failure model is built from four small, composable
pieces, all stdlib-only:

* :class:`ResilienceConfig` -- the knob bundle: per-phase request
  deadlines (header read, body read, handler), the body-size cap,
  admission-control limits and the drain budget.  One frozen config
  is shared by every connection of a :class:`~repro.serving.server.
  CircuitServer`.
* :class:`Deadline` -- a wall-clock budget carried through one
  request.  Each await is wrapped in ``asyncio.wait_for(...,
  deadline.remaining())`` so a slow peer (slow-loris headers, a
  dribbled body) or a slow handler is *cancelled*, never parked
  forever.
* :class:`ResilienceStats` -- the shed/timeout/error counters the
  ``/stats`` route surfaces; operators alert on these, the chaos
  suite asserts on them.
* :class:`IdempotencyCache` -- an LRU of completed mutation responses
  keyed by client-supplied token, so a retry of a ``/facts`` delta
  whose response was lost on the wire replays the recorded response
  instead of double-applying the delta.

Nothing here imports the server; the pieces are unit-testable and
reused by the fault-injection suite (``repro.testing.faults``).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "DeadlineExceeded",
    "Deadline",
    "ResilienceConfig",
    "ResilienceStats",
    "IdempotencyCache",
]


class DeadlineExceeded(Exception):
    """A request phase ran past its wall-clock budget."""

    def __init__(self, phase: str, budget: float):
        super().__init__(f"{phase} exceeded its {budget:.3f}s budget")
        self.phase = phase
        self.budget = budget


class Deadline:
    """A monotonic wall-clock budget for one request phase.

    ``remaining()`` is what every ``asyncio.wait_for`` in the phase
    gets: the budget shrinks as the phase progresses, so ten slow
    header lines cannot each spend the full header budget.
    """

    __slots__ = ("phase", "budget", "_expires")

    def __init__(self, phase: str, budget: float):
        self.phase = phase
        self.budget = budget
        self._expires = time.monotonic() + budget

    def remaining(self) -> float:
        return self._expires - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def exceeded(self) -> DeadlineExceeded:
        return DeadlineExceeded(self.phase, self.budget)


@dataclass(frozen=True)
class ResilienceConfig:
    """The server's failure-model knobs (see README "Operating the server").

    Defaults are sized for tests and small deployments; production
    operators tune them per workload.  ``None`` disables an individual
    deadline (the phase may then block indefinitely -- only sensible
    behind an external proxy that enforces its own).
    """

    #: Budget to read the request line + headers.  An idle keep-alive
    #: connection timing out *before any byte* of the next request is
    #: closed silently; a peer that started a request and stalled
    #: (slow-loris) gets 408 and the connection is closed.
    header_timeout: Optional[float] = 10.0
    #: Budget to read the declared body once headers are in.
    body_timeout: Optional[float] = 10.0
    #: Budget for the route handler itself (grounding, compilation,
    #: lane waits, maintenance).  Expiry cancels the handler and maps
    #: to 504 with a structured error body.
    handler_timeout: Optional[float] = 30.0
    #: Bodies larger than this are rejected with 413 without reading
    #: them (the declared Content-Length is checked first).
    max_body_bytes: int = 4 * 1024 * 1024
    #: Admission control: connections accepted beyond this are shed
    #: immediately with 503 + Retry-After, bounding event-loop fanout.
    max_connections: int = 256
    #: Admission control: requests dispatched concurrently beyond this
    #: are shed with 503 + Retry-After instead of queueing unboundedly.
    max_inflight: int = 128
    #: The Retry-After hint (seconds) sent with every 503 shed.
    retry_after: float = 0.05
    #: Graceful-shutdown budget: how long ``close()`` waits for
    #: in-flight requests to finish before failing what remains.
    shutdown_grace: float = 5.0
    #: Completed mutation responses remembered for idempotent replay.
    idempotency_cache_size: int = 1024

    def deadline(self, phase: str) -> Optional[Deadline]:
        budget = getattr(self, f"{phase}_timeout")
        return None if budget is None else Deadline(phase, budget)


class ResilienceStats:
    """Shed/timeout/error counters, surfaced under ``/stats``.

    Every counter is monotone; the chaos suite and operators read the
    snapshot, so names are part of the wire contract.
    """

    __slots__ = (
        "shed_connections",
        "shed_requests",
        "header_timeouts",
        "body_timeouts",
        "handler_timeouts",
        "oversize_rejections",
        "bad_requests",
        "disconnects",
        "internal_errors",
        "idempotent_replays",
        "degraded_deltas",
        "drained_futures",
        "failed_futures",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class IdempotencyCache:
    """LRU of completed mutation responses keyed by client token.

    The contract (DESIGN.md §12): a mutation request carrying
    ``"idempotency_key"`` is applied at most once per ``(circuit key,
    token)``; a repeat returns the recorded ``(status, payload)`` with
    ``"replayed": true`` merged in, so a client whose response was
    lost on the wire can retry the POST safely.  Only *completed*
    responses are recorded -- a request that failed before the delta
    applied records nothing, and the retry re-executes.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], Tuple[int, dict]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, scope: str, token: str) -> Optional[Tuple[int, dict]]:
        entry = self._entries.get((scope, token))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end((scope, token))
        status, payload = entry
        return status, {**payload, "replayed": True}

    def put(self, scope: str, token: str, status: int, payload: dict) -> None:
        self._entries[(scope, token)] = (status, payload)
        self._entries.move_to_end((scope, token))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}
