"""CircuitServer: compiled provenance circuits behind asyncio HTTP.

The server is the paper's evaluation pipeline turned into a long-lived
process (DESIGN.md §10).  A client registers a (program, database,
output fact) triple once; the server grounds it, builds the circuit
through the configured construction, compiles it, and caches the whole
:class:`repro.api.Session` under a key derived from
``(program fingerprint, database fingerprint, construction)``.  Every
subsequent query is pure circuit evaluation:

* ``POST /circuits/<key>/boolean`` -- Boolean point queries, coalesced
  by a :class:`~repro.serving.batcher.LaneBatcher` into the 64-wide
  bitset lanes of ``evaluate_boolean_batch``;
* ``POST /circuits/<key>/evaluate`` -- numeric valuations, batched
  through ``evaluate_batch`` (any registered semiring);
* ``POST /circuits/<key>/update`` -- sparse weight deltas served by a
  per-(circuit, semiring) ``IncrementalEvaluator`` session that pays
  only the dirty cone;
* ``POST /circuits/<key>/facts`` -- *fact-stream* deltas (inserts,
  retracts, reweights) absorbed by the entry's
  :class:`~repro.api.StreamSession` (DESIGN.md §11): the maintained
  fixpoint regrounds differentially, retracted leaves are served as
  semiring ``0`` to the existing circuit, and only an insert that
  creates a leaf the compiled circuit has never seen triggers a
  recompile (reported as ``"recompiled": true``).  A body carrying
  ``"idempotency_key"`` is applied at most once per (circuit, token);
  repeats replay the recorded response with ``"replayed": true``;
* ``POST /solve`` -- one-shot fixpoint evaluation (no circuit cache),
  with divergence reported as HTTP 422.

**Failure model** (DESIGN.md §12): every request phase runs under a
wall-clock deadline from the :class:`~repro.serving.resilience.
ResilienceConfig` -- header read (slow-loris safe), body read, and the
handler itself (expiry maps to 504).  Declared bodies above
``max_body_bytes`` are rejected with 413 before reading; connections
and in-flight requests beyond the admission limits are *shed* with
503 + ``Retry-After`` instead of queueing unboundedly.  ``/healthz``
is pure liveness; ``/readyz`` reports readiness (503 while draining).
``close()`` drains: it stops accepting, flushes parked lane futures
through the kernel so in-flight queries complete, then fails whatever
remains instead of abandoning it.  Shed/timeout/error counters are
surfaced under ``/stats`` ``"resilience"``.

The HTTP/1.1 framing is hand-rolled over ``asyncio`` streams -- no
third-party web stack -- and supports keep-alive, so a client holds
one TCP connection for its whole query stream.

Wire format: facts are either strings in surface syntax (``"E(0,1)"``,
parsed by the Datalog parser, numerals become ints) or
``[predicate, [arg, ...]]`` pairs taken literally.  Responses are JSON
objects; errors are ``{"error": ...}`` with a 4xx/5xx status.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
import time
from collections import OrderedDict
from typing import Any, Awaitable, Dict, List, Mapping, Optional, Set, Tuple, TypeVar

from ..api import Session
from ..config import ExecutionConfig
from .batcher import BatcherClosed, LaneBatcher
from .resilience import Deadline, IdempotencyCache, ResilienceConfig, ResilienceStats
from ..datalog.analysis import ProgramValidationError, analyze_program, require_valid
from ..datalog.ast import DatalogError, Fact
from ..datalog.database import Database
from ..datalog.evaluation import DivergenceError
from ..datalog.incremental import MaintenancePolicy
from ..datalog.parser import ParseError, parse_atom, parse_program
from ..testing.faults import FLUSH_RAISE, FLUSH_SLOW, HANDLER_STALL, PARTIAL_WRITE, SOCKET_RESET
from ..semirings import (
    ARCTIC,
    BOOLEAN,
    COUNTING,
    COUNTING_CAP,
    FUZZY,
    LUKASIEWICZ,
    TROPICAL,
    TROPICAL_INT,
    VITERBI,
)

__all__ = ["CircuitServer", "ServingError", "SEMIRINGS", "DEFAULT_MAINTENANCE_POLICY"]

#: Wire name → semiring singleton.  Only semirings whose values survive
#: a JSON round-trip are exposed over HTTP.
SEMIRINGS = {
    "boolean": BOOLEAN,
    "counting": COUNTING,
    "counting_cap": COUNTING_CAP,
    "tropical": TROPICAL,
    "tropical_int": TROPICAL_INT,
    "viterbi": VITERBI,
    "fuzzy": FUZZY,
    "lukasiewicz": LUKASIEWICZ,
    "arctic": ARCTIC,
}

#: The server's default maintenance watchdogs: generous enough that no
#: healthy delta ever trips them, finite so a poisoned update degrades
#: the circuit to recompute instead of wedging the event loop.
DEFAULT_MAINTENANCE_POLICY = MaintenancePolicy(
    max_propagate_seconds=5.0,
    max_refresh_seconds=10.0,
    max_reground_seconds=5.0,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_T = TypeVar("_T")


class ServingError(Exception):
    """A request error with an HTTP status (raised by handlers)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def fact_from_wire(obj: object) -> Fact:
    """Decode one fact from its wire form (string or [pred, args])."""
    if isinstance(obj, str):
        try:
            return parse_atom(obj).to_fact()
        except DatalogError as exc:
            raise ServingError(400, f"bad fact {obj!r}: {exc}") from exc
    if isinstance(obj, (list, tuple)) and len(obj) == 2 and isinstance(obj[0], str):
        predicate, args = obj
        if not isinstance(args, (list, tuple)):
            raise ServingError(400, f"bad fact {obj!r}: args must be a list")
        return Fact(predicate, tuple(args))
    raise ServingError(400, f"bad fact {obj!r}: expected 'R(a,b)' or ['R', [a, b]]")


def _resolve_semiring(body: Mapping[str, Any]):
    name = body.get("semiring", "boolean")
    semiring = SEMIRINGS.get(name)
    if semiring is None:
        raise ServingError(400, f"unknown semiring {name!r}; one of {sorted(SEMIRINGS)}")
    return name, semiring


def _parse_weights(raw: object, where: str) -> Dict[Fact, object]:
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise ServingError(400, f"{where} must be an object of fact → value")
    return {fact_from_wire(label): value for label, value in raw.items()}


class _CircuitEntry:
    """One cached compiled circuit plus its serving machinery."""

    __slots__ = (
        "key",
        "session",
        "output",
        "choice",
        "compiled",
        "boolean_batcher",
        "numeric_batchers",
        "incremental",
        "base_valuations",
        "queries",
        "stream",
        "faults",
        "policy",
        "lane_width",
        "max_delay",
    )

    def __init__(
        self,
        key: str,
        session: Session,
        output: Fact,
        lane_width: int,
        max_delay: float,
        faults=None,
        policy: Optional[MaintenancePolicy] = None,
    ):
        self.key = key
        self.session = session
        self.output = output
        self.faults = faults
        self.policy = policy
        self.lane_width = lane_width
        self.max_delay = max_delay
        self.choice = session.circuit(output)
        self.compiled = self.choice.compiled()
        self.boolean_batcher = LaneBatcher(self._boolean_flush, lane_width=lane_width, max_delay=max_delay)
        # name → LaneBatcher for numeric point queries (built lazily).
        self.numeric_batchers: Dict[str, LaneBatcher] = {}
        # name → IncrementalEvaluator update session (built lazily).
        self.incremental: Dict[str, object] = {}
        # name → dense base valuation reused to complete sparse queries.
        self.base_valuations: Dict[str, Dict[Fact, object]] = {}
        self.queries = 0
        # StreamSession write handle; attached on the first facts delta.
        self.stream = None

    def _fault_gate(self) -> None:
        """Fault-injection tap shared by every flush kernel."""
        if self.faults is not None:
            self.faults.stall_sync(FLUSH_SLOW)
            self.faults.check(FLUSH_RAISE)

    def _boolean_flush(self, batches: List) -> List[bool]:
        self._fault_gate()
        return self.compiled.evaluate_boolean_batch(batches)

    def base_valuation(self, name: str, semiring) -> Dict[Fact, object]:
        base = self.base_valuations.get(name)
        if base is None:
            if self.stream is not None:
                base = self.stream.assignment(semiring)
            else:
                base = self.session.database.valuation(semiring)
            self.base_valuations[name] = base
        return base

    def get_stream(self):
        if self.stream is None:
            self.stream = self.session.stream(policy=self.policy)
        return self.stream

    def batchers(self) -> List[LaneBatcher]:
        return [self.boolean_batcher, *self.numeric_batchers.values()]

    def numeric_batcher(self, name: str, semiring) -> "LaneBatcher":
        batcher = self.numeric_batchers.get(name)
        if batcher is None:
            def flush(assignments: List) -> List:
                self._fault_gate()
                return self.compiled.evaluate_batch(
                    semiring, assignments, backend=self.session.config.backend
                )

            batcher = LaneBatcher(flush, lane_width=self.lane_width, max_delay=self.max_delay)
            self.numeric_batchers[name] = batcher
        return batcher

    def update_session(self, name: str, semiring):
        session = self.incremental.get(name)
        if session is None:
            assignment = None if self.stream is None else self.stream.assignment(semiring)
            session = self.session.serve(self.output, semiring, assignment)
            self.incremental[name] = session
        return session

    def stats(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "construction": self.choice.construction,
            "size": self.compiled.size,
            "queries": self.queries,
            "boolean_lanes": self.boolean_batcher.stats.snapshot(),
            "numeric_lanes": {
                name: batcher.stats.snapshot()
                for name, batcher in sorted(self.numeric_batchers.items())
            },
            "update_sessions": sorted(self.incremental),
        }
        if self.stream is not None:
            payload["stream"] = {
                "degraded": self.stream.degraded,
                "degradations": self.stream.degradations,
                "last_degrade_reason": self.stream.last_degrade_reason,
            }
        return payload


class CircuitServer:
    """Asyncio HTTP server over an LRU cache of compiled circuits.

    ``max_circuits`` bounds the cache; registration of a key already
    present is a cache hit (the expensive ground/construct/compile
    pipeline is skipped), and the least-recently-used entry is evicted
    past the bound.  ``lane_width``/``max_delay`` set the micro-batching
    policy shared by every entry's Boolean and numeric batchers.

    ``resilience`` carries the failure-model knobs (defaults on -- see
    :class:`~repro.serving.resilience.ResilienceConfig`);
    ``maintenance_policy`` arms the fact-stream watchdogs (defaults to
    :data:`DEFAULT_MAINTENANCE_POLICY`); ``fault_injector`` is the
    test-only seeded chaos tap (:mod:`repro.testing.faults`) -- pass
    ``None`` (the default) in production.

    Usage::

        server = CircuitServer()
        host, port = await server.start()
        ...
        await server.close()

    or ``async with CircuitServer() as (host, port): ...``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_circuits: int = 32,
        lane_width: int = 64,
        max_delay: float = 0.002,
        resilience: Optional[ResilienceConfig] = None,
        maintenance_policy: Optional[MaintenancePolicy] = None,
        fault_injector=None,
    ):
        if max_circuits < 1:
            raise ValueError("max_circuits must be positive")
        self.host = host
        self.port = port
        self.max_circuits = max_circuits
        self.lane_width = lane_width
        self.max_delay = max_delay
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.fault_injector = fault_injector
        policy = maintenance_policy if maintenance_policy is not None else DEFAULT_MAINTENANCE_POLICY
        if fault_injector is not None and policy.fault_hook is None:
            policy = dataclasses.replace(policy, fault_hook=fault_injector.maintenance_hook())
        self.maintenance_policy = policy
        self.res_stats = ResilienceStats()
        self._idempotency = IdempotencyCache(self.resilience.idempotency_cache_size)
        self._server: Optional[asyncio.AbstractServer] = None
        self._circuits: "OrderedDict[str, _CircuitEntry]" = OrderedDict()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._inflight = 0
        self._draining = False
        self.cache_hits = 0
        self.cache_misses = 0
        self.evictions = 0
        self.requests = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._draining = False
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, drain, then tear down.

        Parked lane futures are *flushed through the kernel* so every
        in-flight query still gets its (correct) answer; only work
        that arrives after the drain fails, with :class:`BatcherClosed`
        -- nothing is left pending forever.
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        # Flush whatever is parked so in-flight handlers can finish.
        for entry in self._circuits.values():
            for batcher in entry.batchers():
                if batcher.pending:
                    self.res_stats.bump("drained_futures", batcher.pending)
                batcher.flush_now()
        # Give in-flight handlers their grace period to write responses.
        deadline = time.monotonic() + self.resilience.shutdown_grace
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        # Anything still parked (arrived during the drain) fails loudly.
        for entry in self._circuits.values():
            for batcher in entry.batchers():
                if batcher.pending:
                    self.res_stats.bump("failed_futures", batcher.pending)
                batcher.close(BatcherClosed("server shut down while the query was queued"))
        # Cancel connections that outlived the grace period (idle
        # keep-alives included) and wait for their handlers, so no
        # task survives into event-loop teardown.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._conn_tasks.clear()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        self._server = None

    async def __aenter__(self) -> Tuple[str, int]:
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Server shutdown cancelled the connection mid-read; the
            # in-flight work already got its grace period in close().
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._writers.discard(writer)
            writer.close()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        cfg = self.resilience
        if self._draining or len(self._writers) >= cfg.max_connections:
            self.res_stats.bump("shed_connections")
            try:
                await self._write_response(
                    writer,
                    503,
                    {
                        "error": "shedding load: connection capacity reached"
                        if not self._draining
                        else "server is draining",
                        "retry_after": cfg.retry_after,
                    },
                    keep_alive=False,
                    retry_after=cfg.retry_after,
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                writer.close()
            return
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ServingError as exc:
                    # A framing error poisons the stream: respond once
                    # and close rather than resynchronize.
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                method, path, body, keep_alive = request
                if self._draining:
                    keep_alive = False
                self.requests += 1
                if self._inflight >= cfg.max_inflight:
                    self.res_stats.bump("shed_requests")
                    await self._write_response(
                        writer,
                        503,
                        {
                            "error": "shedding load: too many requests in flight",
                            "retry_after": cfg.retry_after,
                        },
                        keep_alive,
                        retry_after=cfg.retry_after,
                    )
                    if not keep_alive:
                        break
                    continue
                self._inflight += 1
                try:
                    status, payload = await self._dispatch_with_deadline(method, path, body)
                finally:
                    self._inflight -= 1
                retry_after = cfg.retry_after if status == 503 else None
                await self._write_response(writer, status, payload, keep_alive, retry_after=retry_after)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            self.res_stats.bump("disconnects")

    async def _bounded(
        self, awaitable: Awaitable[_T], deadline: Optional[Deadline]
    ) -> _T:
        if deadline is None:
            return await awaitable
        remaining = deadline.remaining()
        if remaining <= 0:
            raise asyncio.TimeoutError
        return await asyncio.wait_for(awaitable, remaining)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Optional[dict], bool]]:
        cfg = self.resilience
        header_deadline = cfg.deadline("header")
        try:
            request_line = await self._bounded(reader.readline(), header_deadline)
        except asyncio.TimeoutError:
            # Idle keep-alive or a slow-loris request line: either way
            # no request ever materialized; close without a response.
            self.res_stats.bump("header_timeouts")
            return None
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("latin-1").split()
        except ValueError:
            self.res_stats.bump("bad_requests")
            raise ServingError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await self._bounded(reader.readline(), header_deadline)
            except asyncio.TimeoutError:
                # Slow-loris: the request started but its headers
                # dribble; the deadline caps the read.
                self.res_stats.bump("header_timeouts")
                raise ServingError(408, f"headers not received within {cfg.header_timeout}s")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        body: Optional[dict] = None
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            self.res_stats.bump("bad_requests")
            raise ServingError(400, f"malformed Content-Length {raw_length!r}")
        if length < 0:
            self.res_stats.bump("bad_requests")
            raise ServingError(400, f"negative Content-Length {raw_length!r}")
        if length > cfg.max_body_bytes:
            self.res_stats.bump("oversize_rejections")
            raise ServingError(
                413,
                f"declared body of {length} bytes exceeds the "
                f"{cfg.max_body_bytes}-byte limit",
            )
        if length:
            try:
                raw = await self._bounded(
                    reader.readexactly(length), cfg.deadline("body")
                )
            except asyncio.TimeoutError:
                self.res_stats.bump("body_timeouts")
                raise ServingError(
                    408, f"body of {length} bytes not received within {cfg.body_timeout}s"
                )
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                body = {"__malformed__": str(exc)}
        return method.upper(), path, body, keep_alive

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
        retry_after: Optional[float] = None,
    ) -> None:
        data = json.dumps(payload).encode()
        extra = f"Retry-After: {retry_after}\r\n" if retry_after is not None else ""
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        ).encode("latin-1")
        blob = head + data
        faults = self.fault_injector
        if faults is not None:
            if faults.fires(SOCKET_RESET):
                writer.transport.abort()
                raise ConnectionResetError("injected socket reset before response")
            if faults.fires(PARTIAL_WRITE):
                writer.write(blob[: max(1, len(blob) // 2)])
                try:
                    await writer.drain()
                finally:
                    writer.transport.abort()
                raise ConnectionResetError("injected partial response write")
        writer.write(blob)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _dispatch_with_deadline(
        self, method: str, path: str, body: Optional[dict]
    ) -> Tuple[int, dict]:
        cfg = self.resilience
        deadline = cfg.deadline("handler")
        try:
            return await self._bounded(self._dispatch(method, path, body), deadline)
        except asyncio.TimeoutError:
            self.res_stats.bump("handler_timeouts")
            return 504, {
                "error": f"handler exceeded its {cfg.handler_timeout}s budget",
                "phase": "handler",
            }

    async def _dispatch(self, method: str, path: str, body: Optional[dict]) -> Tuple[int, dict]:
        if isinstance(body, dict) and "__malformed__" in body:
            return 400, {"error": f"request body is not valid JSON: {body['__malformed__']}"}
        if self.fault_injector is not None:
            await self.fault_injector.stall_async(HANDLER_STALL)
        try:
            parts = [p for p in path.split("/") if p]
            if method == "GET" and parts == ["healthz"]:
                return 200, {"status": "ok", "draining": self._draining}
            if method == "GET" and parts == ["readyz"]:
                if self._draining:
                    return 503, {"status": "draining", "ready": False}
                return 200, {"status": "ok", "ready": True}
            if method == "GET" and parts == ["stats"]:
                return 200, self._stats()
            if method == "POST" and parts == ["solve"]:
                return 200, self._solve(self._require_body(body))
            if method == "POST" and parts == ["lint"]:
                return 200, self._lint(self._require_body(body))
            if method == "POST" and parts == ["circuits"]:
                return 200, self._register(self._require_body(body))
            if method == "POST" and len(parts) == 3 and parts[0] == "circuits":
                entry = self._lookup(parts[1])
                action = parts[2]
                if action == "boolean":
                    return 200, await self._boolean(entry, self._require_body(body))
                if action == "evaluate":
                    return 200, await self._evaluate(entry, self._require_body(body))
                if action == "update":
                    return 200, self._update(entry, self._require_body(body))
                if action == "facts":
                    return self._facts_idempotent(entry, self._require_body(body))
            return 404, {"error": f"no route for {method} {path}"}
        except ServingError as exc:
            return exc.status, {"error": str(exc)}
        except BatcherClosed as exc:
            return 503, {"error": f"shutting down: {exc}"}
        except DivergenceError as exc:
            return 422, {"error": f"fixpoint diverged: {exc}"}
        except ProgramValidationError as exc:
            # Structured 400: every DL-coded diagnostic, machine-readable.
            return 400, {
                "error": f"{type(exc).__name__}: {exc}",
                "diagnostics": [d.to_json() for d in exc.diagnostics],
            }
        except ParseError as exc:
            return 400, {
                "error": f"{type(exc).__name__}: {exc}",
                "line": exc.line,
                "column": exc.column,
                "source_line": exc.source_line,
            }
        except (DatalogError, KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # never a torn connection for a handler bug
            self.res_stats.bump("internal_errors")
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    @staticmethod
    def _require_body(body: Optional[dict]) -> dict:
        if not isinstance(body, dict):
            raise ServingError(400, "expected a JSON object request body")
        return body

    def _lookup(self, key: str) -> _CircuitEntry:
        entry = self._circuits.get(key)
        if entry is None:
            raise ServingError(404, f"unknown circuit key {key!r}; register it via POST /circuits")
        self._circuits.move_to_end(key)
        entry.queries += 1
        return entry

    # -- handlers ------------------------------------------------------

    def _build_problem(self, body: Mapping[str, Any]) -> Tuple[Session, ExecutionConfig]:
        program_field = body.get("program")
        if not program_field:
            raise ServingError(400, "missing 'program' (rule text or list of rules)")
        text = program_field if isinstance(program_field, str) else "\n".join(program_field)
        # Parse unvalidated, then gate through the analyzer: a bad
        # program yields a ProgramValidationError whose DL-coded
        # diagnostics _dispatch serializes into the structured 400.
        program = parse_program(text, target=body.get("target"), validate=False)
        require_valid(program)
        database = Database()
        for wire_fact in body.get("facts", ()):
            database.add_fact(fact_from_wire(wire_fact))
        for fact, weight in _parse_weights(body.get("weights"), "'weights'").items():
            database.set_weight(fact, weight)
        config = ExecutionConfig(
            engine=body.get("engine"),
            strategy=body.get("strategy"),
            construction=body.get("construction"),
        )
        return Session(program, database, config), config

    def _register(self, body: Mapping[str, Any]) -> dict:
        session, config = self._build_problem(body)
        if "output" not in body:
            raise ServingError(400, "missing 'output' (the fact the circuit computes)")
        output = fact_from_wire(body["output"])
        program_fp, db_fp, construction = session.fingerprint
        digest = hashlib.sha256(
            "\x00".join((program_fp, db_fp, construction, repr(output), str(config.key()))).encode()
        )
        key = digest.hexdigest()[:16]
        entry = self._circuits.get(key)
        cached = entry is not None
        if cached:
            self.cache_hits += 1
            self._circuits.move_to_end(key)
        else:
            self.cache_misses += 1
            entry = _CircuitEntry(
                key,
                session,
                output,
                self.lane_width,
                self.max_delay,
                faults=self.fault_injector,
                policy=self.maintenance_policy,
            )
            self._circuits[key] = entry
            while len(self._circuits) > self.max_circuits:
                _, evicted = self._circuits.popitem(last=False)
                for batcher in evicted.batchers():
                    batcher.flush_now()
                    batcher.close()
                self.evictions += 1
        return {
            "key": key,
            "cached": cached,
            "construction": entry.choice.construction,
            "theorem": entry.choice.theorem,
            "size": entry.compiled.size,
            "program_fingerprint": program_fp,
            "database_fingerprint": db_fp,
        }

    async def _boolean(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> dict:
        if "batches" in body:
            batches = [frozenset(fact_from_wire(f) for f in batch) for batch in body["batches"]]
            values = entry.compiled.evaluate_boolean_batch(batches)
            return {"values": values}
        if "true_facts" not in body:
            raise ServingError(400, "expected 'true_facts' (point query) or 'batches'")
        true_facts = frozenset(fact_from_wire(f) for f in body["true_facts"])
        value = await entry.boolean_batcher.submit(true_facts)
        return {"value": value}

    async def _evaluate(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> dict:
        name, semiring = _resolve_semiring(body)
        base = entry.base_valuation(name, semiring)
        if "assignments" in body:
            assignments = []
            for raw in body["assignments"]:
                assignment = dict(base)
                assignment.update(_parse_weights(raw, "each assignment"))
                assignments.append(assignment)
            values = entry.compiled.evaluate_batch(
                semiring, assignments, backend=entry.session.config.backend
            )
            return {"values": values}
        assignment = dict(base)
        assignment.update(_parse_weights(body.get("weights"), "'weights'"))
        batcher = entry.numeric_batcher(name, semiring)
        value = await batcher.submit(assignment)
        return {"value": value}

    def _update(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> dict:
        name, semiring = _resolve_semiring(body)
        delta = _parse_weights(body.get("delta"), "'delta'")
        if not delta:
            raise ServingError(400, "missing 'delta' (fact → new value)")
        session = entry.update_session(name, semiring)
        try:
            outputs = session.update(delta)
        except KeyError as exc:
            raise ServingError(400, f"delta touches a fact with no input gate: {exc}") from exc
        return {"outputs": outputs, "cone_size": session.last_cone_size}

    def _facts_idempotent(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> Tuple[int, dict]:
        """The ``/facts`` route behind its idempotency-token dedupe."""
        token = body.get("idempotency_key")
        if token is not None:
            if not isinstance(token, str) or not token:
                raise ServingError(400, "idempotency_key must be a non-empty string")
            cached = self._idempotency.get(entry.key, token)
            if cached is not None:
                self.res_stats.bump("idempotent_replays")
                return cached
        payload = self._facts(entry, body)
        if token is not None:
            # Only a *completed* mutation is recorded: failures above
            # raised out of this frame, so their retries re-execute.
            self._idempotency.put(entry.key, token, 200, payload)
        return 200, payload

    def _facts(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> dict:
        inserts: List[Tuple[Fact, object]] = []
        for item in body.get("insert", ()):
            if isinstance(item, Mapping):
                if "fact" not in item:
                    raise ServingError(400, "each weighted insert needs a 'fact' key")
                inserts.append((fact_from_wire(item["fact"]), item.get("weight")))
            else:
                inserts.append((fact_from_wire(item), None))
        retracts = [fact_from_wire(item) for item in body.get("retract", ())]
        weights = _parse_weights(body.get("weights"), "'weights'")
        if not inserts and not retracts and not weights:
            raise ServingError(400, "expected 'insert', 'retract' and/or 'weights'")
        # Validate the whole delta up front so a bad item can't leave the
        # route half-applied.
        database = entry.session.database
        idbs = entry.session.program.idb_predicates
        for fact in [f for f, _ in inserts] + retracts + list(weights):
            if fact.predicate in idbs:
                raise ServingError(400, f"{fact} is an IDB fact; only EDB facts stream")
        for fact in retracts:
            if fact not in database:
                raise ServingError(400, f"cannot retract {fact}: not in the database")
        stream = entry.get_stream()
        known = entry.compiled.var_slots
        structural = any(fact not in known and fact not in database for fact, _ in inserts)
        degradations_before = stream.degradations
        inserted = sum(stream.insert(fact, weight=weight) for fact, weight in inserts)
        for fact in retracts:
            stream.retract(fact)
        for fact, weight in weights.items():
            stream.set_weight(fact, weight)
        degraded_now = stream.degradations > degradations_before
        if degraded_now:
            self.res_stats.bump("degraded_deltas")
        # Cached per-semiring state is built from the pre-delta valuation.
        entry.base_valuations.clear()
        entry.incremental.clear()
        recompiled = False
        if structural or degraded_now:
            # A degraded delta rebuilds through full recompute: served
            # answers stay exactly correct, only slower.
            entry.choice = entry.session.circuit(entry.output)
            entry.compiled = entry.choice.compiled()
            recompiled = True
        return {
            "inserted": inserted,
            "retracted": len(retracts),
            "reweighted": len(weights),
            "recompiled": recompiled,
            "degraded": stream.degraded,
            "size": entry.compiled.size,
            "database_fingerprint": entry.session.fingerprint[1],
        }

    def _lint(self, body: Mapping[str, Any]) -> dict:
        """``POST /lint``: the static analyzer as a service.

        Always 200 with the :class:`~repro.datalog.analysis
        .AnalysisReport` JSON -- diagnostics are the *result* of a lint
        request, not a failure of it; even an unparseable program
        answers 200 with ``ok: false`` and a ``parse_error`` object.
        Optional ``facts``/``weights`` arm the database passes and
        optional ``semiring`` arms divergence prediction (DL006).
        """
        program_field = body.get("program")
        if not program_field:
            raise ServingError(400, "missing 'program' (rule text or list of rules)")
        text = program_field if isinstance(program_field, str) else "\n".join(program_field)
        try:
            program = parse_program(text, target=body.get("target"), validate=False)
        except ParseError as exc:
            return {
                "ok": False,
                "diagnostics": [],
                "parse_error": {
                    "message": str(exc),
                    "line": exc.line,
                    "column": exc.column,
                    "source_line": exc.source_line,
                },
            }
        database = None
        if body.get("facts") or body.get("weights"):
            database = Database()
            for wire_fact in body.get("facts", ()):
                database.add_fact(fact_from_wire(wire_fact))
            for fact, weight in _parse_weights(body.get("weights"), "'weights'").items():
                database.set_weight(fact, weight)
        semiring = None
        if body.get("semiring"):
            _, semiring = _resolve_semiring(body)
        report = analyze_program(program, database=database, semiring=semiring)
        return report.to_json()

    def _solve(self, body: Mapping[str, Any]) -> dict:
        session, _config = self._build_problem(body)
        name, semiring = _resolve_semiring(body)
        weights = _parse_weights(body.get("weights"), "'weights'") or None
        result = session.solve(
            semiring,
            weights=weights,
            max_iterations=body.get("max_iterations"),
            raise_on_divergence=True,
        )
        values = {
            repr(fact): value
            for fact, value in result.values.items()
            if not semiring.is_zero(value)
        }
        return {"semiring": name, "iterations": result.iterations, "values": values}

    # -- stats ---------------------------------------------------------

    def _stats(self) -> dict:
        per_circuit = {key: entry.stats() for key, entry in self._circuits.items()}
        lane_batches = sum(e.boolean_batcher.stats.batches for e in self._circuits.values())
        lane_items = sum(e.boolean_batcher.stats.items for e in self._circuits.values())
        fill = lane_items / (lane_batches * self.lane_width) if lane_batches else 0.0
        streams = [e.stream for e in self._circuits.values() if e.stream is not None]
        return {
            "circuits": len(self._circuits),
            "max_circuits": self.max_circuits,
            "requests": self.requests,
            "inflight": self._inflight,
            "draining": self._draining,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.evictions,
            },
            "boolean_lanes": {
                "lane_width": self.lane_width,
                "batches": lane_batches,
                "items": lane_items,
                "fill_ratio": round(fill, 4),
            },
            "resilience": self.res_stats.snapshot(),
            "idempotency": self._idempotency.snapshot(),
            "maintenance": {
                "streams": len(streams),
                "degraded_now": sum(1 for s in streams if s.degraded),
                "degradations": sum(s.degradations for s in streams),
            },
            "per_circuit": per_circuit,
        }
