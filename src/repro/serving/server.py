"""CircuitServer: compiled provenance circuits behind asyncio HTTP.

The server is the paper's evaluation pipeline turned into a long-lived
process (DESIGN.md §10).  A client registers a (program, database,
output fact) triple once; the server grounds it, builds the circuit
through the configured construction, compiles it, and caches the whole
:class:`repro.api.Session` under a key derived from
``(program fingerprint, database fingerprint, construction)``.  Every
subsequent query is pure circuit evaluation:

* ``POST /circuits/<key>/boolean`` -- Boolean point queries, coalesced
  by a :class:`~repro.serving.batcher.LaneBatcher` into the 64-wide
  bitset lanes of ``evaluate_boolean_batch``;
* ``POST /circuits/<key>/evaluate`` -- numeric valuations, batched
  through ``evaluate_batch`` (any registered semiring);
* ``POST /circuits/<key>/update`` -- sparse weight deltas served by a
  per-(circuit, semiring) ``IncrementalEvaluator`` session that pays
  only the dirty cone;
* ``POST /circuits/<key>/facts`` -- *fact-stream* deltas (inserts,
  retracts, reweights) absorbed by the entry's
  :class:`~repro.api.StreamSession` (DESIGN.md §11): the maintained
  fixpoint regrounds differentially, retracted leaves are served as
  semiring ``0`` to the existing circuit, and only an insert that
  creates a leaf the compiled circuit has never seen triggers a
  recompile (reported as ``"recompiled": true``);
* ``POST /solve`` -- one-shot fixpoint evaluation (no circuit cache),
  with divergence reported as HTTP 422.

The HTTP/1.1 framing is hand-rolled over ``asyncio`` streams -- no
third-party web stack -- and supports keep-alive, so a client holds
one TCP connection for its whole query stream.

Wire format: facts are either strings in surface syntax (``"E(0,1)"``,
parsed by the Datalog parser, numerals become ints) or
``[predicate, [arg, ...]]`` pairs taken literally.  Responses are JSON
objects; errors are ``{"error": ...}`` with a 4xx/5xx status.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..api import Session
from ..config import ExecutionConfig
from .batcher import LaneBatcher
from ..datalog.ast import DatalogError, Fact
from ..datalog.database import Database
from ..datalog.evaluation import DivergenceError
from ..datalog.parser import parse_atom, parse_program
from ..semirings import (
    ARCTIC,
    BOOLEAN,
    COUNTING,
    COUNTING_CAP,
    FUZZY,
    LUKASIEWICZ,
    TROPICAL,
    TROPICAL_INT,
    VITERBI,
)

__all__ = ["CircuitServer", "ServingError", "SEMIRINGS"]

#: Wire name → semiring singleton.  Only semirings whose values survive
#: a JSON round-trip are exposed over HTTP.
SEMIRINGS = {
    "boolean": BOOLEAN,
    "counting": COUNTING,
    "counting_cap": COUNTING_CAP,
    "tropical": TROPICAL,
    "tropical_int": TROPICAL_INT,
    "viterbi": VITERBI,
    "fuzzy": FUZZY,
    "lukasiewicz": LUKASIEWICZ,
    "arctic": ARCTIC,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


class ServingError(Exception):
    """A request error with an HTTP status (raised by handlers)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def fact_from_wire(obj: object) -> Fact:
    """Decode one fact from its wire form (string or [pred, args])."""
    if isinstance(obj, str):
        try:
            return parse_atom(obj).to_fact()
        except DatalogError as exc:
            raise ServingError(400, f"bad fact {obj!r}: {exc}") from exc
    if isinstance(obj, (list, tuple)) and len(obj) == 2 and isinstance(obj[0], str):
        predicate, args = obj
        if not isinstance(args, (list, tuple)):
            raise ServingError(400, f"bad fact {obj!r}: args must be a list")
        return Fact(predicate, tuple(args))
    raise ServingError(400, f"bad fact {obj!r}: expected 'R(a,b)' or ['R', [a, b]]")


def _resolve_semiring(body: Mapping[str, Any]):
    name = body.get("semiring", "boolean")
    semiring = SEMIRINGS.get(name)
    if semiring is None:
        raise ServingError(400, f"unknown semiring {name!r}; one of {sorted(SEMIRINGS)}")
    return name, semiring


def _parse_weights(raw: object, where: str) -> Dict[Fact, object]:
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise ServingError(400, f"{where} must be an object of fact → value")
    return {fact_from_wire(label): value for label, value in raw.items()}


class _CircuitEntry:
    """One cached compiled circuit plus its serving machinery."""

    __slots__ = (
        "key",
        "session",
        "output",
        "choice",
        "compiled",
        "boolean_batcher",
        "numeric_batchers",
        "incremental",
        "base_valuations",
        "queries",
        "stream",
    )

    def __init__(self, key: str, session: Session, output: Fact, lane_width: int, max_delay: float):
        self.key = key
        self.session = session
        self.output = output
        self.choice = session.circuit(output)
        self.compiled = self.choice.compiled()
        self.boolean_batcher = LaneBatcher(self._boolean_flush, lane_width=lane_width, max_delay=max_delay)
        # name → LaneBatcher for numeric point queries (built lazily).
        self.numeric_batchers: Dict[str, LaneBatcher] = {}
        # name → IncrementalEvaluator update session (built lazily).
        self.incremental: Dict[str, object] = {}
        # name → dense base valuation reused to complete sparse queries.
        self.base_valuations: Dict[str, Dict[Fact, object]] = {}
        self.queries = 0
        # StreamSession write handle; attached on the first facts delta.
        self.stream = None

    def _boolean_flush(self, batches: List) -> List[bool]:
        return self.compiled.evaluate_boolean_batch(batches)

    def base_valuation(self, name: str, semiring) -> Dict[Fact, object]:
        base = self.base_valuations.get(name)
        if base is None:
            if self.stream is not None:
                base = self.stream.assignment(semiring)
            else:
                base = self.session.database.valuation(semiring)
            self.base_valuations[name] = base
        return base

    def get_stream(self):
        if self.stream is None:
            self.stream = self.session.stream()
        return self.stream

    def numeric_batcher(self, name: str, semiring, lane_width: int, max_delay: float) -> "LaneBatcher":
        batcher = self.numeric_batchers.get(name)
        if batcher is None:
            def flush(assignments: List) -> List:
                return self.compiled.evaluate_batch(semiring, assignments)

            batcher = LaneBatcher(flush, lane_width=lane_width, max_delay=max_delay)
            self.numeric_batchers[name] = batcher
        return batcher

    def update_session(self, name: str, semiring):
        session = self.incremental.get(name)
        if session is None:
            assignment = None if self.stream is None else self.stream.assignment(semiring)
            session = self.session.serve(self.output, semiring, assignment)
            self.incremental[name] = session
        return session

    def stats(self) -> Dict[str, object]:
        return {
            "construction": self.choice.construction,
            "size": self.compiled.size,
            "queries": self.queries,
            "boolean_lanes": self.boolean_batcher.stats.snapshot(),
            "numeric_lanes": {
                name: batcher.stats.snapshot()
                for name, batcher in sorted(self.numeric_batchers.items())
            },
            "update_sessions": sorted(self.incremental),
        }


class CircuitServer:
    """Asyncio HTTP server over an LRU cache of compiled circuits.

    ``max_circuits`` bounds the cache; registration of a key already
    present is a cache hit (the expensive ground/construct/compile
    pipeline is skipped), and the least-recently-used entry is evicted
    past the bound.  ``lane_width``/``max_delay`` set the micro-batching
    policy shared by every entry's Boolean and numeric batchers.

    Usage::

        server = CircuitServer()
        host, port = await server.start()
        ...
        await server.close()

    or ``async with CircuitServer() as (host, port): ...``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_circuits: int = 32,
        lane_width: int = 64,
        max_delay: float = 0.002,
    ):
        if max_circuits < 1:
            raise ValueError("max_circuits must be positive")
        self.host = host
        self.port = port
        self.max_circuits = max_circuits
        self.lane_width = lane_width
        self.max_delay = max_delay
        self._server: Optional[asyncio.AbstractServer] = None
        self._circuits: "OrderedDict[str, _CircuitEntry]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.evictions = 0
        self.requests = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for entry in self._circuits.values():
            entry.boolean_batcher.flush_now()
            for batcher in entry.numeric_batchers.values():
                batcher.flush_now()

    async def __aenter__(self) -> Tuple[str, int]:
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                self.requests += 1
                status, payload = await self._dispatch(method, path, body)
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            # No await after close(): the handler task may be getting
            # cancelled by server shutdown, and awaiting wait_closed()
            # here would surface that as loop-callback noise.
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Optional[dict], bool]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise ServingError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        body: Optional[dict] = None
        length = int(headers.get("content-length", "0"))
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                body = {"__malformed__": str(exc)}
        return method.upper(), path, body, keep_alive

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: dict, keep_alive: bool
    ) -> None:
        data = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: Optional[dict]) -> Tuple[int, dict]:
        if isinstance(body, dict) and "__malformed__" in body:
            return 400, {"error": f"request body is not valid JSON: {body['__malformed__']}"}
        try:
            parts = [p for p in path.split("/") if p]
            if method == "GET" and parts == ["healthz"]:
                return 200, {"status": "ok"}
            if method == "GET" and parts == ["stats"]:
                return 200, self._stats()
            if method == "POST" and parts == ["solve"]:
                return 200, self._solve(self._require_body(body))
            if method == "POST" and parts == ["circuits"]:
                return 200, self._register(self._require_body(body))
            if method == "POST" and len(parts) == 3 and parts[0] == "circuits":
                entry = self._lookup(parts[1])
                action = parts[2]
                if action == "boolean":
                    return 200, await self._boolean(entry, self._require_body(body))
                if action == "evaluate":
                    return 200, await self._evaluate(entry, self._require_body(body))
                if action == "update":
                    return 200, self._update(entry, self._require_body(body))
                if action == "facts":
                    return 200, self._facts(entry, self._require_body(body))
            return 404, {"error": f"no route for {method} {path}"}
        except ServingError as exc:
            return exc.status, {"error": str(exc)}
        except DivergenceError as exc:
            return 422, {"error": f"fixpoint diverged: {exc}"}
        except (DatalogError, KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    @staticmethod
    def _require_body(body: Optional[dict]) -> dict:
        if not isinstance(body, dict):
            raise ServingError(400, "expected a JSON object request body")
        return body

    def _lookup(self, key: str) -> _CircuitEntry:
        entry = self._circuits.get(key)
        if entry is None:
            raise ServingError(404, f"unknown circuit key {key!r}; register it via POST /circuits")
        self._circuits.move_to_end(key)
        entry.queries += 1
        return entry

    # -- handlers ------------------------------------------------------

    def _build_problem(self, body: Mapping[str, Any]) -> Tuple[Session, ExecutionConfig]:
        program_field = body.get("program")
        if not program_field:
            raise ServingError(400, "missing 'program' (rule text or list of rules)")
        text = program_field if isinstance(program_field, str) else "\n".join(program_field)
        program = parse_program(text, target=body.get("target"))
        database = Database()
        for wire_fact in body.get("facts", ()):
            database.add_fact(fact_from_wire(wire_fact))
        for fact, weight in _parse_weights(body.get("weights"), "'weights'").items():
            database.set_weight(fact, weight)
        config = ExecutionConfig(
            engine=body.get("engine"),
            strategy=body.get("strategy"),
            construction=body.get("construction"),
        )
        return Session(program, database, config), config

    def _register(self, body: Mapping[str, Any]) -> dict:
        session, config = self._build_problem(body)
        if "output" not in body:
            raise ServingError(400, "missing 'output' (the fact the circuit computes)")
        output = fact_from_wire(body["output"])
        program_fp, db_fp, construction = session.fingerprint
        digest = hashlib.sha256(
            "\x00".join((program_fp, db_fp, construction, repr(output), str(config.key()))).encode()
        )
        key = digest.hexdigest()[:16]
        entry = self._circuits.get(key)
        cached = entry is not None
        if cached:
            self.cache_hits += 1
            self._circuits.move_to_end(key)
        else:
            self.cache_misses += 1
            entry = _CircuitEntry(key, session, output, self.lane_width, self.max_delay)
            self._circuits[key] = entry
            while len(self._circuits) > self.max_circuits:
                self._circuits.popitem(last=False)
                self.evictions += 1
        return {
            "key": key,
            "cached": cached,
            "construction": entry.choice.construction,
            "theorem": entry.choice.theorem,
            "size": entry.compiled.size,
            "program_fingerprint": program_fp,
            "database_fingerprint": db_fp,
        }

    async def _boolean(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> dict:
        if "batches" in body:
            batches = [frozenset(fact_from_wire(f) for f in batch) for batch in body["batches"]]
            values = entry.compiled.evaluate_boolean_batch(batches)
            return {"values": values}
        if "true_facts" not in body:
            raise ServingError(400, "expected 'true_facts' (point query) or 'batches'")
        true_facts = frozenset(fact_from_wire(f) for f in body["true_facts"])
        value = await entry.boolean_batcher.submit(true_facts)
        return {"value": value}

    async def _evaluate(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> dict:
        name, semiring = _resolve_semiring(body)
        base = entry.base_valuation(name, semiring)
        if "assignments" in body:
            assignments = []
            for raw in body["assignments"]:
                assignment = dict(base)
                assignment.update(_parse_weights(raw, "each assignment"))
                assignments.append(assignment)
            values = entry.compiled.evaluate_batch(semiring, assignments)
            return {"values": values}
        assignment = dict(base)
        assignment.update(_parse_weights(body.get("weights"), "'weights'"))
        batcher = entry.numeric_batcher(name, semiring, self.lane_width, self.max_delay)
        value = await batcher.submit(assignment)
        return {"value": value}

    def _update(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> dict:
        name, semiring = _resolve_semiring(body)
        delta = _parse_weights(body.get("delta"), "'delta'")
        if not delta:
            raise ServingError(400, "missing 'delta' (fact → new value)")
        session = entry.update_session(name, semiring)
        try:
            outputs = session.update(delta)
        except KeyError as exc:
            raise ServingError(400, f"delta touches a fact with no input gate: {exc}") from exc
        return {"outputs": outputs, "cone_size": session.last_cone_size}

    def _facts(self, entry: _CircuitEntry, body: Mapping[str, Any]) -> dict:
        inserts: List[Tuple[Fact, object]] = []
        for item in body.get("insert", ()):
            if isinstance(item, Mapping):
                if "fact" not in item:
                    raise ServingError(400, "each weighted insert needs a 'fact' key")
                inserts.append((fact_from_wire(item["fact"]), item.get("weight")))
            else:
                inserts.append((fact_from_wire(item), None))
        retracts = [fact_from_wire(item) for item in body.get("retract", ())]
        weights = _parse_weights(body.get("weights"), "'weights'")
        if not inserts and not retracts and not weights:
            raise ServingError(400, "expected 'insert', 'retract' and/or 'weights'")
        # Validate the whole delta up front so a bad item can't leave the
        # route half-applied.
        database = entry.session.database
        idbs = entry.session.program.idb_predicates
        for fact in [f for f, _ in inserts] + retracts + list(weights):
            if fact.predicate in idbs:
                raise ServingError(400, f"{fact} is an IDB fact; only EDB facts stream")
        for fact in retracts:
            if fact not in database:
                raise ServingError(400, f"cannot retract {fact}: not in the database")
        stream = entry.get_stream()
        known = entry.compiled.var_slots
        structural = any(fact not in known and fact not in database for fact, _ in inserts)
        inserted = sum(stream.insert(fact, weight=weight) for fact, weight in inserts)
        for fact in retracts:
            stream.retract(fact)
        for fact, weight in weights.items():
            stream.set_weight(fact, weight)
        # Cached per-semiring state is built from the pre-delta valuation.
        entry.base_valuations.clear()
        entry.incremental.clear()
        recompiled = False
        if structural:
            entry.choice = entry.session.circuit(entry.output)
            entry.compiled = entry.choice.compiled()
            recompiled = True
        return {
            "inserted": inserted,
            "retracted": len(retracts),
            "reweighted": len(weights),
            "recompiled": recompiled,
            "size": entry.compiled.size,
            "database_fingerprint": entry.session.fingerprint[1],
        }

    def _solve(self, body: Mapping[str, Any]) -> dict:
        session, _config = self._build_problem(body)
        name, semiring = _resolve_semiring(body)
        weights = _parse_weights(body.get("weights"), "'weights'") or None
        result = session.solve(
            semiring,
            weights=weights,
            max_iterations=body.get("max_iterations"),
            raise_on_divergence=True,
        )
        values = {
            repr(fact): value
            for fact, value in result.values.items()
            if not semiring.is_zero(value)
        }
        return {"semiring": name, "iterations": result.iterations, "values": values}

    # -- stats ---------------------------------------------------------

    def _stats(self) -> dict:
        per_circuit = {key: entry.stats() for key, entry in self._circuits.items()}
        lane_batches = sum(e.boolean_batcher.stats.batches for e in self._circuits.values())
        lane_items = sum(e.boolean_batcher.stats.items for e in self._circuits.values())
        fill = lane_items / (lane_batches * self.lane_width) if lane_batches else 0.0
        return {
            "circuits": len(self._circuits),
            "max_circuits": self.max_circuits,
            "requests": self.requests,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.evictions,
            },
            "boolean_lanes": {
                "lane_width": self.lane_width,
                "batches": lane_batches,
                "items": lane_items,
                "fill_ratio": round(fill, 4),
            },
            "per_circuit": per_circuit,
        }
