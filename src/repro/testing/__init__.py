"""Deterministic testing harnesses shipped with the engine.

Currently one member: :mod:`repro.testing.faults`, the seeded
fault-injection plan the chaos suite and the faulted serving bench
drive the resilience layer with (DESIGN.md §12).
"""

from .faults import (
    FAULT_SITES,
    FaultInjector,
    InjectedFault,
    FLUSH_RAISE,
    FLUSH_SLOW,
    HANDLER_STALL,
    MAINTAINER_CRASH,
    PARTIAL_WRITE,
    SOCKET_RESET,
)

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "InjectedFault",
    "FLUSH_RAISE",
    "FLUSH_SLOW",
    "HANDLER_STALL",
    "MAINTAINER_CRASH",
    "PARTIAL_WRITE",
    "SOCKET_RESET",
]
