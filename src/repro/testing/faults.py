"""Seeded fault injection for the serving stack (DESIGN.md §12).

The resilience layer's contract -- every answer under faults is
either exactly correct or an explicit 4xx/5xx, never a hang, never a
silently wrong value -- is only testable if faults are *reproducible*.
This module is that reproducibility: a :class:`FaultInjector` holds
one seeded ``random.Random`` stream per site, so a chaos run is a pure
function of ``(seed, request schedule)`` and a failure shrinks to a
seed number in a CI matrix.

Injection sites (the names are the wire between this module and the
code under test):

========================  =================================================
``socket.reset``          abort the connection instead of writing the
                          response (client sees a dropped connection)
``socket.partial_write``  write a response prefix, then abort (torn frame)
``flush.raise``           a lane-batcher flush kernel raises
``flush.slow``            a lane-batcher flush kernel stalls (blocking)
``handler.stall``         the route handler stalls cooperatively
                          (exercises the handler deadline -> 504)
``maintainer.crash``      the maintained fixpoint crashes mid-propagation
                          (exercises degrade-to-recompute)
========================  =================================================

The server consults the injector *only* when one is passed to its
constructor; production paths carry a ``None`` check and nothing else.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, Mapping, Optional

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "InjectedFault",
    "SOCKET_RESET",
    "PARTIAL_WRITE",
    "FLUSH_RAISE",
    "FLUSH_SLOW",
    "HANDLER_STALL",
    "MAINTAINER_CRASH",
]

SOCKET_RESET = "socket.reset"
PARTIAL_WRITE = "socket.partial_write"
FLUSH_RAISE = "flush.raise"
FLUSH_SLOW = "flush.slow"
HANDLER_STALL = "handler.stall"
MAINTAINER_CRASH = "maintainer.crash"

FAULT_SITES = (
    SOCKET_RESET,
    PARTIAL_WRITE,
    FLUSH_RAISE,
    FLUSH_SLOW,
    HANDLER_STALL,
    MAINTAINER_CRASH,
)


class InjectedFault(Exception):
    """A deliberately injected failure (never raised in production)."""

    def __init__(self, site: str):
        super().__init__(f"injected fault at {site}")
        self.site = site


class FaultInjector:
    """A deterministic, seeded plan of failures across named sites.

    *rates* maps a site name to its per-probe firing probability;
    *delays* maps the slow sites (``flush.slow``, ``handler.stall``)
    to the stall duration in seconds when they fire.  Each site draws
    from its own ``random.Random(f"{seed}:{site}")`` stream, so adding a
    probe at one site never perturbs another site's schedule --
    shrinking a chaos failure stays local.

    ``max_per_site`` caps firings per site (default unbounded), which
    keeps high-rate plans from starving a run of any successful
    traffic.  ``fired`` counts actual injections per site; the chaos
    suite asserts the plan actually exercised what it claims to.
    """

    def __init__(
        self,
        seed: int,
        rates: Mapping[str, float],
        delays: Optional[Mapping[str, float]] = None,
        max_per_site: Optional[int] = None,
    ):
        unknown = set(rates) - set(FAULT_SITES)
        if unknown:
            raise ValueError(f"unknown fault site(s): {sorted(unknown)}")
        self.seed = seed
        self.rates = dict(rates)
        self.delays = dict(delays or {})
        self.max_per_site = max_per_site
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(f"{seed}:{site}") for site in FAULT_SITES
        }
        self.probes: Dict[str, int] = {site: 0 for site in FAULT_SITES}
        self.fired: Dict[str, int] = {site: 0 for site in FAULT_SITES}

    # -- probing -------------------------------------------------------

    def fires(self, site: str) -> bool:
        """One seeded Bernoulli draw at *site* (records the outcome)."""
        self.probes[site] += 1
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if self.max_per_site is not None and self.fired[site] >= self.max_per_site:
            return False
        if self._rngs[site].random() >= rate:
            return False
        self.fired[site] += 1
        return True

    def check(self, site: str) -> None:
        """Raise :class:`InjectedFault` when the site fires."""
        if self.fires(site):
            raise InjectedFault(site)

    def stall_sync(self, site: str) -> None:
        """Blocking stall (models a slow synchronous kernel)."""
        if self.fires(site):
            time.sleep(self.delays.get(site, 0.01))

    async def stall_async(self, site: str) -> None:
        """Cooperative stall (cancellable -- exercises deadlines)."""
        if self.fires(site):
            await asyncio.sleep(self.delays.get(site, 0.01))

    # -- plumbing adapters ---------------------------------------------

    def maintenance_hook(self, site: str = MAINTAINER_CRASH):
        """A ``fault_hook`` for :class:`~repro.datalog.incremental.
        MaintenancePolicy`: every maintenance tick probes *site*."""

        def hook(_tick_site: str) -> None:
            self.check(site)

        return hook

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {
            "fired": {k: v for k, v in self.fired.items() if v},
            "probes": {k: v for k, v in self.probes.items() if v},
        }

    def __repr__(self) -> str:
        live = {site: rate for site, rate in self.rates.items() if rate > 0}
        return f"FaultInjector(seed={self.seed}, rates={live})"
