"""Workload generators (graphs, labeled graphs, streams) for the benches."""

from .graphs import (
    LayeredGraph,
    complete_dag,
    cycle_graph,
    grid_digraph,
    layered_graph,
    path_graph,
    random_digraph,
    random_weights,
)
from .streaming import (
    StreamEvent,
    apply_event,
    replay_events,
    sliding_window_stream,
)
from .labeled import (
    dyck_concatenated_path,
    dyck_nested_path,
    random_bracket_graph,
    random_labeled_digraph,
    word_path,
)

__all__ = [
    "LayeredGraph",
    "path_graph",
    "cycle_graph",
    "layered_graph",
    "random_digraph",
    "grid_digraph",
    "complete_dag",
    "random_weights",
    "word_path",
    "random_labeled_digraph",
    "dyck_nested_path",
    "dyck_concatenated_path",
    "random_bracket_graph",
    "StreamEvent",
    "sliding_window_stream",
    "apply_event",
    "replay_events",
]
