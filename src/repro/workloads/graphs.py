"""Graph workload generators for the benchmark harness.

Families used across the paper's constructions and lower bounds:

* paths / cycles -- the boundedness probes of Proposition 5.5;
* ``(ℓ, n)``-layered graphs -- the lower-bound inputs of Theorem 3.4
  (source below the bottom layer, sink above the top layer);
* random digraphs -- the TC upper-bound benchmarks (Thms 5.6/5.7);
* grids and complete DAGs -- dense/structured controls.

Every generator returns a :class:`~repro.datalog.database.Database`
(plus metadata where needed) and accepts a seed for reproducibility.
Weight helpers annotate edges for tropical/Viterbi evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..datalog.ast import Fact
from ..datalog.database import Database

__all__ = [
    "LayeredGraph",
    "path_graph",
    "cycle_graph",
    "layered_graph",
    "random_digraph",
    "grid_digraph",
    "complete_dag",
    "random_weights",
]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


@dataclass
class LayeredGraph:
    """An ``(ℓ, n)``-layered digraph with distinguished ``s`` and ``t``.

    Edges run only between consecutive layers; ``s`` connects to the
    first layer and the last layer connects to ``t``, so every
    ``s → t`` path has exactly ``num_layers + 1`` edges -- the
    property the Theorem 5.11/6.8 reductions rely on.
    """

    layers: List[List[Vertex]]
    edges: List[Edge]
    source: Vertex
    sink: Vertex

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def path_length(self) -> int:
        return self.num_layers + 1

    def database(self, edge: str = "E") -> Database:
        return Database.from_edges(self.edges, predicate=edge)

    @property
    def num_vertices(self) -> int:
        return 2 + sum(len(layer) for layer in self.layers)


def path_graph(length: int, edge: str = "E") -> Database:
    """A directed path ``0 → 1 → ... → length``."""
    return Database.from_edges([(i, i + 1) for i in range(length)], predicate=edge)


def cycle_graph(length: int, edge: str = "E") -> Database:
    """A directed cycle on ``length`` vertices."""
    if length < 1:
        raise ValueError("cycle length must be ≥ 1")
    return Database.from_edges(
        [(i, (i + 1) % length) for i in range(length)], predicate=edge
    )


def layered_graph(
    width: int,
    num_layers: int,
    edge_probability: float = 0.6,
    seed: int = 0,
) -> LayeredGraph:
    """Random ``(width, num_layers)``-layered graph.

    Each consecutive-layer edge appears independently with
    *edge_probability*; every layer keeps at least one outgoing edge
    so that ``t`` stays reachable (the lower-bound instances are
    interesting only when connectivity is possible).
    """
    rng = random.Random(seed)
    layers: List[List[Vertex]] = [
        [("L", depth, i) for i in range(width)] for depth in range(num_layers)
    ]
    source: Vertex = "s"
    sink: Vertex = "t"
    edges: List[Edge] = []
    for v in layers[0]:
        edges.append((source, v))
    for depth in range(num_layers - 1):
        for u in layers[depth]:
            outgoing = [
                (u, v) for v in layers[depth + 1] if rng.random() < edge_probability
            ]
            if not outgoing:
                outgoing = [(u, rng.choice(layers[depth + 1]))]
            edges.extend(outgoing)
    for v in layers[-1]:
        edges.append((v, sink))
    return LayeredGraph(layers, edges, source, sink)


def random_digraph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    ensure_st_path: bool = True,
) -> Database:
    """A random simple digraph on ``0..n-1`` with ``m`` edges.

    With *ensure_st_path*, a Hamiltonian-ish backbone ``0 → 1 → ... →
    n-1`` is included first so the benchmark fact ``T(0, n-1)`` is
    derivable; remaining edges are sampled without replacement.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    edges: List[Edge] = []
    seen: set = set()
    if ensure_st_path:
        for i in range(num_vertices - 1):
            edges.append((i, i + 1))
            seen.add((i, i + 1))
    budget = max(num_edges - len(edges), 0)
    attempts = 0
    while budget > 0 and attempts < 50 * num_edges + 100:
        attempts += 1
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v or (u, v) in seen:
            continue
        seen.add((u, v))
        edges.append((u, v))
        budget -= 1
    return Database.from_edges(edges)


def grid_digraph(rows: int, cols: int) -> Database:
    """A directed grid (right and down edges); ``(0,0)`` to corners."""
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
    return Database.from_edges(edges)


def complete_dag(num_vertices: int) -> Database:
    """All forward edges ``i → j`` for ``i < j`` (dense DAG control)."""
    edges = [
        (i, j) for i in range(num_vertices) for j in range(i + 1, num_vertices)
    ]
    return Database.from_edges(edges)


def random_weights(
    database: Database,
    seed: int = 0,
    low: float = 1.0,
    high: float = 9.0,
    integral: bool = True,
) -> Dict[Fact, float]:
    """Random edge weights for tropical/Viterbi evaluation."""
    rng = random.Random(seed)
    weights: Dict[Fact, float] = {}
    for fact in database.facts():
        value = rng.uniform(low, high)
        weights[fact] = float(int(value)) if integral else value
    return weights
