"""Labeled-graph workloads for RPQ / CFL-reachability benchmarks.

* word paths -- a path spelling a given word (the Proposition 5.5
  unboundedness family);
* random labeled digraphs over an alphabet;
* Dyck workloads -- nested and concatenated bracket paths plus random
  bracket graphs for the Example 6.4 / Table-1 CFG row.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Sequence, Tuple

__all__ = [
    "word_path",
    "random_labeled_digraph",
    "dyck_nested_path",
    "dyck_concatenated_path",
    "random_bracket_graph",
]

Vertex = Hashable
LabeledEdge = Tuple[Vertex, str, Vertex]


def word_path(word: Sequence[str], start: int = 0) -> List[LabeledEdge]:
    """A path of ``len(word)`` edges spelling *word*."""
    return [(start + i, str(symbol), start + i + 1) for i, symbol in enumerate(word)]


def random_labeled_digraph(
    num_vertices: int,
    num_edges: int,
    alphabet: Sequence[str],
    seed: int = 0,
    backbone_word: Sequence[str] | None = None,
) -> List[LabeledEdge]:
    """Random labeled digraph; an optional backbone path spells
    *backbone_word* through vertices ``0..len(word)`` so a designated
    RPQ fact is guaranteed to hold."""
    rng = random.Random(seed)
    edges: List[LabeledEdge] = []
    seen: set = set()
    if backbone_word:
        for i, symbol in enumerate(backbone_word):
            edge = (i, str(symbol), i + 1)
            edges.append(edge)
            seen.add(edge)
    attempts = 0
    while len(edges) < num_edges and attempts < 50 * num_edges + 100:
        attempts += 1
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        label = rng.choice(list(alphabet))
        edge = (u, str(label), v)
        if u == v or edge in seen:
            continue
        seen.add(edge)
        edges.append(edge)
    return edges


def dyck_nested_path(depth: int, open_label: str = "L", close_label: str = "R") -> List[LabeledEdge]:
    """A path spelling ``Lᵈ Rᵈ`` (maximally nested brackets)."""
    word = [open_label] * depth + [close_label] * depth
    return word_path(word)


def dyck_concatenated_path(
    pairs: int, open_label: str = "L", close_label: str = "R"
) -> List[LabeledEdge]:
    """A path spelling ``(LR)ᵖ`` (maximally concatenated brackets)."""
    word = [open_label, close_label] * pairs
    return word_path(word)


def random_bracket_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    open_label: str = "L",
    close_label: str = "R",
    nesting: int = 2,
) -> List[LabeledEdge]:
    """A random bracket-labeled graph with a balanced backbone.

    The backbone spells ``Lⁿ Rⁿ`` with ``n = nesting``; extra random
    bracket edges create alternative (and spurious, unbalanced) paths
    that exercise the CFL filter.
    """
    backbone = [open_label] * nesting + [close_label] * nesting
    return random_labeled_digraph(
        num_vertices,
        num_edges,
        alphabet=(open_label, close_label),
        seed=seed,
        backbone_word=backbone,
    )
