"""Streaming-graph workloads for differential maintenance (DESIGN.md §11).

A *fact stream* is a seeded, deterministic sequence of events over one
edge relation::

    ("insert",  Fact("E", (u, v)), weight)
    ("retract", Fact("E", (u, v)), None)
    ("weight",  Fact("E", (u, v)), weight)

The generator models the classic sliding-window graph: edges arrive
with random endpoints and weights, and once the live window is full the
oldest non-backbone edge expires.  A pinned backbone path ``0 → 1 →
... → n-1`` is never retracted, so the benchmark fact ``T(0, n-1)``
stays derivable throughout -- maintenance work is dominated by churn
around the backbone, not by the output flickering in and out of
existence.

``replay_events`` applies a prefix of the stream to a plain
:class:`~repro.datalog.database.Database`; the recompute-from-scratch
baselines (and the stream-vs-recompute tests) use it to build the
ground-truth database at any point of the stream.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..datalog.ast import Fact
from ..datalog.database import Database

__all__ = ["StreamEvent", "sliding_window_stream", "replay_events", "apply_event"]

#: ``(kind, fact, weight)`` with kind one of "insert" / "retract" / "weight".
StreamEvent = Tuple[str, Fact, Optional[object]]


def sliding_window_stream(
    num_vertices: int,
    window: int,
    num_events: int,
    seed: int = 0,
    edge: str = "E",
    weight_low: int = 1,
    weight_high: int = 9,
    reweight_probability: float = 0.1,
) -> Tuple[Database, List[StreamEvent]]:
    """A sliding-window edge stream over ``0..n-1``.

    Returns ``(initial database, events)``.  The initial database is
    the weighted backbone path; each event then either

    * inserts a fresh random edge ``u → v`` (``u ≠ v``, not currently
      live) with an integer weight,
    * reweights a live edge (probability *reweight_probability*), or
    * retracts the oldest windowed edge once more than *window*
      non-backbone edges are live (emitted before the insert that
      overflowed the window, FIFO order).

    Integer weights keep tropical/counting arithmetic exact, so
    maintained values can be compared to recomputed ones with ``==``.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    if window < 1:
        raise ValueError("window must be ≥ 1")
    rng = random.Random(seed)
    backbone = [(i, i + 1) for i in range(num_vertices - 1)]
    database = Database()
    for u, v in backbone:
        database.add_fact(
            Fact(edge, (u, v)), weight=float(rng.randint(weight_low, weight_high))
        )
    live: List[Tuple[int, int]] = []  # FIFO window of non-backbone edges
    live_set = set(backbone)
    events: List[StreamEvent] = []
    while len(events) < num_events:
        if live and rng.random() < reweight_probability:
            u, v = live[rng.randrange(len(live))]
            weight = float(rng.randint(weight_low, weight_high))
            events.append(("weight", Fact(edge, (u, v)), weight))
            continue
        for _ in range(50 * num_vertices):
            u = rng.randrange(num_vertices)
            v = rng.randrange(num_vertices)
            if u != v and (u, v) not in live_set:
                break
        else:  # pragma: no cover - dense window, nothing insertable
            u, v = live[0]
            events.append(("retract", Fact(edge, (u, v)), None))
            live_set.discard(live.pop(0))
            continue
        if len(live) >= window:
            ou, ov = live.pop(0)
            live_set.discard((ou, ov))
            events.append(("retract", Fact(edge, (ou, ov)), None))
            if len(events) >= num_events:
                break
        live.append((u, v))
        live_set.add((u, v))
        weight = float(rng.randint(weight_low, weight_high))
        events.append(("insert", Fact(edge, (u, v)), weight))
    return database, events[:num_events]


def apply_event(database: Database, event: StreamEvent) -> None:
    """Apply one stream event to *database* in place."""
    kind, fact, weight = event
    if kind == "insert":
        database.add_fact(fact, weight=weight)
    elif kind == "retract":
        database.retract_fact(fact)
    elif kind == "weight":
        database.set_weight(fact, weight)
    else:
        raise ValueError(f"unknown stream event kind {kind!r}")


def replay_events(database: Database, events: List[StreamEvent]) -> Database:
    """A fresh copy of *database* with *events* applied (ground truth)."""
    replayed = database.copy()
    for event in events:
        apply_event(replayed, event)
    return replayed


def _weights(database: Database) -> Dict[Fact, object]:
    """The stored weights of *database* (testing convenience)."""
    return {fact: database.weight(fact) for fact in database.facts()}
