"""Growth fitting: the Table-1 shape checker itself must be trustworthy."""

import math

import pytest

from repro.analysis import SweepReport, best_fit, consistent_with, dominance_ratio


def series(fn, ns=(8, 16, 32, 64, 128, 256)):
    return list(ns), [fn(n) for n in ns]


def test_best_fit_linear():
    ns, ys = series(lambda n: 3 * n + 5)
    assert best_fit(ns, ys).best == "n"


def test_best_fit_quadratic():
    ns, ys = series(lambda n: 2 * n * n)
    assert best_fit(ns, ys).best == "n^2"


def test_best_fit_nlogn():
    ns, ys = series(lambda n: n * math.log(n))
    assert best_fit(ns, ys).best == "n log n"


def test_best_fit_log():
    ns, ys = series(lambda n: 7 * math.log(n) + 2)
    assert best_fit(ns, ys).best == "log n"


def test_best_fit_log_squared():
    ns, ys = series(lambda n: 3 * math.log(n) ** 2)
    assert best_fit(ns, ys).best == "log^2 n"


def test_best_fit_constant():
    ns, ys = series(lambda n: 42)
    assert best_fit(ns, ys).best == "1"


def test_best_fit_needs_three_points():
    with pytest.raises(ValueError):
        best_fit([1, 2], [1, 2])


def test_consistency_accepts_true_bounds():
    ns, ys = series(lambda n: 5 * n)
    assert consistent_with(ns, ys, "n")
    assert consistent_with(ns, ys, "n^2")  # upper bounds are one-sided


def test_consistency_rejects_undershooting_claims():
    ns, ys = series(lambda n: n * n)
    assert not consistent_with(ns, ys, "n")
    assert not consistent_with(ns, ys, "log n")


def test_consistency_log_vs_logsq():
    ns, ys = series(lambda n: math.log(n) ** 2, ns=(8, 64, 512, 4096, 2**16, 2**20))
    assert consistent_with(ns, ys, "log^2 n")
    assert not consistent_with(ns, ys, "log n")


def test_dominance_ratio_flat_for_exact_model():
    ns, ys = series(lambda n: 3 * n)
    assert dominance_ratio(ns, ys, "n") == pytest.approx(1.0)


def test_sweep_report_renders_and_verdicts():
    report = SweepReport("demo", claimed_size="n", claimed_depth="log n")
    for n in (8, 16, 32, 64):
        report.add(n=n, m=2 * n, size=5 * n, depth=int(3 * math.log2(n)))
    text = report.render()
    assert "PASS" in text
    assert report.size_ok() and report.depth_ok()


def test_sweep_report_detects_violations():
    report = SweepReport("bad", claimed_size="log n", claimed_depth=None)
    for n in (8, 16, 32, 64, 128):
        report.add(n=n, m=n, size=n * n, depth=1)
    assert not report.size_ok()
    assert "FAIL" in report.render()


def test_sweep_report_scale_by_m():
    report = SweepReport("by-m", claimed_size="n", claimed_depth=None, scale="m")
    for m in (10, 20, 40, 80):
        report.add(n=3, m=m, size=6 * m, depth=2)
    assert report.size_ok()
