"""Cross-backend equivalence tests (see test_vectorized.py)."""
