"""The vectorized NumPy execution backend (DESIGN.md §13).

Four contracts are pinned here:

* **backend selection** -- ``ExecutionConfig.backend`` validates with
  the same ValueError vocabulary as ``engine``/``strategy``, survives
  ``evolve()``/``coerce_config``/``merge_legacy_knobs``, and
  :func:`repro.backends.resolve_backend` maps ``"auto"`` to the NumPy
  kernels exactly when NumPy imports;
* **fixpoint equivalence** -- ``backend="vectorized"`` produces the
  *exact* same values, iteration counts, convergence flags and
  rule-evaluation counts as the pure-Python kernels, across the
  engine × strategy matrix, on random digraphs, Dyck-1 and tropical
  Bellman-Ford, including NaN/inf float edge values (where the
  vectorized kernel must decline rather than drift);
* **batch equivalence** -- ``evaluate_batch(backend="vectorized")``
  matches the interpreter loop element for element;
* **sharded grounding determinism** -- ``columnar_grounding`` with
  1/2/4 workers produces identical ``rule_keys()`` and round counts,
  through the pool and through the serial in-process fallback alike.
"""

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session, solve
from repro.backends import numpy_available, resolve_backend
from repro.config import (
    BACKENDS,
    ExecutionConfig,
    coerce_config,
    merge_legacy_knobs,
)
from repro.datalog import (
    Database,
    FixpointEngine,
    GROUNDING_ENGINES,
    STRATEGIES,
    columnar_grounding,
    dyck1,
    transitive_closure,
)
from repro.datalog.grounding import shard_of_fact
from repro.semirings import ARCTIC, BOOLEAN, COUNTING, FUZZY, TROPICAL, VITERBI
from repro.workloads import random_digraph, random_weights

TC = transitive_closure()
DYCK = dyck1()

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="requires the 'perf' extra (numpy)")

VEC = ExecutionConfig(backend="vectorized") if numpy_available() else ExecutionConfig(backend="auto")
PY = ExecutionConfig(backend="python")


class _Valuation(dict):
    """The ``edb_value`` contract of both fixpoint kernels: a mapping
    with a default for unweighted facts."""

    def __init__(self, weights, default):
        super().__init__(weights)
        self.default = default

    def __missing__(self, fact):
        return self.default


def same_value(a, b) -> bool:
    """Exact equality, with NaN == NaN (the fallback contract compares
    whole result vectors, and NaN inputs must round-trip unchanged)."""
    if isinstance(a, float) and isinstance(b, float) and math.isnan(a) and math.isnan(b):
        return True
    return a == b and type(a) is type(b)


def assert_backend_parity(program, db, semiring, weights=None, config=VEC, max_iterations=None):
    """``backend="vectorized"`` must be observationally identical to
    the pure-Python kernels: values, iterations, convergence and
    rule-evaluation counts, fact for fact."""
    reference = solve(
        program, db, semiring, weights=weights, config=PY, max_iterations=max_iterations
    )
    result = solve(
        program, db, semiring, weights=weights, config=config, max_iterations=max_iterations
    )
    assert set(result.values) == set(reference.values)
    for fact, expected in reference.values.items():
        assert same_value(result.values[fact], expected), (fact, result.values[fact], expected)
    assert result.iterations == reference.iterations
    assert result.converged == reference.converged
    assert result.rule_evaluations == reference.rule_evaluations


# -- backend selection ----------------------------------------------------


def test_config_backend_vocabulary():
    for backend in BACKENDS:
        assert ExecutionConfig(backend=backend).backend == backend
    assert ExecutionConfig().resolved_backend == "python"
    with pytest.raises(ValueError, match=r"unknown backend 'cuda'.*'python'.*'vectorized'.*'auto'"):
        ExecutionConfig(backend="cuda")
    with pytest.raises(ValueError, match="unknown backend"):
        coerce_config({"backend": "numba"})


def test_config_backend_survives_evolve_and_key():
    config = ExecutionConfig(backend="vectorized")
    assert config.evolve(engine="columnar").backend == "vectorized"
    assert config.key() != ExecutionConfig().key()
    merged = merge_legacy_knobs("test_vectorized", config)
    assert merged.backend == "vectorized"


def test_resolve_backend_vocabulary_and_auto():
    assert resolve_backend(None) == "python"
    assert resolve_backend("python") == "python"
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("gpu")
    if numpy_available():
        assert resolve_backend("auto") == "vectorized"
        assert resolve_backend("vectorized") == "vectorized"
    else:
        assert resolve_backend("auto") == "python"


def test_resolve_backend_without_numpy(monkeypatch):
    """Simulated NumPy absence: ``auto`` degrades, explicit
    ``vectorized`` fails loudly naming the ``perf`` extra."""
    import repro.backends as backends

    monkeypatch.setattr(backends, "_NUMPY_PROBED", True)
    monkeypatch.setattr(backends, "_NUMPY", None)
    assert backends.resolve_backend("auto") == "python"
    assert not backends.numpy_available()
    with pytest.raises(ModuleNotFoundError, match=r"perf"):
        backends.resolve_backend("vectorized")


# -- fixpoint equivalence -------------------------------------------------


@pytest.mark.parametrize("semiring", [BOOLEAN, COUNTING, TROPICAL, VITERBI, FUZZY])
def test_fixpoint_parity_fixed_digraph(semiring):
    db = random_digraph(24, 90, seed=11)
    weights = None
    if semiring in (TROPICAL, VITERBI, FUZZY):
        weights = random_weights(db, seed=2)
        if semiring is not TROPICAL:
            weights = {f: 1.0 / (1.0 + w) for f, w in weights.items()}
    assert_backend_parity(TC, db, semiring, weights=weights)


@given(seed=st.integers(0, 5000), n=st.integers(3, 9), m=st.integers(3, 24))
@settings(max_examples=12, deadline=None)
def test_fixpoint_parity_random_digraphs(seed, n, m):
    db = random_digraph(n, m, seed=seed)
    assert_backend_parity(TC, db, BOOLEAN)
    assert_backend_parity(TC, db, COUNTING)
    assert_backend_parity(TC, db, TROPICAL, weights=random_weights(db, seed=seed + 1))


@given(seed=st.integers(0, 1000), pairs=st.integers(2, 8))
@settings(max_examples=8, deadline=None)
def test_fixpoint_parity_dyck(seed, pairs):
    import random

    rng = random.Random(seed)
    edges = []
    node = 0
    for _ in range(pairs):
        edges.append((node, "L", node + 1))
        edges.append((node + 1, "R", node + 2))
        node += 2
    for _ in range(pairs):
        u, v = rng.randrange(node + 1), rng.randrange(node + 1)
        if u != v:
            edges.append((u, rng.choice(["L", "R"]), v))
    db = Database.from_labeled_edges(edges)
    assert_backend_parity(DYCK, db, BOOLEAN)
    # A cyclic Dyck graph diverges doubly-exponentially under COUNTING
    # (the concatenation rule squares path counts every round), so cap
    # the rounds: parity must hold on the truncated prefix too.
    assert_backend_parity(DYCK, db, COUNTING, max_iterations=10)


def test_fixpoint_parity_engine_strategy_matrix():
    """The backend knob composes with every (engine, strategy) pair:
    the full matrix under ``backend="vectorized"`` agrees with the
    pure-Python naive/naive reference."""
    db = random_digraph(10, 30, seed=4)
    weights = random_weights(db, seed=5)
    reference = FixpointEngine("naive", "naive").evaluate(TC, db, TROPICAL, weights=weights)
    for engine in GROUNDING_ENGINES:
        for strategy in STRATEGIES:
            config = ExecutionConfig(
                engine=engine, strategy=strategy, backend=VEC.backend
            )
            result = solve(TC, db, TROPICAL, weights=weights, config=config)
            assert result.values == reference.values, (engine, strategy)
            assert result.iterations == reference.iterations, (engine, strategy)
            assert result.converged and reference.converged


def test_fixpoint_parity_bellman_ford_inf_and_nan():
    """Tropical Bellman-Ford with unreachable (inf) and poisoned (NaN)
    edge weights: inf must flow through the vectorized kernel, NaN
    must force the pure-Python fallback -- values identical either
    way, NaN compared as NaN."""
    db = random_digraph(16, 48, seed=7)
    weights = random_weights(db, seed=8)
    facts = sorted(weights, key=repr)
    weights[facts[0]] = float("inf")
    assert_backend_parity(TC, db, TROPICAL, weights=weights)
    weights[facts[1]] = float("nan")
    assert_backend_parity(TC, db, TROPICAL, weights=weights)


def test_fixpoint_parity_divergent_arctic():
    """A positive-weight cycle diverges under ARCTIC: both backends
    must report the same capped iteration count and converged=False."""
    db = Database.from_edges([(1, 2), (2, 3), (3, 1)])
    weights = {fact: 1.0 for fact in db.facts()}
    reference = solve(TC, db, ARCTIC, weights=weights, config=PY, max_iterations=50)
    result = solve(TC, db, ARCTIC, weights=weights, config=VEC, max_iterations=50)
    assert result.values == reference.values
    assert result.iterations == reference.iterations == 50
    assert not result.converged and not reference.converged


@needs_numpy
def test_vectorized_kernel_actually_runs_and_declines():
    """Direct kernel contract: exact tuple parity when the semiring
    publishes ufunc specs, ``None`` (decline) on NaN inputs and on
    spec-less semirings."""
    from repro.backends.vectorized import vectorized_columnar_fixpoint
    from repro.datalog.seminaive import _columnar_fixpoint
    from repro.semirings import LUKASIEWICZ

    db = random_digraph(12, 40, seed=9)
    weights = random_weights(db, seed=10)
    cground = columnar_grounding(TC, db)
    edb_value = _Valuation(weights, TROPICAL.one)

    got = vectorized_columnar_fixpoint(cground, TROPICAL, edb_value, 10_000)
    assert got is not None, "tropical must take the vectorized path"
    assert got == _columnar_fixpoint(cground, TROPICAL, edb_value, 10_000)

    assert (
        vectorized_columnar_fixpoint(cground, LUKASIEWICZ, _Valuation({}, 0.5), 10_000) is None
    )

    poisoned = dict(weights)
    poisoned[next(iter(weights))] = float("nan")
    assert (
        vectorized_columnar_fixpoint(
            cground, TROPICAL, _Valuation(poisoned, TROPICAL.one), 10_000
        )
        is None
    )


@needs_numpy
def test_vectorized_kernel_declines_on_counting_overflow():
    """A chain of 70 doubling diamonds has 2^70 source-to-sink paths:
    past the int64 exactness guard, so the kernel must decline and the
    bigint fallback must keep the counts exact."""
    from repro.backends.vectorized import vectorized_columnar_fixpoint

    edges = []
    node = 0
    for _ in range(70):
        edges += [(node, node + 1), (node, node + 2), (node + 1, node + 3), (node + 2, node + 3)]
        node += 3
    db = Database.from_edges(edges)
    cground = columnar_grounding(TC, db)
    result = solve(TC, db, COUNTING, config=PY)
    assert max(abs(v) for v in result.values.values()) >= 2**70
    assert vectorized_columnar_fixpoint(cground, COUNTING, _Valuation({}, 1), 10_000) is None
    assert_backend_parity(TC, db, COUNTING)


# -- batch equivalence ----------------------------------------------------


def _batch_fixture():
    db = random_digraph(12, 36, seed=6)
    weights = random_weights(db, seed=3)
    result = solve(TC, db, TROPICAL, weights=weights, config=PY)
    target = next(
        fact
        for fact in sorted(result.values, key=repr)
        if result.values[fact] not in (TROPICAL.zero, TROPICAL.one)
    )
    facts = sorted(db.facts(), key=repr)
    return db, facts, target


def _assignments(facts, semiring, count, cast):
    base = {}
    batches = []
    for k in range(count):
        assignment = {fact: cast(k, i) for i, fact in enumerate(facts)}
        batches.append(assignment)
    return batches


@pytest.mark.parametrize(
    "semiring,cast",
    [
        (TROPICAL, lambda k, i: float((k * 7 + i) % 11)),
        (VITERBI, lambda k, i: ((k * 5 + i) % 10) / 10.0),
        (COUNTING, lambda k, i: (k + i) % 4),
        (BOOLEAN, lambda k, i: bool((k + i) % 3)),
    ],
)
def test_evaluate_batch_parity(semiring, cast):
    db, facts, target = _batch_fixture()
    batches = _assignments(facts, semiring, 40, cast)
    vec = Session(TC, db, VEC).evaluate_batch(target, semiring, batches)
    ref = Session(TC, db, PY).evaluate_batch(target, semiring, batches)
    assert len(vec) == len(ref) == 40
    for got, expected in zip(vec, ref):
        assert same_value(got, expected)


def test_evaluate_batch_nan_falls_back():
    db, facts, target = _batch_fixture()
    batches = _assignments(facts, TROPICAL, 6, lambda k, i: float((k + i) % 5))
    batches[3][facts[0]] = float("nan")
    vec = Session(TC, db, VEC).evaluate_batch(target, TROPICAL, batches)
    ref = Session(TC, db, PY).evaluate_batch(target, TROPICAL, batches)
    for got, expected in zip(vec, ref):
        assert same_value(got, expected)


def test_evaluate_batch_unknown_backend_rejected():
    db, facts, target = _batch_fixture()
    compiled = Session(TC, db).compiled(target)
    with pytest.raises(ValueError, match="unknown backend"):
        compiled.evaluate_batch(TROPICAL, [], backend="simd")


def test_evaluate_batch_empty_and_missing_fact():
    db, facts, target = _batch_fixture()
    compiled = Session(TC, db, VEC).compiled(target)
    assert compiled.evaluate_batch(TROPICAL, [], backend="auto") == []
    partial = {facts[0]: 1.0}
    with pytest.raises(KeyError):
        compiled.evaluate_batch(TROPICAL, [partial], backend=VEC.backend)


# -- sharded grounding ----------------------------------------------------


def test_shard_of_fact_is_stable_and_total():
    """The shard hash must not depend on PYTHONHASHSEED (it is crc32 +
    FNV mixing over interned ids) and must partition [0, nshards)."""
    assert shard_of_fact("E", (3, 4), 4) == shard_of_fact("E", (3, 4), 4)
    seen = {shard_of_fact("E", (i, i + 1), 3) for i in range(60)}
    assert seen == {0, 1, 2}
    assert shard_of_fact("E", (), 5) in range(5)


@pytest.mark.parametrize("workers", [2, 4])
def test_sharded_grounding_matches_serial(workers):
    db = random_digraph(18, 60, seed=12)
    serial = columnar_grounding(TC, db)
    sharded = columnar_grounding(TC, db, workers=workers)
    assert sharded.rule_keys() == serial.rule_keys()
    assert sharded.iterations == serial.iterations
    assert sharded.idb_facts == serial.idb_facts


def test_sharded_grounding_workers_one_is_serial():
    db = random_digraph(8, 20, seed=13)
    assert columnar_grounding(TC, db, workers=1).rule_keys() == columnar_grounding(
        TC, db
    ).rule_keys()


def test_sharded_grounding_determinism_across_worker_counts():
    db = random_digraph(14, 48, seed=14)
    keys = {
        workers: columnar_grounding(TC, db, workers=workers).rule_keys()
        for workers in (1, 2, 4)
    }
    assert keys[1] == keys[2] == keys[4]


def test_sharded_grounding_serial_fallback(monkeypatch):
    """Pool creation failure (sandboxes without /dev/shm) must degrade
    to the bit-identical in-process shard/merge protocol."""
    import multiprocessing

    def refuse(method):
        raise OSError("no pool in this sandbox")

    monkeypatch.setattr(multiprocessing, "get_context", refuse)
    db = random_digraph(12, 40, seed=15)
    sharded = columnar_grounding(TC, db, workers=3)
    assert sharded.rule_keys() == columnar_grounding(TC, db).rule_keys()


def test_sharded_grounding_fixpoint_values_match():
    """A fixpoint over the sharded grounding decodes to the same fact
    values as over the serial grounding (rule order is immaterial)."""
    db = random_digraph(12, 40, seed=16)
    weights = random_weights(db, seed=17)
    sharded = columnar_grounding(TC, db, workers=2)
    reference = solve(TC, db, TROPICAL, weights=weights, config=PY)
    result = solve(TC, db, TROPICAL, weights=weights, ground=sharded, config=PY)
    assert result.values == reference.values
    assert result.converged


def test_sharded_grounding_rejects_bad_workers():
    from repro.backends.sharding import sharded_columnar_grounding

    db = random_digraph(4, 8, seed=18)
    with pytest.raises(ValueError, match="workers >= 2"):
        sharded_columnar_grounding(TC, db, 1)


def test_columnar_store_pickle_round_trip():
    """Workers receive the base store by pickle: symbol ids, rows and
    interning behaviour must survive the round trip, detached from the
    process-wide symbol scope."""
    db = random_digraph(6, 14, seed=19)
    store = db.columnar_store()
    clone = pickle.loads(pickle.dumps(store))
    assert len(clone.symbols) == len(store.symbols)
    for symbol in range(len(store.symbols)):
        assert clone.symbols.decode(symbol) == store.symbols.decode(symbol)
    for predicate in store.predicates():
        relation, other = store.relation(predicate), clone.relation(predicate)
        assert other.columns == relation.columns
        assert len(other) == len(relation)
    # Interning a fresh constant stays deterministic and local.
    a = store.symbols.intern("fresh-constant")
    b = clone.symbols.intern("fresh-constant")
    assert a == b
