"""Boundedness analysis: exact, certified, and empirical."""

from repro.boundedness import (
    analyze_boundedness,
    chain_program_boundedness,
    empirical_iteration_probe,
    expansion_boundedness_certificate,
)
from repro.datalog import bounded_example, dyck1, parse_program, transitive_closure
from repro.grammars import rpq_program
from repro.workloads import path_graph


def test_tc_is_unbounded():
    report = chain_program_boundedness(transitive_closure())
    assert report.bounded is False
    assert report.method == "cfg-finiteness"


def test_dyck_is_unbounded():
    assert chain_program_boundedness(dyck1()).bounded is False


def test_finite_rpq_program_is_bounded():
    program, _eps = rpq_program("ab|ac")
    report = chain_program_boundedness(program)
    assert report.bounded is True
    assert report.certificate == 2  # longest word length


def test_bounded_example_certificate():
    report = expansion_boundedness_certificate(bounded_example())
    assert report.bounded is True
    assert report.certificate == 2


def test_certificate_inconclusive_for_tc():
    report = expansion_boundedness_certificate(transitive_closure(), max_certificate=3)
    assert report.bounded is None
    assert "likely unbounded" in report.details


def test_certificate_requires_linear():
    report = expansion_boundedness_certificate(dyck1())
    assert report.bounded is None


def test_empirical_probe_detects_unboundedness_of_tc():
    report = empirical_iteration_probe(
        transitive_closure(), lambda n: path_graph(n), sizes=(4, 8, 12, 16)
    )
    assert report.bounded is False
    assert len(report.evidence) == 4


def test_empirical_probe_flat_for_bounded_program():
    def family(n):
        db = path_graph(n)
        db.add("A", 0)
        return db

    report = empirical_iteration_probe(bounded_example(), family, sizes=(4, 8, 12))
    assert report.bounded is None  # evidence only
    iteration_counts = [it for _n, it in report.evidence]
    assert len(set(iteration_counts)) == 1


def test_analyze_dispatch_chain():
    assert analyze_boundedness(transitive_closure()).method == "cfg-finiteness"


def test_analyze_dispatch_linear():
    report = analyze_boundedness(bounded_example())
    assert report.method == "expansion-homomorphism"
    assert report.bounded is True


def test_analyze_dispatch_fallback_probe():
    # A non-linear, non-chain program: falls through to the probe.
    program = parse_program(
        """
        P(X) :- R(X).
        P(X) :- P(X), P(X), S(X).
        """
    )

    def family(n):
        from repro.datalog import Database

        db = Database()
        for i in range(n):
            db.add("R", i)
            db.add("S", i)
        return db

    report = analyze_boundedness(program, family, sizes=(3, 6, 9))
    assert report.method == "iteration-probe"


def test_analyze_no_method():
    program = parse_program(
        """
        P(X) :- R(X).
        P(X) :- P(X), P(X), S(X).
        """
    )
    report = analyze_boundedness(program)
    assert report.bounded is None
    assert report.method == "none"


def test_report_repr():
    report = chain_program_boundedness(transitive_closure())
    assert "UNBOUNDED" in repr(report)


def test_circuit_equivalence_probe_agrees_and_refutes():
    """The bitset-batched probe: truncating the Bellman-Ford circuit at
    enough layers is equivalence, truncating a long path too early is a
    concrete witness."""
    from repro.boundedness import circuit_equivalence_probe
    from repro.constructions import bellman_ford_circuit
    from repro.workloads import path_graph as _path

    db = _path(6)
    full = bellman_ford_circuit(db, 0, 5)
    same = bellman_ford_circuit(db, 0, 5, rounds=5)
    assert circuit_equivalence_probe(full, same, trials=200, seed=3) is None
    truncated = bellman_ford_circuit(db, 0, 5, rounds=2)
    witness = circuit_equivalence_probe(full, truncated, trials=200, seed=3)
    assert witness is not None
    true_variables, index = witness
    assert 0 <= index < 200
    # the witness really separates the two circuits
    from repro.circuits import evaluate_boolean

    assert evaluate_boolean(full, true_variables) != evaluate_boolean(
        truncated, true_variables
    )
