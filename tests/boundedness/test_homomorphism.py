"""CQ homomorphisms and Chom containment (Chandra–Merlin, Thm 4.6)."""

from repro.datalog import Atom, ConjunctiveQuery, Constant, Variable, expansions, transitive_closure
from repro.boundedness import (
    cq_contained_in,
    cq_equivalent,
    find_homomorphism,
    has_homomorphism,
    ucq_contained_in,
)

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


def path_cq(length: int) -> ConjunctiveQuery:
    variables = [Variable(f"P{i}") for i in range(length + 1)]
    atoms = tuple(
        Atom("E", (variables[i], variables[i + 1])) for i in range(length)
    )
    return ConjunctiveQuery(Atom("Q", (variables[0], variables[-1])), atoms)


def loop_cq() -> ConjunctiveQuery:
    return ConjunctiveQuery(Atom("Q", (X, X)), (Atom("E", (X, X)),))


def test_identity_homomorphism():
    cq = path_cq(2)
    assert has_homomorphism(cq, cq)


def test_longer_path_maps_into_loop():
    # classic: any path CQ maps homomorphically into the self-loop --
    # but head preservation requires both head vars to collapse, which
    # the loop's head Q(X, X) allows only if the path head could map to
    # (X, X): it can (all vertices → X).
    long = path_cq(3)
    hom = find_homomorphism(
        ConjunctiveQuery(Atom("Q", (long.head.terms[0], long.head.terms[1])), long.body),
        loop_cq(),
    )
    assert hom is not None


def test_loop_does_not_map_into_path():
    assert not has_homomorphism(loop_cq(), path_cq(3))


def test_containment_direction():
    # path(3) ⊆ path(2)? Containment q1 ⊆ q2 iff hom q2 → q1.
    # A 2-path maps into a 3-path only if endpoints align: heads are
    # (first, last), so no (distance mismatch).  Not contained.
    assert not cq_contained_in(path_cq(3), path_cq(2))
    # But every CQ is contained in itself.
    assert cq_contained_in(path_cq(3), path_cq(3))


def test_tc_expansions_are_incomparable():
    # TC expansions C_i (paths of distinct lengths) admit no homs
    # between distinct lengths: the reason TC is unbounded.
    tc = transitive_closure()
    c1 = expansions(tc, 0)[0]
    c2 = expansions(tc, 1)[0]
    assert not has_homomorphism(c1, c2)
    assert not has_homomorphism(c2, c1)


def test_constants_must_match():
    with_const = ConjunctiveQuery(
        Atom("Q", (X,)), (Atom("E", (X, Constant(5))),)
    )
    generic = ConjunctiveQuery(Atom("Q", (X,)), (Atom("E", (X, Y)),))
    # generic → with_const: Y ↦ 5 works.
    assert has_homomorphism(generic, with_const)
    # with_const → generic: 5 cannot map to a variable.
    assert not has_homomorphism(with_const, generic)


def test_predicate_mismatch():
    q1 = ConjunctiveQuery(Atom("Q", (X,)), (Atom("E", (X, Y)),))
    q2 = ConjunctiveQuery(Atom("R", (X,)), (Atom("E", (X, Y)),))
    assert find_homomorphism(q1, q2) is None


def test_head_arity_mismatch():
    q1 = ConjunctiveQuery(Atom("Q", (X, Y)), (Atom("E", (X, Y)),))
    q2 = ConjunctiveQuery(Atom("Q", (X,)), (Atom("E", (X, Y)),))
    assert find_homomorphism(q1, q2) is None


def test_cq_equivalence_by_folding():
    # Q(X) :- E(X,Y), E(X,Z)  ≡  Q(X) :- E(X,Y)  (fold Z onto Y).
    q1 = ConjunctiveQuery(Atom("Q", (X,)), (Atom("E", (X, Y)), Atom("E", (X, Z))))
    q2 = ConjunctiveQuery(Atom("Q", (X,)), (Atom("E", (X, Y)),))
    assert cq_equivalent(q1, q2)


def test_ucq_containment():
    u1 = [path_cq(2)]
    u2 = [path_cq(2), path_cq(3)]
    assert ucq_contained_in(u1, u2)
    assert not ucq_contained_in([path_cq(4)], u2)


def test_homomorphism_is_correct_mapping():
    source = path_cq(2)
    hom = find_homomorphism(source, path_cq(2))
    # applying the hom maps every atom of source onto an atom of target
    target_atoms = set(path_cq(2).body)
    for atom in source.body:
        image = atom.substitute({v: t for v, t in hom.items()})
        assert image in target_atoms
