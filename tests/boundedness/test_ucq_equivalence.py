"""Proposition 4.8: bounded ⟺ target equivalent to a UCQ."""

import pytest

from repro.boundedness import (
    equivalent_ucq,
    expansion_boundedness_certificate,
    ucq_answers,
    ucq_matches_program,
)
from repro.datalog import Database, DatalogError, bounded_example
from repro.workloads import path_graph, random_digraph


def family():
    out = []
    for seed in range(3):
        db = random_digraph(6, 10, seed=seed)
        db.add("A", 0)
        db.add("A", 2)
        out.append(db)
    db = path_graph(4)
    db.add("A", 0)
    out.append(db)
    return out


def test_equivalent_ucq_shape():
    program = bounded_example()
    report = expansion_boundedness_certificate(program)
    assert report.bounded
    ucq = equivalent_ucq(program, report.certificate)
    assert 1 <= len(ucq) <= report.certificate + 1
    # First disjunct is the initialization CQ E(x, y).
    predicates = {a.predicate for cq in ucq for a in cq.body}
    assert predicates <= {"E", "A"}


def test_ucq_matches_program_on_family():
    program = bounded_example()
    report = expansion_boundedness_certificate(program)
    assert ucq_matches_program(program, report.certificate, family())


def test_undersized_certificate_detected():
    program = bounded_example()
    # certificate 1 keeps only the init rule: misses A(x) ∧ E(z, y).
    assert not ucq_matches_program(program, 1, family())


def test_minimization_drops_subsumed_disjuncts():
    program = bounded_example()
    full = equivalent_ucq(program, 3, minimize=False)
    minimized = equivalent_ucq(program, 3, minimize=True)
    assert len(minimized) < len(full)
    # both compute the same answers
    for db in family():
        assert ucq_answers(full, db) == ucq_answers(minimized, db)


def test_certificate_validation():
    with pytest.raises(DatalogError):
        equivalent_ucq(bounded_example(), 0)


def test_ucq_answers_basic():
    from repro.datalog import expansions, transitive_closure

    cq = expansions(transitive_closure(), 0)[0]  # T(x,y) :- E(x,y)
    db = Database.from_edges([(0, 1), (1, 2)])
    assert ucq_answers([cq], db) == {(0, 1), (1, 2)}
