"""The array-backed circuit substrate: builder, metrics, invariants."""

import math

import pytest

from repro.circuits import (
    OP_ADD,
    OP_MUL,
    OP_VAR,
    Circuit,
    CircuitBuilder,
    measure,
)


def build_simple():
    b = CircuitBuilder()
    x, y, z = b.var("x"), b.var("y"), b.var("z")
    out = b.add(b.mul(x, y), b.mul(x, z))
    return b.build(out)


def test_size_and_depth():
    c = build_simple()
    assert c.size == 6  # 3 vars + 2 muls + 1 add
    assert c.depth == 2


def test_hash_consing_shares_identical_gates():
    b = CircuitBuilder(share=True)
    x, y = b.var("x"), b.var("y")
    g1 = b.mul(x, y)
    g2 = b.mul(y, x)  # commutative key: same gate
    assert g1 == g2
    assert b.var("x") == x


def test_no_sharing_mode():
    b = CircuitBuilder(share=False)
    x1 = b.var("x")
    x2 = b.var("x")
    assert x1 != x2


def test_builder_constant_simplifications():
    b = CircuitBuilder(share=True)
    x = b.var("x")
    assert b.add(x, b.const0()) == x
    assert b.mul(x, b.const1()) == x
    assert b.mul(x, b.const0()) == b.const0()


def test_balanced_add_all_depth_is_logarithmic():
    b = CircuitBuilder()
    leaves = [b.var(i) for i in range(100)]
    out = b.add_all(leaves)
    c = b.build(out)
    assert c.depth == math.ceil(math.log2(100))


def test_empty_folds():
    b = CircuitBuilder()
    zero = b.add_all([])
    one = b.mul_all([])
    c = b.build([zero, one])
    assert c.ops[c.outputs[0]] == 1  # OP_CONST0
    assert c.ops[c.outputs[1]] == 2  # OP_CONST1


def test_is_formula_detection():
    c = build_simple()
    assert not c.is_formula()  # x is shared by two muls
    b = CircuitBuilder(share=False)
    out = b.mul(b.var("x"), b.var("y"))
    assert b.build(out).is_formula()


def test_fanout():
    c = build_simple()
    fanout = c.fanout()
    x_index = c.ops.index(OP_VAR)
    assert fanout[x_index] == 2  # x feeds both muls


def test_variables_order_and_dedup():
    c = build_simple()
    assert c.variables() == ["x", "y", "z"]


def test_prune_drops_dead_gates():
    b = CircuitBuilder()
    x, y = b.var("x"), b.var("y")
    used = b.mul(x, y)
    b.add(x, y)  # dead gate
    c = b.build(used)
    assert c.size == 4
    pruned = c.prune()
    assert pruned.size == 3
    assert pruned.depth == c.depth


def test_with_outputs():
    b = CircuitBuilder()
    x, y = b.var("x"), b.var("y")
    g = b.mul(x, y)
    c = b.build(g)
    c2 = c.with_outputs([x])
    assert c2.outputs == [x]


def test_invalid_output_index():
    with pytest.raises(ValueError):
        Circuit([OP_VAR], [-1], [-1], ["x"], [5])


def test_mismatched_arrays():
    with pytest.raises(ValueError):
        Circuit([OP_VAR, OP_ADD], [-1], [-1], ["x"], [0])


def test_splice_copies_structure():
    c = build_simple()
    b = CircuitBuilder()
    remap = b.splice(c)
    c2 = b.build(remap[c.outputs[0]])
    assert c2.size == c.size
    assert c2.depth == c.depth


def test_splice_with_input_map():
    c = build_simple()
    b = CircuitBuilder()
    one = b.const1()
    remap = b.splice(c, input_map={"x": one})
    c2 = b.build(remap[c.outputs[0]], prune=True)
    # with x := 1: (1·y) ⊕ (1·z) simplifies to y ⊕ z under sharing
    assert set(c2.variables()) == {"y", "z"}


def test_measure_metrics():
    m = measure(build_simple())
    assert m.size == 6
    assert m.num_add_gates == 1
    assert m.num_mul_gates == 2
    assert m.num_inputs == 3
    assert m.num_internal == 3
    assert m.max_fanout == 2
    assert not m.is_formula
    assert m.num_wires == 6
    assert "size=" in m.row()


def test_node_depths_monotone():
    c = build_simple()
    depths = c.node_depths()
    for i in range(len(c.ops)):
        if c.ops[i] in (OP_ADD, OP_MUL):
            assert depths[i] > max(depths[c.lhs[i]], depths[c.rhs[i]]) - 1


def test_pretty_and_repr():
    c = build_simple()
    assert "Circuit(size=6" in repr(c)
    assert "output" in c.pretty()


def test_gate_counts_cached_and_correct():
    """The per-opcode counters are one cached sweep, not O(n) per access
    (the sweep reports read them repeatedly per row); the circuit is
    immutable so compute-once needs no invalidation."""
    c = build_simple()
    expected_add = sum(1 for op in c.ops if op == OP_ADD)
    expected_mul = sum(1 for op in c.ops if op == OP_MUL)
    expected_var = sum(1 for op in c.ops if op == 0)
    assert c._op_counts is None  # lazy until first access
    assert c.num_add_gates == expected_add
    assert c._op_counts is not None
    assert c.num_mul_gates == expected_mul
    assert c.num_inputs == expected_var
    assert c.num_gates == expected_add + expected_mul
    # repeated access hits the cache (same tuple object)
    first = c._op_counts
    assert c.num_gates == expected_add + expected_mul
    assert c._op_counts is first
