"""Hypothesis properties of the circuit substrate.

The central one: **evaluation factors through the canonical
polynomial** -- for any circuit ``C``, absorptive semiring ``S`` and
assignment ``ν``, ``eval_S(C, ν) = (canonical polynomial of C)(ν)``.
This is the semantic backbone of the whole reproduction (it is why
checking polynomial equality in Sorp(X) certifies all semirings).
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    CircuitBuilder,
    canonical_polynomial,
    circuit_to_formula,
    evaluate,
)
from repro.semirings import BOOLEAN, FUZZY, TROPICAL, VITERBI

VARIABLES = ["a", "b", "c", "d"]


def random_circuit(seed: int, gates: int, share: bool = True):
    """A random DAG circuit over a 4-variable pool."""
    rng = random.Random(seed)
    builder = CircuitBuilder(share=share)
    nodes = [builder.var(v) for v in VARIABLES]
    nodes.append(builder.const0())
    nodes.append(builder.const1())
    for _ in range(gates):
        left, right = rng.choice(nodes), rng.choice(nodes)
        node = builder.add(left, right) if rng.random() < 0.5 else builder.mul(left, right)
        nodes.append(node)
    return builder.build(nodes[-1])


def tropical_assignment(rng: random.Random):
    return {v: float(rng.randint(0, 6)) for v in VARIABLES}


@given(seed=st.integers(0, 10_000), gates=st.integers(1, 25))
@settings(max_examples=60, deadline=None)
def test_evaluation_factors_through_canonical_polynomial(seed, gates):
    circuit = random_circuit(seed, gates)
    poly = canonical_polynomial(circuit)
    rng = random.Random(seed + 1)
    for semiring in (TROPICAL, VITERBI, FUZZY, BOOLEAN):
        if semiring is BOOLEAN:
            assignment = {v: rng.random() < 0.5 for v in VARIABLES}
        elif semiring is TROPICAL:
            assignment = tropical_assignment(rng)
        else:
            assignment = {v: rng.randint(0, 10) / 10.0 for v in VARIABLES}
        direct = evaluate(circuit, semiring, assignment)
        via_poly = poly.evaluate(semiring, assignment)
        assert semiring.eq(direct, via_poly), (semiring.name, poly)


@given(seed=st.integers(0, 10_000), gates=st.integers(1, 30))
@settings(max_examples=60, deadline=None)
def test_prune_preserves_polynomial_and_depth(seed, gates):
    circuit = random_circuit(seed, gates)
    pruned = circuit.prune()
    assert pruned.size <= circuit.size
    assert pruned.depth == circuit.depth
    assert canonical_polynomial(pruned) == canonical_polynomial(circuit)


@given(seed=st.integers(0, 10_000), gates=st.integers(1, 14))
@settings(max_examples=40, deadline=None)
def test_formula_expansion_is_equivalent(seed, gates):
    circuit = random_circuit(seed, gates)
    formula = circuit_to_formula(circuit, max_size=200_000)
    assert formula.is_formula()
    assert formula.depth == circuit.depth
    assert canonical_polynomial(formula) == canonical_polynomial(circuit)


@given(seed=st.integers(0, 10_000), gates=st.integers(1, 25))
@settings(max_examples=40, deadline=None)
def test_splice_is_polynomial_preserving(seed, gates):
    circuit = random_circuit(seed, gates)
    builder = CircuitBuilder(share=True)
    remap = builder.splice(circuit)
    copy = builder.build(remap[circuit.outputs[0]])
    assert canonical_polynomial(copy) == canonical_polynomial(circuit)


@given(seed=st.integers(0, 10_000), gates=st.integers(1, 25))
@settings(max_examples=40, deadline=None)
def test_sharing_and_nonsharing_builders_agree(seed, gates):
    shared = random_circuit(seed, gates, share=True)
    unshared = random_circuit(seed, gates, share=False)
    assert canonical_polynomial(shared) == canonical_polynomial(unshared)
    assert shared.size <= unshared.size  # hash-consing can only shrink


@given(seed=st.integers(0, 10_000), gates=st.integers(1, 30))
@settings(max_examples=40, deadline=None)
def test_boolean_fast_path_agrees_with_support_of_tropical(seed, gates):
    # Prop 3.6 at the circuit level: support(eval_T) = eval_B.
    from repro.circuits import evaluate_boolean

    circuit = random_circuit(seed, gates)
    rng = random.Random(seed + 2)
    trues = {v for v in VARIABLES if rng.random() < 0.6}
    tropical = {v: (0.0 if v in trues else math.inf) for v in VARIABLES}
    assert (evaluate(circuit, TROPICAL, tropical) != math.inf) == evaluate_boolean(
        circuit, trues
    )
