"""Circuit evaluation over semirings."""


import pytest

from repro.circuits import CircuitBuilder, evaluate, evaluate_all, evaluate_boolean
from repro.semirings import BOOLEAN, COUNTING, TROPICAL, VITERBI


def build():
    b = CircuitBuilder()
    x, y, z = b.var("x"), b.var("y"), b.var("z")
    out = b.add(b.mul(x, y), z)
    return b.build(out)


def test_evaluate_counting():
    assert evaluate(build(), COUNTING, {"x": 2, "y": 3, "z": 4}) == 10


def test_evaluate_tropical():
    assert evaluate(build(), TROPICAL, {"x": 2.0, "y": 3.0, "z": 4.0}) == 4.0


def test_evaluate_viterbi():
    assert evaluate(build(), VITERBI, {"x": 0.5, "y": 0.5, "z": 0.1}) == 0.25


def test_evaluate_with_callable_assignment():
    value = evaluate(build(), COUNTING, lambda label: {"x": 1, "y": 1, "z": 1}[label])
    assert value == 2


def test_evaluate_all_returns_every_node():
    c = build()
    values = evaluate_all(c, COUNTING, {"x": 2, "y": 3, "z": 4})
    assert len(values) == c.size
    assert values[c.outputs[0]] == 10


def test_evaluate_constants():
    b = CircuitBuilder()
    out = b.add(b.const1(), b.var("x"))
    c = b.build(out)
    assert evaluate(c, COUNTING, {"x": 5}) == 6
    assert evaluate(c, TROPICAL, {"x": 5.0}) == 0.0  # 1 ⊕ x = 1 (absorption)


def test_evaluate_boolean_fast_path():
    c = build()
    assert evaluate_boolean(c, {"x", "y"})
    assert evaluate_boolean(c, {"z"})
    assert not evaluate_boolean(c, {"x"})
    assert not evaluate_boolean(c, set())


def test_evaluate_boolean_matches_semiring_evaluation():
    c = build()
    for trues in [set(), {"x"}, {"x", "y"}, {"z"}, {"x", "y", "z"}]:
        assignment = {v: (v in trues) for v in ("x", "y", "z")}
        assert evaluate_boolean(c, trues) == evaluate(c, BOOLEAN, assignment)


def test_multi_output_requires_explicit_output():
    b = CircuitBuilder()
    x, y = b.var("x"), b.var("y")
    c = b.build([x, y])
    with pytest.raises(ValueError):
        evaluate(c, COUNTING, {"x": 1, "y": 2})
    assert evaluate(c, COUNTING, {"x": 1, "y": 2}, output=c.outputs[1]) == 2


def test_missing_assignment_raises():
    with pytest.raises(KeyError):
        evaluate(build(), COUNTING, {"x": 1})


def test_linear_time_evaluation_scales():
    b = CircuitBuilder()
    node = b.var(0)
    for i in range(1, 2000):
        node = b.add(node, b.var(i))
    c = b.build(node)
    total = evaluate(c, COUNTING, lambda label: 1)
    assert total == 2000
