"""Canonical polynomials and circuit equivalence decisions."""

from repro.circuits import (
    CircuitBuilder,
    canonical_polynomial,
    equivalent_over_absorptive,
    produced_polynomial,
    random_equivalence_check,
)
from repro.semirings import Monomial, Polynomial, TROPICAL


def test_canonical_polynomial_applies_absorption():
    b = CircuitBuilder()
    x, y = b.var("x"), b.var("y")
    out = b.add(x, b.mul(x, y))  # x ⊕ xy ≡ x
    poly = canonical_polynomial(b.build(out))
    assert poly == Polynomial.variable("x")


def test_produced_polynomial_keeps_multiplicities():
    b = CircuitBuilder(share=False)
    x1, x2 = b.var("x"), b.var("x")
    out = b.add(x1, x2)  # produces 2x in ℕ[X]
    poly = produced_polynomial(b.build(out))
    assert poly.coefficient(Monomial({"x": 1})) == 2


def test_canonical_idempotent_mul_caps():
    b = CircuitBuilder()
    x = b.var("x")
    out = b.mul(x, x)
    assert canonical_polynomial(b.build(out), idempotent_mul=True) == Polynomial.variable(
        "x", idempotent_mul=True
    )


def test_equivalence_positive():
    b1 = CircuitBuilder()
    out1 = b1.mul(b1.var("x"), b1.add(b1.var("y"), b1.var("z")))
    c1 = b1.build(out1)
    b2 = CircuitBuilder()
    out2 = b2.add(b2.mul(b2.var("x"), b2.var("y")), b2.mul(b2.var("x"), b2.var("z")))
    c2 = b2.build(out2)
    assert equivalent_over_absorptive(c1, c2)
    assert random_equivalence_check(c1, c2)


def test_equivalence_negative():
    b1 = CircuitBuilder()
    c1 = b1.build(b1.mul(b1.var("x"), b1.var("y")))
    b2 = CircuitBuilder()
    c2 = b2.build(b2.add(b2.var("x"), b2.var("y")))
    assert not equivalent_over_absorptive(c1, c2)
    assert not random_equivalence_check(c1, c2, TROPICAL, trials=32)


def test_equivalence_distinguishes_exponents_unless_idempotent():
    b1 = CircuitBuilder()
    x = b1.var("x")
    c1 = b1.build(b1.mul(x, x))
    b2 = CircuitBuilder()
    c2 = b2.build(b2.var("x"))
    assert not equivalent_over_absorptive(c1, c2)  # x² ≠ x over tropical
    assert equivalent_over_absorptive(c1, c2, idempotent_mul=True)  # equal in Chom


def test_random_check_finds_tropical_counterexample_for_squares():
    b1 = CircuitBuilder()
    x = b1.var("x")
    c1 = b1.build(b1.mul(x, x))
    b2 = CircuitBuilder()
    c2 = b2.build(b2.var("x"))
    assert not random_equivalence_check(c1, c2, TROPICAL, trials=32)
