"""Hypothesis equivalence suite for the compiled evaluation runtime.

Every path through :mod:`repro.circuits.runtime` --
``CompiledCircuit.evaluate_all``/``evaluate``, ``evaluate_batch``,
the bitset-parallel ``evaluate_boolean_batch`` and the dirty-cone
``IncrementalEvaluator`` -- must agree *exactly* (``==``, not just
``semiring.eq``) with the seed interpreter
(:func:`repro.circuits.evaluate.reference_evaluate_all`), on random
circuits over the Boolean, tropical and counting semirings, including
multi-output circuits, callable assignments and delta sequences that
flip a variable back and forth.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    CircuitBuilder,
    CompiledCircuit,
    IncrementalEvaluator,
    compile_circuit,
    evaluate,
    evaluate_all,
    evaluate_batch,
    evaluate_boolean,
    evaluate_boolean_batch,
    reference_evaluate_all,
    reference_evaluate_boolean,
)
from repro.semirings import BOOLEAN, COUNTING, TROPICAL

VARIABLES = ["a", "b", "c", "d", "e"]
SEMIRINGS = (BOOLEAN, TROPICAL, COUNTING)

# Value pools chosen so equality is exact (no float rounding): the
# tropical ops on these floats are min/+ over small integers.
POOLS = {
    "boolean": [False, True],
    "tropical": [float("inf"), 0.0, 1.0, 2.0, 3.0, 5.0],
    "counting": [0, 1, 2, 3],
}


def random_circuit(seed: int, gates: int, share: bool, num_outputs: int) -> Circuit:
    """A random DAG circuit over the 5-variable pool, possibly with
    duplicated (unshared) input gates and multiple outputs."""
    rng = random.Random(seed)
    builder = CircuitBuilder(share=share)
    nodes = [builder.var(v) for v in VARIABLES]
    nodes.append(builder.const0())
    nodes.append(builder.const1())
    if not share:  # duplicate labels: several input gates per variable
        nodes.extend(builder.var(rng.choice(VARIABLES)) for _ in range(3))
    for _ in range(gates):
        left, right = rng.choice(nodes), rng.choice(nodes)
        node = builder.add(left, right) if rng.random() < 0.5 else builder.mul(left, right)
        nodes.append(node)
    outputs = [rng.randrange(len(builder)) for _ in range(num_outputs)]
    return builder.build(outputs)


def random_assignment(rng: random.Random, semiring):
    pool = POOLS[semiring.name]
    return {v: rng.choice(pool) for v in VARIABLES}


@given(
    seed=st.integers(0, 10_000),
    gates=st.integers(1, 30),
    share=st.booleans(),
    num_outputs=st.integers(1, 3),
)
@settings(max_examples=60, deadline=None)
def test_compiled_evaluate_all_matches_reference(seed, gates, share, num_outputs):
    circuit = random_circuit(seed, gates, share, num_outputs)
    rng = random.Random(seed + 1)
    compiled = compile_circuit(circuit)
    assert isinstance(compiled, CompiledCircuit)
    assert compile_circuit(circuit) is compiled  # cached on the circuit
    for semiring in SEMIRINGS:
        assignment = random_assignment(rng, semiring)
        expected = reference_evaluate_all(circuit, semiring, assignment)
        assert compiled.evaluate_all(semiring, assignment) == expected
        assert evaluate_all(circuit, semiring, assignment) == expected
        # output queries, including interior (non-designated) nodes
        for out in circuit.outputs:
            assert evaluate(circuit, semiring, assignment, output=out) == expected[out]
        interior = rng.randrange(circuit.size)
        assert evaluate(circuit, semiring, assignment, output=interior) == expected[interior]


@given(seed=st.integers(0, 10_000), gates=st.integers(1, 30), num_outputs=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_evaluate_batch_matches_reference(seed, gates, num_outputs):
    circuit = random_circuit(seed, gates, True, num_outputs)
    rng = random.Random(seed + 2)
    for semiring in SEMIRINGS:
        assignments = [random_assignment(rng, semiring) for _ in range(5)]
        for out in circuit.outputs:
            expected = [
                reference_evaluate_all(circuit, semiring, a)[out] for a in assignments
            ]
            assert evaluate_batch(circuit, semiring, assignments, output=out) == expected


@given(seed=st.integers(0, 10_000), gates=st.integers(1, 30), num_outputs=st.integers(1, 2))
@settings(max_examples=40, deadline=None)
def test_callable_assignments(seed, gates, num_outputs):
    circuit = random_circuit(seed, gates, True, num_outputs)
    rng = random.Random(seed + 3)
    for semiring in SEMIRINGS:
        table = random_assignment(rng, semiring)
        expected = reference_evaluate_all(circuit, semiring, table)
        assert evaluate_all(circuit, semiring, table.__getitem__) == expected
        assert evaluate_batch(
            circuit, semiring, [table.__getitem__], output=circuit.outputs[0]
        ) == [expected[circuit.outputs[0]]]


@given(
    seed=st.integers(0, 10_000),
    gates=st.integers(1, 30),
    num_outputs=st.integers(1, 3),
    num_batches=st.integers(0, 70),
)
@settings(max_examples=40, deadline=None)
def test_bitset_batches_match_reference(seed, gates, num_outputs, num_batches):
    """Covers both sides of the 64-wide word boundary (chunking)."""
    circuit = random_circuit(seed, gates, True, num_outputs)
    rng = random.Random(seed + 4)
    batches = [
        [v for v in VARIABLES if rng.random() < 0.5] + (["ghost"] if rng.random() < 0.2 else [])
        for _ in range(num_batches)
    ]  # "ghost" is not a circuit variable: ignored, as in the seed path
    for out in circuit.outputs:
        expected = [reference_evaluate_boolean(circuit, trues, output=out) for trues in batches]
        assert evaluate_boolean_batch(circuit, batches, output=out) == expected
        # and against full Boolean semiring evaluation
        for trues in batches[:5]:
            assignment = {v: v in trues for v in VARIABLES}
            assert reference_evaluate_boolean(circuit, trues, output=out) == (
                reference_evaluate_all(circuit, BOOLEAN, assignment)[out]
            )
    if len(circuit.outputs) == 1:
        for trues in batches[:5]:
            assert evaluate_boolean(circuit, trues) == reference_evaluate_boolean(circuit, trues)


@given(
    seed=st.integers(0, 10_000),
    gates=st.integers(1, 30),
    share=st.booleans(),
    num_outputs=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_incremental_matches_full_recompute(seed, gates, share, num_outputs):
    """Delta sequences, including flipping one variable back and forth."""
    circuit = random_circuit(seed, gates, share, num_outputs)
    rng = random.Random(seed + 5)
    for semiring in SEMIRINGS:
        current = random_assignment(rng, semiring)
        evaluator = IncrementalEvaluator(circuit, semiring, dict(current))
        assert evaluator.values == reference_evaluate_all(circuit, semiring, current)
        flip_var = rng.choice(VARIABLES)
        original = current[flip_var]
        pool = POOLS[semiring.name]
        flipped = rng.choice([v for v in pool if v != original] or [original])
        deltas = [
            {rng.choice(VARIABLES): rng.choice(pool)},
            {flip_var: flipped},
            {flip_var: original},  # flip back
            {flip_var: flipped, rng.choice(VARIABLES): rng.choice(pool)},
            {},  # empty delta is a no-op
        ]
        for delta in deltas:
            current.update(delta)
            outputs = evaluator.update(delta)
            expected = reference_evaluate_all(circuit, semiring, current)
            assert evaluator.values == expected
            assert outputs == [expected[out] for out in circuit.outputs]
            assert evaluator.last_cone_size <= circuit.size
            for out in circuit.outputs:
                assert evaluator.value(output=out) == expected[out]


def test_incremental_callable_seed_and_unknown_label():
    builder = CircuitBuilder()
    out = builder.add(builder.mul(builder.var("x"), builder.var("y")), builder.var("z"))
    circuit = builder.build(out)
    evaluator = IncrementalEvaluator(circuit, COUNTING, lambda label: 1)
    assert evaluator.value() == 2
    assert evaluator.update({"z": 5}) == [6]
    with pytest.raises(KeyError):
        evaluator.update({"z": 9, "ghost": 1})
    # the failed delta was rejected atomically: nothing was applied and
    # the evaluator still serves correct values afterwards
    assert evaluator.value() == 6
    assert evaluator.update({"z": 2}) == [3]


def test_compiled_rejects_unknown_opcode():
    corrupt = Circuit([9], [-1], [-1], [None], [0])
    with pytest.raises(ValueError, match="unknown opcode"):
        compile_circuit(corrupt)


def test_evaluate_boolean_raises_on_unknown_opcode():
    """The seed version silently treated a corrupt opcode as False."""
    corrupt = Circuit([9], [-1], [-1], [None], [0])
    with pytest.raises(ValueError, match="unknown opcode"):
        evaluate_boolean(corrupt, set())
    with pytest.raises(ValueError, match="unknown opcode"):
        reference_evaluate_boolean(corrupt, set())


def test_bitset_word_size_validation():
    builder = CircuitBuilder()
    circuit = builder.build(builder.var("x"))
    with pytest.raises(ValueError):
        evaluate_boolean_batch(circuit, [["x"]], word_size=0)
    # non-default word sizes chunk identically
    batches = [["x"] if i % 2 else [] for i in range(10)]
    assert evaluate_boolean_batch(circuit, batches, word_size=3) == [
        bool(i % 2) for i in range(10)
    ]


def test_variable_table_deduplicates_labels():
    builder = CircuitBuilder(share=False)
    a1, a2 = builder.var("a"), builder.var("a")
    circuit = builder.build(builder.add(a1, a2))
    compiled = compile_circuit(circuit)
    assert compiled.num_slots == 1
    calls = []

    def lookup(label):
        calls.append(label)
        return 2

    assert compiled.evaluate(COUNTING, lookup) == 4
    assert calls == ["a"]  # hashed/resolved once per distinct label


def test_loop_kernel_above_straight_line_limit():
    """Circuits past the straight-line limit use the segment-loop kernel."""
    from repro.circuits import runtime

    builder = CircuitBuilder()
    node = builder.var(0)
    for i in range(1, runtime._STRAIGHT_LINE_LIMIT + 10):
        node = builder.add(node, builder.var(i))
    circuit = builder.build(node)
    total = evaluate(circuit, COUNTING, lambda label: 1)
    assert total == runtime._STRAIGHT_LINE_LIMIT + 10
    trues = [i for i in range(runtime._STRAIGHT_LINE_LIMIT + 10) if i % 2]
    assert evaluate_boolean(circuit, trues) is True
    assert evaluate_boolean(circuit, []) is False
