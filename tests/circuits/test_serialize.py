"""Circuit JSON round-trip and DOT export."""

import json

import pytest

from repro.circuits import (
    CircuitBuilder,
    canonical_polynomial,
    from_json,
    to_dot,
    to_json,
)


def build():
    b = CircuitBuilder()
    x, y = b.var("x"), b.var("y")
    out = b.add(b.mul(x, y), b.const1())
    return b.build(out)


def test_json_roundtrip_exact():
    circuit = build()
    restored = from_json(to_json(circuit))
    assert restored.ops == circuit.ops
    assert restored.lhs == circuit.lhs
    assert restored.rhs == circuit.rhs
    assert restored.labels == circuit.labels
    assert restored.outputs == circuit.outputs
    assert canonical_polynomial(restored) == canonical_polynomial(circuit)


def test_json_is_valid_json_with_header():
    payload = json.loads(to_json(build()))
    assert payload["format"] == "repro-circuit"
    assert payload["version"] == 1


def test_json_non_native_labels_stringified():
    from repro.datalog import Fact

    b = CircuitBuilder()
    out = b.var(Fact("E", (0, 1)))
    restored = from_json(to_json(b.build(out)))
    assert restored.labels[0] == "E(0,1)"  # documented lossy corner


def test_from_json_rejects_foreign_documents():
    with pytest.raises(ValueError):
        from_json('{"format": "something-else"}')
    with pytest.raises(ValueError):
        from_json('{"format": "repro-circuit", "version": 99}')


def test_dot_output_structure():
    dot = to_dot(build())
    assert dot.startswith("digraph circuit {")
    assert "⊕" in dot and "⊗" in dot
    assert "peripheries=2" in dot  # output marked
    assert dot.count("->") == 4  # two gates × two children


def test_dot_size_guard():
    b = CircuitBuilder()
    node = b.var(0)
    for i in range(1, 600):
        node = b.add(node, b.var(i))
    big = b.build(node)
    with pytest.raises(ValueError):
        to_dot(big)
    assert to_dot(big, max_nodes=None)  # explicit opt-out works
