"""Circuit JSON round-trip and DOT export."""

import json

import pytest

from repro.circuits import (
    CircuitBuilder,
    canonical_polynomial,
    compile_circuit,
    from_json,
    to_dot,
    to_json,
)
from repro.semirings import BOOLEAN, TROPICAL


def build():
    b = CircuitBuilder()
    x, y = b.var("x"), b.var("y")
    out = b.add(b.mul(x, y), b.const1())
    return b.build(out)


def test_json_roundtrip_exact():
    circuit = build()
    restored = from_json(to_json(circuit))
    assert restored.ops == circuit.ops
    assert restored.lhs == circuit.lhs
    assert restored.rhs == circuit.rhs
    assert restored.labels == circuit.labels
    assert restored.outputs == circuit.outputs
    assert canonical_polynomial(restored) == canonical_polynomial(circuit)


def test_json_is_valid_json_with_header():
    payload = json.loads(to_json(build()))
    assert payload["format"] == "repro-circuit"
    assert payload["version"] == 1


def test_json_non_native_labels_stringified():
    from repro.datalog import Fact

    b = CircuitBuilder()
    out = b.var(Fact("E", (0, 1)))
    restored = from_json(to_json(b.build(out)))
    assert restored.labels[0] == "E(0,1)"  # documented lossy corner


def test_from_json_rejects_foreign_documents():
    with pytest.raises(ValueError):
        from_json('{"format": "something-else"}')
    with pytest.raises(ValueError):
        from_json('{"format": "repro-circuit", "version": 99}')


def build_datalog_circuit():
    """A Theorem 3.1 circuit with string-labeled inputs, so labels
    survive JSON exactly and the compiled runtime can bind them."""
    from repro.constructions import generic_circuit
    from repro.datalog import transitive_closure
    from repro.workloads import random_digraph

    db = random_digraph(8, 20, seed=4)
    circuit = generic_circuit(transitive_closure(), db)
    weights = {repr(fact): float(1 + (i % 5)) for i, fact in enumerate(db.facts())}
    relabeled = CircuitBuilder(share=True)
    # Rebuild with repr labels: Fact labels round-trip as strings
    # (documented lossy corner), so string labels make the round-trip
    # exact for this test.
    from repro.circuits.circuit import OP_ADD, OP_CONST0, OP_CONST1, OP_MUL, OP_VAR

    node_map = {}
    for i, op in enumerate(circuit.ops):
        if op == OP_VAR:
            node_map[i] = relabeled.var(repr(circuit.labels[i]))
        elif op == OP_CONST0:
            node_map[i] = relabeled.const0()
        elif op == OP_CONST1:
            node_map[i] = relabeled.const1()
        elif op == OP_ADD:
            node_map[i] = relabeled.add(node_map[circuit.lhs[i]], node_map[circuit.rhs[i]])
        else:
            node_map[i] = relabeled.mul(node_map[circuit.lhs[i]], node_map[circuit.rhs[i]])
    rebuilt = relabeled.build([node_map[o] for o in circuit.outputs])
    return rebuilt, weights


@pytest.mark.parametrize(
    "semiring,assignment",
    [
        (TROPICAL, "weights"),
        (BOOLEAN, "booleans"),
    ],
)
def test_roundtrip_through_compiled_runtime(semiring, assignment):
    """serialize → deserialize → compile: the restored circuit's
    compiled outputs must equal the original's, gate for gate."""
    circuit, weights = build_datalog_circuit()
    if assignment == "weights":
        valuation = weights
    else:
        valuation = {label: (i % 3 != 0) for i, label in enumerate(sorted(weights))}
    restored = from_json(to_json(circuit))
    original = compile_circuit(circuit)
    roundtripped = compile_circuit(restored)
    assert restored.outputs == circuit.outputs
    assert original.evaluate_all(semiring, valuation) == roundtripped.evaluate_all(
        semiring, valuation
    )
    for output in circuit.outputs:
        assert original.evaluate(semiring, valuation, output) == roundtripped.evaluate(
            semiring, valuation, output
        )


def test_roundtrip_twice_is_stable():
    circuit, weights = build_datalog_circuit()
    once = to_json(circuit)
    twice = to_json(from_json(once))
    assert once == twice
    assert compile_circuit(from_json(twice)).evaluate_all(
        TROPICAL, weights
    ) == compile_circuit(circuit).evaluate_all(TROPICAL, weights)


def test_dot_output_structure():
    dot = to_dot(build())
    assert dot.startswith("digraph circuit {")
    assert "⊕" in dot and "⊗" in dot
    assert "peripheries=2" in dot  # output marked
    assert dot.count("->") == 4  # two gates × two children


def test_dot_size_guard():
    b = CircuitBuilder()
    node = b.var(0)
    for i in range(1, 600):
        node = b.add(node, b.var(i))
    big = b.build(node)
    with pytest.raises(ValueError):
        to_dot(big)
    assert to_dot(big, max_nodes=None)  # explicit opt-out works
