"""Incremental serving sessions on construction choices.

``ConstructionChoice.serve`` (and ``Session.serve`` above it) hands
out :class:`IncrementalEvaluator` sessions over one shared compiled
circuit.  This suite pins the serving contract the CircuitServer
relies on: sessions stay consistent across long interleaved delta
streams, independent sessions on the same compiled circuit do not
bleed state into each other, and every update pays a dirty cone, not
a full re-evaluation, while agreeing exactly with from-scratch
evaluation at the same assignment.
"""

import random

from repro import api
from repro.config import ExecutionConfig
from repro.constructions import provenance_circuit
from repro.datalog import Database, Fact, transitive_closure
from repro.semirings import BOOLEAN, COUNTING, TROPICAL


def line_db(n):
    return Database.from_edges([(i, i + 1) for i in range(n)] + [(0, n)])


def test_choice_serve_sessions_share_one_compiled_circuit():
    db = line_db(6)
    choice = provenance_circuit(transitive_closure(), db, Fact("T", (0, 6)))
    compiled = choice.compiled()
    assert choice.compiled() is compiled  # compile once, serve many
    a = choice.serve(TROPICAL, {fact: 1.0 for fact in db.facts()})
    b = choice.serve(TROPICAL, {fact: 2.0 for fact in db.facts()})
    assert a.compiled is b.compiled is compiled


def test_interleaved_deltas_do_not_bleed_between_sessions():
    db = line_db(5)
    choice = provenance_circuit(transitive_closure(), db, Fact("T", (0, 5)))
    ones = {fact: 1.0 for fact in db.facts()}
    shortcut = Fact("E", (0, 5))
    a = choice.serve(TROPICAL, ones)
    b = choice.serve(TROPICAL, ones)
    # Interleave: session a cheapens the shortcut, session b removes it.
    assert a.update({shortcut: 0.25}) == [0.25]
    assert b.update({shortcut: 50.0}) == [5.0]  # falls back to the 5-hop path
    assert a.update({Fact("E", (0, 1)): 0.0}) == [0.25]  # a still has its shortcut
    assert b.update({Fact("E", (4, 5)): 0.5}) == [4.5]
    assert a.update({shortcut: 100.0}) == [4.0]  # a's line path: 0 + 4×1


def test_long_interleaved_stream_matches_from_scratch_evaluation():
    rng = random.Random(2025_06)
    db = line_db(8)
    choice = provenance_circuit(transitive_closure(), db, Fact("T", (0, 8)))
    facts = sorted(db.facts(), key=repr)
    assignments = [
        {fact: 1.0 for fact in facts},
        {fact: float(i + 1) for i, fact in enumerate(facts)},
    ]
    sessions = [choice.serve(TROPICAL, dict(assignment)) for assignment in assignments]
    compiled = choice.compiled()
    for _ in range(60):
        which = rng.randrange(2)
        fact = rng.choice(facts)
        value = float(rng.randrange(0, 12))
        assignments[which][fact] = value
        served = sessions[which].update({fact: value})
        direct = compiled.evaluate(TROPICAL, assignments[which])
        assert served == [direct]
        assert 0 <= sessions[which].last_cone_size <= compiled.size


def test_updates_pay_the_cone_not_the_circuit():
    db = line_db(40)
    choice = provenance_circuit(transitive_closure(), db, Fact("T", (0, 40)))
    session = choice.serve(COUNTING, {fact: 1 for fact in db.facts()})
    # The shortcut edge feeds few gates: its cone must be a small
    # fraction of the circuit.
    session.update({Fact("E", (0, 40)): 0})
    assert 0 < session.last_cone_size < choice.compiled().size / 2
    # A no-op delta (same value again) dirties nothing downstream.
    session.update({Fact("E", (0, 40)): 0})
    assert session.last_cone_size <= 1


def test_api_session_serve_seeds_from_stored_weights():
    db = line_db(4)
    for fact in db.facts():
        db.set_weight(fact, 1.0)
    db.set_weight(Fact("E", (0, 4)), 9.0)
    session = api.Session(transitive_closure(), db)
    serving = session.serve(Fact("T", (0, 4)), TROPICAL)
    assert serving.output_values() == [4.0]  # line beats the weighted shortcut
    assert serving.update({Fact("E", (0, 4)): 0.5}) == [0.5]
    # The underlying database is untouched: a fresh serving session
    # re-seeds from the stored weights.
    fresh = session.serve(Fact("T", (0, 4)), TROPICAL)
    assert fresh.output_values() == [4.0]


def test_api_session_serve_respects_pinned_constructions():
    db = line_db(5)
    truth = frozenset(db.facts())
    fact = Fact("T", (0, 5))
    for construction in ("auto", "generic", "fringe"):
        session = api.Session(
            transitive_closure(), db, ExecutionConfig(construction=construction)
        )
        serving = session.serve(fact, BOOLEAN, {f: True for f in truth})
        assert serving.output_values() == [True]
        assert serving.update({Fact("E", (0, 5)): False}) == [True]  # line path remains
